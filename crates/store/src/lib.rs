//! The durable trajectory log (DESIGN.md §14): hot/cold state separation
//! for MobiEyes servers.
//!
//! The hot tier is the in-memory FOT/SQT/RQI of a [`Server`]; this crate
//! is the cold tier — an append-only, segmented binary log of the server's
//! *inputs* ([`LogRecord`]s), with:
//!
//! - **length-prefixed, CRC-guarded, monotonically sequenced frames**
//!   behind the in-tree codec (no external dependencies);
//! - **group-flush batching**: frames buffer in memory and hit the file in
//!   batches (every `flush_every` records, and always at the tick-boundary
//!   `SetTime`/`Heartbeat` records), bounding `kill -9` loss to one tick;
//! - **a torn-tail-tolerant reader**: a frame cut short by a crash (or a
//!   [`TornWritePlan`] fault injection) is detected by length/CRC/sequence
//!   checks and truncated away on the next open;
//! - **snapshot + truncate compaction**: a periodic [`LogRecord::Checkpoint`]
//!   (the full [`Server::checkpoint_bytes`] image) opens a fresh segment,
//!   and segments older than `keep_segments` before it are deleted —
//!   replay starts at the newest checkpoint, so the deleted prefix is
//!   subsumed;
//! - **replay recovery** ([`replay_into`]): rebuilding a server
//!   byte-for-byte by re-applying the logged inputs;
//! - **historical trajectory queries** ([`Store::trajectory`],
//!   [`read_trajectory`]): "where was object X over `[t0, t1]`", answered
//!   by a segment-index scan — each segment carries an in-memory
//!   `(min_tm, max_tm)` motion-sample range, so segments outside the
//!   window are skipped without touching disk.
//!
//! On-disk layout: `<dir>/seg-NNNNNNNN.log`, each segment starting with a
//! 20-byte header `[magic "MEST"][version][partition][first_seq]` followed
//! by frames `[len u32][crc u32][seq u64][payload]`, where `crc` is
//! CRC-32 (IEEE) over `seq ‖ payload` and `len` counts payload bytes.

use mobieyes_core::codec::{Put, Reader};
use mobieyes_core::journal::{decode_record, encode_record, JournalSink, LogRecord};
use mobieyes_core::server::Net;
use mobieyes_core::{ObjectId, Server};
use mobieyes_geo::LinearMotion;
use mobieyes_net::TornWritePlan;
use mobieyes_telemetry::{store_keys, Telemetry};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Segment header magic: `"MEST"` (MobiEyes STore).
pub const MAGIC: u32 = 0x4D45_5354;
/// On-disk format version.
pub const VERSION: u32 = 1;
/// Segment header size: magic, version, partition, first_seq.
pub const SEGMENT_HEADER_LEN: usize = 20;
/// Frame header size: len, crc, seq.
pub const FRAME_HEADER_LEN: usize = 16;
/// Upper bound on a single record payload (spans checkpoints of very
/// large servers; anything bigger on disk is corruption).
pub const MAX_RECORD: usize = 1 << 24;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) — the frame guard.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Store knobs. Segment size and flush batching trade recovery granularity
/// against syscall volume; `keep_segments` bounds how much pre-checkpoint
/// trajectory history compaction retains.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding this partition's segments.
    pub dir: PathBuf,
    /// The partition slot this log belongs to (0 for a single server).
    pub partition: u32,
    /// Group-flush batching: buffered frames hit the file every this many
    /// records (tick-boundary records always flush).
    pub flush_every: usize,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Segments *before* the newest checkpoint's segment retained by
    /// compaction for historical trajectory queries; older ones are
    /// deleted.
    pub keep_segments: u64,
}

impl StoreConfig {
    pub fn new(dir: impl Into<PathBuf>, partition: u32) -> Self {
        StoreConfig {
            dir: dir.into(),
            partition,
            flush_every: 64,
            segment_bytes: 1 << 20,
            keep_segments: 4,
        }
    }
}

/// Per-segment motion-sample statistics — the trajectory segment index.
#[derive(Debug, Clone, Copy)]
struct SegStat {
    min_tm: f64,
    max_tm: f64,
    samples: u64,
}

impl SegStat {
    fn empty() -> Self {
        SegStat {
            min_tm: f64::INFINITY,
            max_tm: f64::NEG_INFINITY,
            samples: 0,
        }
    }

    fn note(&mut self, tm: f64) {
        self.min_tm = self.min_tm.min(tm);
        self.max_tm = self.max_tm.max(tm);
        self.samples += 1;
    }

    fn covers(&self, t0: f64, t1: f64) -> bool {
        self.samples > 0 && self.min_tm <= t1 && self.max_tm >= t0
    }
}

struct Inner {
    cfg: StoreConfig,
    telemetry: Telemetry,
    /// Current segment writer; `None` after a (simulated) crash or I/O
    /// error — the store is poisoned and drops further appends, like the
    /// dead process it models.
    file: Option<File>,
    seg_index: u64,
    seg_bytes: u64,
    buf: Vec<u8>,
    pending: usize,
    next_seq: u64,
    torn: TornWritePlan,
    /// Closed segments' trajectory index; the open segment accumulates in
    /// `cur_stat`.
    seg_stats: BTreeMap<u64, SegStat>,
    cur_stat: SegStat,
    /// Segment holding the newest checkpoint record (compaction floor).
    checkpoint_seg: Option<u64>,
}

/// A handle to one partition's durable log: cheap to clone, internally
/// synchronized, injected into a [`Server`] as its [`JournalSink`].
#[derive(Clone)]
pub struct Store {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Store")
            .field("dir", &inner.cfg.dir)
            .field("partition", &inner.cfg.partition)
            .field("seg_index", &inner.seg_index)
            .field("next_seq", &inner.next_seq)
            .field("poisoned", &inner.file.is_none())
            .finish()
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.log"))
}

/// Segment file indices present in `dir`, ascending.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(i) = num.parse::<u64>() {
                out.push(i);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

struct SegmentScan {
    first_seq: u64,
    /// `(seq, record)` pairs of every valid frame, in order.
    records: Vec<(u64, LogRecord)>,
    /// Byte offset of the first invalid frame (file length when clean).
    valid_len: u64,
    /// Whether the segment ends in a torn/corrupt tail.
    torn: bool,
}

/// Parses one segment, stopping at the first invalid frame — short header,
/// oversized length, CRC mismatch, undecodable payload or out-of-order
/// sequence all mark a torn tail (never a panic: this is disk input).
fn scan_segment(bytes: &[u8], partition: u32, expect_seq: Option<u64>) -> io::Result<SegmentScan> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(bad_data("segment shorter than its header"));
    }
    let hdr = &mut Reader::new(&bytes[..SEGMENT_HEADER_LEN]);
    let magic = hdr.get_u32_le("magic").map_err(|e| bad_data(e.0))?;
    let version = hdr.get_u32_le("version").map_err(|e| bad_data(e.0))?;
    let seg_partition = hdr.get_u32_le("partition").map_err(|e| bad_data(e.0))?;
    let first_seq = hdr.get_u64_le("first seq").map_err(|e| bad_data(e.0))?;
    if magic != MAGIC {
        return Err(bad_data(format!("bad segment magic {magic:#x}")));
    }
    if version != VERSION {
        return Err(bad_data(format!("unsupported segment version {version}")));
    }
    if seg_partition != partition {
        return Err(bad_data(format!(
            "segment belongs to partition {seg_partition}, expected {partition}"
        )));
    }
    if let Some(expect) = expect_seq {
        if first_seq != expect {
            return Err(bad_data(format!(
                "segment first seq {first_seq} breaks continuity (expected {expect})"
            )));
        }
    }

    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    let mut seq = first_seq;
    let mut torn = false;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER_LEN {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let frame_seq = u64::from_le_bytes(rest[8..16].try_into().unwrap());
        if len > MAX_RECORD || rest.len() < FRAME_HEADER_LEN + len || frame_seq != seq {
            torn = true;
            break;
        }
        let guarded = &rest[8..FRAME_HEADER_LEN + len];
        if crc32(guarded) != crc {
            torn = true;
            break;
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let buf = &mut Reader::new(payload);
        let Ok(rec) = decode_record(buf) else {
            torn = true;
            break;
        };
        if buf.remaining() != 0 {
            torn = true;
            break;
        }
        records.push((seq, rec));
        seq += 1;
        offset += FRAME_HEADER_LEN + len;
    }
    Ok(SegmentScan {
        first_seq,
        records,
        valid_len: offset as u64,
        torn,
    })
}

fn encode_frame(seq: u64, rec: &LogRecord, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.put_u32_le(0); // len placeholder
    out.put_u32_le(0); // crc placeholder
    out.put_u64_le(seq);
    encode_record(rec, out);
    let len = out.len() - start - FRAME_HEADER_LEN;
    let crc = crc32(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&(len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    FRAME_HEADER_LEN + len
}

impl Store {
    /// Opens (or creates) the log directory of one partition. Existing
    /// segments are scanned: a torn tail is truncated away (counted in
    /// `store.torn_tails`), segments after a corrupt one are dropped, and
    /// writing resumes in a fresh segment continuing the sequence.
    pub fn open(cfg: StoreConfig, telemetry: Telemetry) -> io::Result<Store> {
        fs::create_dir_all(&cfg.dir)?;
        let indices = segment_indices(&cfg.dir)?;
        let mut next_seq = 0u64;
        let mut seg_stats = BTreeMap::new();
        let mut checkpoint_seg = None;
        let mut expect: Option<u64> = None;
        let mut dead = false;
        for (pos, &i) in indices.iter().enumerate() {
            let path = segment_path(&cfg.dir, i);
            if dead {
                // Everything after a torn segment is unreachable by
                // replay; drop it.
                fs::remove_file(&path)?;
                telemetry.incr(store_keys::TORN_TAILS);
                continue;
            }
            let bytes = fs::read(&path)?;
            // Continuity is only checkable from the second retained
            // segment on (compaction may have deleted the prefix).
            let scan = scan_segment(&bytes, cfg.partition, expect.filter(|_| pos > 0))?;
            let mut stat = SegStat::empty();
            for (seq, rec) in &scan.records {
                if let Some((_, motion)) = rec.motion_sample() {
                    stat.note(motion.tm);
                }
                if matches!(rec, LogRecord::Checkpoint(_)) {
                    checkpoint_seg = Some(i);
                }
                next_seq = seq + 1;
            }
            seg_stats.insert(i, stat);
            if scan.records.is_empty() {
                next_seq = next_seq.max(scan.first_seq);
            }
            if scan.torn {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
                f.sync_all()?;
                telemetry.incr(store_keys::TORN_TAILS);
                dead = true;
            }
            expect = Some(next_seq);
        }

        let seg_index = indices.last().map_or(0, |l| l + 1);
        let mut inner = Inner {
            cfg,
            telemetry,
            file: None,
            seg_index,
            seg_bytes: 0,
            buf: Vec::new(),
            pending: 0,
            next_seq,
            torn: TornWritePlan::none(),
            seg_stats,
            cur_stat: SegStat::empty(),
            checkpoint_seg,
        };
        inner.open_segment(seg_index)?;
        Ok(Store {
            inner: Arc::new(Mutex::new(inner)),
        })
    }

    /// Installs a deterministic torn-write fault schedule (tests). A
    /// firing tear writes a prefix of the batch and poisons the writer —
    /// the simulated process died mid-`write`.
    pub fn set_torn_plan(&self, plan: TornWritePlan) {
        self.inner.lock().unwrap().torn = plan;
    }

    /// Appends one record (the [`JournalSink`] entry point). Tick-boundary
    /// records (`SetTime`, `Heartbeat`) force a group flush.
    pub fn append_record(&self, rec: &LogRecord) {
        let mut inner = self.inner.lock().unwrap();
        inner.append(rec);
    }

    /// Forces the buffered frames onto disk.
    pub fn flush(&self) {
        self.inner.lock().unwrap().flush();
    }

    /// Cuts a checkpoint: flushes, rotates to a fresh segment whose first
    /// record is `Checkpoint(state)`, syncs it durably, and garbage
    /// collects segments older than `keep_segments` before it. `state` is
    /// [`Server::checkpoint_bytes`] output.
    pub fn checkpoint(&self, state: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        inner.checkpoint(state);
    }

    /// Historical trajectory query: every motion sample recorded for
    /// `oid` with `tm` in `[t0, t1]`, ascending by time, deduplicated.
    /// Answered by a segment-index scan — only segments whose sample-time
    /// range intersects the window are read.
    pub fn trajectory(&self, oid: ObjectId, t0: f64, t1: f64) -> io::Result<Vec<LinearMotion>> {
        let (dir, partition, picks) = {
            let mut inner = self.inner.lock().unwrap();
            inner.flush();
            let mut picks: Vec<u64> = inner
                .seg_stats
                .iter()
                .filter(|(_, s)| s.covers(t0, t1))
                .map(|(&i, _)| i)
                .collect();
            if inner.cur_stat.covers(t0, t1) {
                picks.push(inner.seg_index);
            }
            (inner.cfg.dir.clone(), inner.cfg.partition, picks)
        };
        let mut out = Vec::new();
        for i in picks {
            let bytes = fs::read(segment_path(&dir, i))?;
            let scan = scan_segment(&bytes, partition, None)?;
            for (_, rec) in &scan.records {
                if let Some((o, motion)) = rec.motion_sample() {
                    if o == oid && motion.tm >= t0 && motion.tm <= t1 {
                        out.push(motion);
                    }
                }
            }
        }
        sort_dedupe_motions(&mut out);
        Ok(out)
    }

    /// The sequence number the next append receives.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Whether a torn write or I/O error killed this writer.
    pub fn poisoned(&self) -> bool {
        self.inner.lock().unwrap().file.is_none()
    }

    /// The log directory.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().unwrap().cfg.dir.clone()
    }

    /// Number of live segment files (closed + the open one).
    pub fn num_segments(&self) -> usize {
        self.inner.lock().unwrap().seg_stats.len() + 1
    }

    /// Total on-disk size of the log in bytes (flushed data only).
    pub fn log_bytes(&self) -> io::Result<u64> {
        let dir = self.dir();
        let mut total = 0;
        for i in segment_indices(&dir)? {
            total += fs::metadata(segment_path(&dir, i))?.len();
        }
        Ok(total)
    }
}

impl JournalSink for Store {
    fn append(&self, rec: &LogRecord) {
        self.append_record(rec);
    }
}

impl Inner {
    fn open_segment(&mut self, index: u64) -> io::Result<()> {
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
        header.put_u32_le(MAGIC);
        header.put_u32_le(VERSION);
        header.put_u32_le(self.cfg.partition);
        header.put_u64_le(self.next_seq);
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(&self.cfg.dir, index))?;
        f.write_all(&header)?;
        self.file = Some(f);
        self.seg_index = index;
        self.seg_bytes = SEGMENT_HEADER_LEN as u64;
        self.cur_stat = SegStat::empty();
        Ok(())
    }

    fn append(&mut self, rec: &LogRecord) {
        if self.file.is_none() {
            return; // poisoned: the simulated process is dead
        }
        let seq = self.next_seq;
        let frame_len = encode_frame(seq, rec, &mut self.buf);
        if frame_len - FRAME_HEADER_LEN > MAX_RECORD {
            // Un-replayable frame; refuse it and poison.
            self.buf.truncate(self.buf.len() - frame_len);
            self.poison(store_keys::WRITE_ERRORS);
            return;
        }
        self.next_seq += 1;
        self.pending += 1;
        if let Some((_, motion)) = rec.motion_sample() {
            self.cur_stat.note(motion.tm);
        }
        if matches!(rec, LogRecord::Checkpoint(_)) {
            self.checkpoint_seg = Some(self.seg_index);
        }
        self.telemetry.incr(store_keys::APPENDS);
        self.telemetry.add(store_keys::BYTES, frame_len as u64);
        let boundary = matches!(rec, LogRecord::SetTime(_) | LogRecord::Heartbeat(_));
        if boundary || self.pending >= self.cfg.flush_every {
            self.flush();
        }
    }

    fn poison(&mut self, counter: &'static str) {
        self.file = None;
        self.buf.clear();
        self.pending = 0;
        self.telemetry.incr(counter);
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let Some(f) = self.file.as_mut() else { return };
        if let Some(keep) = self.torn.torn_len(self.buf.len()) {
            // Simulated crash mid-write: a prefix lands, the writer dies.
            let _ = f.write_all(&self.buf[..keep]);
            let _ = f.sync_all();
            self.poison(store_keys::TORN_WRITES);
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        let wrote = f.write_all(&buf).and_then(|()| f.flush());
        self.buf = buf;
        if wrote.is_err() {
            self.poison(store_keys::WRITE_ERRORS);
            return;
        }
        self.seg_bytes += self.buf.len() as u64;
        self.buf.clear();
        self.pending = 0;
        self.telemetry.incr(store_keys::FLUSHES);
        if self.seg_bytes >= self.cfg.segment_bytes {
            let _ = self.rotate();
        }
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.seg_stats.insert(self.seg_index, self.cur_stat);
        self.telemetry.incr(store_keys::ROTATIONS);
        let next = self.seg_index + 1;
        self.open_segment(next).inspect_err(|_| {
            self.poison(store_keys::WRITE_ERRORS);
        })
    }

    fn checkpoint(&mut self, state: Vec<u8>) {
        if self.file.is_none() {
            return;
        }
        self.flush();
        if self.file.is_none() || self.rotate().is_err() {
            return;
        }
        self.append(&LogRecord::Checkpoint(state));
        self.flush();
        if let Some(f) = self.file.as_mut() {
            if f.sync_all().is_err() {
                self.poison(store_keys::WRITE_ERRORS);
                return;
            }
        }
        self.telemetry.incr(store_keys::CHECKPOINTS);
        self.gc();
    }

    /// Deletes segments more than `keep_segments` before the newest
    /// checkpoint's segment: replay never needs them (it starts at the
    /// checkpoint) and trajectory history keeps a bounded window.
    fn gc(&mut self) {
        let Some(ckpt) = self.checkpoint_seg else {
            return;
        };
        let floor = ckpt.saturating_sub(self.cfg.keep_segments);
        let doomed: Vec<u64> = self.seg_stats.range(..floor).map(|(&i, _)| i).collect();
        for i in doomed {
            if fs::remove_file(segment_path(&self.cfg.dir, i)).is_ok() {
                self.seg_stats.remove(&i);
                self.telemetry.incr(store_keys::GC_SEGMENTS);
            }
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Best-effort: an orderly shutdown should not lose the buffered
        // tail (a crash still can — that is what replay tolerates).
        self.flush();
    }
}

/// Orders motion samples by timestamp and drops exact duplicates —
/// the merge step for trajectory fragments gathered across partitions.
pub fn sort_dedupe_motions(out: &mut Vec<LinearMotion>) {
    out.sort_by(|a, b| a.tm.partial_cmp(&b.tm).unwrap_or(std::cmp::Ordering::Equal));
    out.dedup_by(|a, b| a.tm == b.tm && a.pos == b.pos && a.vel == b.vel);
}

/// A whole-directory read: every valid record, in sequence order.
#[derive(Debug)]
pub struct LogScan {
    /// `(seq, record)` pairs across all segments.
    pub records: Vec<(u64, LogRecord)>,
    /// Whether a torn tail was encountered (records after it, if any,
    /// were not returned).
    pub torn: bool,
}

/// Reads every valid record of a partition log directory, tolerating a
/// torn tail (read-only — nothing is repaired or created).
pub fn read_log_dir(dir: &Path, partition: u32) -> io::Result<LogScan> {
    let mut records = Vec::new();
    let mut torn = false;
    let mut expect: Option<u64> = None;
    for (pos, i) in segment_indices(dir)?.into_iter().enumerate() {
        if torn {
            break;
        }
        let bytes = fs::read(segment_path(dir, i))?;
        let scan = scan_segment(&bytes, partition, expect.filter(|_| pos > 0))?;
        torn = scan.torn;
        let mut last = scan.first_seq;
        for (seq, rec) in scan.records {
            last = seq + 1;
            records.push((seq, rec));
        }
        expect = Some(last);
    }
    Ok(LogScan { records, torn })
}

/// What [`replay_into`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Valid records found in the log.
    pub records_scanned: u64,
    /// Records actually applied (from the newest checkpoint on).
    pub records_applied: u64,
    /// Sequence number of the last applied record.
    pub last_seq: Option<u64>,
    /// Whether replay started from a checkpoint record.
    pub from_checkpoint: bool,
}

/// Rebuilds a server from its log: finds the newest
/// [`LogRecord::Checkpoint`] and re-applies it plus the tail after it (the
/// whole log when no checkpoint exists — only valid for logs whose first
/// record is still seq 0). Deterministic protocol logic makes the result
/// byte-identical to the server that wrote the log. Downlinks and cluster
/// messages regenerated into `net`/the server's outbox during replay are
/// echoes of traffic already delivered live; the caller discards them.
pub fn replay_into(
    dir: &Path,
    partition: u32,
    server: &mut Server,
    net: &mut Net,
    telemetry: &Telemetry,
) -> io::Result<ReplaySummary> {
    let scan = read_log_dir(dir, partition)?;
    let start = scan
        .records
        .iter()
        .rposition(|(_, r)| matches!(r, LogRecord::Checkpoint(_)));
    if start.is_none() {
        if let Some(&(first_seq, _)) = scan.records.first().filter(|(s, _)| *s != 0) {
            return Err(bad_data(format!(
                "log begins mid-stream at seq {first_seq:?} without a checkpoint"
            )));
        }
    }
    let start = start.unwrap_or(0);
    let mut applied = 0u64;
    let mut last_seq = None;
    for (seq, rec) in &scan.records[start..] {
        server
            .apply_log_record(rec, net)
            .map_err(|e| bad_data(e.0))?;
        applied += 1;
        last_seq = Some(*seq);
    }
    telemetry.add(store_keys::REPLAYED, applied);
    Ok(ReplaySummary {
        records_scanned: scan.records.len() as u64,
        records_applied: applied,
        last_seq,
        from_checkpoint: start > 0
            || matches!(scan.records.first(), Some((_, LogRecord::Checkpoint(_)))),
    })
}

/// Historical trajectory query over a log directory on disk (the offline
/// twin of [`Store::trajectory`]).
pub fn read_trajectory(
    dir: &Path,
    partition: u32,
    oid: ObjectId,
    t0: f64,
    t1: f64,
) -> io::Result<Vec<LinearMotion>> {
    let scan = read_log_dir(dir, partition)?;
    let mut out = Vec::new();
    for (_, rec) in &scan.records {
        if let Some((o, motion)) = rec.motion_sample() {
            if o == oid && motion.tm >= t0 && motion.tm <= t1 {
                out.push(motion);
            }
        }
    }
    sort_dedupe_motions(&mut out);
    Ok(out)
}

/// Deletes every segment of a log directory (respawn recovery wipes the
/// stale journal of a fenced-out partition before re-attaching a sink).
pub fn wipe_dir(dir: &Path) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for i in segment_indices(dir)? {
        fs::remove_file(segment_path(dir, i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_core::{
        Filter, MovingObjectAgent, ObjectId, Propagation, Properties, ProtocolConfig, Server,
    };
    use mobieyes_geo::{Grid, Point, QueryRegion, Rect, Vec2};
    use mobieyes_net::BaseStationLayout;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mobieyes-store-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn motion(x: f64, y: f64, tm: f64) -> LinearMotion {
        LinearMotion::new(Point::new(x, y), Vec2::new(0.01, -0.02), tm)
    }

    fn sample_records(n: usize) -> Vec<LogRecord> {
        let mut out = vec![LogRecord::Meta {
            partition: 0,
            num_partitions: 1,
        }];
        for i in 0..n {
            out.push(LogRecord::VelocityReport {
                oid: ObjectId(i as u32 % 5),
                motion: motion(i as f64, 2.0 * i as f64, 30.0 * i as f64),
            });
            if i % 4 == 3 {
                out.push(LogRecord::Heartbeat(30.0 * i as f64));
            }
        }
        out
    }

    #[test]
    fn frames_roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let recs = sample_records(10);
        let tel = Telemetry::new();
        {
            let store = Store::open(StoreConfig::new(&dir, 0), tel.clone()).unwrap();
            for r in &recs {
                store.append_record(r);
            }
            assert_eq!(store.next_seq(), recs.len() as u64);
            assert!(!store.poisoned());
        } // drop flushes the buffered tail
        let scan = read_log_dir(&dir, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), recs.len());
        for (i, (seq, rec)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(rec, &recs[i]);
        }

        // Reopening continues the sequence in a fresh segment.
        let store = Store::open(StoreConfig::new(&dir, 0), tel).unwrap();
        assert_eq!(store.next_seq(), recs.len() as u64);
        store.append_record(&LogRecord::Heartbeat(999.0));
        store.flush();
        let scan = read_log_dir(&dir, 0).unwrap();
        assert_eq!(scan.records.last().unwrap().1, LogRecord::Heartbeat(999.0));
        assert_eq!(scan.records.len(), recs.len() + 1);
    }

    #[test]
    fn wrong_partition_is_rejected() {
        let dir = tmp_dir("wrongpart");
        {
            let store = Store::open(StoreConfig::new(&dir, 3), Telemetry::new()).unwrap();
            store.append_record(&LogRecord::Heartbeat(1.0));
        }
        assert!(read_log_dir(&dir, 0).is_err());
        assert!(read_log_dir(&dir, 3).is_ok());
    }

    /// Truncating the log at EVERY byte offset must never panic, and must
    /// recover exactly the frames wholly before the cut.
    #[test]
    fn torn_tail_truncation_sweep() {
        let dir = tmp_dir("sweep");
        let recs = sample_records(8);
        {
            let store = Store::open(StoreConfig::new(&dir, 0), Telemetry::new()).unwrap();
            for r in &recs {
                store.append_record(r);
            }
        }
        let seg = segment_path(&dir, 0);
        let full = fs::read(&seg).unwrap();
        // Frame boundaries: prefix lengths that keep k whole frames.
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        for r in &recs {
            let payload = mobieyes_core::journal::record_bytes(r);
            boundaries.push(boundaries.last().unwrap() + FRAME_HEADER_LEN + payload.len());
        }
        assert_eq!(*boundaries.last().unwrap(), full.len());

        for cut in SEGMENT_HEADER_LEN..full.len() {
            let dir2 = tmp_dir("sweepcase");
            fs::create_dir_all(&dir2).unwrap();
            fs::write(segment_path(&dir2, 0), &full[..cut]).unwrap();
            let scan = read_log_dir(&dir2, 0).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            // A cut landing exactly on a frame boundary is
            // indistinguishable from a clean shutdown.
            assert_eq!(scan.torn, !boundaries.contains(&cut), "cut at {cut}");

            // The writer repairs the tail and keeps going.
            let tel = Telemetry::new();
            let store = Store::open(StoreConfig::new(&dir2, 0), tel.clone()).unwrap();
            assert_eq!(store.next_seq(), whole as u64);
            store.append_record(&LogRecord::Heartbeat(1e6));
            drop(store);
            let scan = read_log_dir(&dir2, 0).unwrap();
            assert!(!scan.torn);
            assert_eq!(scan.records.len(), whole + 1);
            if !boundaries.contains(&cut) {
                assert!(tel.counter(store_keys::TORN_TAILS) >= 1);
            }
            fs::remove_dir_all(&dir2).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping any single byte of a frame body must never panic and must
    /// cut the log at (or before) the corrupted frame.
    #[test]
    fn corrupt_byte_sweep_never_panics() {
        let dir = tmp_dir("corrupt");
        let recs = sample_records(6);
        {
            let store = Store::open(StoreConfig::new(&dir, 0), Telemetry::new()).unwrap();
            for r in &recs {
                store.append_record(r);
            }
        }
        let seg = segment_path(&dir, 0);
        let full = fs::read(&seg).unwrap();
        for pos in SEGMENT_HEADER_LEN..full.len() {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x5A;
            let dir2 = tmp_dir("corruptcase");
            fs::create_dir_all(&dir2).unwrap();
            fs::write(segment_path(&dir2, 0), &bytes).unwrap();
            let scan = read_log_dir(&dir2, 0).unwrap();
            assert!(scan.torn, "flip at {pos} went undetected");
            assert!(scan.records.len() < recs.len());
            for (i, (seq, rec)) in scan.records.iter().enumerate() {
                assert_eq!(*seq, i as u64);
                assert_eq!(rec, &recs[i], "flip at {pos} corrupted an earlier frame");
            }
            fs::remove_dir_all(&dir2).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_plan_poisons_writer_and_reader_recovers() {
        let dir = tmp_dir("tornplan");
        let tel = Telemetry::new();
        let mut cfg = StoreConfig::new(&dir, 0);
        cfg.flush_every = 1000; // only tick boundaries flush
        let store = Store::open(cfg, tel.clone()).unwrap();
        for r in sample_records(6) {
            store.append_record(&r);
        }
        store.flush();
        let clean = read_log_dir(&dir, 0).unwrap().records.len();

        // The next flush tears mid-batch and kills the writer.
        store.set_torn_plan(TornWritePlan::nth(0, 0.5));
        store.append_record(&LogRecord::VelocityReport {
            oid: ObjectId(99),
            motion: motion(1.0, 1.0, 500.0),
        });
        store.append_record(&LogRecord::Heartbeat(500.0)); // boundary -> torn flush
        assert!(store.poisoned());
        assert_eq!(tel.counter(store_keys::TORN_WRITES), 1);
        store.append_record(&LogRecord::Heartbeat(501.0)); // dropped
        drop(store);

        let scan = read_log_dir(&dir, 0).unwrap();
        assert!(scan.records.len() <= clean + 2);
        // Reopen repairs; appending resumes from the surviving prefix.
        let tel2 = Telemetry::new();
        let store = Store::open(StoreConfig::new(&dir, 0), tel2.clone()).unwrap();
        let survived = store.next_seq();
        assert!(survived >= clean as u64);
        store.append_record(&LogRecord::Heartbeat(600.0));
        drop(store);
        let scan = read_log_dir(&dir, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len() as u64, survived + 1);
    }

    #[test]
    fn seeded_torn_plan_chaos_sweep() {
        for seed in 0..20u64 {
            let dir = tmp_dir("chaos");
            let tel = Telemetry::new();
            let mut cfg = StoreConfig::new(&dir, 0);
            cfg.segment_bytes = 512; // force rotations mid-chaos
            let store = Store::open(cfg, tel.clone()).unwrap();
            store.set_torn_plan(TornWritePlan::seeded(0.3, seed));
            for r in sample_records(40) {
                store.append_record(&r);
            }
            drop(store);
            // Whatever survived must be a clean, contiguous prefix.
            let scan = read_log_dir(&dir, 0).unwrap();
            for (i, (seq, _)) in scan.records.iter().enumerate() {
                assert_eq!(*seq, i as u64);
            }
            let store = Store::open(StoreConfig::new(&dir, 0), tel).unwrap();
            assert!(!store.poisoned());
            assert_eq!(store.next_seq(), scan.records.len() as u64);
            drop(store);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn rotation_checkpoint_gc_bounds_log_size() {
        let dir = tmp_dir("gc");
        let tel = Telemetry::new();
        let mut cfg = StoreConfig::new(&dir, 0);
        cfg.segment_bytes = 256;
        cfg.keep_segments = 1;
        let store = Store::open(cfg, tel.clone()).unwrap();
        for round in 0..30u32 {
            for r in sample_records(12) {
                store.append_record(&r);
            }
            store.checkpoint(vec![round as u8; 64]);
            // Steady state: keep_segments before the checkpoint segment,
            // the checkpoint segment, and at most a few trailing ones.
            assert!(
                segment_indices(&dir).unwrap().len() <= 4,
                "round {round}: compaction failed to bound the log"
            );
        }
        assert!(tel.counter(store_keys::GC_SEGMENTS) > 0);
        assert_eq!(tel.counter(store_keys::CHECKPOINTS), 30);
        // The retained tail still reads cleanly and ends with data after
        // the newest checkpoint.
        let scan = read_log_dir(&dir, 0).unwrap();
        assert!(!scan.torn);
        assert!(scan
            .records
            .iter()
            .any(|(_, r)| matches!(r, LogRecord::Checkpoint(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trajectory_scan_uses_segment_index_and_matches_ground_truth() {
        let dir = tmp_dir("traj");
        let mut cfg = StoreConfig::new(&dir, 0);
        cfg.segment_bytes = 300; // several segments
        let store = Store::open(cfg, Telemetry::new()).unwrap();
        let mut expect = Vec::new();
        for i in 0..60 {
            let oid = ObjectId(i % 3);
            let m = motion(i as f64, i as f64, 10.0 * i as f64);
            if oid == ObjectId(1) && (100.0..=400.0).contains(&m.tm) {
                expect.push(m);
            }
            store.append_record(&LogRecord::VelocityReport { oid, motion: m });
            if i % 5 == 4 {
                store.append_record(&LogRecord::Heartbeat(10.0 * i as f64));
            }
        }
        assert!(store.num_segments() > 2, "wanted multiple segments");
        let got = store.trajectory(ObjectId(1), 100.0, 400.0).unwrap();
        assert_eq!(got, expect);
        drop(store);
        // Offline twin agrees.
        let got = read_trajectory(&dir, 0, ObjectId(1), 100.0, 400.0).unwrap();
        assert_eq!(got, expect);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// End-to-end: a server journaling into the store, checkpointed
    /// mid-run, replays to a byte-identical state digest.
    #[test]
    fn scenario_replay_matches_live_digest() {
        const SIDE: f64 = 60.0;
        const TS: f64 = 30.0;
        let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
        let config = Arc::new(
            ProtocolConfig::new(Grid::new(universe, 8.0))
                .with_propagation(Propagation::Eager)
                .with_grouping(true)
                .with_delta(0.05),
        );
        let dir = tmp_dir("replay");
        let mut cfg = StoreConfig::new(&dir, 0);
        cfg.segment_bytes = 2048;
        let store = Store::open(cfg, Telemetry::new()).unwrap();

        let mut net = Net::new(BaseStationLayout::new(universe, 15.0));
        let mut server = Server::new(Arc::clone(&config)).with_journal(Arc::new(store.clone()));
        let n = 8usize;
        let mut positions: Vec<Point> = (0..n)
            .map(|i| Point::new(5.0 + 6.0 * i as f64, 50.0 - 5.0 * i as f64))
            .collect();
        let mut agents: Vec<MovingObjectAgent> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                MovingObjectAgent::new(
                    ObjectId(i as u32),
                    Properties::new(),
                    0.08,
                    p,
                    Vec2::ZERO,
                    Arc::clone(&config),
                )
            })
            .collect();
        for f in [0usize, 3, 6] {
            server.install_query(
                ObjectId(f as u32),
                QueryRegion::circle(9.0),
                Filter::True,
                &mut net,
            );
        }
        for k in 0..8 {
            let t = (k + 1) as f64 * TS;
            let vels: Vec<Vec2> = (0..n)
                .map(|i| Vec2::new(0.02 * ((i + k) % 3) as f64 - 0.02, 0.015))
                .collect();
            for i in 0..n {
                let p = positions[i] + vels[i] * TS;
                positions[i] = Point::new(p.x.clamp(0.0, SIDE), p.y.clamp(0.0, SIDE));
            }
            for (i, a) in agents.iter_mut().enumerate() {
                a.tick_motion(t, positions[i], vels[i], &mut net);
            }
            server.tick(&mut net);
            for (i, a) in agents.iter_mut().enumerate() {
                let mut inbox = Vec::new();
                net.deliver(ObjectId(i as u32).node(), positions[i], &mut inbox);
                a.tick_process(t, inbox.iter().map(|m| &**m), &mut net);
            }
            net.end_tick();
            server.tick(&mut net);
            server.heartbeat(t, &mut net);
            if k == 4 {
                store.checkpoint(server.checkpoint_bytes());
            }
        }
        store.flush();

        let mut net2 = Net::new(BaseStationLayout::new(universe, 15.0));
        let mut twin = Server::new(Arc::clone(&config));
        let tel = Telemetry::new();
        let summary = replay_into(&dir, 0, &mut twin, &mut net2, &tel).unwrap();
        assert!(summary.from_checkpoint);
        assert!(summary.records_applied < summary.records_scanned);
        assert_eq!(tel.counter(store_keys::REPLAYED), summary.records_applied);
        assert_eq!(twin.state_digest(), server.state_digest());
        twin.check_invariants();
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A log with no checkpoint replays from seq 0.
    #[test]
    fn replay_without_checkpoint_requires_full_log() {
        let dir = tmp_dir("nockpt");
        let universe = Rect::new(0.0, 0.0, 60.0, 60.0);
        let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 8.0)));
        let store = Store::open(StoreConfig::new(&dir, 0), Telemetry::new()).unwrap();
        let mut net = Net::new(BaseStationLayout::new(universe, 15.0));
        let mut server = Server::new(Arc::clone(&config)).with_journal(Arc::new(store.clone()));
        server.heartbeat(30.0, &mut net);
        store.flush();

        let mut twin = Server::new(Arc::clone(&config));
        let s = replay_into(&dir, 0, &mut twin, &mut net, &Telemetry::new()).unwrap();
        assert!(!s.from_checkpoint);
        assert_eq!(twin.state_digest(), server.state_digest());

        // A mid-stream log (GC'd prefix) without a checkpoint must refuse:
        // deleting the first segment leaves the tail starting past seq 0.
        {
            let store = Store::open(StoreConfig::new(&dir, 0), Telemetry::new()).unwrap();
            store.append_record(&LogRecord::Heartbeat(60.0));
        }
        fs::remove_file(segment_path(&dir, 0)).unwrap();
        assert!(read_log_dir(&dir, 0).unwrap().records[0].0 > 0);
        let mut twin = Server::new(config);
        assert!(replay_into(&dir, 0, &mut twin, &mut net, &Telemetry::new()).is_err());

        // And a wiped directory starts over cleanly from seq 0.
        wipe_dir(&dir).unwrap();
        let store = Store::open(StoreConfig::new(&dir, 0), Telemetry::new()).unwrap();
        assert_eq!(store.next_seq(), 0);
    }
}
