//! The *indexing objects* centralized baseline (paper §5.2).
//!
//! "In this approach a spatial index is built over object locations. We use
//! an R*-tree for this purpose. As new object positions are received, the
//! spatial index is updated with the new information. Periodically all
//! queries are evaluated against the object index." Its dominant cost is
//! index maintenance — one delete+insert per moving object per tick — which
//! is why the paper observes an almost constant (and high) server load
//! regardless of query count.

use crate::types::{CentralEngine, ObjectReport, QueryDef};
use mobieyes_core::{ObjectId, Properties, QueryId};
use mobieyes_geo::{Point, Rect, Region};
use mobieyes_rstar::RStarTree;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// R*-tree over object positions; periodic full query sweep.
#[derive(Debug, Default)]
pub struct ObjectIndexEngine {
    tree: RStarTree<ObjectId>,
    positions: HashMap<ObjectId, Point>,
    props: HashMap<ObjectId, Properties>,
    queries: BTreeMap<QueryId, QueryDef>,
    results: BTreeMap<QueryId, BTreeSet<ObjectId>>,
}

impl ObjectIndexEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index size (diagnostics).
    pub fn indexed_objects(&self) -> usize {
        self.tree.len()
    }

    /// The `k` objects nearest to `pos` that satisfy `filter`, closest
    /// first — a snapshot k-nearest-neighbor query over the object index
    /// (the centralized counterpart of the NN queries in the paper's
    /// related work). Distances are to the last reported positions.
    pub fn k_nearest(
        &self,
        pos: Point,
        k: usize,
        filter: &mobieyes_core::Filter,
    ) -> Vec<(ObjectId, f64)> {
        let empty = Properties::new();
        // Over-fetch and post-filter: ask the tree for progressively more
        // neighbors until k pass the filter or the tree is exhausted.
        let mut want = k.max(1) * 2;
        loop {
            let candidates = self.tree.nearest(pos, want);
            let exhausted = candidates.len() < want;
            let hits: Vec<(ObjectId, f64)> = candidates
                .into_iter()
                .filter(|(_, &oid, _)| filter.matches(oid, self.props.get(&oid).unwrap_or(&empty)))
                .map(|(_, &oid, d)| (oid, d))
                .take(k)
                .collect();
            if hits.len() == k || exhausted {
                return hits;
            }
            want *= 2;
        }
    }

    #[cfg(test)]
    fn check(&self) {
        self.tree.check_invariants();
        assert_eq!(self.tree.len(), self.positions.len());
    }
}

impl CentralEngine for ObjectIndexEngine {
    fn name(&self) -> &'static str {
        "object-index"
    }

    fn register_object(&mut self, oid: ObjectId, props: Properties) {
        self.props.insert(oid, props);
    }

    fn install_query(&mut self, def: QueryDef) {
        self.results.insert(def.qid, BTreeSet::new());
        self.queries.insert(def.qid, def);
    }

    fn remove_query(&mut self, qid: QueryId) -> bool {
        self.results.remove(&qid);
        self.queries.remove(&qid).is_some()
    }

    fn tick(&mut self, reports: &[ObjectReport], _t: f64) {
        // 1. Index maintenance: delete + reinsert every reported position.
        for r in reports {
            match self.positions.insert(r.oid, r.pos) {
                Some(old) if old == r.pos => {} // did not move: index untouched
                Some(old) => {
                    self.tree
                        .update(&Rect::from_point(old), Rect::from_point(r.pos), r.oid);
                }
                None => self.tree.insert(Rect::from_point(r.pos), r.oid),
            }
        }
        // 2. Periodic evaluation of every query against the object index.
        let empty = Properties::new();
        for (qid, def) in &self.queries {
            let result = self.results.get_mut(qid).expect("result set exists");
            result.clear();
            let Some(&center) = self.positions.get(&def.focal) else {
                continue;
            };
            let window = def.region.bbox_from(center);
            self.tree.for_each_intersecting(&window, |_, &oid| {
                let pos = self.positions[&oid];
                if def.region.contains_from(center, pos)
                    && def
                        .filter
                        .matches(oid, self.props.get(&oid).unwrap_or(&empty))
                {
                    result.insert(oid);
                }
            });
        }
    }

    fn result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.results.get(&qid)
    }

    fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceEngine;
    use mobieyes_core::Filter;
    use mobieyes_geo::{QueryRegion, Vec2};
    use std::sync::Arc;

    fn report(oid: u32, x: f64, y: f64) -> ObjectReport {
        ObjectReport {
            oid: ObjectId(oid),
            pos: Point::new(x, y),
            vel: Vec2::ZERO,
            tm: 0.0,
        }
    }

    fn def(qid: u32, focal: u32, r: f64) -> QueryDef {
        QueryDef {
            qid: QueryId(qid),
            focal: ObjectId(focal),
            region: QueryRegion::circle(r),
            filter: Arc::new(Filter::True),
        }
    }

    /// Deterministic pseudo-random stream.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64) / ((1u64 << 31) as f64)
    }

    #[test]
    fn matches_brute_force_over_random_motion() {
        let mut oi = ObjectIndexEngine::new();
        let mut bf = BruteForceEngine::new();
        let n = 120u32;
        for i in 0..n {
            oi.register_object(ObjectId(i), Properties::new());
            bf.register_object(ObjectId(i), Properties::new());
        }
        for q in 0..10u32 {
            oi.install_query(def(q, q * 11, 8.0));
            bf.install_query(def(q, q * 11, 8.0));
        }
        let mut seed = 7u64;
        let mut positions: Vec<Point> = (0..n)
            .map(|_| Point::new(lcg(&mut seed) * 100.0, lcg(&mut seed) * 100.0))
            .collect();
        for step in 0..10 {
            for p in positions.iter_mut() {
                p.x = (p.x + (lcg(&mut seed) - 0.5) * 10.0).clamp(0.0, 100.0);
                p.y = (p.y + (lcg(&mut seed) - 0.5) * 10.0).clamp(0.0, 100.0);
            }
            let reports: Vec<ObjectReport> = positions
                .iter()
                .enumerate()
                .map(|(i, p)| report(i as u32, p.x, p.y))
                .collect();
            oi.tick(&reports, step as f64);
            bf.tick(&reports, step as f64);
            oi.check();
            for q in 0..10u32 {
                assert_eq!(
                    oi.result(QueryId(q)).unwrap(),
                    bf.result(QueryId(q)).unwrap(),
                    "step {step}, query {q}"
                );
            }
        }
    }

    #[test]
    fn unmoved_objects_do_not_touch_index() {
        let mut oi = ObjectIndexEngine::new();
        oi.register_object(ObjectId(0), Properties::new());
        oi.tick(&[report(0, 5.0, 5.0)], 0.0);
        assert_eq!(oi.indexed_objects(), 1);
        // Same position again: no index churn (still one entry, valid tree).
        oi.tick(&[report(0, 5.0, 5.0)], 1.0);
        assert_eq!(oi.indexed_objects(), 1);
        oi.check();
    }

    #[test]
    fn k_nearest_returns_closest_matching_objects() {
        let mut oi = ObjectIndexEngine::new();
        for i in 0..50u32 {
            let props = if i % 2 == 0 {
                Properties::new().with("kind", "taxi")
            } else {
                Properties::new()
            };
            oi.register_object(ObjectId(i), props);
        }
        let reports: Vec<ObjectReport> = (0..50).map(|i| report(i, i as f64, 0.0)).collect();
        oi.tick(&reports, 0.0);
        // Nearest 3 to x=10.2: objects 10, 11, 9 (dist 0.2, 0.8, 1.2).
        let all = oi.k_nearest(Point::new(10.2, 0.0), 3, &Filter::True);
        assert_eq!(
            all.iter().map(|&(o, _)| o.0).collect::<Vec<_>>(),
            vec![10, 11, 9]
        );
        // Taxi-only: evens 10, 12, 8.
        let taxis = oi.k_nearest(
            Point::new(10.2, 0.0),
            3,
            &Filter::Eq("kind".into(), "taxi".into()),
        );
        assert_eq!(
            taxis.iter().map(|&(o, _)| o.0).collect::<Vec<_>>(),
            vec![10, 12, 8]
        );
        // k larger than matches returns all matches.
        let many = oi.k_nearest(
            Point::new(0.0, 0.0),
            100,
            &Filter::Eq("kind".into(), "taxi".into()),
        );
        assert_eq!(many.len(), 25);
        // Distances ascend.
        for w in many.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn filters_apply() {
        let mut oi = ObjectIndexEngine::new();
        oi.register_object(ObjectId(0), Properties::new());
        oi.register_object(ObjectId(1), Properties::new().with("kind", "taxi"));
        oi.register_object(ObjectId(2), Properties::new().with("kind", "bus"));
        let mut d = def(0, 0, 10.0);
        d.filter = Arc::new(Filter::Eq("kind".into(), "taxi".into()));
        oi.install_query(d);
        oi.tick(
            &[
                report(0, 0.0, 0.0),
                report(1, 1.0, 1.0),
                report(2, 2.0, 2.0),
            ],
            0.0,
        );
        let r = oi.result(QueryId(0)).unwrap();
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![ObjectId(1)]);
    }
}
