//! Shared types for the centralized engines.

use mobieyes_core::{Filter, ObjectId, Properties, QueryId};
use mobieyes_geo::{Point, QueryRegion, Vec2};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A per-tick object position report, the input stream of every
/// centralized engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectReport {
    pub oid: ObjectId,
    pub pos: Point,
    pub vel: Vec2,
    pub tm: f64,
}

/// A moving-query definition as the central server sees it.
#[derive(Debug, Clone)]
pub struct QueryDef {
    pub qid: QueryId,
    pub focal: ObjectId,
    pub region: QueryRegion,
    pub filter: Arc<Filter>,
}

/// The interface every centralized engine implements; the simulation
/// harness drives them all with identical workloads so server-load and
/// accuracy comparisons are paired.
pub trait CentralEngine {
    fn name(&self) -> &'static str;

    /// Registers a moving object's static properties (needed for filter
    /// evaluation). Must be called before the object appears in reports.
    fn register_object(&mut self, oid: ObjectId, props: Properties);

    fn install_query(&mut self, def: QueryDef);

    fn remove_query(&mut self, qid: QueryId) -> bool;

    /// Processes one tick's position reports and refreshes query results.
    fn tick(&mut self, reports: &[ObjectReport], t: f64);

    /// Current result set of a query.
    fn result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>>;

    fn num_queries(&self) -> usize;
}
