//! Exact nested-loop engine: the correctness oracle.

use crate::types::{CentralEngine, ObjectReport, QueryDef};
use mobieyes_core::{ObjectId, Properties, QueryId};
use mobieyes_geo::{Point, Region};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Evaluates every query against every object, exactly, each tick. O(n·q)
/// per tick — only viable for tests and small scenes, but unarguably
/// correct, which is what an oracle is for.
#[derive(Debug, Default)]
pub struct BruteForceEngine {
    props: HashMap<ObjectId, Properties>,
    positions: HashMap<ObjectId, Point>,
    queries: BTreeMap<QueryId, QueryDef>,
    results: BTreeMap<QueryId, BTreeSet<ObjectId>>,
}

impl BruteForceEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Last ingested position of an object.
    pub fn position_of(&self, oid: ObjectId) -> Option<Point> {
        self.positions.get(&oid).copied()
    }
}

impl CentralEngine for BruteForceEngine {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn register_object(&mut self, oid: ObjectId, props: Properties) {
        self.props.insert(oid, props);
    }

    fn install_query(&mut self, def: QueryDef) {
        self.results.insert(def.qid, BTreeSet::new());
        self.queries.insert(def.qid, def);
    }

    fn remove_query(&mut self, qid: QueryId) -> bool {
        self.results.remove(&qid);
        self.queries.remove(&qid).is_some()
    }

    fn tick(&mut self, reports: &[ObjectReport], _t: f64) {
        for r in reports {
            self.positions.insert(r.oid, r.pos);
        }
        let empty = Properties::new();
        for (qid, def) in &self.queries {
            let result = self.results.get_mut(qid).expect("result set exists");
            result.clear();
            let Some(&center) = self.positions.get(&def.focal) else {
                continue; // Focal object never reported: empty result.
            };
            for (&oid, &pos) in &self.positions {
                if def.region.contains_from(center, pos)
                    && def
                        .filter
                        .matches(oid, self.props.get(&oid).unwrap_or(&empty))
                {
                    result.insert(oid);
                }
            }
        }
    }

    fn result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.results.get(&qid)
    }

    fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_core::Filter;
    use mobieyes_geo::{QueryRegion, Vec2};
    use std::sync::Arc;

    fn report(oid: u32, x: f64, y: f64) -> ObjectReport {
        ObjectReport {
            oid: ObjectId(oid),
            pos: Point::new(x, y),
            vel: Vec2::ZERO,
            tm: 0.0,
        }
    }

    fn def(qid: u32, focal: u32, r: f64) -> QueryDef {
        QueryDef {
            qid: QueryId(qid),
            focal: ObjectId(focal),
            region: QueryRegion::circle(r),
            filter: Arc::new(Filter::True),
        }
    }

    #[test]
    fn finds_objects_inside_moving_circle() {
        let mut e = BruteForceEngine::new();
        for i in 0..5 {
            e.register_object(ObjectId(i), Properties::new());
        }
        e.install_query(def(0, 0, 2.0));
        e.tick(
            &[
                report(0, 0.0, 0.0),
                report(1, 1.0, 0.0),
                report(2, 5.0, 0.0),
            ],
            0.0,
        );
        let r = e.result(QueryId(0)).unwrap();
        assert!(r.contains(&ObjectId(1)));
        assert!(!r.contains(&ObjectId(2)));
        // The focal object itself is inside its own region.
        assert!(r.contains(&ObjectId(0)));
        // The query moves with the focal object.
        e.tick(&[report(0, 5.0, 0.0)], 1.0);
        let r = e.result(QueryId(0)).unwrap();
        assert!(r.contains(&ObjectId(2)));
        assert!(!r.contains(&ObjectId(1)));
    }

    #[test]
    fn filter_restricts_results() {
        let mut e = BruteForceEngine::new();
        e.register_object(ObjectId(0), Properties::new());
        e.register_object(ObjectId(1), Properties::new().with("color", "red"));
        e.register_object(ObjectId(2), Properties::new().with("color", "blue"));
        let mut d = def(0, 0, 10.0);
        d.filter = Arc::new(Filter::Eq("color".into(), "red".into()));
        e.install_query(d);
        e.tick(
            &[
                report(0, 0.0, 0.0),
                report(1, 1.0, 0.0),
                report(2, 1.0, 1.0),
            ],
            0.0,
        );
        let r = e.result(QueryId(0)).unwrap();
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![ObjectId(1)]);
    }

    #[test]
    fn missing_focal_gives_empty_result() {
        let mut e = BruteForceEngine::new();
        e.register_object(ObjectId(1), Properties::new());
        e.install_query(def(0, 99, 10.0));
        e.tick(&[report(1, 0.0, 0.0)], 0.0);
        assert!(e.result(QueryId(0)).unwrap().is_empty());
    }

    #[test]
    fn remove_query() {
        let mut e = BruteForceEngine::new();
        e.install_query(def(0, 0, 1.0));
        assert_eq!(e.num_queries(), 1);
        assert!(e.remove_query(QueryId(0)));
        assert!(!e.remove_query(QueryId(0)));
        assert_eq!(e.num_queries(), 0);
        assert!(e.result(QueryId(0)).is_none());
    }
}
