//! Centralized baselines the paper compares MobiEyes against (§5.2–5.3).
//!
//! All three engines answer the same moving-query workload as the
//! distributed protocol, but at a central server fed with per-tick object
//! position reports:
//!
//! - [`ObjectIndexEngine`]: an R*-tree over object positions, updated on
//!   every report; all queries are re-evaluated against the index
//!   periodically (the paper's *indexing objects* approach).
//! - [`QueryIndexEngine`]: an R*-tree over query bounding boxes, updated
//!   when focal objects move; each incoming object position is run through
//!   the index and the results are maintained differentially (the paper's
//!   *indexing queries* approach).
//! - [`BruteForceEngine`]: no index at all — exact nested-loop evaluation.
//!   It doubles as the ground-truth oracle in tests.
//!
//! The *naive* and *central optimal* baselines of the messaging-cost
//! experiments differ only in what objects send (positions every tick vs
//! dead-reckoned velocity updates), not in server data structures; their
//! message accounting lives in `mobieyes-sim`.

pub mod brute;
pub mod object_index;
pub mod query_index;
pub mod types;

pub use brute::BruteForceEngine;
pub use object_index::ObjectIndexEngine;
pub use query_index::QueryIndexEngine;
pub use types::{CentralEngine, ObjectReport, QueryDef};
