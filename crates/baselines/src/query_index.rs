//! The *indexing queries* centralized baseline (paper §5.2).
//!
//! "In this approach a spatial index ... is built over moving queries. As
//! the new positions of the focal objects of the queries are received, the
//! spatial index is updated. ... When a new object position is received, it
//! is run through the query index to determine to which queries this object
//! actually contributes. Then the object is added to the results of these
//! queries, and is removed from the results of other queries that have
//! included it as a target object before."
//!
//! Its dominant cost scales with the number of *focal* position changes
//! (index updates), so it beats the object index for few queries and loses
//! ground as the query count grows — the crossover Figure 1 shows.

use crate::types::{CentralEngine, ObjectReport, QueryDef};
use mobieyes_core::{ObjectId, Properties, QueryId};
use mobieyes_geo::{Point, Rect, Region};
use mobieyes_rstar::RStarTree;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// R*-tree over query bounding boxes; differential result maintenance.
#[derive(Debug, Default)]
pub struct QueryIndexEngine {
    tree: RStarTree<QueryId>,
    /// Rectangle currently stored in the tree for each query.
    rects: HashMap<QueryId, Rect>,
    queries: BTreeMap<QueryId, QueryDef>,
    /// Queries per focal object (to find index entries to move).
    by_focal: HashMap<ObjectId, Vec<QueryId>>,
    /// Last known positions of all reporting objects (the central server
    /// sees every position anyway; focal lookups read from here).
    focal_pos: HashMap<ObjectId, Point>,
    /// Queries each object currently belongs to (for differential update).
    memberships: HashMap<ObjectId, BTreeSet<QueryId>>,
    props: HashMap<ObjectId, Properties>,
    results: BTreeMap<QueryId, BTreeSet<ObjectId>>,
}

impl QueryIndexEngine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn indexed_queries(&self) -> usize {
        self.tree.len()
    }

    #[cfg(test)]
    fn check(&self) {
        self.tree.check_invariants();
        assert_eq!(self.tree.len(), self.rects.len());
    }

    /// (Re)positions a query's rectangle in the index for a focal position.
    fn place_query(&mut self, qid: QueryId, center: Point) {
        let def = &self.queries[&qid];
        let rect = def.region.bbox_from(center);
        match self.rects.insert(qid, rect) {
            Some(old) if old == rect => {}
            Some(old) => {
                self.tree.update(&old, rect, qid);
            }
            None => self.tree.insert(rect, qid),
        }
    }
}

impl CentralEngine for QueryIndexEngine {
    fn name(&self) -> &'static str {
        "query-index"
    }

    fn register_object(&mut self, oid: ObjectId, props: Properties) {
        self.props.insert(oid, props);
    }

    fn install_query(&mut self, def: QueryDef) {
        let qid = def.qid;
        let focal = def.focal;
        self.results.insert(qid, BTreeSet::new());
        self.by_focal.entry(focal).or_default().push(qid);
        self.queries.insert(qid, def);
        if let Some(&pos) = self.focal_pos.get(&focal) {
            self.place_query(qid, pos);
        }
    }

    fn remove_query(&mut self, qid: QueryId) -> bool {
        let Some(def) = self.queries.remove(&qid) else {
            return false;
        };
        if let Some(rect) = self.rects.remove(&qid) {
            self.tree.remove(&rect, &qid);
        }
        if let Some(v) = self.by_focal.get_mut(&def.focal) {
            v.retain(|&q| q != qid);
            if v.is_empty() {
                self.by_focal.remove(&def.focal);
            }
        }
        self.results.remove(&qid);
        for m in self.memberships.values_mut() {
            m.remove(&qid);
        }
        true
    }

    fn tick(&mut self, reports: &[ObjectReport], _t: f64) {
        // 1. Record positions and move query rectangles for focal objects.
        for r in reports {
            self.focal_pos.insert(r.oid, r.pos);
            if self.by_focal.contains_key(&r.oid) {
                let qids = self.by_focal[&r.oid].clone();
                for qid in qids {
                    self.place_query(qid, r.pos);
                }
            }
        }
        // 2. Run every reported object position through the query index and
        // update memberships differentially.
        let empty = Properties::new();
        for r in reports {
            let mut now: BTreeSet<QueryId> = BTreeSet::new();
            self.tree
                .for_each_intersecting(&Rect::from_point(r.pos), |_, &qid| {
                    let def = &self.queries[&qid];
                    let center = self.focal_pos[&def.focal];
                    if def.region.contains_from(center, r.pos)
                        && def
                            .filter
                            .matches(r.oid, self.props.get(&r.oid).unwrap_or(&empty))
                    {
                        now.insert(qid);
                    }
                });
            let before = self.memberships.entry(r.oid).or_default();
            for &qid in now.difference(before) {
                self.results
                    .get_mut(&qid)
                    .expect("live query")
                    .insert(r.oid);
            }
            for &qid in before.difference(&now) {
                if let Some(res) = self.results.get_mut(&qid) {
                    res.remove(&r.oid);
                }
            }
            *before = now;
        }
    }

    fn result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.results.get(&qid)
    }

    fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceEngine;
    use mobieyes_core::Filter;
    use mobieyes_geo::{QueryRegion, Vec2};
    use std::sync::Arc;

    fn report(oid: u32, x: f64, y: f64) -> ObjectReport {
        ObjectReport {
            oid: ObjectId(oid),
            pos: Point::new(x, y),
            vel: Vec2::ZERO,
            tm: 0.0,
        }
    }

    fn def(qid: u32, focal: u32, r: f64) -> QueryDef {
        QueryDef {
            qid: QueryId(qid),
            focal: ObjectId(focal),
            region: QueryRegion::circle(r),
            filter: Arc::new(Filter::True),
        }
    }

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64) / ((1u64 << 31) as f64)
    }

    #[test]
    fn matches_brute_force_over_random_motion() {
        let mut qi = QueryIndexEngine::new();
        let mut bf = BruteForceEngine::new();
        let n = 120u32;
        for i in 0..n {
            qi.register_object(ObjectId(i), Properties::new());
            bf.register_object(ObjectId(i), Properties::new());
        }
        for q in 0..10u32 {
            qi.install_query(def(q, q * 11, 8.0));
            bf.install_query(def(q, q * 11, 8.0));
        }
        let mut seed = 99u64;
        let mut positions: Vec<Point> = (0..n)
            .map(|_| Point::new(lcg(&mut seed) * 100.0, lcg(&mut seed) * 100.0))
            .collect();
        for step in 0..10 {
            for p in positions.iter_mut() {
                p.x = (p.x + (lcg(&mut seed) - 0.5) * 10.0).clamp(0.0, 100.0);
                p.y = (p.y + (lcg(&mut seed) - 0.5) * 10.0).clamp(0.0, 100.0);
            }
            let reports: Vec<ObjectReport> = positions
                .iter()
                .enumerate()
                .map(|(i, p)| report(i as u32, p.x, p.y))
                .collect();
            qi.tick(&reports, step as f64);
            bf.tick(&reports, step as f64);
            qi.check();
            for q in 0..10u32 {
                assert_eq!(
                    qi.result(QueryId(q)).unwrap(),
                    bf.result(QueryId(q)).unwrap(),
                    "step {step}, query {q}"
                );
            }
        }
    }

    #[test]
    fn differential_membership_updates() {
        let mut qi = QueryIndexEngine::new();
        for i in 0..3 {
            qi.register_object(ObjectId(i), Properties::new());
        }
        qi.install_query(def(0, 0, 2.0));
        qi.tick(
            &[
                report(0, 0.0, 0.0),
                report(1, 1.0, 0.0),
                report(2, 9.0, 0.0),
            ],
            0.0,
        );
        assert!(qi.result(QueryId(0)).unwrap().contains(&ObjectId(1)));
        assert!(!qi.result(QueryId(0)).unwrap().contains(&ObjectId(2)));
        // Object 1 leaves, object 2 enters.
        qi.tick(&[report(1, 20.0, 0.0), report(2, 1.0, 0.0)], 1.0);
        assert!(!qi.result(QueryId(0)).unwrap().contains(&ObjectId(1)));
        assert!(qi.result(QueryId(0)).unwrap().contains(&ObjectId(2)));
    }

    #[test]
    fn query_follows_focal_between_ticks() {
        let mut qi = QueryIndexEngine::new();
        for i in 0..2 {
            qi.register_object(ObjectId(i), Properties::new());
        }
        qi.install_query(def(0, 0, 2.0));
        qi.tick(&[report(0, 0.0, 0.0), report(1, 50.0, 0.0)], 0.0);
        assert!(!qi.result(QueryId(0)).unwrap().contains(&ObjectId(1)));
        // Focal jumps next to object 1.
        qi.tick(&[report(0, 49.0, 0.0), report(1, 50.0, 0.0)], 1.0);
        assert!(qi.result(QueryId(0)).unwrap().contains(&ObjectId(1)));
        qi.check();
    }

    #[test]
    fn remove_query_cleans_index_and_memberships() {
        let mut qi = QueryIndexEngine::new();
        qi.register_object(ObjectId(0), Properties::new());
        qi.register_object(ObjectId(1), Properties::new());
        qi.install_query(def(0, 0, 5.0));
        qi.tick(&[report(0, 0.0, 0.0), report(1, 1.0, 0.0)], 0.0);
        assert_eq!(qi.indexed_queries(), 1);
        assert!(qi.remove_query(QueryId(0)));
        assert_eq!(qi.indexed_queries(), 0);
        assert!(qi.result(QueryId(0)).is_none());
        // A later tick must not panic on stale memberships.
        qi.tick(&[report(1, 2.0, 0.0)], 1.0);
        qi.check();
    }

    #[test]
    fn install_after_focal_known_places_rect_immediately() {
        let mut qi = QueryIndexEngine::new();
        qi.register_object(ObjectId(0), Properties::new());
        qi.register_object(ObjectId(1), Properties::new());
        qi.tick(&[report(0, 10.0, 10.0), report(1, 11.0, 10.0)], 0.0);
        qi.install_query(def(0, 0, 3.0));
        assert_eq!(qi.indexed_queries(), 1);
        // Next tick the nearby object joins the result.
        qi.tick(&[report(1, 11.0, 10.0)], 1.0);
        assert!(qi.result(QueryId(0)).unwrap().contains(&ObjectId(1)));
    }
}
