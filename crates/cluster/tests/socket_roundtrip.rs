//! Loopback socket round-trips for the cluster bus.
//!
//! Every [`ClusterMsg`] variant (populated and edge-case-empty) rides a
//! real kernel socket — both families — inside an [`Envelope`] and must
//! come back bit-identical, with the transport's in-flight accounting
//! returning exactly the frames sent. A separate case dribbles frames
//! across arbitrary write boundaries to prove reassembly does not depend
//! on read alignment.

use mobieyes_cluster::Envelope;
use mobieyes_core::{ClusterMsg, Filter, ObjectId, QueryId, QueryMigration, QuerySpec, StubSeed};
use mobieyes_geo::{CellId, GridRect, LinearMotion, Point, QueryRegion, Vec2};
use mobieyes_net::{Endpoint, FramedConn, Listener, NodeId, SocketTransport, Transport};
use std::sync::Arc;

fn motion() -> LinearMotion {
    LinearMotion::new(Point::new(1.5, 2.5), Vec2::new(0.1, -0.2), 30.0)
}

fn spec(qid: u32) -> QuerySpec {
    QuerySpec {
        qid: QueryId(qid),
        region: QueryRegion::circle(2.5),
        filter: Arc::new(Filter::Gt("speed".into(), 1.5)),
        slot: 3,
        seq: 21,
    }
}

fn mon() -> GridRect {
    GridRect {
        x0: 2,
        y0: 3,
        x1: 5,
        y1: 6,
    }
}

/// One sample per variant shape: populated and boundary-empty forms.
fn sample_msgs() -> Vec<ClusterMsg> {
    vec![
        ClusterMsg::MigrateFocal {
            oid: ObjectId(9),
            motion: motion(),
            max_vel: 0.04,
            used_slots: 0b1001,
            last_heard: 120.0,
            epoch: 33,
            queries: vec![
                QueryMigration {
                    spec: spec(5),
                    curr_cell: CellId::new(3, 4),
                    mon_region: mon(),
                    expires_at: Some(600.0),
                    result: vec![ObjectId(1), ObjectId(2), ObjectId(8)],
                },
                QueryMigration {
                    spec: spec(6),
                    curr_cell: CellId::new(3, 4),
                    mon_region: mon(),
                    expires_at: None,
                    result: vec![],
                },
            ],
        },
        ClusterMsg::MigrateFocal {
            oid: ObjectId(10),
            motion: motion(),
            max_vel: 0.01,
            used_slots: 0,
            last_heard: 0.0,
            epoch: 1,
            queries: vec![],
        },
        ClusterMsg::StubUpdate {
            focal: ObjectId(9),
            motion: motion(),
            max_vel: 0.04,
            curr_cell: CellId::new(3, 4),
            mon_region: mon(),
            old_mon: Some(GridRect {
                x0: 1,
                y0: 2,
                x1: 4,
                y1: 5,
            }),
            spec: spec(5),
        },
        ClusterMsg::StubUpdate {
            focal: ObjectId(9),
            motion: motion(),
            max_vel: 0.04,
            curr_cell: CellId::new(3, 4),
            mon_region: mon(),
            old_mon: None,
            spec: spec(5),
        },
        ClusterMsg::StubMotion {
            focal: ObjectId(9),
            motion: motion(),
            max_vel: 0.04,
            qids: vec![(QueryId(5), 22), (QueryId(6), 22)],
        },
        ClusterMsg::StubMotion {
            focal: ObjectId(9),
            motion: motion(),
            max_vel: 0.04,
            qids: vec![],
        },
        ClusterMsg::StubRemove {
            qid: QueryId(5),
            mon_region: mon(),
            epoch: 40,
        },
        ClusterMsg::RebalanceCells {
            generation: 3,
            epoch: 44,
            cells: vec![
                (17, vec![QueryId(5), QueryId(6)]),
                (18, vec![]),
                (19, vec![QueryId(6)]),
            ],
            stubs: vec![StubSeed {
                focal: ObjectId(9),
                motion: motion(),
                max_vel: 0.04,
                mon_region: mon(),
                spec: spec(6),
            }],
        },
        ClusterMsg::RebalanceCells {
            generation: 1,
            epoch: 2,
            cells: vec![],
            stubs: vec![],
        },
    ]
}

/// Sends every sample through `bus` and asserts the poll returns each
/// frame once, in order, bit-identical, addressed as sent.
fn roundtrip_all(mut bus: SocketTransport<Envelope>) {
    let samples = sample_msgs();
    for (i, msg) in samples.iter().enumerate() {
        bus.send(
            NodeId(i as u32),
            Envelope {
                to: (i as u32) % 4,
                msg: msg.clone(),
            },
        )
        .expect("send");
    }
    bus.flush().expect("flush");
    let received = bus.poll().expect("poll");
    assert_eq!(received.len(), samples.len(), "every frame comes back");
    for (i, (from, envelope)) in received.iter().enumerate() {
        assert_eq!(from.0, i as u32, "sender id survives the wire");
        assert_eq!(envelope.to, (i as u32) % 4, "destination survives");
        assert_eq!(&envelope.msg, &samples[i], "payload {i} survives");
    }
    // A drained bus polls empty (in-flight accounting reached zero).
    assert!(bus.poll().expect("empty poll").is_empty());
}

#[test]
fn every_cluster_msg_roundtrips_over_tcp() {
    roundtrip_all(SocketTransport::loopback_tcp().expect("tcp pair"));
}

#[test]
fn every_cluster_msg_roundtrips_over_uds() {
    let path = std::env::temp_dir().join(format!("mobieyes-rt-{}.sock", std::process::id()));
    roundtrip_all(SocketTransport::loopback_uds(&path).expect("uds pair"));
}

/// splitmix64: deterministic chunk sizes for the dribble test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Frames written in 1–7 byte dribbles (each its own syscall, flushed)
/// must reassemble exactly: the reader's buffer, not the kernel's read
/// boundaries, defines the frame.
#[test]
fn frames_reassemble_across_split_writes() {
    use std::io::Write;

    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
    let endpoint = listener.local_endpoint().expect("endpoint");
    let samples = sample_msgs();
    let payloads: Vec<Vec<u8>> = samples
        .iter()
        .enumerate()
        .map(|(i, msg)| {
            use mobieyes_net::Frame;
            let mut body = Vec::new();
            Envelope {
                to: i as u32,
                msg: msg.clone(),
            }
            .encode_frame(&mut body);
            body
        })
        .collect();

    let writer = std::thread::spawn({
        let payloads = payloads.clone();
        move || {
            let mut stream = endpoint.connect().expect("connect");
            // Raw wire bytes: [len u32 LE][payload], all frames back to
            // back, emitted in deterministic random-sized dribbles.
            let mut wire = Vec::new();
            for p in &payloads {
                wire.extend_from_slice(&(p.len() as u32).to_le_bytes());
                wire.extend_from_slice(p);
            }
            let mut rng = Rng(0xD1B);
            let mut off = 0;
            while off < wire.len() {
                let n = (1 + (rng.next() % 7) as usize).min(wire.len() - off);
                stream.write_all(&wire[off..off + n]).expect("write");
                stream.flush().expect("flush");
                off += n;
            }
            // Keep the socket open until the reader is done.
            stream
        }
    });

    let mut conn = FramedConn::new(listener.accept().expect("accept"));
    for (i, expected) in payloads.iter().enumerate() {
        let frame = conn.read_frame().expect("read_frame");
        assert_eq!(&frame, expected, "frame {i} reassembles bit-identically");
    }
    drop(writer.join().expect("writer thread"));
}
