//! Grid-sharded MobiEyes server tier.
//!
//! Splits the α-grid into contiguous blocks of cells owned by independent
//! partition servers, routes each agent uplink to the partition owning the
//! sender's cell, and runs an inter-server handoff protocol (focal-object
//! migration + remote-region stubs) over a deterministic, fault-injectable
//! message bus so that an N-partition deployment produces byte-identical
//! query results and telemetry to the single-server protocol.

pub mod cluster_server;
pub mod partition;

pub use cluster_server::{Bus, ClusterServer, Envelope};
pub use partition::{plan_bounds, PartitionMap, Router};
