//! Grid-sharded MobiEyes server tier.
//!
//! Splits the α-grid into contiguous blocks of cells owned by independent
//! partition servers, routes each agent uplink to the partition owning the
//! sender's cell, and runs an inter-server handoff protocol (focal-object
//! migration + remote-region stubs) over a deterministic, fault-injectable
//! message bus so that an N-partition deployment produces byte-identical
//! query results and telemetry to the single-server protocol.

pub mod cluster_server;
pub mod handle;
pub mod partition;
pub mod serve;
pub mod wire;

#[allow(deprecated)]
pub use cluster_server::Bus;
pub use cluster_server::{skip_reason, ClusterServer, Envelope};
pub use handle::{PartitionHandle, RemotePartition};
pub use partition::{plan_bounds, PartitionMap, Router};
pub use serve::{serve_connection, serve_partition};
pub use wire::{InitConfig, NetAction, PartitionOp, PartitionReply, ReplyPayload};
