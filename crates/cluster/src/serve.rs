//! The partition-process service loop: one [`Server`] behind the
//! [`wire`](crate::wire) RPC protocol.
//!
//! A partition process accepts exactly one coordinator connection, then
//! executes strictly-serialized [`PartitionOp`]s until
//! [`Shutdown`](PartitionOp::Shutdown). Per request it:
//!
//! 1. raises its local epoch to the request's floor (`fetch_max`), so the
//!    distributed epoch behaves exactly like the shared atomic counter of
//!    the in-process deployment;
//! 2. executes the op against the `Server` and a *partition-local* agent
//!    network built from the same deterministic base-station layout the
//!    coordinator uses — so broadcast cover sets resolve identically;
//! 3. replies with the post-op epoch, the drained inter-server outbox,
//!    every downlink the op emitted (as [`NetAction`]s the coordinator
//!    replays onto the real network) and the op's return value.
//!
//! The service is deliberately synchronous and single-connection: the
//! coordinator's decomposition depends on one-op-at-a-time execution, and
//! the process model (one partition per process) is the unit of scaling.

use crate::partition::PartitionMap;
use crate::wire::{self, InitConfig, NetAction, PartitionOp, PartitionReply, ReplyPayload};
use mobieyes_core::server::Net;
use mobieyes_core::{LogRecord, PartitionScope, ProtocolConfig, Server};
use mobieyes_net::{BaseStationLayout, FramedConn, Listener, TransportError};
use mobieyes_store::{self as store, Store, StoreConfig};
use mobieyes_telemetry::Telemetry;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The configured state of a running partition service.
struct ServiceState {
    server: Server,
    /// Partition-local downlink capture network; never delivers to an
    /// agent, only queues so the service can ship the actions back.
    net: Net,
    /// This process's shard of the distributed epoch.
    epoch: Arc<AtomicU64>,
    /// This process's copy of the cell-ownership table. Starts as the
    /// contiguous default and tracks the coordinator's table through
    /// [`PartitionOp::InstallBounds`] after rebalance/failover fences.
    map: PartitionMap,
    /// The partition's durable input journal, when the deployment runs
    /// with a `--store-dir`. Opened (and replayed) before the first op.
    store: Option<Store>,
}

impl ServiceState {
    fn build(init: &InitConfig) -> ServiceState {
        let grid = mobieyes_geo::Grid::new(init.universe, init.alpha);
        let mut config = ProtocolConfig::new(grid);
        config.delta = init.delta;
        config.propagation = init.propagation;
        config.grouping = init.grouping;
        config.safe_period = init.safe_period;
        config.deliver_results = init.deliver_results;
        config.system_max_speed = init.system_max_speed;
        config.lease_secs = init.lease_secs;
        config.heartbeat_secs = init.heartbeat_secs;
        let config = Arc::new(config);
        let map = PartitionMap::contiguous(&config.grid, init.num_partitions as usize);
        let epoch = Arc::new(AtomicU64::new(0));
        let telemetry = Telemetry::new();
        let mut server = Server::new(Arc::clone(&config))
            .with_telemetry(telemetry.clone())
            .with_scope(PartitionScope::new(
                init.partition,
                Arc::clone(map.table()),
                Arc::clone(&epoch),
            ));
        let mut net = Net::new(BaseStationLayout::new(init.universe, init.alen));
        let store = init.store_dir.as_ref().map(|dir| {
            let dir = Path::new(dir);
            if init.store_fresh {
                // Post-failover respawn: the survivors own this span's
                // state now; replaying the stale journal would fork it.
                store::wipe_dir(dir)
                    .unwrap_or_else(|e| panic!("wiping stale store {}: {e}", dir.display()));
            }
            let store = Store::open(StoreConfig::new(dir, init.partition), telemetry.clone())
                .unwrap_or_else(|e| panic!("opening store {}: {e}", dir.display()));
            // Crash recovery: rebuild FOT/SQT/RQI by replaying the journal
            // into the fresh server. The replay re-emits the historical
            // downlinks and bus envelopes; those were already delivered in
            // the previous life, so they are discarded — only state stays.
            let summary =
                store::replay_into(dir, init.partition, &mut server, &mut net, &telemetry)
                    .unwrap_or_else(|e| panic!("replaying store {}: {e}", dir.display()));
            if summary.records_applied > 0 {
                net.take_downlinks();
                server.take_outbox();
            }
            if store.next_seq() == 0 {
                store.append_record(&LogRecord::Meta {
                    partition: init.partition,
                    num_partitions: init.num_partitions,
                });
            }
            // Attach AFTER replay so replayed ops do not re-journal.
            server.set_journal(Some(Arc::new(store.clone())));
            store
        });
        ServiceState {
            server,
            net,
            epoch,
            map,
            store,
        }
    }

    /// Drains the downlinks the last op queued on the local network into
    /// replayable actions, preserving emission order within each kind.
    fn drain_net_actions(&mut self) -> Vec<NetAction> {
        let (unicasts, broadcasts) = self.net.take_downlinks();
        let mut actions = Vec::with_capacity(unicasts.len() + broadcasts.len());
        for (node, msg, _) in unicasts {
            actions.push(NetAction::Unicast {
                node: node.0,
                msg: (*msg).clone(),
            });
        }
        for (station, msg, _) in broadcasts {
            actions.push(NetAction::Broadcast {
                station: station.0,
                msg: (*msg).clone(),
            });
        }
        actions
    }
}

/// Serves one coordinator connection until `Shutdown` or disconnect.
///
/// `conn` must already have completed the hello exchange. Returns `Ok(())`
/// on a clean shutdown, or the transport error that ended the session.
pub fn serve_connection(mut conn: FramedConn) -> Result<(), TransportError> {
    let mut state: Option<ServiceState> = None;
    // Persistent request/reply scratch: the service loop allocates nothing
    // per RPC in steady state.
    let mut request = Vec::new();
    let mut frame = Vec::new();
    loop {
        conn.read_frame_into(&mut request)?;
        let (floor, op) = wire::decode_request(&request)?;
        if let PartitionOp::Shutdown = op {
            let reply = PartitionReply {
                epoch: state
                    .as_ref()
                    .map_or(0, |s| s.epoch.load(Ordering::Relaxed)),
                outbox: Vec::new(),
                net: Vec::new(),
                payload: ReplyPayload::Unit,
            };
            frame.clear();
            wire::encode_reply(&reply, &mut frame);
            conn.write_frame(&frame)?;
            conn.flush()?;
            return Ok(());
        }
        if let PartitionOp::Init(init) = &op {
            state = Some(ServiceState::build(init));
            let reply = PartitionReply {
                epoch: 0,
                outbox: Vec::new(),
                net: Vec::new(),
                payload: ReplyPayload::Unit,
            };
            frame.clear();
            wire::encode_reply(&reply, &mut frame);
            conn.write_frame(&frame)?;
            conn.flush()?;
            continue;
        }
        let Some(s) = state.as_mut() else {
            return Err(TransportError::Protocol(format!("op before Init: {op:?}")));
        };
        s.epoch.fetch_max(floor, Ordering::Relaxed);
        let payload = execute(s, op);
        // Acknowledged implies journaled: push buffered frames to the OS
        // before the reply, so a SIGKILL never loses an op the
        // coordinator saw complete (a buffered write, not an fsync — the
        // page cache survives process death).
        if let Some(st) = &s.store {
            st.flush();
        }
        let reply = PartitionReply {
            epoch: s.epoch.load(Ordering::Relaxed),
            outbox: s.server.take_outbox(),
            net: s.drain_net_actions(),
            payload,
        };
        frame.clear();
        wire::encode_reply(&reply, &mut frame);
        conn.write_frame(&frame)?;
        conn.flush()?;
    }
}

fn execute(s: &mut ServiceState, op: PartitionOp) -> ReplyPayload {
    match op {
        // Handled by the service loop before dispatch.
        PartitionOp::Init(_) | PartitionOp::Shutdown => unreachable!(),
        PartitionOp::SetTime(now) => {
            s.server.set_time(now);
            ReplyPayload::Unit
        }
        PartitionOp::RenewLease(oid) => {
            s.server.renew_lease(oid);
            ReplyPayload::Unit
        }
        PartitionOp::VelocityReport { oid, motion } => {
            s.server.on_velocity_report(oid, motion, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::CellChangeFocal {
            oid,
            new_cell,
            motion,
        } => {
            s.server
                .apply_cell_change_focal(oid, new_cell, motion, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::CellChangeFresh {
            oid,
            prev_cell,
            new_cell,
            motion,
        } => {
            s.server
                .apply_cell_change_fresh(oid, prev_cell, new_cell, motion, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::ResultChange {
            qid,
            oid,
            is_target,
        } => ReplyPayload::Bool(
            s.server
                .apply_result_change(qid, oid, is_target, &mut s.net),
        ),
        PartitionOp::GroupResultUpdate {
            oid,
            focal,
            mask,
            targets,
        } => {
            s.server
                .apply_group_result_update(oid, focal, mask, targets, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::RefreshFocalMotion {
            oid,
            motion,
            max_vel,
            insert,
        } => {
            s.server.refresh_focal_motion(oid, motion, max_vel, insert);
            ReplyPayload::Unit
        }
        PartitionOp::CompleteInstall {
            qid,
            focal,
            region,
            filter,
            expires_at,
        } => {
            s.server
                .complete_install_at(qid, focal, region, filter, expires_at, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::RemoveQuery(qid) => ReplyPayload::Bool(s.server.remove_query(qid, &mut s.net)),
        PartitionOp::ExpiredQueryIds(now) => ReplyPayload::Qids(s.server.expired_query_ids(now)),
        PartitionOp::ExpiredLeases => ReplyPayload::Leases(s.server.expired_leases()),
        PartitionOp::ReinstallInfo(qid) => ReplyPayload::Reinstall(
            s.server
                .reinstall_info(qid)
                .map(|(region, filter, expires_at)| (region, (*filter).clone(), expires_at)),
        ),
        PartitionOp::DigestCells => ReplyPayload::Digests(s.server.digest_cells()),
        PartitionOp::BumpEpoch => ReplyPayload::U64(s.server.bump_epoch_for_coordinator()),
        PartitionOp::CurrentEpoch => ReplyPayload::U64(s.server.current_epoch()),
        PartitionOp::NumQueries => ReplyPayload::U64(s.server.num_queries() as u64),
        PartitionOp::QueryIds => ReplyPayload::Qids(s.server.query_ids().collect()),
        PartitionOp::QueryResult(qid) => ReplyPayload::ResultSet(
            s.server
                .query_result(qid)
                .map(|r| r.iter().copied().collect()),
        ),
        PartitionOp::QueryFocal(qid) => ReplyPayload::OptOid(s.server.query_focal(qid)),
        PartitionOp::HasFocal(oid) => ReplyPayload::Bool(s.server.has_focal(oid)),
        PartitionOp::HasQuery(qid) => ReplyPayload::Bool(s.server.has_query(qid)),
        PartitionOp::FocalMotion(oid) => ReplyPayload::OptMotion(s.server.focal_motion(oid)),
        PartitionOp::FocalQueries(oid) => ReplyPayload::OptQids(s.server.focal_queries(oid)),
        PartitionOp::QueryCell(qid) => ReplyPayload::OptCell(s.server.query_cell(qid)),
        PartitionOp::PurgeObject(oid) => ReplyPayload::Qids(s.server.purge_object(oid)),
        PartitionOp::DeliverResultDelta { qid, oid, entered } => {
            s.server.deliver_result_delta(qid, oid, entered, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::LqtReconcileOne {
            qid,
            oid,
            is_target,
        } => ReplyPayload::Bool(s.server.lqt_reconcile_one(qid, oid, is_target)),
        PartitionOp::FocalReassert(oid) => {
            s.server.focal_reassert(oid, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::CellSyncReply { oid, cell } => {
            s.server.cell_sync_reply(oid, cell, &mut s.net);
            ReplyPayload::Unit
        }
        PartitionOp::ExtractFocal(oid) => ReplyPayload::OptCluster(s.server.extract_focal(oid)),
        PartitionOp::Deliver(msg) => {
            s.server.apply_cluster_msg(&msg);
            ReplyPayload::Unit
        }
        PartitionOp::CheckInvariants => {
            s.server.check_invariants();
            ReplyPayload::Unit
        }
        PartitionOp::InstallBounds { generation, bounds } => {
            // Ownership changes shape every later op; journal them so a
            // replay resolves cells against the same table history.
            if let Some(store) = &s.store {
                store.append_record(&LogRecord::Bounds {
                    generation,
                    bounds: bounds.clone(),
                });
            }
            let bounds: Vec<usize> = bounds.iter().map(|&b| b as usize).collect();
            s.map.table().install_at(&bounds, generation);
            ReplyPayload::Unit
        }
        PartitionOp::ExportCells { flats, generation } => {
            let flats: Vec<usize> = flats.iter().map(|&f| f as usize).collect();
            ReplyPayload::OptCluster(s.server.export_cells(&flats, generation))
        }
        PartitionOp::PruneStubs => {
            s.server.prune_stubs();
            ReplyPayload::Unit
        }
        PartitionOp::FocalIds => ReplyPayload::Oids(s.server.focal_ids()),
        PartitionOp::FocalAnchorCell(oid) => ReplyPayload::OptCell(s.server.focal_anchor_cell(oid)),
        PartitionOp::Checkpoint => ReplyPayload::U64(match &s.store {
            Some(store) => {
                store.checkpoint(s.server.checkpoint_bytes());
                store.next_seq()
            }
            None => 0,
        }),
        PartitionOp::Trajectory { oid, t0, t1 } => ReplyPayload::Motions(match &s.store {
            Some(store) => store.trajectory(oid, t0, t1).unwrap_or_default(),
            None => Vec::new(),
        }),
        PartitionOp::LoadSignal => ReplyPayload::Load {
            focals: s.server.focal_ids().len() as u64,
            queries: s.server.num_queries() as u64,
            stubs: s.server.num_stubs() as u64,
        },
    }
}

/// Binds `listener`'s endpoint, accepts exactly one coordinator, completes
/// the hello exchange (the partition announces its id, the coordinator
/// its own node id 0) and runs the service loop to completion.
pub fn serve_partition(listener: Listener, partition: u32) -> Result<(), TransportError> {
    let stream = listener.accept()?;
    let mut conn = FramedConn::new(stream);
    conn.send_hello(partition)?;
    let _coordinator = conn.expect_hello()?;
    serve_connection(conn)
}
