//! Uniform handle over a partition server, local or remote.
//!
//! The coordinator drives every partition through [`PartitionHandle`],
//! which mirrors the [`Server`] methods the decomposition uses. A
//! [`Local`](PartitionHandle::Local) handle owns the `Server` in-process
//! (the original deployment, zero overhead); a
//! [`Remote`](PartitionHandle::Remote) handle speaks the
//! [`wire`](crate::wire) RPC protocol to a partition process over a framed
//! socket connection.
//!
//! Remote calls are strictly serialized (one request, one reply), carry
//! the coordinator's epoch view as a floor, and fold the reply's epoch
//! back with a `fetch_max` — reproducing the shared atomic epoch counter
//! of the in-process deployment. Side effects come back in the reply: bus
//! envelopes are buffered until [`PartitionHandle::take_outbox`] (so the
//! coordinator's pump discipline is unchanged) and downlink traffic is
//! replayed onto the real agent network in emission order.
//!
//! A mid-run transport failure on a remote handle is *classified*: a
//! failure that means the peer is gone ([`TransportError::is_peer_death`]
//! — closed socket, stream I/O error, or an elapsed read deadline) marks
//! the handle dead and makes it permanently inert — every subsequent call
//! returns a neutral fallback (empty, `None`, `false`) and nothing more
//! goes on the wire, so the coordinator's fan-out discipline survives the
//! loss and can notice via [`PartitionHandle::crashed`] at the next tick
//! boundary and fence the partition off. A dead handle is never reused:
//! a late reply from a half-executed primitive would desynchronize the
//! connection, so recovery always builds a fresh handle (respawn) or
//! abandons the slot (failover). Protocol violations — wrong payload
//! shape, undecodable reply — still panic: they are bugs, not crashes.

use crate::wire::{self, NetAction, PartitionOp, PartitionReply, ReplyPayload};
use mobieyes_core::server::Net;
use mobieyes_core::{ClusterMsg, Filter, ObjectId, QueryId, Server};
use mobieyes_geo::{CellId, LinearMotion, QueryRegion};
use mobieyes_net::{FramedConn, NodeId, StationId, TransportError};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A connected remote partition: the coordinator side of the RPC link.
pub struct RemotePartition {
    /// This partition's index (labels panic messages).
    partition: u32,
    conn: RefCell<FramedConn>,
    /// Coordinator-side view of the shared epoch, updated from every
    /// reply; shared across all remote handles of one deployment.
    epoch: Arc<AtomicU64>,
    /// Bus envelopes returned by replies, buffered until the coordinator
    /// pumps the bus.
    outbox: RefCell<Vec<(u32, ClusterMsg)>>,
    /// Reusable request/reply frame scratch — steady-state RPC traffic
    /// allocates no per-call buffers.
    frame: RefCell<Vec<u8>>,
    /// Set on the first transport failure classified as peer death; the
    /// handle is inert from then on (see module docs).
    dead: std::cell::Cell<bool>,
    /// The failure that killed the handle, for the coordinator's
    /// detection report.
    death: RefCell<Option<TransportError>>,
}

impl RemotePartition {
    /// Wraps a connected, hello-completed connection. `epoch` is the
    /// coordinator's shared epoch view (one `Arc` across all handles).
    pub fn new(partition: u32, conn: FramedConn, epoch: Arc<AtomicU64>) -> Self {
        RemotePartition {
            partition,
            conn: RefCell::new(conn),
            epoch,
            outbox: RefCell::new(Vec::new()),
            frame: RefCell::new(Vec::new()),
            dead: std::cell::Cell::new(false),
            death: RefCell::new(None),
        }
    }

    /// Installs (or clears) the per-RPC read deadline on the connection.
    /// While set, a partition that hangs instead of crashing surfaces as
    /// [`TransportError::Timeout`] on the next reply wait.
    pub fn set_rpc_deadline(&self, dur: Option<std::time::Duration>) {
        let _ = self.conn.borrow().set_read_timeout(dur);
    }

    /// The transport failure that killed this handle, if any.
    pub fn crashed(&self) -> Option<TransportError> {
        self.death.borrow().clone()
    }

    /// Classifies a transport failure: peer death marks the handle dead
    /// (first error wins) and returns `None`; anything else is a protocol
    /// bug and panics.
    fn classify<T>(&self, e: TransportError, what: &str) -> Option<T> {
        if e.is_peer_death() {
            self.dead.set(true);
            self.death.borrow_mut().get_or_insert(e);
            None
        } else {
            panic!("remote partition {} {what}: {e}", self.partition)
        }
    }

    /// Request half of an RPC: encodes and flushes the op without waiting
    /// for the reply. Every send must be paired with exactly one
    /// [`Self::recv_reply`] on this handle, in send order — the service
    /// loop replies strictly in request order, so requests to *different*
    /// partitions can be in flight simultaneously (pipelined fan-out).
    fn send_request(&self, op: &PartitionOp) -> Result<(), TransportError> {
        let floor = self.epoch.load(Ordering::Relaxed);
        let mut frame = self.frame.borrow_mut();
        frame.clear();
        wire::encode_request(floor, op, &mut frame);
        let mut conn = self.conn.borrow_mut();
        conn.write_frame(&frame)?;
        conn.flush()
    }

    /// Reply half of an RPC: blocks for the next reply frame, folds its
    /// epoch into the shared view and buffers its outbox envelopes.
    fn recv_reply(&self) -> Result<(Vec<NetAction>, ReplyPayload), TransportError> {
        let mut frame = self.frame.borrow_mut();
        self.conn.borrow_mut().read_frame_into(&mut frame)?;
        let PartitionReply {
            epoch,
            outbox,
            net,
            payload,
        } = wire::decode_reply(&frame)?;
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
        self.outbox.borrow_mut().extend(outbox);
        Ok((net, payload))
    }

    /// One strictly-serialized RPC round trip. The reply's outbox is
    /// buffered; the net actions and payload are returned to the caller.
    fn try_call(&self, op: &PartitionOp) -> Result<(Vec<NetAction>, ReplyPayload), TransportError> {
        self.send_request(op)?;
        self.recv_reply()
    }

    /// Pipelined request half with crash classification: `true` means the
    /// request is on the wire and a reply must be collected; `false`
    /// means the handle is (or just became) dead and no reply will come.
    fn send_classified(&self, op: &PartitionOp) -> bool {
        if self.dead.get() {
            return false;
        }
        match self.send_request(op) {
            Ok(()) => true,
            Err(e) => self.classify::<()>(e, "failed sending a request").is_some(),
        }
    }

    /// Collects the reply to a previously pipelined quiet (no-downlink)
    /// op; `None` means the peer died before replying.
    fn recv_quiet_classified(&self, what: &str) -> Option<ReplyPayload> {
        match self.recv_reply() {
            Ok((net, payload)) => {
                debug_assert!(net.is_empty(), "op unexpectedly emitted downlinks");
                Some(payload)
            }
            Err(e) => self.classify(e, what),
        }
    }

    /// One classified round trip: `None` means the peer is dead (already,
    /// or it died during this call) and the op did not take effect.
    fn call(&self, op: PartitionOp) -> Option<(Vec<NetAction>, ReplyPayload)> {
        if self.dead.get() {
            return None;
        }
        match self.try_call(&op) {
            Ok(result) => Some(result),
            Err(e) => self.classify(e, "failed executing a request"),
        }
    }

    /// A call whose op must not emit downlink traffic.
    fn call_quiet(&self, op: PartitionOp) -> Option<ReplyPayload> {
        let (net, payload) = self.call(op)?;
        debug_assert!(net.is_empty(), "op unexpectedly emitted downlinks");
        Some(payload)
    }

    /// A call whose downlink side effects are replayed onto `net`.
    fn call_net(&self, op: PartitionOp, net: &mut Net) -> Option<ReplyPayload> {
        let (actions, payload) = self.call(op)?;
        replay_net(actions, net);
        Some(payload)
    }

    /// A fire-and-forget quiet call: the payload is ignored and a dead
    /// peer makes the whole op a no-op.
    fn call_quiet_void(&self, op: PartitionOp) {
        let _ = self.call_quiet(op);
    }

    /// A fire-and-forget call with downlink replay; no-op on a dead peer.
    fn call_net_void(&self, op: PartitionOp, net: &mut Net) {
        let _ = self.call_net(op, net);
    }

    /// Configures the peer; must be the first call on the connection.
    pub fn init(&self, init: wire::InitConfig) -> Result<(), TransportError> {
        self.try_call(&PartitionOp::Init(init)).map(|_| ())
    }

    /// Sends the shutdown op; the peer replies and exits its service loop.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        self.try_call(&PartitionOp::Shutdown).map(|_| ())
    }
}

/// Replays captured downlink actions onto the real agent network, in
/// emission order — the same queue entries the op would have pushed had
/// it run in-process.
fn replay_net(actions: Vec<NetAction>, net: &mut Net) {
    for action in actions {
        match action {
            NetAction::Unicast { node, msg } => net.send_unicast(NodeId(node), msg),
            NetAction::Broadcast { station, msg } => net.broadcast(StationId(station), msg),
        }
    }
}

fn bad_payload(what: &str, got: &ReplyPayload) -> ! {
    panic!("remote partition returned wrong payload for {what}: {got:?}")
}

/// A two-phase partition probe: the request half of a pipelined RPC.
///
/// Local handles resolve immediately ([`Probe::Ready`]); remote handles
/// have the request on the wire ([`Probe::Pending`]) and the partition
/// process computes while the coordinator issues probes to its siblings.
/// Every started probe MUST be finished (on the same handle, in start
/// order) — an unconsumed reply would desynchronize the connection.
/// A probe against a dead remote ([`Probe::Dead`]) put nothing on the
/// wire; finishing it yields the op's neutral fallback.
#[must_use = "every started probe must be finished on its handle"]
pub enum Probe<T> {
    Ready(T),
    Pending,
    Dead,
}

/// A partition server the coordinator can drive: in-process or over RPC.
///
/// Method-for-method mirror of the [`Server`] surface the coordinator's
/// decomposition uses; see the `Server` docs for semantics.
pub enum PartitionHandle {
    Local(Box<Server>),
    Remote(RemotePartition),
}

impl PartitionHandle {
    /// The in-process server, for APIs that expose partition internals
    /// (`ClusterServer::partition`, store rebuilds). `None` for remote
    /// handles — those surfaces are lockstep-only, and callers must
    /// handle the miss instead of aborting the coordinator.
    pub fn local(&self) -> Option<&Server> {
        match self {
            PartitionHandle::Local(s) => Some(s),
            PartitionHandle::Remote(_) => None,
        }
    }

    fn local_mut(&mut self) -> Option<&mut Server> {
        match self {
            PartitionHandle::Local(s) => Some(s),
            PartitionHandle::Remote(_) => None,
        }
    }

    pub fn is_remote(&self) -> bool {
        matches!(self, PartitionHandle::Remote(_))
    }

    // --- pipelined probes -------------------------------------------------
    //
    // The coordinator's fan-out loops (ownership probes, digest beacons,
    // lease scans) hit every partition with the same read-only op. Issued
    // through `try_call` those serialize: each remote round trip completes
    // before the next request leaves. The start/finish pairs below put
    // every request on the wire first, so all partition processes compute
    // concurrently, then collect replies in the same order — identical
    // results, one round-trip latency instead of N.

    /// Generic request half: local handles compute inline; a dead remote
    /// resolves to the fallback at finish time without touching the wire.
    fn start<T>(&self, op: PartitionOp, local: impl FnOnce(&Server) -> T) -> Probe<T> {
        match self {
            PartitionHandle::Local(s) => Probe::Ready(local(s)),
            PartitionHandle::Remote(r) => {
                if r.send_classified(&op) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    /// Generic reply half for quiet (no-downlink) ops. A probe whose peer
    /// is dead — at start, or dying before the reply — yields `T`'s
    /// default, the op's neutral fallback.
    fn finish<T: Default>(
        &self,
        probe: Probe<T>,
        what: &str,
        parse: impl FnOnce(ReplyPayload) -> T,
    ) -> T {
        match probe {
            Probe::Ready(v) => v,
            Probe::Dead => T::default(),
            Probe::Pending => match self {
                PartitionHandle::Local(_) => unreachable!("pending probe on a local handle"),
                PartitionHandle::Remote(r) => match r.recv_quiet_classified(what) {
                    Some(payload) => parse(payload),
                    None => T::default(),
                },
            },
        }
    }

    pub fn start_has_focal(&self, oid: ObjectId) -> Probe<bool> {
        self.start(PartitionOp::HasFocal(oid), |s| s.has_focal(oid))
    }

    pub fn finish_has_focal(&self, probe: Probe<bool>) -> bool {
        self.finish(probe, "HasFocal", |p| match p {
            ReplyPayload::Bool(b) => b,
            other => bad_payload("HasFocal", &other),
        })
    }

    pub fn start_has_query(&self, qid: QueryId) -> Probe<bool> {
        self.start(PartitionOp::HasQuery(qid), |s| s.has_query(qid))
    }

    pub fn finish_has_query(&self, probe: Probe<bool>) -> bool {
        self.finish(probe, "HasQuery", |p| match p {
            ReplyPayload::Bool(b) => b,
            other => bad_payload("HasQuery", &other),
        })
    }

    pub fn start_num_queries(&self) -> Probe<usize> {
        self.start(PartitionOp::NumQueries, |s| s.num_queries())
    }

    pub fn finish_num_queries(&self, probe: Probe<usize>) -> usize {
        self.finish(probe, "NumQueries", |p| match p {
            ReplyPayload::U64(n) => n as usize,
            other => bad_payload("NumQueries", &other),
        })
    }

    pub fn start_query_ids(&self) -> Probe<Vec<QueryId>> {
        self.start(PartitionOp::QueryIds, |s| s.query_ids().collect())
    }

    pub fn finish_query_ids(&self, probe: Probe<Vec<QueryId>>) -> Vec<QueryId> {
        self.finish(probe, "QueryIds", |p| match p {
            ReplyPayload::Qids(qids) => qids,
            other => bad_payload("QueryIds", &other),
        })
    }

    pub fn start_query_result(&self, qid: QueryId) -> Probe<Option<Vec<ObjectId>>> {
        self.start(PartitionOp::QueryResult(qid), |s| {
            s.query_result(qid).map(|r| r.iter().copied().collect())
        })
    }

    pub fn finish_query_result(
        &self,
        probe: Probe<Option<Vec<ObjectId>>>,
    ) -> Option<Vec<ObjectId>> {
        self.finish(probe, "QueryResult", |p| match p {
            ReplyPayload::ResultSet(oids) => oids,
            other => bad_payload("QueryResult", &other),
        })
    }

    pub fn start_query_focal(&self, qid: QueryId) -> Probe<Option<ObjectId>> {
        self.start(PartitionOp::QueryFocal(qid), |s| s.query_focal(qid))
    }

    pub fn finish_query_focal(&self, probe: Probe<Option<ObjectId>>) -> Option<ObjectId> {
        self.finish(probe, "QueryFocal", |p| match p {
            ReplyPayload::OptOid(oid) => oid,
            other => bad_payload("QueryFocal", &other),
        })
    }

    pub fn start_expired_query_ids(&self, now: f64) -> Probe<Vec<QueryId>> {
        self.start(PartitionOp::ExpiredQueryIds(now), |s| {
            s.expired_query_ids(now)
        })
    }

    pub fn finish_expired_query_ids(&self, probe: Probe<Vec<QueryId>>) -> Vec<QueryId> {
        self.finish(probe, "ExpiredQueryIds", |p| match p {
            ReplyPayload::Qids(qids) => qids,
            other => bad_payload("ExpiredQueryIds", &other),
        })
    }

    pub fn start_expired_leases(&self) -> Probe<Vec<(ObjectId, Vec<QueryId>)>> {
        self.start(PartitionOp::ExpiredLeases, |s| s.expired_leases())
    }

    pub fn finish_expired_leases(
        &self,
        probe: Probe<Vec<(ObjectId, Vec<QueryId>)>>,
    ) -> Vec<(ObjectId, Vec<QueryId>)> {
        self.finish(probe, "ExpiredLeases", |p| match p {
            ReplyPayload::Leases(leases) => leases,
            other => bad_payload("ExpiredLeases", &other),
        })
    }

    pub fn start_digest_cells(&self) -> Probe<Vec<(CellId, u64)>> {
        self.start(PartitionOp::DigestCells, |s| s.digest_cells())
    }

    pub fn finish_digest_cells(&self, probe: Probe<Vec<(CellId, u64)>>) -> Vec<(CellId, u64)> {
        self.finish(probe, "DigestCells", |p| match p {
            ReplyPayload::Digests(digests) => digests,
            other => bad_payload("DigestCells", &other),
        })
    }

    /// Mutating fan-out ops (lease renewal, clock distribution): local
    /// handles apply immediately, remote requests pipeline.
    pub fn start_renew_lease(&mut self, oid: ObjectId) -> Probe<()> {
        match self {
            PartitionHandle::Local(s) => {
                s.renew_lease(oid);
                Probe::Ready(())
            }
            PartitionHandle::Remote(r) => {
                if r.send_classified(&PartitionOp::RenewLease(oid)) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    pub fn start_set_time(&mut self, now: f64) -> Probe<()> {
        match self {
            PartitionHandle::Local(s) => {
                s.set_time(now);
                Probe::Ready(())
            }
            PartitionHandle::Remote(r) => {
                if r.send_classified(&PartitionOp::SetTime(now)) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    pub fn finish_unit(&self, probe: Probe<()>, what: &str) {
        self.finish(probe, what, |p| match p {
            ReplyPayload::Unit => (),
            other => bad_payload(what, &other),
        })
    }

    pub fn set_time(&mut self, now: f64) {
        match self {
            PartitionHandle::Local(s) => s.set_time(now),
            PartitionHandle::Remote(r) => r.call_quiet_void(PartitionOp::SetTime(now)),
        }
    }

    pub fn renew_lease(&mut self, oid: ObjectId) {
        match self {
            PartitionHandle::Local(s) => s.renew_lease(oid),
            PartitionHandle::Remote(r) => r.call_quiet_void(PartitionOp::RenewLease(oid)),
        }
    }

    pub fn on_velocity_report(&mut self, oid: ObjectId, motion: LinearMotion, net: &mut Net) {
        match self {
            PartitionHandle::Local(s) => s.on_velocity_report(oid, motion, net),
            PartitionHandle::Remote(r) => {
                r.call_net_void(PartitionOp::VelocityReport { oid, motion }, net);
            }
        }
    }

    pub fn apply_cell_change_focal(
        &mut self,
        oid: ObjectId,
        new_cell: CellId,
        motion: LinearMotion,
        net: &mut Net,
    ) {
        match self {
            PartitionHandle::Local(s) => s.apply_cell_change_focal(oid, new_cell, motion, net),
            PartitionHandle::Remote(r) => {
                r.call_net_void(
                    PartitionOp::CellChangeFocal {
                        oid,
                        new_cell,
                        motion,
                    },
                    net,
                );
            }
        }
    }

    pub fn apply_cell_change_fresh(
        &mut self,
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        motion: LinearMotion,
        net: &mut Net,
    ) {
        match self {
            PartitionHandle::Local(s) => {
                s.apply_cell_change_fresh(oid, prev_cell, new_cell, motion, net)
            }
            PartitionHandle::Remote(r) => {
                r.call_net_void(
                    PartitionOp::CellChangeFresh {
                        oid,
                        prev_cell,
                        new_cell,
                        motion,
                    },
                    net,
                );
            }
        }
    }

    pub fn apply_result_change(
        &mut self,
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
        net: &mut Net,
    ) -> bool {
        match self {
            PartitionHandle::Local(s) => s.apply_result_change(qid, oid, is_target, net),
            PartitionHandle::Remote(r) => {
                match r.call_net(
                    PartitionOp::ResultChange {
                        qid,
                        oid,
                        is_target,
                    },
                    net,
                ) {
                    Some(ReplyPayload::Bool(b)) => b,
                    None => false,
                    Some(other) => bad_payload("ResultChange", &other),
                }
            }
        }
    }

    pub fn apply_group_result_update(
        &mut self,
        oid: ObjectId,
        focal: ObjectId,
        mask: u64,
        targets: u64,
        net: &mut Net,
    ) {
        match self {
            PartitionHandle::Local(s) => {
                s.apply_group_result_update(oid, focal, mask, targets, net)
            }
            PartitionHandle::Remote(r) => {
                r.call_net_void(
                    PartitionOp::GroupResultUpdate {
                        oid,
                        focal,
                        mask,
                        targets,
                    },
                    net,
                );
            }
        }
    }

    pub fn refresh_focal_motion(
        &mut self,
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        insert: bool,
    ) {
        match self {
            PartitionHandle::Local(s) => s.refresh_focal_motion(oid, motion, max_vel, insert),
            PartitionHandle::Remote(r) => {
                r.call_quiet_void(PartitionOp::RefreshFocalMotion {
                    oid,
                    motion,
                    max_vel,
                    insert,
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn complete_install_at(
        &mut self,
        qid: QueryId,
        focal: ObjectId,
        region: QueryRegion,
        filter: Arc<Filter>,
        expires_at: Option<f64>,
        net: &mut Net,
    ) {
        match self {
            PartitionHandle::Local(s) => {
                s.complete_install_at(qid, focal, region, filter, expires_at, net)
            }
            PartitionHandle::Remote(r) => {
                r.call_net_void(
                    PartitionOp::CompleteInstall {
                        qid,
                        focal,
                        region,
                        filter,
                        expires_at,
                    },
                    net,
                );
            }
        }
    }

    pub fn remove_query(&mut self, qid: QueryId, net: &mut Net) -> bool {
        match self {
            PartitionHandle::Local(s) => s.remove_query(qid, net),
            PartitionHandle::Remote(r) => match r.call_net(PartitionOp::RemoveQuery(qid), net) {
                Some(ReplyPayload::Bool(b)) => b,
                None => false,
                Some(other) => bad_payload("RemoveQuery", &other),
            },
        }
    }

    pub fn expired_query_ids(&self, now: f64) -> Vec<QueryId> {
        match self {
            PartitionHandle::Local(s) => s.expired_query_ids(now),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::ExpiredQueryIds(now)) {
                Some(ReplyPayload::Qids(qids)) => qids,
                None => Vec::new(),
                Some(other) => bad_payload("ExpiredQueryIds", &other),
            },
        }
    }

    pub fn expired_leases(&self) -> Vec<(ObjectId, Vec<QueryId>)> {
        match self {
            PartitionHandle::Local(s) => s.expired_leases(),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::ExpiredLeases) {
                Some(ReplyPayload::Leases(leases)) => leases,
                None => Vec::new(),
                Some(other) => bad_payload("ExpiredLeases", &other),
            },
        }
    }

    pub fn reinstall_info(&self, qid: QueryId) -> Option<(QueryRegion, Arc<Filter>, Option<f64>)> {
        match self {
            PartitionHandle::Local(s) => s.reinstall_info(qid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::ReinstallInfo(qid)) {
                Some(ReplyPayload::Reinstall(info)) => {
                    info.map(|(region, filter, expires_at)| (region, Arc::new(filter), expires_at))
                }
                None => None,
                Some(other) => bad_payload("ReinstallInfo", &other),
            },
        }
    }

    pub fn digest_cells(&self) -> Vec<(CellId, u64)> {
        match self {
            PartitionHandle::Local(s) => s.digest_cells(),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::DigestCells) {
                Some(ReplyPayload::Digests(digests)) => digests,
                None => Vec::new(),
                Some(other) => bad_payload("DigestCells", &other),
            },
        }
    }

    pub fn bump_epoch_for_coordinator(&mut self) -> u64 {
        match self {
            PartitionHandle::Local(s) => s.bump_epoch_for_coordinator(),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::BumpEpoch) {
                Some(ReplyPayload::U64(epoch)) => epoch,
                None => r.epoch.load(Ordering::Relaxed),
                Some(other) => bad_payload("BumpEpoch", &other),
            },
        }
    }

    pub fn current_epoch(&self) -> u64 {
        match self {
            PartitionHandle::Local(s) => s.current_epoch(),
            // Exact under strict serialization: every epoch movement flows
            // through a reply this view already folded in.
            PartitionHandle::Remote(r) => r.epoch.load(Ordering::Relaxed),
        }
    }

    pub fn num_queries(&self) -> usize {
        match self {
            PartitionHandle::Local(s) => s.num_queries(),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::NumQueries) {
                Some(ReplyPayload::U64(n)) => n as usize,
                None => 0,
                Some(other) => bad_payload("NumQueries", &other),
            },
        }
    }

    pub fn query_ids(&self) -> Vec<QueryId> {
        match self {
            PartitionHandle::Local(s) => s.query_ids().collect(),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::QueryIds) {
                Some(ReplyPayload::Qids(qids)) => qids,
                None => Vec::new(),
                Some(other) => bad_payload("QueryIds", &other),
            },
        }
    }

    /// Borrowed result set — in-process handles only (the lockstep
    /// deployments every existing caller runs). `None` for remote
    /// handles; those callers use [`Self::query_result_owned`].
    pub fn query_result_ref(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        match self {
            PartitionHandle::Local(s) => s.query_result(qid),
            PartitionHandle::Remote(_) => None,
        }
    }

    /// Owned copy of a query's result set, local or remote.
    pub fn query_result_owned(&self, qid: QueryId) -> Option<Vec<ObjectId>> {
        match self {
            PartitionHandle::Local(s) => s.query_result(qid).map(|r| r.iter().copied().collect()),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::QueryResult(qid)) {
                Some(ReplyPayload::ResultSet(oids)) => oids,
                None => None,
                Some(other) => bad_payload("QueryResult", &other),
            },
        }
    }

    pub fn query_focal(&self, qid: QueryId) -> Option<ObjectId> {
        match self {
            PartitionHandle::Local(s) => s.query_focal(qid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::QueryFocal(qid)) {
                Some(ReplyPayload::OptOid(oid)) => oid,
                None => None,
                Some(other) => bad_payload("QueryFocal", &other),
            },
        }
    }

    pub fn has_focal(&self, oid: ObjectId) -> bool {
        match self {
            PartitionHandle::Local(s) => s.has_focal(oid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::HasFocal(oid)) {
                Some(ReplyPayload::Bool(b)) => b,
                None => false,
                Some(other) => bad_payload("HasFocal", &other),
            },
        }
    }

    pub fn has_query(&self, qid: QueryId) -> bool {
        match self {
            PartitionHandle::Local(s) => s.has_query(qid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::HasQuery(qid)) {
                Some(ReplyPayload::Bool(b)) => b,
                None => false,
                Some(other) => bad_payload("HasQuery", &other),
            },
        }
    }

    pub fn focal_motion(&self, oid: ObjectId) -> Option<LinearMotion> {
        match self {
            PartitionHandle::Local(s) => s.focal_motion(oid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::FocalMotion(oid)) {
                Some(ReplyPayload::OptMotion(m)) => m,
                None => None,
                Some(other) => bad_payload("FocalMotion", &other),
            },
        }
    }

    pub fn focal_queries(&self, oid: ObjectId) -> Option<Vec<QueryId>> {
        match self {
            PartitionHandle::Local(s) => s.focal_queries(oid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::FocalQueries(oid)) {
                Some(ReplyPayload::OptQids(qids)) => qids,
                None => None,
                Some(other) => bad_payload("FocalQueries", &other),
            },
        }
    }

    pub fn query_cell(&self, qid: QueryId) -> Option<CellId> {
        match self {
            PartitionHandle::Local(s) => s.query_cell(qid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::QueryCell(qid)) {
                Some(ReplyPayload::OptCell(cell)) => cell,
                None => None,
                Some(other) => bad_payload("QueryCell", &other),
            },
        }
    }

    pub fn purge_object(&mut self, oid: ObjectId) -> Vec<QueryId> {
        match self {
            PartitionHandle::Local(s) => s.purge_object(oid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::PurgeObject(oid)) {
                Some(ReplyPayload::Qids(qids)) => qids,
                None => Vec::new(),
                Some(other) => bad_payload("PurgeObject", &other),
            },
        }
    }

    pub fn deliver_result_delta(
        &mut self,
        qid: QueryId,
        oid: ObjectId,
        entered: bool,
        net: &mut Net,
    ) {
        match self {
            PartitionHandle::Local(s) => s.deliver_result_delta(qid, oid, entered, net),
            PartitionHandle::Remote(r) => {
                r.call_net_void(PartitionOp::DeliverResultDelta { qid, oid, entered }, net);
            }
        }
    }

    pub fn lqt_reconcile_one(&mut self, qid: QueryId, oid: ObjectId, is_target: bool) -> bool {
        match self {
            PartitionHandle::Local(s) => s.lqt_reconcile_one(qid, oid, is_target),
            PartitionHandle::Remote(r) => {
                match r.call_quiet(PartitionOp::LqtReconcileOne {
                    qid,
                    oid,
                    is_target,
                }) {
                    Some(ReplyPayload::Bool(b)) => b,
                    None => false,
                    Some(other) => bad_payload("LqtReconcileOne", &other),
                }
            }
        }
    }

    pub fn focal_reassert(&mut self, oid: ObjectId, net: &mut Net) {
        match self {
            PartitionHandle::Local(s) => s.focal_reassert(oid, net),
            PartitionHandle::Remote(r) => {
                r.call_net_void(PartitionOp::FocalReassert(oid), net);
            }
        }
    }

    pub fn cell_sync_reply(&mut self, oid: ObjectId, cell: CellId, net: &mut Net) {
        match self {
            PartitionHandle::Local(s) => s.cell_sync_reply(oid, cell, net),
            PartitionHandle::Remote(r) => {
                r.call_net_void(PartitionOp::CellSyncReply { oid, cell }, net);
            }
        }
    }

    pub fn extract_focal(&mut self, oid: ObjectId) -> Option<ClusterMsg> {
        match self {
            PartitionHandle::Local(s) => s.extract_focal(oid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::ExtractFocal(oid)) {
                Some(ReplyPayload::OptCluster(msg)) => msg,
                None => None,
                Some(other) => bad_payload("ExtractFocal", &other),
            },
        }
    }

    pub fn take_outbox(&mut self) -> Vec<(u32, ClusterMsg)> {
        match self {
            PartitionHandle::Local(s) => s.take_outbox(),
            PartitionHandle::Remote(r) => std::mem::take(&mut *r.outbox.borrow_mut()),
        }
    }

    pub fn apply_cluster_msg(&mut self, msg: &ClusterMsg) {
        match self {
            PartitionHandle::Local(s) => s.apply_cluster_msg(msg),
            PartitionHandle::Remote(r) => {
                r.call_quiet_void(PartitionOp::Deliver(msg.clone()));
            }
        }
    }

    pub fn check_invariants(&self) {
        match self {
            PartitionHandle::Local(s) => s.check_invariants(),
            PartitionHandle::Remote(r) => {
                r.call_quiet_void(PartitionOp::CheckInvariants);
            }
        }
    }

    // --- rebalance / recovery surface ------------------------------------
    //
    // The fence's per-partition rounds (ownership sync, RQI export, focal
    // census, stub prune) are fan-outs like the read probes above, so each
    // op also has a pipelined start/finish pair: all partition processes
    // cut their state concurrently and the coordinator collects replies in
    // start order.

    /// Pipelined ownership-table sync: local handles share the
    /// coordinator's table and resolve immediately.
    pub fn start_install_bounds(&mut self, generation: u64, bounds: &[usize]) -> Probe<()> {
        match self {
            PartitionHandle::Local(_) => Probe::Ready(()),
            PartitionHandle::Remote(r) => {
                let bounds = bounds.iter().map(|&b| b as u64).collect();
                if r.send_classified(&PartitionOp::InstallBounds { generation, bounds }) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    pub fn start_export_cells(
        &mut self,
        flats: &[usize],
        generation: u64,
    ) -> Probe<Option<ClusterMsg>> {
        match self {
            PartitionHandle::Local(s) => Probe::Ready(s.export_cells(flats, generation)),
            PartitionHandle::Remote(r) => {
                let flats = flats.iter().map(|&f| f as u32).collect();
                if r.send_classified(&PartitionOp::ExportCells { flats, generation }) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    pub fn finish_export_cells(&self, probe: Probe<Option<ClusterMsg>>) -> Option<ClusterMsg> {
        self.finish(probe, "ExportCells", |p| match p {
            ReplyPayload::OptCluster(msg) => msg,
            other => bad_payload("ExportCells", &other),
        })
    }

    pub fn start_focal_ids(&self) -> Probe<Vec<ObjectId>> {
        self.start(PartitionOp::FocalIds, |s| s.focal_ids())
    }

    pub fn finish_focal_ids(&self, probe: Probe<Vec<ObjectId>>) -> Vec<ObjectId> {
        self.finish(probe, "FocalIds", |p| match p {
            ReplyPayload::Oids(oids) => oids,
            other => bad_payload("FocalIds", &other),
        })
    }

    pub fn start_focal_anchor_cell(&self, oid: ObjectId) -> Probe<Option<CellId>> {
        self.start(PartitionOp::FocalAnchorCell(oid), |s| {
            s.focal_anchor_cell(oid)
        })
    }

    pub fn finish_focal_anchor_cell(&self, probe: Probe<Option<CellId>>) -> Option<CellId> {
        self.finish(probe, "FocalAnchorCell", |p| match p {
            ReplyPayload::OptCell(cell) => cell,
            other => bad_payload("FocalAnchorCell", &other),
        })
    }

    pub fn start_extract_focal(&mut self, oid: ObjectId) -> Probe<Option<ClusterMsg>> {
        match self {
            PartitionHandle::Local(s) => Probe::Ready(s.extract_focal(oid)),
            PartitionHandle::Remote(r) => {
                if r.send_classified(&PartitionOp::ExtractFocal(oid)) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    pub fn finish_extract_focal(&self, probe: Probe<Option<ClusterMsg>>) -> Option<ClusterMsg> {
        self.finish(probe, "ExtractFocal", |p| match p {
            ReplyPayload::OptCluster(msg) => msg,
            other => bad_payload("ExtractFocal", &other),
        })
    }

    pub fn start_prune_stubs(&mut self) -> Probe<()> {
        match self {
            PartitionHandle::Local(s) => {
                s.prune_stubs();
                Probe::Ready(())
            }
            PartitionHandle::Remote(r) => {
                if r.send_classified(&PartitionOp::PruneStubs) {
                    Probe::Pending
                } else {
                    Probe::Dead
                }
            }
        }
    }

    /// Partition state weight `(focals, queries, stubs)` for rebalance
    /// telemetry. Zeroes on a dead peer.
    pub fn start_load_signal(&self) -> Probe<(u64, u64, u64)> {
        self.start(PartitionOp::LoadSignal, |s| {
            (
                s.focal_ids().len() as u64,
                s.num_queries() as u64,
                s.num_stubs() as u64,
            )
        })
    }

    pub fn finish_load_signal(&self, probe: Probe<(u64, u64, u64)>) -> (u64, u64, u64) {
        self.finish(probe, "LoadSignal", |p| match p {
            ReplyPayload::Load {
                focals,
                queries,
                stubs,
            } => (focals, queries, stubs),
            other => bad_payload("LoadSignal", &other),
        })
    }

    pub fn export_cells(&mut self, flats: &[usize], generation: u64) -> Option<ClusterMsg> {
        match self {
            PartitionHandle::Local(s) => s.export_cells(flats, generation),
            PartitionHandle::Remote(r) => {
                let flats = flats.iter().map(|&f| f as u32).collect();
                match r.call_quiet(PartitionOp::ExportCells { flats, generation }) {
                    Some(ReplyPayload::OptCluster(msg)) => msg,
                    None => None,
                    Some(other) => bad_payload("ExportCells", &other),
                }
            }
        }
    }

    pub fn prune_stubs(&mut self) {
        match self {
            PartitionHandle::Local(s) => s.prune_stubs(),
            PartitionHandle::Remote(r) => r.call_quiet_void(PartitionOp::PruneStubs),
        }
    }

    pub fn focal_ids(&self) -> Vec<ObjectId> {
        match self {
            PartitionHandle::Local(s) => s.focal_ids(),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::FocalIds) {
                Some(ReplyPayload::Oids(oids)) => oids,
                None => Vec::new(),
                Some(other) => bad_payload("FocalIds", &other),
            },
        }
    }

    pub fn focal_anchor_cell(&self, oid: ObjectId) -> Option<CellId> {
        match self {
            PartitionHandle::Local(s) => s.focal_anchor_cell(oid),
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::FocalAnchorCell(oid)) {
                Some(ReplyPayload::OptCell(cell)) => cell,
                None => None,
                Some(other) => bad_payload("FocalAnchorCell", &other),
            },
        }
    }

    /// Syncs a remote partition's ownership-table copy to the
    /// coordinator's exact bounds and generation after a fence. Local
    /// handles share the coordinator's table and need nothing.
    pub fn install_bounds(&mut self, generation: u64, bounds: &[usize]) {
        match self {
            PartitionHandle::Local(_) => {}
            PartitionHandle::Remote(r) => {
                let bounds = bounds.iter().map(|&b| b as u64).collect();
                r.call_quiet_void(PartitionOp::InstallBounds { generation, bounds });
            }
        }
    }

    // --- durable store surface --------------------------------------------

    /// Cuts a checkpoint into a remote partition's durable log, returning
    /// the log's next sequence number. `None` for local handles (the
    /// coordinator owns their stores directly), storeless deployments
    /// (the op replies 0, mapped to `None`) and dead peers.
    pub fn checkpoint_remote(&self) -> Option<u64> {
        match self {
            PartitionHandle::Local(_) => None,
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::Checkpoint) {
                Some(ReplyPayload::U64(0)) | None => None,
                Some(ReplyPayload::U64(seq)) => Some(seq),
                Some(other) => bad_payload("Checkpoint", &other),
            },
        }
    }

    /// Historical trajectory samples of `oid` in `[t0, t1]` from a remote
    /// partition's durable log; empty for local handles, storeless
    /// deployments and dead peers.
    pub fn trajectory_remote(&self, oid: ObjectId, t0: f64, t1: f64) -> Vec<LinearMotion> {
        match self {
            PartitionHandle::Local(_) => Vec::new(),
            PartitionHandle::Remote(r) => {
                match r.call_quiet(PartitionOp::Trajectory { oid, t0, t1 }) {
                    Some(ReplyPayload::Motions(motions)) => motions,
                    None => Vec::new(),
                    Some(other) => bad_payload("Trajectory", &other),
                }
            }
        }
    }

    // --- crash detection --------------------------------------------------

    /// The transport failure that killed this handle, if any. Local
    /// handles never die this way (in-process crashes are injected
    /// through the coordinator instead).
    pub fn crashed(&self) -> Option<TransportError> {
        match self {
            PartitionHandle::Local(_) => None,
            PartitionHandle::Remote(r) => r.crashed(),
        }
    }

    /// Installs (or clears) the per-RPC read deadline on a remote handle,
    /// so a hung partition process surfaces as a
    /// [`TransportError::Timeout`] instead of blocking the coordinator
    /// forever. No-op for local handles.
    pub fn set_rpc_deadline(&self, dur: Option<std::time::Duration>) {
        if let PartitionHandle::Remote(r) = self {
            r.set_rpc_deadline(dur);
        }
    }

    /// Swaps in a fresh in-process server, dropping the old one's entire
    /// state — the coordinator's crash-injection primitive (the lockstep
    /// analogue of `kill -9` on a partition process).
    pub fn replace_local(&mut self, fresh: Server) {
        *self
            .local_mut()
            .expect("crash injection replaces in-process servers only") = fresh;
    }

    /// Actively verifies the peer is alive with a trivial round trip
    /// (`CurrentEpoch`). A crashed or hung peer fails the call, which
    /// classifies the handle dead; the verdict is then readable via
    /// [`Self::crashed`]. Local handles are trivially alive.
    pub fn probe_alive(&self) -> bool {
        match self {
            PartitionHandle::Local(_) => true,
            PartitionHandle::Remote(r) => match r.call_quiet(PartitionOp::CurrentEpoch) {
                Some(ReplyPayload::U64(_)) => true,
                None => false,
                Some(other) => bad_payload("CurrentEpoch", &other),
            },
        }
    }
}
