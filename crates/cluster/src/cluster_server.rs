//! The cluster coordinator: N partition-scoped [`Server`]s behind the
//! single-server API.
//!
//! The coordinator decomposes every uplink into the same primitive
//! operations the single server performs — executed at the partitions
//! owning the affected state, in the same global order — and pumps the
//! inter-server bus between operations so cross-partition state (RQI
//! stubs, migrated FOT/SQT rows) is in place before the next operation
//! reads it. That discipline is what makes an N-partition run
//! byte-identical to the single server: same downlink byte stream on the
//! shared agent network, same counters (summed across the per-partition
//! sinks), same event log.

use crate::handle::{PartitionHandle, RemotePartition};
use crate::partition::{plan_bounds, PartitionMap, Router};
use crate::wire::InitConfig;
use mobieyes_core::server::{srv_keys, Net};
use mobieyes_core::LogRecord;
use mobieyes_core::{
    ClusterMsg, Downlink, Filter, ObjectId, PartitionScope, ProtocolConfig, QueryId, Server, Uplink,
};
use mobieyes_geo::{CellId, LinearMotion, QueryRegion};
use mobieyes_net::TransportError;
use mobieyes_net::{
    BaseStationLayout, FaultPlan, FramedConn, LockstepTransport, MessageMeter, NetworkSim, NodeId,
    SocketTransport, Transport, WireSized,
};
use mobieyes_store::{self as store, Store, StoreConfig};
use mobieyes_telemetry::{rebal_keys, rec_keys, EventKind, Telemetry};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Default per-RPC read deadline for remote partitions: far above any
/// healthy round trip, so a partition process that *hangs* without
/// closing its socket surfaces as a classified
/// [`TransportError::Timeout`] instead of blocking the coordinator
/// forever. Override via [`ClusterServer::set_rpc_deadline`].
const DEFAULT_RPC_DEADLINE: std::time::Duration = std::time::Duration::from_secs(30);

/// One bus frame: an inter-server message plus its destination partition.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub to: u32,
    pub msg: ClusterMsg,
}

impl WireSized for Envelope {
    fn wire_size(&self) -> usize {
        4 + self.msg.wire_size()
    }
}

/// The server↔server link substrate: the same deterministic [`NetworkSim`]
/// the agents use, so `FaultPlan` drop/duplication applies to handoff
/// traffic too. Only the uplink path is used (partitions are peers; there
/// is no broadcast tier between them).
#[deprecated(
    since = "0.6.0",
    note = "the bus is behind the `Transport` trait now; use `LockstepTransport<Envelope>`"
)]
pub type Bus = NetworkSim<Envelope, Envelope>;

/// A deferred install owned by the coordinator (the single server keeps
/// these per-focal on its own pending table).
#[derive(Debug)]
struct PendingInstall {
    qid: QueryId,
    region: QueryRegion,
    filter: Arc<Filter>,
    expires_at: Option<f64>,
}

/// The coordinator's durable record of an installed query — enough to
/// re-issue the install if the partition homing the query dies before the
/// lease machinery would have repaired it. The registry is coordinator
/// state (like `pending`), so it survives any partition crash.
#[derive(Debug)]
struct RegisteredQuery {
    focal: ObjectId,
    region: QueryRegion,
    filter: Arc<Filter>,
    expires_at: Option<f64>,
}

/// Numeric reason codes carried by [`EventKind::RebalanceSkipped`]
/// (event fields are `u64`-only; exporters render the code).
pub mod skip_reason {
    /// A partition is dead or a crash awaits its failover fence.
    pub const UNFENCED: u64 = 1;
    /// The observation window recorded no primary-uplink load (or the
    /// deployment has a single partition).
    pub const NO_LOAD: u64 = 2;
    /// The planner reproduced the installed bounds.
    pub const UNCHANGED: u64 = 3;
}

/// What one [`ClusterServer::recover_crashed`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Partitions newly detected dead and fenced off this pass.
    pub partitions: Vec<u32>,
    /// Flat cells reassigned from the dead partitions to survivors.
    pub cells_reassigned: usize,
    /// Registered queries that were lost with the dead partitions and
    /// re-entered the pending-install pipeline.
    pub queries_reinstalled: usize,
    /// Orphaned bus envelopes re-routed to the new owners.
    pub envelopes_rerouted: usize,
    /// Lost queries recovered directly by replaying the dead partition's
    /// durable log — installed at the new owner with their full result
    /// set, skipping the pending + `PositionRequest` round trip.
    pub queries_replayed: usize,
}

/// Grid-sharded MobiEyes server tier.
///
/// Mirrors the [`Server`] driver surface (`install_query`, `heartbeat`,
/// `tick`, `query_result`, …) so simulation drivers can swap it in behind
/// a `--partitions N` knob.
pub struct ClusterServer {
    config: Arc<ProtocolConfig>,
    map: PartitionMap,
    partitions: Vec<PartitionHandle>,
    /// Per-partition telemetry sinks, drained into the shared protocol
    /// sink in partition order after every coordinator entry point.
    sinks: Vec<Telemetry>,
    /// The shared protocol sink (the one the agent network records into).
    shared: Telemetry,
    bus: Box<dyn Transport<Envelope>>,
    /// The bus records into its own sink so cluster-transport metrics
    /// never leak into the protocol snapshot (which must compare equal
    /// across partition counts).
    bus_sink: Telemetry,
    pending: BTreeMap<ObjectId, Vec<PendingInstall>>,
    next_qid: u32,
    now: f64,
    last_heartbeat: f64,
    /// Per-partition count of uplinks handled as primary (scaling bench).
    ops: Vec<u64>,
    /// Per-cell (flat index) count of primary uplinks since the last
    /// rebalance install — the load signal the rebalance planner cuts.
    cell_ops: Vec<u64>,
    /// Coordinator's view of the shared epoch — the same `Arc` every
    /// partition scope (or remote handle) folds into; kept so recovery
    /// can construct replacement partitions.
    epoch: Arc<AtomicU64>,
    /// Base-station coverage length, kept so a respawned remote partition
    /// can be re-initialized with the identical downlink layout.
    alen: f64,
    /// Partitions currently fenced off as dead (killed in-process or
    /// detected via a classified transport failure). A dead partition
    /// owns no cells after its failover fence and receives nothing.
    dead: BTreeSet<u32>,
    /// Dead partitions whose cells have not been failed over yet —
    /// drained by [`Self::recover_crashed`].
    unfenced: Vec<u32>,
    /// The flat-cell span `[start, end)` each dead partition owned when
    /// its failover fence ran, so a respawn can re-adopt exactly it.
    lost_spans: BTreeMap<u32, (usize, usize)>,
    /// Durable install records for crash re-installation.
    registry: BTreeMap<QueryId, RegisteredQuery>,
    /// Bus envelopes addressed to a down partition, captured by the pump
    /// instead of being applied; the next failover fence re-routes them.
    orphans: Vec<Envelope>,
    /// Root directory of the durable trajectory logs (`<root>/p<N>` per
    /// partition); `None` runs the tier without persistence.
    store_root: Option<PathBuf>,
    /// Coordinator-held stores of the in-process partitions. Remote
    /// partitions own their store inside the partition process; their
    /// slot stays `None` (the coordinator reaches the log over RPC).
    stores: Vec<Option<Store>>,
}

impl ClusterServer {
    /// An all-local deployment over the deterministic lock-step bus — the
    /// original configuration, byte-identical to the single server.
    pub fn new(config: Arc<ProtocolConfig>, n: usize, shared: Telemetry) -> Self {
        let bus_sink = Telemetry::new();
        let bus = LockstepTransport::new(BaseStationLayout::new(
            config.grid.universe,
            config.grid.alpha,
        ))
        .with_telemetry(bus_sink.clone());
        Self::new_local_with_bus(config, n, shared, Box::new(bus), bus_sink)
    }

    /// An all-local deployment whose inter-server envelopes ride a real
    /// loopback socket (`alen` is only used for the lock-step layout, so
    /// any [`Transport`] with the contract's ordering works). Every frame
    /// crosses the kernel: same results, real framing.
    pub fn new_over_socket(
        config: Arc<ProtocolConfig>,
        n: usize,
        shared: Telemetry,
        bus: SocketTransport<Envelope>,
    ) -> Self {
        let bus_sink = Telemetry::new();
        let bus = bus.with_telemetry(bus_sink.clone());
        Self::new_local_with_bus(config, n, shared, Box::new(bus), bus_sink)
    }

    fn new_local_with_bus(
        config: Arc<ProtocolConfig>,
        n: usize,
        shared: Telemetry,
        bus: Box<dyn Transport<Envelope>>,
        bus_sink: Telemetry,
    ) -> Self {
        let map = PartitionMap::contiguous(&config.grid, n);
        let epoch = Arc::new(AtomicU64::new(0));
        let sinks: Vec<Telemetry> = (0..n).map(|_| Telemetry::new()).collect();
        let partitions: Vec<PartitionHandle> = (0..n)
            .map(|p| {
                PartitionHandle::Local(Box::new(
                    Server::new(Arc::clone(&config))
                        .with_telemetry(sinks[p].clone())
                        .with_scope(PartitionScope::new(
                            p as u32,
                            Arc::clone(map.table()),
                            Arc::clone(&epoch),
                        )),
                ))
            })
            .collect();
        let alen = config.grid.alpha;
        Self::assemble(
            config, map, partitions, sinks, shared, bus, bus_sink, epoch, alen,
        )
    }

    /// A multi-process deployment: each connection drives one partition
    /// process (hello exchange already completed). `alen` is the shared
    /// base-station coverage length, forwarded so every process builds the
    /// identical downlink layout.
    pub fn new_remote(
        config: Arc<ProtocolConfig>,
        shared: Telemetry,
        conns: Vec<FramedConn>,
        alen: f64,
    ) -> Self {
        Self::new_remote_with_store(config, shared, conns, alen, None)
    }

    /// [`Self::new_remote`] with per-partition durable logs: each process
    /// opens (and replays) `<root>/p<N>` before serving its first op, so
    /// restarting a killed process recovers its partition's state.
    pub fn new_remote_with_store(
        config: Arc<ProtocolConfig>,
        shared: Telemetry,
        conns: Vec<FramedConn>,
        alen: f64,
        store_root: Option<PathBuf>,
    ) -> Self {
        let n = conns.len();
        let map = PartitionMap::contiguous(&config.grid, n);
        let epoch = Arc::new(AtomicU64::new(0));
        let sinks: Vec<Telemetry> = (0..n).map(|_| Telemetry::new()).collect();
        let partitions: Vec<PartitionHandle> = conns
            .into_iter()
            .enumerate()
            .map(|(p, conn)| {
                let remote = RemotePartition::new(p as u32, conn, Arc::clone(&epoch));
                remote.set_rpc_deadline(Some(DEFAULT_RPC_DEADLINE));
                remote
                    .init(InitConfig {
                        universe: config.grid.universe,
                        alpha: config.grid.alpha,
                        alen,
                        delta: config.delta,
                        propagation: config.propagation,
                        grouping: config.grouping,
                        safe_period: config.safe_period,
                        deliver_results: config.deliver_results,
                        system_max_speed: config.system_max_speed,
                        lease_secs: config.lease_secs,
                        heartbeat_secs: config.heartbeat_secs,
                        partition: p as u32,
                        num_partitions: n as u32,
                        store_dir: store_root
                            .as_ref()
                            .map(|r| r.join(format!("p{p}")).to_string_lossy().into_owned()),
                        store_fresh: false,
                    })
                    .unwrap_or_else(|e| panic!("partition {p} failed to initialize: {e}"));
                PartitionHandle::Remote(remote)
            })
            .collect();
        let bus_sink = Telemetry::new();
        let bus = LockstepTransport::new(BaseStationLayout::new(
            config.grid.universe,
            config.grid.alpha,
        ))
        .with_telemetry(bus_sink.clone());
        let mut this = Self::assemble(
            config,
            map,
            partitions,
            sinks,
            shared,
            Box::new(bus),
            bus_sink,
            epoch,
            alen,
        );
        this.store_root = store_root;
        this
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: Arc<ProtocolConfig>,
        map: PartitionMap,
        partitions: Vec<PartitionHandle>,
        sinks: Vec<Telemetry>,
        shared: Telemetry,
        bus: Box<dyn Transport<Envelope>>,
        bus_sink: Telemetry,
        epoch: Arc<AtomicU64>,
        alen: f64,
    ) -> Self {
        let n = partitions.len();
        let cells = config.grid.num_cells();
        ClusterServer {
            config,
            map,
            partitions,
            sinks,
            shared,
            bus,
            bus_sink,
            pending: BTreeMap::new(),
            next_qid: 0,
            now: 0.0,
            last_heartbeat: f64::NEG_INFINITY,
            ops: vec![0; n],
            cell_ops: vec![0; cells],
            epoch,
            alen,
            dead: BTreeSet::new(),
            unfenced: Vec::new(),
            lost_spans: BTreeMap::new(),
            registry: BTreeMap::new(),
            orphans: Vec::new(),
            store_root: None,
            stores: (0..n).map(|_| None).collect(),
        }
    }

    /// Whether any partition is hosted out-of-process.
    pub fn has_remote(&self) -> bool {
        self.partitions.iter().any(|p| p.is_remote())
    }

    /// Tells every remote partition process to exit its service loop.
    /// No-op for local partitions.
    pub fn shutdown_remote(&mut self) {
        for p in &self.partitions {
            if let PartitionHandle::Remote(r) = p {
                let _ = r.shutdown();
            }
        }
    }

    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The in-process server of partition `p`; `None` when the slot is
    /// remote (that surface is lockstep-only).
    pub fn partition(&self, p: usize) -> Option<&Server> {
        self.partitions[p].local()
    }

    /// Per-partition state weight `(focals, queries, stubs)`, local or
    /// remote, in one pipelined probe round — the load signal behind the
    /// rebalance telemetry. Zeroes for a dead peer.
    pub fn load_signals(&self) -> Vec<(u64, u64, u64)> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_load_signal())
            .collect();
        self.partitions
            .iter()
            .zip(probes)
            .map(|(p, pr)| p.finish_load_signal(pr))
            .collect()
    }

    /// The backend carrying the inter-server bus.
    pub fn bus_kind(&self) -> &'static str {
        self.bus.kind()
    }

    pub fn partition_map(&self) -> &PartitionMap {
        &self.map
    }

    /// Message-bus traffic meter (handoff + stub synchronization).
    pub fn bus_meter(&self) -> MessageMeter {
        self.bus.meter()
    }

    /// The bus's private telemetry sink (fault events, byte counters).
    pub fn bus_telemetry(&self) -> &Telemetry {
        &self.bus_sink
    }

    /// Injects a fault plan on the server↔server links: handoff and stub
    /// traffic gets dropped/duplicated like any other message.
    pub fn set_bus_fault(&mut self, plan: FaultPlan) {
        self.bus.set_fault(plan);
    }

    // --- durable trajectory logs (DESIGN.md §14) --------------------------

    /// Attaches per-partition durable logs at `<root>/p<N>` to an
    /// in-process deployment (builder style). Existing logs are replayed
    /// into their partitions first — restarting a whole lockstep cluster
    /// over the same root recovers its state — then every partition
    /// journals its ops from here on. Remote deployments pass the root to
    /// [`Self::new_remote_with_store`] instead (each process owns its log).
    pub fn with_store(mut self, root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let n = self.partitions.len();
        for p in 0..n {
            let PartitionHandle::Local(server) = &mut self.partitions[p] else {
                continue;
            };
            let dir = root.join(format!("p{p}"));
            let store = Store::open(StoreConfig::new(&dir, p as u32), self.sinks[p].clone())
                .unwrap_or_else(|e| panic!("opening store {}: {e}", dir.display()));
            let mut scratch_net =
                Net::new(BaseStationLayout::new(self.config.grid.universe, self.alen));
            let summary =
                store::replay_into(&dir, p as u32, server, &mut scratch_net, &self.sinks[p])
                    .unwrap_or_else(|e| panic!("replaying store {}: {e}", dir.display()));
            if summary.records_applied > 0 {
                // Historical side effects were delivered in the previous
                // life; only the rebuilt state is kept.
                server.take_outbox();
            }
            if store.next_seq() == 0 {
                store.append_record(&LogRecord::Meta {
                    partition: p as u32,
                    num_partitions: n as u32,
                });
            }
            server.set_journal(Some(Arc::new(store.clone())));
            self.stores[p] = Some(store);
        }
        self.store_root = Some(root);
        self
    }

    /// Whether this deployment journals to durable logs.
    pub fn has_store(&self) -> bool {
        self.store_root.is_some()
    }

    /// Journals an ownership-table install into every live in-process
    /// partition's log (remote partitions journal their own
    /// `InstallBounds` op inside the service loop).
    fn journal_bounds(&self, generation: u64, bounds: &[usize]) {
        let bounds: Vec<u64> = bounds.iter().map(|&b| b as u64).collect();
        for (p, slot) in self.stores.iter().enumerate() {
            let Some(st) = slot else { continue };
            if self.partitions[p].is_remote() || self.partition_down(p as u32) {
                continue;
            }
            st.append_record(&LogRecord::Bounds {
                generation,
                bounds: bounds.clone(),
            });
        }
    }

    /// Cuts a checkpoint of every live partition into its durable log
    /// (snapshot + segment GC — this is what bounds log growth). Returns
    /// the per-partition next sequence number, 0 for storeless or dead
    /// slots. No-op without a store.
    pub fn checkpoint_all(&mut self) -> Vec<u64> {
        (0..self.partitions.len())
            .map(|p| {
                if self.partition_down(p as u32) {
                    return 0;
                }
                match &self.partitions[p] {
                    PartitionHandle::Local(server) => match &self.stores[p] {
                        Some(st) => {
                            st.checkpoint(server.checkpoint_bytes());
                            st.next_seq()
                        }
                        None => 0,
                    },
                    h @ PartitionHandle::Remote(_) => h.checkpoint_remote().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Historical trajectory of `oid` over `[t0, t1]`, merged across every
    /// live partition's durable log (an object's samples land wherever its
    /// reports were journaled, so all logs are consulted). Empty without a
    /// store.
    pub fn trajectory(&self, oid: ObjectId, t0: f64, t1: f64) -> Vec<LinearMotion> {
        let mut out = Vec::new();
        for p in 0..self.partitions.len() {
            if self.partition_down(p as u32) {
                continue;
            }
            match &self.partitions[p] {
                PartitionHandle::Local(_) => {
                    if let Some(st) = &self.stores[p] {
                        out.extend(st.trajectory(oid, t0, t1).unwrap_or_default());
                    }
                }
                h @ PartitionHandle::Remote(_) => out.extend(h.trajectory_remote(oid, t0, t1)),
            }
        }
        store::sort_dedupe_motions(&mut out);
        out
    }

    /// Crash-recovery drill for in-process deployments: swaps partition
    /// `p`'s live server for one rebuilt purely from its durable log —
    /// replayed under a scratch scope, then rebound to the shared
    /// ownership table and epoch. State must be byte-identical afterwards
    /// (the replay-equivalence tests assert it); the rebuilt server
    /// resumes journaling to the same log.
    pub fn rebuild_partition_from_log(&mut self, p: u32) {
        let store = self.stores[p as usize]
            .clone()
            .expect("rebuild requires a store-backed in-process partition");
        let dir = self
            .store_root
            .as_ref()
            .expect("store root set with the stores")
            .join(format!("p{p}"));
        // Push buffered frames to disk first — replay reads the files, not
        // the writer's in-memory tail.
        store.flush();
        let scratch_map = PartitionMap::contiguous(&self.config.grid, self.partitions.len());
        let mut twin = Server::new(Arc::clone(&self.config))
            .with_telemetry(Telemetry::new())
            .with_scope(PartitionScope::new(
                p,
                Arc::clone(scratch_map.table()),
                Arc::new(AtomicU64::new(0)),
            ));
        let mut scratch_net =
            Net::new(BaseStationLayout::new(self.config.grid.universe, self.alen));
        store::replay_into(&dir, p, &mut twin, &mut scratch_net, &Telemetry::new())
            .unwrap_or_else(|e| panic!("replaying store {}: {e}", dir.display()));
        twin.take_outbox();
        twin.rebind_scope(PartitionScope::new(
            p,
            Arc::clone(self.map.table()),
            Arc::clone(&self.epoch),
        ));
        twin.set_telemetry(self.sinks[p as usize].clone());
        twin.set_journal(Some(Arc::new(store)));
        self.partitions[p as usize].replace_local(twin);
    }

    /// Uplinks handled with partition `p` as primary (scaling bench).
    pub fn partition_ops(&self, p: usize) -> u64 {
        self.ops[p]
    }

    /// The current partition-map generation (0 until the first rebalance).
    pub fn map_generation(&self) -> u64 {
        self.map.generation()
    }

    pub fn current_epoch(&self) -> u64 {
        self.partitions[0].current_epoch()
    }

    pub fn num_queries(&self) -> usize {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_num_queries())
            .collect();
        self.partitions
            .iter()
            .zip(probes)
            .map(|(p, pr)| p.finish_num_queries(pr))
            .sum()
    }

    /// All installed query ids, ascending (merged across partitions).
    pub fn query_ids(&self) -> Vec<QueryId> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_query_ids())
            .collect();
        let mut ids: Vec<QueryId> = self
            .partitions
            .iter()
            .zip(probes)
            .flat_map(|(p, pr)| p.finish_query_ids(pr))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Current result set of a query, wherever it is homed. Borrowed —
    /// available in lockstep deployments only; remote drivers use
    /// [`Self::fetch_query_result`].
    pub fn query_result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.partitions.iter().find_map(|s| s.query_result_ref(qid))
    }

    /// Owned copy of a query's result set, local or remote. All partitions
    /// are probed in one pipelined round; the query is homed on at most
    /// one, so the first hit wins.
    pub fn fetch_query_result(&self, qid: QueryId) -> Option<Vec<ObjectId>> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_query_result(qid))
            .collect();
        let mut found = None;
        for (p, pr) in self.partitions.iter().zip(probes) {
            if let Some(r) = p.finish_query_result(pr) {
                found.get_or_insert(r);
            }
        }
        found
    }

    pub fn query_focal(&self, qid: QueryId) -> Option<ObjectId> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_query_focal(qid))
            .collect();
        let mut found = None;
        for (p, pr) in self.partitions.iter().zip(probes) {
            if let Some(oid) = p.finish_query_focal(pr) {
                found.get_or_insert(oid);
            }
        }
        found
    }

    /// The partition currently holding the FOT row of `oid` (its home).
    /// One pipelined probe round instead of sequential per-partition
    /// round trips; `oid` is homed on at most one partition.
    fn find_focal(&self, oid: ObjectId) -> Option<usize> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_has_focal(oid))
            .collect();
        let mut found = None;
        for (i, (p, pr)) in self.partitions.iter().zip(probes).enumerate() {
            if p.finish_has_focal(pr) {
                found.get_or_insert(i);
            }
        }
        found
    }

    /// The partition currently homing query `qid`.
    fn find_query(&self, qid: QueryId) -> Option<usize> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_has_query(qid))
            .collect();
        let mut found = None;
        for (i, (p, pr)) in self.partitions.iter().zip(probes).enumerate() {
            if p.finish_has_query(pr) {
                found.get_or_insert(i);
            }
        }
        found
    }

    /// Drains every partition's outbox onto the bus (partition order) and
    /// applies the surviving frames. Called after every primitive
    /// operation so cross-partition state is in place before the next
    /// operation reads it. Message applications never emit follow-ups, so
    /// one round drains the system.
    fn pump_bus(&mut self) {
        for p in 0..self.partitions.len() {
            for (to, msg) in self.partitions[p].take_outbox() {
                self.bus
                    .send(NodeId(p as u32), Envelope { to, msg })
                    .expect("bus send failed");
            }
        }
        self.bus.flush().expect("bus flush failed");
        for (_, env) in self.bus.poll().expect("bus poll failed") {
            // Never deliver to a down partition: a remote would silently
            // drop the frame; a killed local slot holds a fresh empty
            // server that must not adopt migrated state. Captured frames
            // are re-routed (or consciously dropped) at the next fence.
            if self.partition_down(env.to) {
                self.orphans.push(env);
                continue;
            }
            self.partitions[env.to as usize].apply_cluster_msg(&env.msg);
        }
        debug_assert!(self
            .partitions
            .iter_mut()
            .all(|s| s.take_outbox().is_empty()));
    }

    /// Whether partition `p` is known dead: fenced off already, or its
    /// remote handle died mid-tick (classified transport failure) and the
    /// fence has not run yet.
    fn partition_down(&self, p: u32) -> bool {
        self.dead.contains(&p) || self.partitions[p as usize].crashed().is_some()
    }

    /// The lowest-indexed live partition — the shared-epoch anchor and
    /// counter home once partition 0 is allowed to die.
    fn first_live(&self) -> usize {
        (0..self.partitions.len())
            .find(|&p| !self.partition_down(p as u32))
            .expect("at least one partition must survive")
    }

    /// Folds the per-partition sinks into the shared protocol sink, in
    /// partition order.
    fn merge_sinks(&mut self) {
        for s in &self.sinks {
            self.shared.merge_registry(&s.drain());
        }
    }

    pub fn install_query(
        &mut self,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        net: &mut Net,
    ) -> QueryId {
        self.install_query_with_lifetime(focal, region, filter, None, net)
    }

    pub fn install_query_with_lifetime(
        &mut self,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        expires_at: Option<f64>,
        net: &mut Net,
    ) -> QueryId {
        let qid = QueryId(self.next_qid);
        self.next_qid += 1;
        let filter = Arc::new(filter);
        self.registry.insert(
            qid,
            RegisteredQuery {
                focal,
                region,
                filter: Arc::clone(&filter),
                expires_at,
            },
        );
        if let Some(home) = self.find_focal(focal) {
            self.partitions[home].complete_install_at(qid, focal, region, filter, expires_at, net);
            self.pump_bus();
        } else {
            let q = self.pending.entry(focal).or_default();
            let first = q.is_empty();
            q.push(PendingInstall {
                qid,
                region,
                filter,
                expires_at,
            });
            if first {
                self.sinks[0].incr(srv_keys::UNICAST_OPS);
                net.send_unicast(focal.node(), Downlink::PositionRequest);
            }
        }
        self.merge_sinks();
        qid
    }

    /// Removes a query from the system, wherever it is homed.
    pub fn remove_query(&mut self, qid: QueryId, net: &mut Net) -> bool {
        self.registry.remove(&qid);
        let Some(home) = self.find_query(qid) else {
            return false;
        };
        let removed = self.partitions[home].remove_query(qid, net);
        self.pump_bus();
        self.merge_sinks();
        removed
    }

    /// Removes every query whose lifetime has ended; ascending query-id
    /// order across all partitions, like the single server's SQT scan.
    pub fn expire_queries(&mut self, now: f64, net: &mut Net) -> Vec<QueryId> {
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_expired_query_ids(now))
            .collect();
        let mut expired: Vec<(usize, QueryId)> = Vec::new();
        for (p, (s, pr)) in self.partitions.iter().zip(probes).enumerate() {
            expired.extend(s.finish_expired_query_ids(pr).into_iter().map(|q| (p, q)));
        }
        expired.sort_unstable_by_key(|&(_, q)| q);
        let mut out = Vec::with_capacity(expired.len());
        for (home, qid) in expired {
            self.registry.remove(&qid);
            self.sinks[home].event(EventKind::QueryExpired { qid: qid.0 as u64 });
            self.partitions[home].remove_query(qid, net);
            self.pump_bus();
            out.push(qid);
        }
        self.merge_sinks();
        out
    }

    /// Periodic fault-tolerance duties; mirrors [`Server::heartbeat`]
    /// with the lease table sharded across partitions (expiry runs in
    /// ascending object order merged across them) and the digest beacon
    /// concatenating per-partition digests in partition order — exactly
    /// the single server's ascending-flat-index scan.
    pub fn heartbeat(&mut self, now: f64, net: &mut Net) {
        self.now = now;
        let probes: Vec<_> = self
            .partitions
            .iter_mut()
            .map(|p| p.start_set_time(now))
            .collect();
        for (p, (s, pr)) in self.partitions.iter().zip(probes).enumerate() {
            s.finish_unit(pr, "SetTime");
            self.sinks[p].set_now(now);
        }
        if !self.config.fault_tolerant() || now - self.last_heartbeat < self.config.heartbeat_secs {
            self.merge_sinks();
            return;
        }
        self.last_heartbeat = now;
        self.sinks[0].incr(srv_keys::HEARTBEATS);

        // (1) Lease expiry, ascending object id across all partitions.
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_expired_leases())
            .collect();
        let mut expired: Vec<(usize, ObjectId, Vec<QueryId>)> = Vec::new();
        for (p, (s, pr)) in self.partitions.iter().zip(probes).enumerate() {
            expired.extend(
                s.finish_expired_leases(pr)
                    .into_iter()
                    .map(|(o, q)| (p, o, q)),
            );
        }
        expired.sort_unstable_by_key(|&(_, oid, _)| oid);
        for (home, oid, qids) in expired {
            self.sinks[home].incr(srv_keys::LEASES_EXPIRED);
            self.sinks[home].event(EventKind::LeaseExpired { oid: oid.0 as u64 });
            for qid in qids {
                let (region, filter, expires_at) = self.partitions[home]
                    .reinstall_info(qid)
                    .expect("leased query in SQT");
                self.partitions[home].remove_query(qid, net);
                self.pump_bus();
                self.pending.entry(oid).or_default().push(PendingInstall {
                    qid,
                    region,
                    filter,
                    expires_at,
                });
            }
        }

        // (2) Retry pending installs.
        let waiting: Vec<ObjectId> = self.pending.keys().copied().collect();
        for oid in waiting {
            self.sinks[0].incr(srv_keys::UNICAST_OPS);
            net.send_unicast(oid.node(), Downlink::PositionRequest);
        }

        // (3) Digest beacon over the shared epoch (partitions share the
        // sequencer, so bumping through partition 0 is global).
        let epoch = self.bump_shared_epoch();
        let probes: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.start_digest_cells())
            .collect();
        let mut cell_digests = Vec::new();
        for (s, pr) in self.partitions.iter().zip(probes) {
            cell_digests.extend(s.finish_digest_cells(pr));
        }
        let sent = net.broadcast_all(Downlink::Heartbeat {
            epoch,
            cell_digests,
        });
        self.sinks[0].add(srv_keys::BROADCAST_OPS, sent as u64);
        self.merge_sinks();
    }

    fn bump_shared_epoch(&mut self) -> u64 {
        let p = self.first_live();
        self.partitions[p].bump_epoch_for_coordinator()
    }

    /// Drains and processes all pending uplink messages. Call once per
    /// tick — the shared agent network carries exactly the same uplink
    /// stream, in the same order, as a single-server deployment.
    pub fn tick(&mut self, net: &mut Net) {
        let uplinks = net.drain_uplinks();
        for (from, msg) in uplinks {
            self.handle_uplink(from, msg, net);
        }
        self.merge_sinks();
    }

    /// Processes one uplink, decomposed into owner-partition primitives.
    pub fn handle_uplink(&mut self, from: NodeId, msg: Uplink, net: &mut Net) {
        let primary_flat =
            Router::primary_cell(&self.config.grid, &msg).map(|c| self.config.grid.flat_index(c));
        let primary = primary_flat
            .map(|f| self.map.owner_of_flat(f) as usize)
            .or_else(|| match &msg {
                Uplink::ResultUpdate { changes, .. } => {
                    changes.first().and_then(|(q, _)| self.find_query(*q))
                }
                Uplink::GroupResultUpdate { focal, .. } => self.find_focal(*focal),
                _ => None,
            })
            .unwrap_or(0);
        if let Some(flat) = primary_flat {
            self.cell_ops[flat] += 1;
        }
        self.ops[primary] += 1;
        self.sinks[primary].incr(srv_keys::UPLINKS);
        // Any uplink from a focal object renews its lease, wherever the
        // FOT row is homed. Leases only matter under the fault-tolerance
        // layer; without it `last_heard` is never read.
        if self.config.fault_tolerant() {
            let probes: Vec<_> = self
                .partitions
                .iter_mut()
                .map(|p| p.start_renew_lease(ObjectId(from.0)))
                .collect();
            for (s, pr) in self.partitions.iter().zip(probes) {
                s.finish_unit(pr, "RenewLease");
            }
        }
        match msg {
            Uplink::VelocityReport { oid, motion } => {
                debug_assert_eq!(from.0, oid.0);
                let target = self.find_focal(oid).unwrap_or(primary);
                self.partitions[target].on_velocity_report(oid, motion, net);
                self.pump_bus();
            }
            Uplink::CellChange {
                oid,
                prev_cell,
                new_cell,
                motion,
            } => {
                self.sinks[primary].incr(srv_keys::CELL_CHANGES);
                self.cell_change(oid, prev_cell, new_cell, motion, net);
            }
            Uplink::ResultUpdate { oid, changes } => {
                self.sinks[primary].incr(srv_keys::RESULT_UPDATES);
                for (qid, is_target) in changes {
                    if let Some(home) = self.find_query(qid) {
                        self.partitions[home].apply_result_change(qid, oid, is_target, net);
                    }
                }
            }
            Uplink::GroupResultUpdate {
                oid,
                focal,
                mask,
                targets,
            } => {
                self.sinks[primary].incr(srv_keys::RESULT_UPDATES);
                if let Some(home) = self.find_focal(focal) {
                    self.partitions[home].apply_group_result_update(oid, focal, mask, targets, net);
                }
            }
            Uplink::PositionReply {
                oid,
                motion,
                max_vel,
            } => {
                let target = self.find_focal(oid).unwrap_or(primary);
                self.partitions[target].refresh_focal_motion(oid, motion, max_vel, true);
                self.pump_bus();
                self.complete_pending(oid, net);
            }
            Uplink::Resync {
                oid,
                cell,
                motion,
                max_vel,
                fresh,
            } => {
                self.resync(oid, cell, motion, max_vel, fresh, net);
            }
            Uplink::LqtSync { oid, entries } => {
                self.lqt_sync(oid, entries, net);
            }
        }
    }

    /// Cross-partition cell change: migrate the focal object's FOT/SQT
    /// rows to the partition owning the new cell (border handoff), then
    /// run the focal and fresh halves at their owners — the same primitive
    /// sequence, in the same order, as the single server.
    fn cell_change(
        &mut self,
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        motion: LinearMotion,
        net: &mut Net,
    ) {
        // Wire-carried cells may overshoot the grid (see Router docs);
        // clamp before any flat-index lookup.
        let new_cell = self.config.grid.clamp_cell(new_cell);
        let new_home = self.map.owner_of_cell(&self.config.grid, new_cell) as usize;
        if let Some(home) = self.find_focal(oid) {
            if home != new_home {
                if let Some(m) = self.partitions[home].extract_focal(oid) {
                    self.bus
                        .send(
                            NodeId(home as u32),
                            Envelope {
                                to: new_home as u32,
                                msg: m,
                            },
                        )
                        .expect("bus send failed");
                    self.pump_bus();
                }
            }
            // Re-resolve: under a faulty bus the migration may have been
            // lost, leaving the object temporarily homeless (repaired by
            // lease expiry, like any other lost state).
            if let Some(h) = self.find_focal(oid) {
                self.partitions[h].apply_cell_change_focal(oid, new_cell, motion, net);
                self.pump_bus();
            }
        }
        self.partitions[new_home].apply_cell_change_fresh(oid, prev_cell, new_cell, motion, net);
        self.pump_bus();
    }

    /// Completes the coordinator-owned deferred installs of `oid` at its
    /// home partition.
    fn complete_pending(&mut self, oid: ObjectId, net: &mut Net) {
        let Some(pending) = self.pending.remove(&oid) else {
            return;
        };
        // The FOT row normally exists by now, but the partition it was
        // just created on may have died mid-tick; keep the installs
        // deferred and let the heartbeat retry.
        let Some(home) = self.find_focal(oid) else {
            self.pending.insert(oid, pending);
            return;
        };
        for p in pending {
            self.partitions[home].complete_install_at(
                p.qid,
                oid,
                p.region,
                p.filter,
                p.expires_at,
                net,
            );
            self.pump_bus();
        }
    }

    /// The reconnect / digest-mismatch handshake, decomposed across
    /// partitions (see [`Server`]'s `on_resync` for the single-server
    /// original this mirrors step for step).
    fn resync(
        &mut self,
        oid: ObjectId,
        cell: CellId,
        motion: LinearMotion,
        max_vel: f64,
        fresh: bool,
        net: &mut Net,
    ) {
        let cell = self.config.grid.clamp_cell(cell);
        let has_pending = self.pending.contains_key(&oid);
        let home0 = self.find_focal(oid);
        // A focal crashed by a churn plan mid-handoff (or torn down by a
        // concurrent lease expiry) may have no FOT row left even though a
        // partition still answered `has_focal` a moment ago; treat any
        // missing piece as "no prior state" instead of panicking — the
        // lease teardown reclaims the queries.
        let prior = home0.and_then(|h| {
            Some((
                self.partitions[h].focal_motion(oid)?,
                self.partitions[h].focal_queries(oid)?,
            ))
        });
        let target = home0.unwrap_or_else(|| {
            self.map
                .owner_of_cell(&self.config.grid, self.config.grid.cell_of(motion.pos))
                as usize
        });
        self.partitions[target].refresh_focal_motion(oid, motion, max_vel, has_pending);
        self.pump_bus();
        if let Some((old_motion, queries)) = prior {
            if !queries.is_empty() {
                let home = home0.expect("prior implies a home");
                let reported: Vec<CellId> = queries
                    .iter()
                    .filter_map(|q| self.partitions[home].query_cell(*q))
                    .collect();
                let stale_cell = reported.iter().any(|&c| c != cell);
                if stale_cell {
                    // `reported` is non-empty here (`any` matched), so the
                    // migration has a well-defined previous cell; a focal
                    // whose queries vanished mid-handoff simply skips it.
                    let prev = reported[0];
                    self.sinks[self.map.owner_of_cell(&self.config.grid, cell) as usize]
                        .incr(srv_keys::CELL_CHANGES);
                    self.cell_change(oid, prev, cell, motion, net);
                } else if motion.tm > old_motion.tm {
                    self.partitions[home].on_velocity_report(oid, motion, net);
                    self.pump_bus();
                }
            }
        }
        if fresh {
            // Purge the crashed object from every result set, delivering
            // the deltas in ascending query order across all partitions.
            let mut stale: Vec<(usize, QueryId)> = Vec::new();
            for (p, s) in self.partitions.iter_mut().enumerate() {
                stale.extend(s.purge_object(oid).into_iter().map(|q| (p, q)));
            }
            stale.sort_unstable_by_key(|&(_, q)| q);
            self.sinks[0].add(srv_keys::STALE_RESULTS_PURGED, stale.len() as u64);
            for (home, qid) in stale {
                self.partitions[home].deliver_result_delta(qid, oid, false, net);
            }
        }
        self.complete_pending(oid, net);
        if let Some(home) = self.find_focal(oid) {
            self.partitions[home].focal_reassert(oid, net);
        }
        let owner = self.map.owner_of_cell(&self.config.grid, cell) as usize;
        self.partitions[owner].cell_sync_reply(oid, cell, net);
    }

    /// Soft-state refresh against an object's full local view, walked in
    /// ascending query order across all partitions.
    fn lqt_sync(&mut self, oid: ObjectId, entries: Vec<(QueryId, bool)>, net: &mut Net) {
        self.sinks[0].incr(srv_keys::LQT_SYNCS);
        let mentioned: BTreeMap<QueryId, bool> = entries.into_iter().collect();
        let mut qids: Vec<(usize, QueryId)> = Vec::new();
        for (p, s) in self.partitions.iter().enumerate() {
            qids.extend(s.query_ids().into_iter().map(|q| (p, q)));
        }
        qids.sort_unstable_by_key(|&(_, q)| q);
        let mut deltas: Vec<(usize, QueryId, bool)> = Vec::new();
        let mut stale = 0u64;
        for (home, qid) in qids {
            let is_target = mentioned.get(&qid).copied().unwrap_or(false);
            if self.partitions[home].lqt_reconcile_one(qid, oid, is_target) {
                if !is_target && !mentioned.contains_key(&qid) {
                    stale += 1;
                }
                deltas.push((home, qid, is_target));
            }
        }
        self.sinks[0].add(srv_keys::STALE_RESULTS_PURGED, stale);
        for (home, qid, entered) in deltas {
            self.partitions[home].deliver_result_delta(qid, oid, entered, net);
        }
    }

    /// Load-aware partition rebalancing: recomputes the block bounds from
    /// the per-cell primary-uplink load observed since the last install
    /// and migrates every piece of reassigned state under an *epoch
    /// fence*. Returns `true` when a new map generation was installed.
    ///
    /// The fence sequence (DESIGN.md §10):
    /// 1. quiesce the bus — drain any in-flight envelope against the old
    ///    owner table, so no transfer straddles two generations;
    /// 2. bump the shared epoch — a uniform shift of all later seq
    ///    stamps, invisible to agents (they only compare stamps) but a
    ///    clean pre/post separator in the event log;
    /// 3. install the new bounds, bumping the map generation every
    ///    [`PartitionScope`] resolves ownership through;
    /// 4. transfer the RQI rows of every reassigned cell verbatim
    ///    ([`ClusterMsg::RebalanceCells`], generation-stamped), then
    ///    rehome focal objects whose anchor cell changed owner through
    ///    the ordinary `MigrateFocal` machinery.
    ///
    /// Rebalancing must never change query results — every transfer is
    /// counter-neutral and order-preserving, so an N-partition run stays
    /// byte-identical to the single server whether or not (and whenever)
    /// this runs. The bus fault plan is suspended for the fence window:
    /// transfers are a coordinator control action whose loss would break
    /// that invariant, unlike data-path handoffs which lease-repair.
    pub fn rebalance(&mut self) -> bool {
        let n = self.partitions.len();
        // The load planner assumes every partition can own cells; while
        // any slot is dead (or a crash is awaiting its fence) the
        // recovery fences own the map.
        if !self.dead.is_empty() || !self.unfenced.is_empty() {
            return self.rebalance_skip(rebal_keys::SKIPPED_UNFENCED, skip_reason::UNFENCED);
        }
        if n <= 1 || self.cell_ops.iter().all(|&c| c == 0) {
            return self.rebalance_skip(rebal_keys::SKIPPED_NO_LOAD, skip_reason::NO_LOAD);
        }
        let old_bounds = self.map.bounds_snapshot();
        let new_bounds = plan_bounds(&self.cell_ops, n);
        if new_bounds == old_bounds {
            return self.rebalance_skip(rebal_keys::SKIPPED_UNCHANGED, skip_reason::UNCHANGED);
        }
        // (1) Quiesce: nothing may be in flight across the install.
        self.pump_bus();
        let saved_fault = self.bus.fault().clone();
        self.bus.set_fault(FaultPlan::none());
        // A peer that died mid-tick has a classified dead handle; fencing
        // around a corpse would strand its exports. Leave the old
        // generation installed and let the next `recover_crashed` pass
        // fence the dead partition first.
        if let Some(p) = (0..n as u32).find(|&p| self.partition_down(p)) {
            self.bus.set_fault(saved_fault);
            self.rebalance_abort(p);
            return false;
        }
        // (2) + (3) Fence bump, then the install itself. Remote ownership
        // tables sync BEFORE any transfer leaves the coordinator: a
        // `RebalanceCells` cut for generation G is a whole-message no-op
        // at any other G, so the receiving table must already be at G.
        self.bump_shared_epoch();
        let generation = self.map.install(&new_bounds);
        self.journal_bounds(generation, &new_bounds);
        let probes: Vec<_> = self
            .partitions
            .iter_mut()
            .map(|h| h.start_install_bounds(generation, &new_bounds))
            .collect();
        for (h, pr) in self.partitions.iter().zip(probes) {
            h.finish_unit(pr, "InstallBounds");
        }

        // (4a) RQI rows of every reassigned cell, batched per (from, to)
        // pair in ascending partition order. Every exporter cuts its rows
        // concurrently (pipelined); replies and bus sends keep the batch
        // order, so the bus sees the same traffic as a sequential pass.
        let owner_in = |bounds: &[usize], flat: usize| -> u32 {
            (bounds.partition_point(|&b| b <= flat) - 1) as u32
        };
        let mut moves: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for flat in 0..self.cell_ops.len() {
            let from = owner_in(&old_bounds, flat);
            let to = owner_in(&new_bounds, flat);
            if from != to {
                moves.entry((from, to)).or_default().push(flat);
            }
        }
        let cells_moved: usize = moves.values().map(Vec::len).sum();
        let mut export_probes = Vec::with_capacity(moves.len());
        for (&(from, _), flats) in &moves {
            export_probes
                .push(self.partitions[from as usize].start_export_cells(flats, generation));
        }
        let mut exports = Vec::with_capacity(moves.len());
        for ((&(from, to), _), pr) in moves.iter().zip(export_probes) {
            exports.push((
                from,
                to,
                self.partitions[from as usize].finish_export_cells(pr),
            ));
        }
        let mut aborted = false;
        for (from, to, msg) in exports {
            if let Some(msg) = msg {
                if !self.fence_send(from, Envelope { to, msg }) {
                    aborted = true;
                    break;
                }
            }
        }

        // (4b) Rehome focal objects whose anchor cell changed owner,
        // ascending object id — the same MigrateFocal machinery as a
        // border handoff. Census and extraction are pipelined rounds.
        if !aborted {
            self.pump_bus();
            let probes: Vec<_> = self
                .partitions
                .iter()
                .map(|h| h.start_focal_ids())
                .collect();
            let ids: Vec<Vec<ObjectId>> = self
                .partitions
                .iter()
                .zip(probes)
                .map(|(h, pr)| h.finish_focal_ids(pr))
                .collect();
            let mut anchors = Vec::new();
            for (p, oids) in ids.iter().enumerate() {
                for &oid in oids {
                    anchors.push((p, oid, self.partitions[p].start_focal_anchor_cell(oid)));
                }
            }
            let mut rehome: Vec<(ObjectId, usize, usize)> = Vec::new();
            for (p, oid, pr) in anchors {
                let Some(cell) = self.partitions[p].finish_focal_anchor_cell(pr) else {
                    continue;
                };
                let to = self.map.owner_of_cell(&self.config.grid, cell) as usize;
                if to != p {
                    rehome.push((oid, p, to));
                }
            }
            rehome.sort_unstable();
            let mut extract_probes = Vec::with_capacity(rehome.len());
            for &(oid, from, _) in &rehome {
                extract_probes.push(self.partitions[from].start_extract_focal(oid));
            }
            let mut migrations = Vec::with_capacity(rehome.len());
            for (&(oid, from, to), pr) in rehome.iter().zip(extract_probes) {
                let _ = oid;
                migrations.push((from, to, self.partitions[from].finish_extract_focal(pr)));
            }
            for (from, to, msg) in migrations {
                if let Some(msg) = msg {
                    if !self.fence_send(from as u32, Envelope { to: to as u32, msg }) {
                        aborted = true;
                        break;
                    }
                }
            }
        }

        // Hygiene: stubs whose monitoring region left a shrunk span.
        if !aborted {
            self.pump_bus();
            let probes: Vec<_> = self
                .partitions
                .iter_mut()
                .map(|h| h.start_prune_stubs())
                .collect();
            for (h, pr) in self.partitions.iter().zip(probes) {
                h.finish_unit(pr, "PruneStubs");
            }
        }
        self.bus.set_fault(saved_fault);
        // Start the next observation window fresh.
        for c in self.cell_ops.iter_mut() {
            *c = 0;
        }
        self.bus_sink.incr(rebal_keys::INSTALLS);
        self.bus_sink
            .add(rebal_keys::CELLS_MOVED, cells_moved as u64);
        self.bus_sink.event(EventKind::RebalanceInstalled {
            generation,
            cells: cells_moved as u64,
        });
        true
    }

    /// Records a rebalance round that did nothing: the shared `skipped`
    /// counter, a per-reason counter, and a diagnosable event — a
    /// deployment whose map never moves shows up in `--metrics-out`
    /// instead of silently running the install-time map.
    fn rebalance_skip(&self, key: &'static str, reason: u64) -> bool {
        self.bus_sink.incr(rebal_keys::SKIPPED);
        self.bus_sink.incr(key);
        self.bus_sink.event(EventKind::RebalanceSkipped { reason });
        false
    }

    /// Records a fence abandoned because `partition` died under it.
    fn rebalance_abort(&self, partition: u32) {
        self.bus_sink.incr(rebal_keys::ABORTS);
        self.bus_sink.event(EventKind::RebalanceAborted {
            partition: partition as u64,
        });
    }

    /// Sends one fence transfer on the bus, classifying failure the way
    /// the RPC path does: peer death records an abort (the next
    /// `recover_crashed` pass fences the corpse and failover repairs the
    /// lost rows) instead of killing the coordinator mid-fence; anything
    /// else is a protocol bug and still panics.
    fn fence_send(&mut self, from: u32, env: Envelope) -> bool {
        let to = env.to;
        match self.bus.send(NodeId(from), env) {
            Ok(()) => true,
            Err(e) if e.is_peer_death() => {
                self.rebalance_abort(to);
                false
            }
            Err(e) => panic!("bus send failed during a fence: {e}"),
        }
    }

    // --- partition crash recovery (DESIGN.md §13) -------------------------

    /// Partitions currently fenced off as dead, ascending.
    pub fn dead_partitions(&self) -> Vec<u32> {
        self.dead.iter().copied().collect()
    }

    /// Installs (or clears) the per-RPC read deadline on every remote
    /// handle, so a partition process that hangs without closing its
    /// socket surfaces as a classified [`TransportError::Timeout`] instead
    /// of blocking the coordinator forever.
    pub fn set_rpc_deadline(&self, dur: Option<std::time::Duration>) {
        for p in &self.partitions {
            p.set_rpc_deadline(dur);
        }
    }

    /// In-process crash injection: drops partition `p`'s entire state on
    /// the floor — the lockstep analogue of `kill -9` on a partition
    /// process — and records it for the next [`Self::recover_crashed`]
    /// fence. The slot is swapped to a fresh empty scoped server so a
    /// later [`Self::respawn_partition`] models a restarted process.
    pub fn kill_partition(&mut self, p: u32) {
        assert!(
            !self.partitions[p as usize].is_remote(),
            "remote partitions die for real; kill the process instead"
        );
        if self.dead.contains(&p) {
            return;
        }
        let fresh = Server::new(Arc::clone(&self.config))
            .with_telemetry(self.sinks[p as usize].clone())
            .with_scope(PartitionScope::new(
                p,
                Arc::clone(self.map.table()),
                Arc::clone(&self.epoch),
            ));
        self.partitions[p as usize].replace_local(fresh);
        self.dead.insert(p);
        self.unfenced.push(p);
        self.bus_sink.incr(rec_keys::CRASH_DETECTIONS);
        self.bus_sink.event(EventKind::PartitionCrashed {
            partition: p as u64,
        });
    }

    /// Scans for partitions that died since the last pass: remote handles
    /// whose RPC path hit a classified transport failure mid-tick, plus an
    /// active liveness probe (one trivial round trip per live remote, so a
    /// peer that died silently between ticks is caught here rather than
    /// corrupting the next fan-out).
    fn detect_crashes(&mut self) {
        let mut newly = Vec::new();
        for p in 0..self.partitions.len() as u32 {
            if self.dead.contains(&p) {
                continue;
            }
            let h = &self.partitions[p as usize];
            if h.crashed().is_some() || !h.probe_alive() {
                newly.push(p);
            }
        }
        for p in newly {
            self.dead.insert(p);
            self.unfenced.push(p);
            self.bus_sink.incr(rec_keys::CRASH_DETECTIONS);
            self.bus_sink.event(EventKind::PartitionCrashed {
                partition: p as u64,
            });
        }
    }

    /// Detects dead partitions and runs the failover fence over every one
    /// not yet fenced. Returns `None` when nothing new was found. Call at
    /// tick boundaries (next to [`Self::rebalance`]); the per-tick cost
    /// with all partitions healthy is one liveness probe per remote.
    pub fn recover_crashed(&mut self, net: &mut Net) -> Option<RecoveryReport> {
        self.detect_crashes();
        if self.unfenced.is_empty() {
            return None;
        }
        let newly = std::mem::take(&mut self.unfenced);
        Some(self.fail_over(newly, net))
    }

    /// The failover fence: reassigns every cell owned by the newly dead
    /// partitions to survivors under an epoch fence, re-routes orphaned
    /// bus traffic, and re-enters lost queries into the pending-install
    /// pipeline. Unlike a rebalance, no state rides along — the dead
    /// rows are unrecoverable. Each adopter rebuilds what it can from its
    /// own SQT and stubs ([`ClusterMsg::RecoverCells`]); everything else
    /// reconverges through the §8 machinery (heartbeat digests → agent
    /// `Resync` → re-install at the new owners).
    fn fail_over(&mut self, newly: Vec<u32>, net: &mut Net) -> RecoveryReport {
        let n = self.partitions.len();
        assert!(
            self.dead.len() < n,
            "every partition is dead; no survivor can adopt the cells"
        );
        // (1) Quiesce: live traffic drains; frames to down partitions are
        // captured in `orphans` by the pump.
        self.pump_bus();
        let saved_fault = self.bus.fault().clone();
        self.bus.set_fault(FaultPlan::none());
        // (2) Fence bump — post-fence re-installs carry seq stamps above
        // anything a stale stub still holds.
        let epoch = self.bump_shared_epoch();
        self.bus_sink.incr(rec_keys::FENCES);

        // (3) Degenerate rebalance: record each dead partition's span for
        // a later re-adoption, zero its width, and split every maximal
        // dead run between its nearest live neighbors (midpoint split —
        // each block stays contiguous).
        let old_bounds = self.map.bounds_snapshot();
        for &p in &newly {
            self.lost_spans
                .insert(p, (old_bounds[p as usize], old_bounds[p as usize + 1]));
        }
        let alive: Vec<bool> = (0..n).map(|i| !self.dead.contains(&(i as u32))).collect();
        let mut w: Vec<usize> = (0..n).map(|i| old_bounds[i + 1] - old_bounds[i]).collect();
        let mut i = 0;
        while i < n {
            if alive[i] {
                i += 1;
                continue;
            }
            let start = i;
            let mut run = 0usize;
            while i < n && !alive[i] {
                run += w[i];
                w[i] = 0;
                i += 1;
            }
            let left = (0..start).rev().find(|&j| alive[j]);
            let right = (i..n).find(|&j| alive[j]);
            match (left, right) {
                (Some(l), Some(r)) => {
                    let half = run / 2;
                    w[l] += half;
                    w[r] += run - half;
                }
                (Some(l), None) => w[l] += run,
                (None, Some(r)) => w[r] += run,
                (None, None) => unreachable!("a live partition exists"),
            }
        }
        let mut new_bounds = vec![0usize; n + 1];
        for i in 0..n {
            new_bounds[i + 1] = new_bounds[i] + w[i];
        }
        let generation = self.map.install(&new_bounds);
        self.journal_bounds(generation, &new_bounds);
        for (p, &live) in alive.iter().enumerate() {
            if live {
                self.partitions[p].install_bounds(generation, &new_bounds);
            }
        }

        // (4) Orphaned envelopes, re-routed under the new map. A focal
        // migration caught mid-handoff goes to the new owner of its
        // anchor cell; stub synchronization is ownership- and seq-guarded
        // (idempotent), so every live partition gets a copy; stale
        // generation-stamped transfers are dead by construction. Runs
        // BEFORE the RecoverCells rebuild so a re-routed home row is in
        // the adopter's SQT when its new cells' RQI rows are recomputed.
        let orphans = std::mem::take(&mut self.orphans);
        let mut rerouted = 0usize;
        let mut dropped = 0usize;
        for env in orphans {
            match &env.msg {
                ClusterMsg::MigrateFocal {
                    motion, queries, ..
                } => {
                    let anchor = queries
                        .first()
                        .map(|q| q.curr_cell)
                        .unwrap_or_else(|| self.config.grid.cell_of(motion.pos));
                    let to = self.map.owner_of_cell(&self.config.grid, anchor) as usize;
                    if alive[to] {
                        self.partitions[to].apply_cluster_msg(&env.msg);
                        rerouted += 1;
                    } else {
                        dropped += 1;
                    }
                }
                ClusterMsg::StubUpdate { .. }
                | ClusterMsg::StubMotion { .. }
                | ClusterMsg::StubRemove { .. } => {
                    for (p, &live) in alive.iter().enumerate() {
                        if live {
                            self.partitions[p].apply_cluster_msg(&env.msg);
                        }
                    }
                    rerouted += 1;
                }
                ClusterMsg::RebalanceCells { .. } | ClusterMsg::RecoverCells { .. } => {
                    dropped += 1;
                }
            }
        }
        self.pump_bus();
        self.bus_sink
            .add(rec_keys::ENVELOPES_REROUTED, rerouted as u64);
        self.bus_sink
            .add(rec_keys::ENVELOPES_DROPPED, dropped as u64);

        // (5) Adopters rebuild the RQI rows of their new cells from their
        // own query tables; generation-guarded exactly like a rebalance
        // transfer. Applied directly — this is a coordinator control
        // action, not data-path traffic.
        let owner_in = |bounds: &[usize], flat: usize| -> u32 {
            (bounds.partition_point(|&b| b <= flat) - 1) as u32
        };
        let mut adopt: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut cells_reassigned = 0usize;
        for &p in &newly {
            let (s, e) = self.lost_spans[&p];
            cells_reassigned += e - s;
            for flat in s..e {
                adopt
                    .entry(owner_in(&new_bounds, flat))
                    .or_default()
                    .push(flat as u32);
            }
            self.bus_sink.event(EventKind::PartitionFailedOver {
                partition: p as u64,
                cells: (e - s) as u64,
            });
        }
        for (to, cells) in adopt {
            let msg = ClusterMsg::RecoverCells {
                generation,
                epoch,
                cells,
            };
            self.partitions[to as usize].apply_cluster_msg(&msg);
        }
        self.bus_sink
            .add(rec_keys::CELLS_FAILED_OVER, cells_reassigned as u64);

        // (6) Hygiene, then re-enter every query lost with the dead
        // partitions into the pending-install pipeline: the agent answers
        // the PositionRequest, the focal row re-forms at the new owner,
        // and the deferred install completes with the ORIGINAL query id
        // (result digests stay comparable with an uncrashed run).
        for (p, &live) in alive.iter().enumerate() {
            if live {
                self.partitions[p].prune_stubs();
            }
        }
        let mut present: BTreeSet<QueryId> = BTreeSet::new();
        for (p, &live) in alive.iter().enumerate() {
            if live {
                present.extend(self.partitions[p].query_ids());
            }
        }
        for q in self.pending.values() {
            present.extend(q.iter().map(|pi| pi.qid));
        }
        let lost: Vec<QueryId> = self
            .registry
            .keys()
            .copied()
            .filter(|q| !present.contains(q))
            .collect();

        // (6b) Prefer recovering lost queries by replaying the dead
        // partitions' durable logs: a replayed scratch server holds the
        // exact focal motion, query spec and result set at the crash, so
        // the query re-forms at its new owner immediately — skipping the
        // pending + PositionRequest round trip through the agent. Queries
        // no log can produce (storeless deployment, torn or stale log)
        // fall back to the pending-install pipeline below.
        let mut queries_replayed = 0usize;
        let mut fallback: Vec<QueryId> = Vec::new();
        if lost.is_empty() || self.store_root.is_none() {
            fallback = lost;
        } else {
            let root = self.store_root.clone().expect("checked above");
            let mut scratches: Vec<Server> = Vec::new();
            for &p in &newly {
                if let Some(st) = &self.stores[p as usize] {
                    st.flush();
                }
                let dir = root.join(format!("p{p}"));
                let scratch_map = PartitionMap::contiguous(&self.config.grid, n);
                let mut scratch = Server::new(Arc::clone(&self.config))
                    .with_telemetry(Telemetry::new())
                    .with_scope(PartitionScope::new(
                        p,
                        Arc::clone(scratch_map.table()),
                        Arc::new(AtomicU64::new(0)),
                    ));
                let mut scratch_net =
                    Net::new(BaseStationLayout::new(self.config.grid.universe, self.alen));
                if store::replay_into(&dir, p, &mut scratch, &mut scratch_net, &Telemetry::new())
                    .is_ok()
                {
                    scratch.take_outbox();
                    scratches.push(scratch);
                }
            }
            for qid in lost {
                let (focal, region, filter, expires_at) = {
                    let r = &self.registry[&qid];
                    (r.focal, r.region, Arc::clone(&r.filter), r.expires_at)
                };
                let recovered = scratches.iter().find(|s| s.has_query(qid)).and_then(|s| {
                    debug_assert_eq!(
                        s.query_focal(qid),
                        Some(focal),
                        "journaled query {qid:?} disagrees with the registry"
                    );
                    let motion = s.focal_motion(focal)?;
                    let max_vel = s
                        .focal_max_vel(focal)
                        .unwrap_or(self.config.system_max_speed);
                    let members: Vec<ObjectId> = s
                        .query_result(qid)
                        .map(|m| m.iter().copied().collect())
                        .unwrap_or_default();
                    Some((motion, max_vel, members))
                });
                let Some((motion, max_vel, members)) = recovered else {
                    fallback.push(qid);
                    continue;
                };
                let home = self
                    .map
                    .owner_of_cell(&self.config.grid, self.config.grid.cell_of(motion.pos))
                    as usize;
                self.partitions[home].refresh_focal_motion(focal, motion, max_vel, true);
                self.pump_bus();
                self.partitions[home]
                    .complete_install_at(qid, focal, region, filter, expires_at, net);
                self.pump_bus();
                // Restore the journaled result set quietly: the members
                // were already announced to the agent before the crash.
                for m in members {
                    self.partitions[home].lqt_reconcile_one(qid, m, true);
                }
                queries_replayed += 1;
            }
        }

        let mut focals: BTreeSet<ObjectId> = BTreeSet::new();
        for qid in &fallback {
            let r = &self.registry[qid];
            focals.insert(r.focal);
            self.pending
                .entry(r.focal)
                .or_default()
                .push(PendingInstall {
                    qid: *qid,
                    region: r.region,
                    filter: Arc::clone(&r.filter),
                    expires_at: r.expires_at,
                });
        }
        let first_live = self.first_live();
        for oid in &focals {
            self.sinks[first_live].incr(srv_keys::UNICAST_OPS);
            net.send_unicast(oid.node(), Downlink::PositionRequest);
        }
        self.bus_sink
            .add(rec_keys::QUERIES_REINSTALLED, fallback.len() as u64);
        self.bus_sink
            .add(rec_keys::QUERIES_REPLAYED, queries_replayed as u64);

        self.bus.set_fault(saved_fault);
        // Ownership moved; the load observation window restarts.
        for c in self.cell_ops.iter_mut() {
            *c = 0;
        }
        self.merge_sinks();
        RecoveryReport {
            partitions: newly,
            cells_reassigned,
            queries_reinstalled: fallback.len(),
            envelopes_rerouted: rerouted,
            queries_replayed,
        }
    }

    /// Brings a killed in-process partition back: its slot already holds
    /// the fresh empty server installed by [`Self::kill_partition`], so
    /// this is purely the re-adoption fence. The failover fence must have
    /// run first (the span to re-adopt is recorded there).
    pub fn respawn_partition(&mut self, p: u32) {
        assert!(self.dead.contains(&p), "respawn of a live partition");
        assert!(
            !self.unfenced.contains(&p),
            "failover fence must run before a respawn"
        );
        self.dead.remove(&p);
        self.reattach_store_fresh(p);
        self.readopt(p);
    }

    /// Post-failover store hygiene for an in-process respawn: the dead
    /// partition's journal is stale (the survivors own its span's live
    /// state now), so the directory is wiped and a fresh log attached —
    /// the re-adoption transfers journal into it from sequence zero.
    fn reattach_store_fresh(&mut self, p: u32) {
        let Some(root) = &self.store_root else { return };
        if self.partitions[p as usize].is_remote() {
            return;
        }
        let dir = root.join(format!("p{p}"));
        store::wipe_dir(&dir)
            .unwrap_or_else(|e| panic!("wiping stale store {}: {e}", dir.display()));
        let st = Store::open(StoreConfig::new(&dir, p), self.sinks[p as usize].clone())
            .unwrap_or_else(|e| panic!("reopening store {}: {e}", dir.display()));
        st.append_record(&LogRecord::Meta {
            partition: p,
            num_partitions: self.partitions.len() as u32,
        });
        if let PartitionHandle::Local(server) = &mut self.partitions[p as usize] {
            server.set_journal(Some(Arc::new(st.clone())));
        }
        self.stores[p as usize] = Some(st);
    }

    /// Respawned-process variant: wraps the supervisor's fresh connection
    /// (hello exchange completed) in a new remote handle — the dead one is
    /// never reused — re-initializes the process with the deployment
    /// config, syncs its ownership table and re-adopts its span.
    pub fn respawn_remote(&mut self, p: u32, conn: FramedConn) -> Result<(), TransportError> {
        assert!(self.dead.contains(&p), "respawn of a live partition");
        assert!(
            !self.unfenced.contains(&p),
            "failover fence must run before a respawn"
        );
        let remote = RemotePartition::new(p, conn, Arc::clone(&self.epoch));
        remote.set_rpc_deadline(Some(DEFAULT_RPC_DEADLINE));
        remote.init(InitConfig {
            universe: self.config.grid.universe,
            alpha: self.config.grid.alpha,
            alen: self.alen,
            delta: self.config.delta,
            propagation: self.config.propagation,
            grouping: self.config.grouping,
            safe_period: self.config.safe_period,
            deliver_results: self.config.deliver_results,
            system_max_speed: self.config.system_max_speed,
            lease_secs: self.config.lease_secs,
            heartbeat_secs: self.config.heartbeat_secs,
            partition: p,
            num_partitions: self.partitions.len() as u32,
            store_dir: self
                .store_root
                .as_ref()
                .map(|r| r.join(format!("p{p}")).to_string_lossy().into_owned()),
            // The failover fence already ran: the survivors own this
            // span's live state, so the old journal is stale — the
            // respawned process wipes it and journals from scratch.
            store_fresh: true,
        })?;
        self.partitions[p as usize] = PartitionHandle::Remote(remote);
        self.dead.remove(&p);
        self.readopt(p);
        Ok(())
    }

    /// The re-adoption fence: restores the respawned partition's saved
    /// span (clamping the current cuts — the exact inverse of the
    /// failover split when no rebalance intervened) and moves the interim
    /// owners' state back through the rebalance transfer machinery, this
    /// time with content (the survivors' rows are live state worth
    /// preserving, unlike the crashed rows the failover wrote off).
    fn readopt(&mut self, p: u32) {
        let n = self.partitions.len();
        debug_assert!(
            self.unfenced.is_empty(),
            "re-adoption requires every crash to be fenced"
        );
        // (1) Quiesce + fence.
        self.pump_bus();
        let saved_fault = self.bus.fault().clone();
        self.bus.set_fault(FaultPlan::none());
        self.bump_shared_epoch();
        self.bus_sink.incr(rec_keys::FENCES);

        // (2) Restore the saved span by clamping: cuts at or below `p`
        // come down to the span start, cuts above go up to its end.
        let (s, e) = self
            .lost_spans
            .remove(&p)
            .expect("failover recorded the lost span");
        let cur = self.map.bounds_snapshot();
        let mut new_bounds = cur.clone();
        for b in new_bounds.iter_mut().take(p as usize + 1).skip(1) {
            *b = (*b).min(s);
        }
        for b in new_bounds.iter_mut().take(n).skip(p as usize + 1) {
            *b = (*b).max(e);
        }
        let generation = self.map.install(&new_bounds);
        self.journal_bounds(generation, &new_bounds);
        for q in 0..n {
            if !self.dead.contains(&(q as u32)) {
                self.partitions[q].install_bounds(generation, &new_bounds);
            }
        }
        // The respawned slot starts at time zero; align it before any
        // lease-stamped rows arrive.
        self.partitions[p as usize].set_time(self.now);

        // (3) Transfer every reassigned cell verbatim from its interim
        // owner (always live — failover only assigns to survivors).
        let owner_in = |bounds: &[usize], flat: usize| -> u32 {
            (bounds.partition_point(|&b| b <= flat) - 1) as u32
        };
        let mut moves: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for flat in 0..self.cell_ops.len() {
            let from = owner_in(&cur, flat);
            let to = owner_in(&new_bounds, flat);
            if from != to {
                moves.entry((from, to)).or_default().push(flat);
            }
        }
        let mut readopted = 0usize;
        for ((from, to), flats) in moves {
            readopted += flats.len();
            if let Some(msg) = self.partitions[from as usize].export_cells(&flats, generation) {
                self.fence_send(from, Envelope { to, msg });
            }
        }
        self.pump_bus();

        // (4) Rehome focal objects whose anchor cell went home, ascending
        // object id — the same machinery as a rebalance.
        let mut rehome: Vec<(ObjectId, usize, usize)> = Vec::new();
        for (q, h) in self.partitions.iter().enumerate() {
            if self.dead.contains(&(q as u32)) {
                continue;
            }
            for oid in h.focal_ids() {
                let Some(cell) = h.focal_anchor_cell(oid) else {
                    continue;
                };
                let to = self.map.owner_of_cell(&self.config.grid, cell) as usize;
                if to != q {
                    rehome.push((oid, q, to));
                }
            }
        }
        rehome.sort_unstable();
        for (oid, from, to) in rehome {
            if let Some(m) = self.partitions[from].extract_focal(oid) {
                self.fence_send(
                    from as u32,
                    Envelope {
                        to: to as u32,
                        msg: m,
                    },
                );
            }
        }
        self.pump_bus();

        // (5) Hygiene on the shrunk survivors.
        for q in 0..n {
            if !self.dead.contains(&(q as u32)) {
                self.partitions[q].prune_stubs();
            }
        }
        self.bus.set_fault(saved_fault);
        for c in self.cell_ops.iter_mut() {
            *c = 0;
        }
        self.bus_sink
            .add(rec_keys::CELLS_READOPTED, readopted as u64);
        self.bus_sink.incr(rec_keys::RESPAWNS);
        self.bus_sink.event(EventKind::PartitionRespawned {
            partition: p as u64,
        });
        self.merge_sinks();
    }

    /// Structural self-check: every partition's local invariants, plus
    /// the cross-partition ones — each query homed on exactly one
    /// partition, each focal object on exactly one partition.
    pub fn check_invariants(&self) {
        for s in &self.partitions {
            s.check_invariants();
        }
        let mut seen_q: BTreeSet<QueryId> = BTreeSet::new();
        for s in &self.partitions {
            for q in s.query_ids() {
                assert!(seen_q.insert(q), "query {q:?} homed on two partitions");
            }
        }
        let mut ids = self.query_ids();
        ids.dedup();
        assert_eq!(ids.len(), seen_q.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_core::QueryMigration;
    use mobieyes_geo::{Grid, GridRect, Point, Rect, Vec2};
    use mobieyes_net::BaseStationLayout;

    fn universe() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    /// A 4-partition lockstep cluster over a 20×20 grid (100 flats each).
    fn test_cluster(n: usize) -> (ClusterServer, Net) {
        let config = Arc::new(ProtocolConfig::new(Grid::new(universe(), 5.0)));
        let cluster = ClusterServer::new(config, n, Telemetry::new());
        let net = Net::new(BaseStationLayout::new(universe(), 10.0));
        (cluster, net)
    }

    /// A focal-row migration anchored at `cell`, carrying one query.
    fn migrate_msg(oid: u32, qid: u32, cell: CellId) -> ClusterMsg {
        let pos = Point::new(cell.x as f64 * 5.0 + 2.5, cell.y as f64 * 5.0 + 2.5);
        ClusterMsg::MigrateFocal {
            oid: ObjectId(oid),
            motion: LinearMotion::new(pos, Vec2::new(0.0, 0.0), 0.0),
            max_vel: 0.05,
            used_slots: 0b1,
            last_heard: 0.0,
            epoch: 0,
            queries: vec![QueryMigration {
                spec: mobieyes_core::QuerySpec {
                    qid: QueryId(qid),
                    region: QueryRegion::circle(2.5),
                    filter: Arc::new(Filter::True),
                    slot: 0,
                    seq: 1,
                },
                curr_cell: cell,
                mon_region: GridRect {
                    x0: cell.x.saturating_sub(1),
                    y0: cell.y.saturating_sub(1),
                    x1: cell.x + 1,
                    y1: cell.y + 1,
                },
                expires_at: None,
                result: vec![],
            }],
        }
    }

    /// Satellite regression: a `MigrateFocal` in flight to a partition
    /// that dies before delivery must be re-routed to the post-fence
    /// owner of its anchor cell — not dropped, and never adopted by the
    /// fresh empty server occupying the dead slot.
    #[test]
    fn orphaned_migrate_focal_reroutes_after_fence() {
        let (mut cluster, mut net) = test_cluster(4);
        // Flat 250 = cell (10, 12), owned by partition 2 under the
        // contiguous map; after the midpoint split it belongs to 3.
        let cell = cluster.config.grid.cell_from_flat(250);
        cluster
            .bus
            .send(
                NodeId(0),
                Envelope {
                    to: 2,
                    msg: migrate_msg(7, 3, cell),
                },
            )
            .expect("bus send");
        cluster.bus.flush().expect("bus flush");
        cluster.kill_partition(2);
        let report = cluster
            .recover_crashed(&mut net)
            .expect("kill must be detected and fenced");
        assert_eq!(report.partitions, vec![2]);
        assert_eq!(report.cells_reassigned, 100);
        assert_eq!(report.envelopes_rerouted, 1, "the migration is re-routed");
        assert!(
            cluster
                .partition(3)
                .expect("lockstep")
                .has_focal(ObjectId(7)),
            "the new owner of the anchor cell adopts the focal"
        );
        assert!(cluster
            .partition(3)
            .expect("lockstep")
            .has_query(QueryId(3)));
        assert!(
            !cluster
                .partition(2)
                .expect("lockstep")
                .has_focal(ObjectId(7)),
            "the dead slot's fresh server must not adopt migrated state"
        );
        // A second pass finds nothing new to fence.
        assert!(cluster.recover_crashed(&mut net).is_none());
        cluster.check_invariants();
    }

    /// The failover split halves a dead run between its live neighbors;
    /// a respawn restores the exact pre-crash bounds (the clamp is the
    /// split's inverse when no rebalance intervened) and rehomes focals.
    #[test]
    fn failover_splits_and_respawn_restores_bounds() {
        let (mut cluster, mut net) = test_cluster(4);
        let cell = cluster.config.grid.cell_from_flat(250);
        cluster.partitions[2].apply_cluster_msg(&migrate_msg(7, 3, cell));
        assert_eq!(cluster.map.bounds_snapshot(), vec![0, 100, 200, 300, 400]);
        cluster.kill_partition(2);
        cluster.recover_crashed(&mut net).expect("fence");
        assert_eq!(
            cluster.map.bounds_snapshot(),
            vec![0, 100, 250, 250, 400],
            "dead run split at the midpoint between partitions 1 and 3"
        );
        assert!(cluster
            .partition(2)
            .expect("lockstep")
            .query_ids()
            .next()
            .is_none());
        cluster.respawn_partition(2);
        assert_eq!(
            cluster.map.bounds_snapshot(),
            vec![0, 100, 200, 300, 400],
            "respawn restores the original span"
        );
        assert!(cluster.dead_partitions().is_empty());
        cluster.check_invariants();
    }

    /// A registered query lost with its home partition re-enters the
    /// pending-install pipeline under the ORIGINAL query id, and the
    /// focal agent is asked for its position again.
    #[test]
    fn lost_queries_reenter_pending_with_original_id() {
        let (mut cluster, mut net) = test_cluster(4);
        let cell = cluster.config.grid.cell_from_flat(250);
        // Home a query-less focal row on partition 2, then install a
        // query against it through the coordinator (recorded in the
        // registry like any driver install).
        let mut seed = migrate_msg(7, 3, cell);
        if let ClusterMsg::MigrateFocal { queries, .. } = &mut seed {
            queries.clear();
        }
        cluster.partitions[2].apply_cluster_msg(&seed);
        let qid = cluster.install_query(
            ObjectId(7),
            QueryRegion::circle(2.5),
            Filter::True,
            &mut net,
        );
        assert!(cluster.partition(2).expect("lockstep").has_query(qid));
        net.take_downlinks();
        cluster.kill_partition(2);
        let report = cluster.recover_crashed(&mut net).expect("fence");
        assert_eq!(report.queries_reinstalled, 1);
        let pending: Vec<QueryId> = cluster
            .pending
            .get(&ObjectId(7))
            .map(|v| v.iter().map(|pi| pi.qid).collect())
            .unwrap_or_default();
        assert_eq!(pending, vec![qid], "reinstall keeps the original id");
        let (unicasts, _) = net.take_downlinks();
        assert!(
            unicasts
                .iter()
                .any(|(node, msg, _)| node.0 == 7 && matches!(**msg, Downlink::PositionRequest)),
            "the focal agent is asked to re-report its position"
        );
        cluster.check_invariants();
    }

    /// Every `rebalance()` outcome is diagnosable from the bus sink: each
    /// early return bumps `rebal.skipped` with a per-reason counter and
    /// emits a `RebalanceSkipped` event; an install bumps `rebal.installs`
    /// and emits `RebalanceInstalled`.
    #[test]
    fn rebalance_skips_and_installs_are_counted() {
        let (mut cluster, mut net) = test_cluster(4);
        // No load observed yet: nothing to plan from.
        assert!(!cluster.rebalance());
        // Perfectly uniform load: the planned bounds equal the installed
        // contiguous split, so there is nothing to move.
        for c in cluster.cell_ops.iter_mut() {
            *c = 1;
        }
        assert!(!cluster.rebalance());
        // Skewed load: partition 0's span is hot, so the plan must shift
        // the cuts and install a new generation.
        cluster.cell_ops[0] = 1000;
        assert!(cluster.rebalance());
        assert!(cluster.map_generation() >= 1);
        // A fenced-off dead partition hands the map to the recovery
        // fences; load rebalancing skips until the slot is restored.
        cluster.kill_partition(2);
        cluster.recover_crashed(&mut net).expect("fence");
        cluster.cell_ops[0] = 1000;
        assert!(!cluster.rebalance());
        let snap = cluster.bus_telemetry().snapshot();
        assert_eq!(snap.counter(rebal_keys::SKIPPED), 3);
        assert_eq!(snap.counter(rebal_keys::SKIPPED_NO_LOAD), 1);
        assert_eq!(snap.counter(rebal_keys::SKIPPED_UNCHANGED), 1);
        assert_eq!(snap.counter(rebal_keys::SKIPPED_UNFENCED), 1);
        assert_eq!(snap.counter(rebal_keys::INSTALLS), 1);
        let reasons: Vec<u64> = snap
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::RebalanceSkipped { reason } => Some(reason),
                _ => None,
            })
            .collect();
        // Snapshots order events canonically (time, kind, fields), not by
        // emission order.
        assert_eq!(
            reasons,
            vec![
                skip_reason::UNFENCED,
                skip_reason::NO_LOAD,
                skip_reason::UNCHANGED
            ]
        );
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RebalanceInstalled { .. })));
    }
}
