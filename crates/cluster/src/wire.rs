//! RPC wire format for remote partitions.
//!
//! A remote partition process holds one [`mobieyes_core::Server`] and
//! executes the same primitive operations the coordinator would call on an
//! in-process partition, strictly serialized: the coordinator sends one
//! [`PartitionOp`] at a time and waits for the [`PartitionReply`] before
//! issuing the next. Each request carries the coordinator's epoch view
//! (the *floor*); the partition raises its local epoch to at least the
//! floor before executing, and the reply carries the post-op epoch back —
//! under strict serialization this reproduces the shared atomic epoch
//! counter of the in-process deployment exactly.
//!
//! Replies also carry every side effect the operation produced:
//!
//! - the partition's inter-server outbox (bus envelopes the coordinator
//!   feeds through its [`Transport`](mobieyes_net::Transport), so fault
//!   plans apply uniformly to local and remote partitions), and
//! - the downlink traffic the operation emitted ([`NetAction`]), which the
//!   coordinator replays onto the real agent network in operation order.
//!
//! Everything here rides on the bounds-checked primitives of
//! [`mobieyes_core::codec`] — a malformed frame is a [`TransportError`],
//! never a panic.

use crate::cluster_server::Envelope;
use mobieyes_core::codec::{
    self, decode_cluster, decode_downlink, encode_cluster, encode_downlink, DecodeError, Put,
    Reader,
};
use mobieyes_core::{ClusterMsg, Downlink, Filter, ObjectId, Propagation, QueryId};
use mobieyes_geo::{CellId, LinearMotion, QueryRegion, Rect};
use mobieyes_net::{Frame, Routed, TransportError};
use std::sync::Arc;

impl Frame for Envelope {
    fn encode_frame(&self, out: &mut Vec<u8>) {
        out.put_u32_le(self.to);
        encode_cluster(&self.msg, out);
    }

    fn decode_frame(bytes: &[u8]) -> std::result::Result<Self, TransportError> {
        let mut buf = Reader::new(bytes);
        let to = buf.get_u32_le("envelope destination").map_err(frame_err)?;
        let msg = decode_cluster(&mut buf).map_err(frame_err)?;
        if buf.remaining() != 0 {
            return Err(TransportError::Frame(format!(
                "{} trailing bytes after envelope",
                buf.remaining()
            )));
        }
        Ok(Envelope { to, msg })
    }
}

impl Routed for Envelope {
    fn dest(&self) -> u32 {
        self.to
    }
}

fn frame_err(e: DecodeError) -> TransportError {
    TransportError::Frame(e.to_string())
}

type Result<T> = std::result::Result<T, TransportError>;

/// Everything a partition process needs to reconstruct the deployment the
/// coordinator runs: the protocol configuration, the base-station layout
/// (for downlink generation) and this partition's slot in the map.
#[derive(Debug, Clone, PartialEq)]
pub struct InitConfig {
    pub universe: Rect,
    pub alpha: f64,
    pub alen: f64,
    pub delta: f64,
    pub propagation: Propagation,
    pub grouping: bool,
    pub safe_period: bool,
    pub deliver_results: bool,
    pub system_max_speed: f64,
    pub lease_secs: f64,
    pub heartbeat_secs: f64,
    pub partition: u32,
    pub num_partitions: u32,
    /// Durable-log directory for this partition, if persistence is on.
    pub store_dir: Option<String>,
    /// When true the partition wipes any existing log before opening it
    /// (a fenced-out respawn whose journal is stale — survivors hold the
    /// authoritative state, so the old log must not be replayed).
    pub store_fresh: bool,
}

/// One primitive operation against a remote partition — the RPC mirror of
/// the [`mobieyes_core::Server`] methods the coordinator drives.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionOp {
    /// Must be the first op on a connection; configures the partition.
    Init(InitConfig),
    SetTime(f64),
    RenewLease(ObjectId),
    VelocityReport {
        oid: ObjectId,
        motion: LinearMotion,
    },
    CellChangeFocal {
        oid: ObjectId,
        new_cell: CellId,
        motion: LinearMotion,
    },
    CellChangeFresh {
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        motion: LinearMotion,
    },
    ResultChange {
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
    },
    GroupResultUpdate {
        oid: ObjectId,
        focal: ObjectId,
        mask: u64,
        targets: u64,
    },
    RefreshFocalMotion {
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        insert: bool,
    },
    CompleteInstall {
        qid: QueryId,
        focal: ObjectId,
        region: QueryRegion,
        filter: Arc<Filter>,
        expires_at: Option<f64>,
    },
    RemoveQuery(QueryId),
    ExpiredQueryIds(f64),
    ExpiredLeases,
    ReinstallInfo(QueryId),
    DigestCells,
    BumpEpoch,
    CurrentEpoch,
    NumQueries,
    QueryIds,
    QueryResult(QueryId),
    QueryFocal(QueryId),
    HasFocal(ObjectId),
    HasQuery(QueryId),
    FocalMotion(ObjectId),
    FocalQueries(ObjectId),
    QueryCell(QueryId),
    PurgeObject(ObjectId),
    DeliverResultDelta {
        qid: QueryId,
        oid: ObjectId,
        entered: bool,
    },
    LqtReconcileOne {
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
    },
    FocalReassert(ObjectId),
    CellSyncReply {
        oid: ObjectId,
        cell: CellId,
    },
    ExtractFocal(ObjectId),
    /// A bus envelope that survived the coordinator's fault plan.
    Deliver(ClusterMsg),
    CheckInvariants,
    /// Ends the service loop; the process exits cleanly.
    Shutdown,
    /// Forces the partition's local [`PartitionTable`] copy to exact
    /// bounds and generation, syncing it with the coordinator's table
    /// after a failover or re-adoption fence. Bounds are in flat cells.
    ///
    /// [`PartitionTable`]: mobieyes_core::PartitionTable
    InstallBounds {
        generation: u64,
        bounds: Vec<u64>,
    },
    /// Extracts the state rows for the given flat cells (the partition
    /// stops owning them); replies `OptCluster` with the resulting
    /// [`ClusterMsg::RebalanceCells`] transfer for the coordinator to
    /// route.
    ExportCells {
        flats: Vec<u32>,
        generation: u64,
    },
    /// Drops stub rows for queries whose owner region no longer reaches
    /// this partition (post-fence cleanup).
    PruneStubs,
    /// All focal object ids homed on this partition, ascending.
    FocalIds,
    /// The anchor cell of one homed focal object.
    FocalAnchorCell(ObjectId),
    /// Cuts a checkpoint of the partition's state into its durable log
    /// (no-op without a store). Replies `U64` with the log's next
    /// sequence number.
    Checkpoint,
    /// Historical trajectory query against the partition's durable log:
    /// motion samples for `oid` with report time in `[t0, t1]`. Replies
    /// `Motions` (empty without a store).
    Trajectory {
        oid: ObjectId,
        t0: f64,
        t1: f64,
    },
    /// The partition's state weight — homed focals, owned queries, stub
    /// rows — for rebalance telemetry. Replies `Load`.
    LoadSignal,
}

/// A downlink the partition emitted while executing an op. The coordinator
/// replays these onto the real agent network in operation order, which
/// reproduces the exact queue contents (and thus delivery and downlink
/// fault-plan consumption) of an in-process run.
#[derive(Debug, Clone, PartialEq)]
pub enum NetAction {
    Unicast { node: u32, msg: Downlink },
    Broadcast { station: u32, msg: Downlink },
}

/// The operation's return value.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyPayload {
    Unit,
    Bool(bool),
    U64(u64),
    Qids(Vec<QueryId>),
    OptQids(Option<Vec<QueryId>>),
    OptCluster(Option<ClusterMsg>),
    OptMotion(Option<LinearMotion>),
    OptCell(Option<CellId>),
    OptOid(Option<ObjectId>),
    Digests(Vec<(CellId, u64)>),
    Leases(Vec<(ObjectId, Vec<QueryId>)>),
    Reinstall(Option<(QueryRegion, Filter, Option<f64>)>),
    ResultSet(Option<Vec<ObjectId>>),
    Oids(Vec<ObjectId>),
    /// Motion samples from the durable log, ascending by report time.
    Motions(Vec<LinearMotion>),
    /// Partition state weight: homed focals, owned queries, stub rows.
    Load {
        focals: u64,
        queries: u64,
        stubs: u64,
    },
}

/// Reply to one [`PartitionOp`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReply {
    /// The partition's epoch after the op (the coordinator folds it into
    /// its shared view with a `fetch_max`).
    pub epoch: u64,
    /// Inter-server envelopes the op queued (destination, message).
    pub outbox: Vec<(u32, ClusterMsg)>,
    /// Downlink traffic the op emitted, in emission order.
    pub net: Vec<NetAction>,
    pub payload: ReplyPayload,
}

// --- request encoding --------------------------------------------------------

fn put_oid(out: &mut Vec<u8>, oid: ObjectId) {
    out.put_u32_le(oid.0);
}

fn get_oid(buf: &mut Reader<'_>) -> std::result::Result<ObjectId, DecodeError> {
    Ok(ObjectId(buf.get_u32_le("object id")?))
}

fn put_qid(out: &mut Vec<u8>, qid: QueryId) {
    out.put_u32_le(qid.0);
}

fn get_qid(buf: &mut Reader<'_>) -> std::result::Result<QueryId, DecodeError> {
    Ok(QueryId(buf.get_u32_le("query id")?))
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.put_u8(1);
            out.put_f64_le(x);
        }
        None => out.put_u8(0),
    }
}

fn get_opt_f64(buf: &mut Reader<'_>) -> std::result::Result<Option<f64>, DecodeError> {
    Ok(if buf.get_u8("option flag")? != 0 {
        Some(buf.get_f64_le("f64 value")?)
    } else {
        None
    })
}

fn put_qids(out: &mut Vec<u8>, qids: &[QueryId]) {
    out.put_u32_le(qids.len() as u32);
    for q in qids {
        put_qid(out, *q);
    }
}

fn get_qids(buf: &mut Reader<'_>) -> std::result::Result<Vec<QueryId>, DecodeError> {
    let n = buf.get_u32_le("qid count")? as usize;
    if n * 4 > buf.remaining() {
        return Err(DecodeError(format!("oversized qid count {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_qid(buf)?);
    }
    Ok(out)
}

/// Encodes a request frame: the coordinator's epoch floor, then the op.
pub fn encode_request(epoch_floor: u64, op: &PartitionOp, out: &mut Vec<u8>) {
    out.put_u64_le(epoch_floor);
    match op {
        PartitionOp::Init(c) => {
            out.put_u8(0);
            out.put_f64_le(c.universe.lx);
            out.put_f64_le(c.universe.ly);
            out.put_f64_le(c.universe.hx());
            out.put_f64_le(c.universe.hy());
            out.put_f64_le(c.alpha);
            out.put_f64_le(c.alen);
            out.put_f64_le(c.delta);
            out.put_u8(match c.propagation {
                Propagation::Eager => 0,
                Propagation::Lazy => 1,
            });
            out.put_u8(c.grouping as u8);
            out.put_u8(c.safe_period as u8);
            out.put_u8(c.deliver_results as u8);
            out.put_f64_le(c.system_max_speed);
            out.put_f64_le(c.lease_secs);
            out.put_f64_le(c.heartbeat_secs);
            out.put_u32_le(c.partition);
            out.put_u32_le(c.num_partitions);
            match &c.store_dir {
                Some(dir) => {
                    out.put_u8(1);
                    codec::put_string(out, dir);
                }
                None => out.put_u8(0),
            }
            out.put_u8(c.store_fresh as u8);
        }
        PartitionOp::SetTime(t) => {
            out.put_u8(1);
            out.put_f64_le(*t);
        }
        PartitionOp::RenewLease(oid) => {
            out.put_u8(2);
            put_oid(out, *oid);
        }
        PartitionOp::VelocityReport { oid, motion } => {
            out.put_u8(3);
            put_oid(out, *oid);
            codec::put_motion(out, motion);
        }
        PartitionOp::CellChangeFocal {
            oid,
            new_cell,
            motion,
        } => {
            out.put_u8(4);
            put_oid(out, *oid);
            codec::put_cell(out, *new_cell);
            codec::put_motion(out, motion);
        }
        PartitionOp::CellChangeFresh {
            oid,
            prev_cell,
            new_cell,
            motion,
        } => {
            out.put_u8(5);
            put_oid(out, *oid);
            codec::put_cell(out, *prev_cell);
            codec::put_cell(out, *new_cell);
            codec::put_motion(out, motion);
        }
        PartitionOp::ResultChange {
            qid,
            oid,
            is_target,
        } => {
            out.put_u8(6);
            put_qid(out, *qid);
            put_oid(out, *oid);
            out.put_u8(*is_target as u8);
        }
        PartitionOp::GroupResultUpdate {
            oid,
            focal,
            mask,
            targets,
        } => {
            out.put_u8(7);
            put_oid(out, *oid);
            put_oid(out, *focal);
            out.put_u64_le(*mask);
            out.put_u64_le(*targets);
        }
        PartitionOp::RefreshFocalMotion {
            oid,
            motion,
            max_vel,
            insert,
        } => {
            out.put_u8(8);
            put_oid(out, *oid);
            codec::put_motion(out, motion);
            out.put_f64_le(*max_vel);
            out.put_u8(*insert as u8);
        }
        PartitionOp::CompleteInstall {
            qid,
            focal,
            region,
            filter,
            expires_at,
        } => {
            out.put_u8(9);
            put_qid(out, *qid);
            put_oid(out, *focal);
            codec::put_region(out, region);
            codec::put_filter(out, filter);
            put_opt_f64(out, *expires_at);
        }
        PartitionOp::RemoveQuery(qid) => {
            out.put_u8(10);
            put_qid(out, *qid);
        }
        PartitionOp::ExpiredQueryIds(now) => {
            out.put_u8(11);
            out.put_f64_le(*now);
        }
        PartitionOp::ExpiredLeases => out.put_u8(12),
        PartitionOp::ReinstallInfo(qid) => {
            out.put_u8(13);
            put_qid(out, *qid);
        }
        PartitionOp::DigestCells => out.put_u8(14),
        PartitionOp::BumpEpoch => out.put_u8(15),
        PartitionOp::CurrentEpoch => out.put_u8(16),
        PartitionOp::NumQueries => out.put_u8(17),
        PartitionOp::QueryIds => out.put_u8(18),
        PartitionOp::QueryResult(qid) => {
            out.put_u8(19);
            put_qid(out, *qid);
        }
        PartitionOp::QueryFocal(qid) => {
            out.put_u8(20);
            put_qid(out, *qid);
        }
        PartitionOp::HasFocal(oid) => {
            out.put_u8(21);
            put_oid(out, *oid);
        }
        PartitionOp::HasQuery(qid) => {
            out.put_u8(22);
            put_qid(out, *qid);
        }
        PartitionOp::FocalMotion(oid) => {
            out.put_u8(23);
            put_oid(out, *oid);
        }
        PartitionOp::FocalQueries(oid) => {
            out.put_u8(24);
            put_oid(out, *oid);
        }
        PartitionOp::QueryCell(qid) => {
            out.put_u8(25);
            put_qid(out, *qid);
        }
        PartitionOp::PurgeObject(oid) => {
            out.put_u8(26);
            put_oid(out, *oid);
        }
        PartitionOp::DeliverResultDelta { qid, oid, entered } => {
            out.put_u8(27);
            put_qid(out, *qid);
            put_oid(out, *oid);
            out.put_u8(*entered as u8);
        }
        PartitionOp::LqtReconcileOne {
            qid,
            oid,
            is_target,
        } => {
            out.put_u8(28);
            put_qid(out, *qid);
            put_oid(out, *oid);
            out.put_u8(*is_target as u8);
        }
        PartitionOp::FocalReassert(oid) => {
            out.put_u8(29);
            put_oid(out, *oid);
        }
        PartitionOp::CellSyncReply { oid, cell } => {
            out.put_u8(30);
            put_oid(out, *oid);
            codec::put_cell(out, *cell);
        }
        PartitionOp::ExtractFocal(oid) => {
            out.put_u8(31);
            put_oid(out, *oid);
        }
        PartitionOp::Deliver(msg) => {
            out.put_u8(32);
            encode_cluster(msg, out);
        }
        PartitionOp::CheckInvariants => out.put_u8(33),
        PartitionOp::Shutdown => out.put_u8(34),
        PartitionOp::InstallBounds { generation, bounds } => {
            out.put_u8(35);
            out.put_u64_le(*generation);
            out.put_u32_le(bounds.len() as u32);
            for b in bounds {
                out.put_u64_le(*b);
            }
        }
        PartitionOp::ExportCells { flats, generation } => {
            out.put_u8(36);
            out.put_u64_le(*generation);
            out.put_u32_le(flats.len() as u32);
            for f in flats {
                out.put_u32_le(*f);
            }
        }
        PartitionOp::PruneStubs => out.put_u8(37),
        PartitionOp::FocalIds => out.put_u8(38),
        PartitionOp::FocalAnchorCell(oid) => {
            out.put_u8(39);
            put_oid(out, *oid);
        }
        PartitionOp::Checkpoint => out.put_u8(40),
        PartitionOp::Trajectory { oid, t0, t1 } => {
            out.put_u8(41);
            put_oid(out, *oid);
            out.put_f64_le(*t0);
            out.put_f64_le(*t1);
        }
        PartitionOp::LoadSignal => out.put_u8(42),
    }
}

/// Decodes a request frame into `(epoch_floor, op)`.
pub fn decode_request(bytes: &[u8]) -> Result<(u64, PartitionOp)> {
    let mut buf = Reader::new(bytes);
    let mut inner = || -> std::result::Result<(u64, PartitionOp), DecodeError> {
        let floor = buf.get_u64_le("epoch floor")?;
        let op = match buf.get_u8("op tag")? {
            0 => {
                let lx = buf.get_f64_le("universe")?;
                let ly = buf.get_f64_le("universe")?;
                let hx = buf.get_f64_le("universe")?;
                let hy = buf.get_f64_le("universe")?;
                if !(lx.is_finite() && ly.is_finite() && hx >= lx && hy >= ly) {
                    return Err(DecodeError("invalid universe bounds".into()));
                }
                PartitionOp::Init(InitConfig {
                    universe: Rect::from_bounds(lx, ly, hx, hy),
                    alpha: buf.get_f64_le("alpha")?,
                    alen: buf.get_f64_le("alen")?,
                    delta: buf.get_f64_le("delta")?,
                    propagation: match buf.get_u8("propagation")? {
                        0 => Propagation::Eager,
                        1 => Propagation::Lazy,
                        t => return Err(DecodeError(format!("unknown propagation tag {t}"))),
                    },
                    grouping: buf.get_u8("grouping")? != 0,
                    safe_period: buf.get_u8("safe period")? != 0,
                    deliver_results: buf.get_u8("deliver results")? != 0,
                    system_max_speed: buf.get_f64_le("system max speed")?,
                    lease_secs: buf.get_f64_le("lease secs")?,
                    heartbeat_secs: buf.get_f64_le("heartbeat secs")?,
                    partition: buf.get_u32_le("partition")?,
                    num_partitions: buf.get_u32_le("num partitions")?,
                    store_dir: if buf.get_u8("store dir flag")? != 0 {
                        Some(codec::get_string(&mut buf)?)
                    } else {
                        None
                    },
                    store_fresh: buf.get_u8("store fresh")? != 0,
                })
            }
            1 => PartitionOp::SetTime(buf.get_f64_le("time")?),
            2 => PartitionOp::RenewLease(get_oid(&mut buf)?),
            3 => PartitionOp::VelocityReport {
                oid: get_oid(&mut buf)?,
                motion: codec::get_motion(&mut buf)?,
            },
            4 => PartitionOp::CellChangeFocal {
                oid: get_oid(&mut buf)?,
                new_cell: codec::get_cell(&mut buf)?,
                motion: codec::get_motion(&mut buf)?,
            },
            5 => PartitionOp::CellChangeFresh {
                oid: get_oid(&mut buf)?,
                prev_cell: codec::get_cell(&mut buf)?,
                new_cell: codec::get_cell(&mut buf)?,
                motion: codec::get_motion(&mut buf)?,
            },
            6 => PartitionOp::ResultChange {
                qid: get_qid(&mut buf)?,
                oid: get_oid(&mut buf)?,
                is_target: buf.get_u8("is target")? != 0,
            },
            7 => PartitionOp::GroupResultUpdate {
                oid: get_oid(&mut buf)?,
                focal: get_oid(&mut buf)?,
                mask: buf.get_u64_le("mask")?,
                targets: buf.get_u64_le("targets")?,
            },
            8 => PartitionOp::RefreshFocalMotion {
                oid: get_oid(&mut buf)?,
                motion: codec::get_motion(&mut buf)?,
                max_vel: buf.get_f64_le("max vel")?,
                insert: buf.get_u8("insert")? != 0,
            },
            9 => PartitionOp::CompleteInstall {
                qid: get_qid(&mut buf)?,
                focal: get_oid(&mut buf)?,
                region: codec::get_region(&mut buf)?,
                filter: Arc::new(codec::get_filter(&mut buf)?),
                expires_at: get_opt_f64(&mut buf)?,
            },
            10 => PartitionOp::RemoveQuery(get_qid(&mut buf)?),
            11 => PartitionOp::ExpiredQueryIds(buf.get_f64_le("now")?),
            12 => PartitionOp::ExpiredLeases,
            13 => PartitionOp::ReinstallInfo(get_qid(&mut buf)?),
            14 => PartitionOp::DigestCells,
            15 => PartitionOp::BumpEpoch,
            16 => PartitionOp::CurrentEpoch,
            17 => PartitionOp::NumQueries,
            18 => PartitionOp::QueryIds,
            19 => PartitionOp::QueryResult(get_qid(&mut buf)?),
            20 => PartitionOp::QueryFocal(get_qid(&mut buf)?),
            21 => PartitionOp::HasFocal(get_oid(&mut buf)?),
            22 => PartitionOp::HasQuery(get_qid(&mut buf)?),
            23 => PartitionOp::FocalMotion(get_oid(&mut buf)?),
            24 => PartitionOp::FocalQueries(get_oid(&mut buf)?),
            25 => PartitionOp::QueryCell(get_qid(&mut buf)?),
            26 => PartitionOp::PurgeObject(get_oid(&mut buf)?),
            27 => PartitionOp::DeliverResultDelta {
                qid: get_qid(&mut buf)?,
                oid: get_oid(&mut buf)?,
                entered: buf.get_u8("entered")? != 0,
            },
            28 => PartitionOp::LqtReconcileOne {
                qid: get_qid(&mut buf)?,
                oid: get_oid(&mut buf)?,
                is_target: buf.get_u8("is target")? != 0,
            },
            29 => PartitionOp::FocalReassert(get_oid(&mut buf)?),
            30 => PartitionOp::CellSyncReply {
                oid: get_oid(&mut buf)?,
                cell: codec::get_cell(&mut buf)?,
            },
            31 => PartitionOp::ExtractFocal(get_oid(&mut buf)?),
            32 => PartitionOp::Deliver(decode_cluster(&mut buf)?),
            33 => PartitionOp::CheckInvariants,
            34 => PartitionOp::Shutdown,
            35 => {
                let generation = buf.get_u64_le("table generation")?;
                let n = buf.get_u32_le("bound count")? as usize;
                if n * 8 > buf.remaining() {
                    return Err(DecodeError(format!("oversized bound count {n}")));
                }
                let mut bounds = Vec::with_capacity(n);
                for _ in 0..n {
                    bounds.push(buf.get_u64_le("bound")?);
                }
                PartitionOp::InstallBounds { generation, bounds }
            }
            36 => {
                let generation = buf.get_u64_le("table generation")?;
                let n = buf.get_u32_le("flat count")? as usize;
                if n * 4 > buf.remaining() {
                    return Err(DecodeError(format!("oversized flat count {n}")));
                }
                let mut flats = Vec::with_capacity(n);
                for _ in 0..n {
                    flats.push(buf.get_u32_le("flat cell")?);
                }
                PartitionOp::ExportCells { flats, generation }
            }
            37 => PartitionOp::PruneStubs,
            38 => PartitionOp::FocalIds,
            39 => PartitionOp::FocalAnchorCell(get_oid(&mut buf)?),
            40 => PartitionOp::Checkpoint,
            41 => PartitionOp::Trajectory {
                oid: get_oid(&mut buf)?,
                t0: buf.get_f64_le("trajectory start")?,
                t1: buf.get_f64_le("trajectory end")?,
            },
            42 => PartitionOp::LoadSignal,
            t => return Err(DecodeError(format!("unknown partition op tag {t}"))),
        };
        Ok((floor, op))
    };
    let (floor, op) = inner().map_err(frame_err)?;
    if buf.remaining() != 0 {
        return Err(TransportError::Frame(format!(
            "{} trailing bytes after partition op",
            buf.remaining()
        )));
    }
    Ok((floor, op))
}

// --- reply encoding ----------------------------------------------------------

/// Encodes a reply frame.
pub fn encode_reply(reply: &PartitionReply, out: &mut Vec<u8>) {
    out.put_u64_le(reply.epoch);
    out.put_u32_le(reply.outbox.len() as u32);
    for (to, msg) in &reply.outbox {
        out.put_u32_le(*to);
        encode_cluster(msg, out);
    }
    out.put_u32_le(reply.net.len() as u32);
    for action in &reply.net {
        match action {
            NetAction::Unicast { node, msg } => {
                out.put_u8(0);
                out.put_u32_le(*node);
                encode_downlink(msg, out);
            }
            NetAction::Broadcast { station, msg } => {
                out.put_u8(1);
                out.put_u32_le(*station);
                encode_downlink(msg, out);
            }
        }
    }
    match &reply.payload {
        ReplyPayload::Unit => out.put_u8(0),
        ReplyPayload::Bool(b) => {
            out.put_u8(1);
            out.put_u8(*b as u8);
        }
        ReplyPayload::U64(v) => {
            out.put_u8(2);
            out.put_u64_le(*v);
        }
        ReplyPayload::Qids(qids) => {
            out.put_u8(3);
            put_qids(out, qids);
        }
        ReplyPayload::OptQids(v) => {
            out.put_u8(4);
            match v {
                Some(qids) => {
                    out.put_u8(1);
                    put_qids(out, qids);
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::OptCluster(v) => {
            out.put_u8(5);
            match v {
                Some(msg) => {
                    out.put_u8(1);
                    encode_cluster(msg, out);
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::OptMotion(v) => {
            out.put_u8(6);
            match v {
                Some(m) => {
                    out.put_u8(1);
                    codec::put_motion(out, m);
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::OptCell(v) => {
            out.put_u8(7);
            match v {
                Some(c) => {
                    out.put_u8(1);
                    codec::put_cell(out, *c);
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::OptOid(v) => {
            out.put_u8(8);
            match v {
                Some(oid) => {
                    out.put_u8(1);
                    put_oid(out, *oid);
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::Digests(digests) => {
            out.put_u8(9);
            out.put_u32_le(digests.len() as u32);
            for (cell, digest) in digests {
                codec::put_cell(out, *cell);
                out.put_u64_le(*digest);
            }
        }
        ReplyPayload::Leases(leases) => {
            out.put_u8(10);
            out.put_u32_le(leases.len() as u32);
            for (oid, qids) in leases {
                put_oid(out, *oid);
                put_qids(out, qids);
            }
        }
        ReplyPayload::Reinstall(v) => {
            out.put_u8(11);
            match v {
                Some((region, filter, expires_at)) => {
                    out.put_u8(1);
                    codec::put_region(out, region);
                    codec::put_filter(out, filter);
                    put_opt_f64(out, *expires_at);
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::ResultSet(v) => {
            out.put_u8(12);
            match v {
                Some(oids) => {
                    out.put_u8(1);
                    out.put_u32_le(oids.len() as u32);
                    for oid in oids {
                        put_oid(out, *oid);
                    }
                }
                None => out.put_u8(0),
            }
        }
        ReplyPayload::Oids(oids) => {
            out.put_u8(13);
            out.put_u32_le(oids.len() as u32);
            for oid in oids {
                put_oid(out, *oid);
            }
        }
        ReplyPayload::Motions(motions) => {
            out.put_u8(14);
            out.put_u32_le(motions.len() as u32);
            for m in motions {
                codec::put_motion(out, m);
            }
        }
        ReplyPayload::Load {
            focals,
            queries,
            stubs,
        } => {
            out.put_u8(15);
            out.put_u64_le(*focals);
            out.put_u64_le(*queries);
            out.put_u64_le(*stubs);
        }
    }
}

/// Decodes a reply frame.
pub fn decode_reply(bytes: &[u8]) -> Result<PartitionReply> {
    let mut buf = Reader::new(bytes);
    let mut inner = || -> std::result::Result<PartitionReply, DecodeError> {
        let epoch = buf.get_u64_le("reply epoch")?;
        let n = buf.get_u32_le("outbox count")? as usize;
        if n * 5 > buf.remaining() {
            return Err(DecodeError(format!("oversized outbox count {n}")));
        }
        let mut outbox = Vec::with_capacity(n);
        for _ in 0..n {
            let to = buf.get_u32_le("outbox destination")?;
            outbox.push((to, decode_cluster(&mut buf)?));
        }
        let n = buf.get_u32_le("net action count")? as usize;
        if n * 6 > buf.remaining() {
            return Err(DecodeError(format!("oversized net action count {n}")));
        }
        let mut net = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = buf.get_u8("net action tag")?;
            let target = buf.get_u32_le("net action target")?;
            let msg = decode_downlink(&mut buf)?;
            net.push(match tag {
                0 => NetAction::Unicast { node: target, msg },
                1 => NetAction::Broadcast {
                    station: target,
                    msg,
                },
                t => return Err(DecodeError(format!("unknown net action tag {t}"))),
            });
        }
        let payload = match buf.get_u8("payload tag")? {
            0 => ReplyPayload::Unit,
            1 => ReplyPayload::Bool(buf.get_u8("bool")? != 0),
            2 => ReplyPayload::U64(buf.get_u64_le("u64")?),
            3 => ReplyPayload::Qids(get_qids(&mut buf)?),
            4 => ReplyPayload::OptQids(if buf.get_u8("option flag")? != 0 {
                Some(get_qids(&mut buf)?)
            } else {
                None
            }),
            5 => ReplyPayload::OptCluster(if buf.get_u8("option flag")? != 0 {
                Some(decode_cluster(&mut buf)?)
            } else {
                None
            }),
            6 => ReplyPayload::OptMotion(if buf.get_u8("option flag")? != 0 {
                Some(codec::get_motion(&mut buf)?)
            } else {
                None
            }),
            7 => ReplyPayload::OptCell(if buf.get_u8("option flag")? != 0 {
                Some(codec::get_cell(&mut buf)?)
            } else {
                None
            }),
            8 => ReplyPayload::OptOid(if buf.get_u8("option flag")? != 0 {
                Some(get_oid(&mut buf)?)
            } else {
                None
            }),
            9 => {
                let n = buf.get_u32_le("digest count")? as usize;
                if n * 16 > buf.remaining() {
                    return Err(DecodeError(format!("oversized digest count {n}")));
                }
                let mut digests = Vec::with_capacity(n);
                for _ in 0..n {
                    let cell = codec::get_cell(&mut buf)?;
                    digests.push((cell, buf.get_u64_le("digest")?));
                }
                ReplyPayload::Digests(digests)
            }
            10 => {
                let n = buf.get_u32_le("lease count")? as usize;
                if n * 8 > buf.remaining() {
                    return Err(DecodeError(format!("oversized lease count {n}")));
                }
                let mut leases = Vec::with_capacity(n);
                for _ in 0..n {
                    let oid = get_oid(&mut buf)?;
                    leases.push((oid, get_qids(&mut buf)?));
                }
                ReplyPayload::Leases(leases)
            }
            11 => ReplyPayload::Reinstall(if buf.get_u8("option flag")? != 0 {
                let region = codec::get_region(&mut buf)?;
                let filter = codec::get_filter(&mut buf)?;
                Some((region, filter, get_opt_f64(&mut buf)?))
            } else {
                None
            }),
            12 => ReplyPayload::ResultSet(if buf.get_u8("option flag")? != 0 {
                let n = buf.get_u32_le("result count")? as usize;
                if n * 4 > buf.remaining() {
                    return Err(DecodeError(format!("oversized result count {n}")));
                }
                let mut oids = Vec::with_capacity(n);
                for _ in 0..n {
                    oids.push(get_oid(&mut buf)?);
                }
                Some(oids)
            } else {
                None
            }),
            13 => {
                let n = buf.get_u32_le("oid count")? as usize;
                if n * 4 > buf.remaining() {
                    return Err(DecodeError(format!("oversized oid count {n}")));
                }
                let mut oids = Vec::with_capacity(n);
                for _ in 0..n {
                    oids.push(get_oid(&mut buf)?);
                }
                ReplyPayload::Oids(oids)
            }
            14 => {
                let n = buf.get_u32_le("motion count")? as usize;
                if n * 40 > buf.remaining() {
                    return Err(DecodeError(format!("oversized motion count {n}")));
                }
                let mut motions = Vec::with_capacity(n);
                for _ in 0..n {
                    motions.push(codec::get_motion(&mut buf)?);
                }
                ReplyPayload::Motions(motions)
            }
            15 => ReplyPayload::Load {
                focals: buf.get_u64_le("load focals")?,
                queries: buf.get_u64_le("load queries")?,
                stubs: buf.get_u64_le("load stubs")?,
            },
            t => return Err(DecodeError(format!("unknown reply payload tag {t}"))),
        };
        Ok(PartitionReply {
            epoch,
            outbox,
            net,
            payload,
        })
    };
    let reply = inner().map_err(frame_err)?;
    if buf.remaining() != 0 {
        return Err(TransportError::Frame(format!(
            "{} trailing bytes after partition reply",
            buf.remaining()
        )));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::{GridRect, Point, Vec2};

    fn motion() -> LinearMotion {
        LinearMotion::new(Point::new(3.0, -1.5), Vec2::new(0.25, -0.125), 60.0)
    }

    fn sample_ops() -> Vec<PartitionOp> {
        vec![
            PartitionOp::Init(InitConfig {
                universe: Rect::new(0.0, 0.0, 100.0, 100.0),
                alpha: 5.0,
                alen: 10.0,
                delta: 0.2,
                propagation: Propagation::Lazy,
                grouping: true,
                safe_period: false,
                deliver_results: true,
                system_max_speed: 0.07,
                lease_secs: 120.0,
                heartbeat_secs: 60.0,
                partition: 2,
                num_partitions: 4,
                store_dir: Some("/tmp/mobieyes-store/p2".into()),
                store_fresh: true,
            }),
            PartitionOp::SetTime(90.0),
            PartitionOp::RenewLease(ObjectId(7)),
            PartitionOp::VelocityReport {
                oid: ObjectId(8),
                motion: motion(),
            },
            PartitionOp::CellChangeFocal {
                oid: ObjectId(9),
                new_cell: CellId::new(2, 3),
                motion: motion(),
            },
            PartitionOp::CellChangeFresh {
                oid: ObjectId(9),
                prev_cell: CellId::new(1, 3),
                new_cell: CellId::new(2, 3),
                motion: motion(),
            },
            PartitionOp::ResultChange {
                qid: QueryId(1),
                oid: ObjectId(2),
                is_target: true,
            },
            PartitionOp::GroupResultUpdate {
                oid: ObjectId(3),
                focal: ObjectId(4),
                mask: 0b101,
                targets: 0b001,
            },
            PartitionOp::RefreshFocalMotion {
                oid: ObjectId(5),
                motion: motion(),
                max_vel: 0.05,
                insert: true,
            },
            PartitionOp::CompleteInstall {
                qid: QueryId(6),
                focal: ObjectId(7),
                region: QueryRegion::circle(4.0),
                filter: Arc::new(Filter::Gt("speed".into(), 2.0)),
                expires_at: Some(300.0),
            },
            PartitionOp::RemoveQuery(QueryId(6)),
            PartitionOp::ExpiredQueryIds(120.0),
            PartitionOp::ExpiredLeases,
            PartitionOp::ReinstallInfo(QueryId(6)),
            PartitionOp::DigestCells,
            PartitionOp::BumpEpoch,
            PartitionOp::CurrentEpoch,
            PartitionOp::NumQueries,
            PartitionOp::QueryIds,
            PartitionOp::QueryResult(QueryId(6)),
            PartitionOp::QueryFocal(QueryId(6)),
            PartitionOp::HasFocal(ObjectId(7)),
            PartitionOp::HasQuery(QueryId(6)),
            PartitionOp::FocalMotion(ObjectId(7)),
            PartitionOp::FocalQueries(ObjectId(7)),
            PartitionOp::QueryCell(QueryId(6)),
            PartitionOp::PurgeObject(ObjectId(7)),
            PartitionOp::DeliverResultDelta {
                qid: QueryId(6),
                oid: ObjectId(7),
                entered: false,
            },
            PartitionOp::LqtReconcileOne {
                qid: QueryId(6),
                oid: ObjectId(7),
                is_target: true,
            },
            PartitionOp::FocalReassert(ObjectId(7)),
            PartitionOp::CellSyncReply {
                oid: ObjectId(7),
                cell: CellId::new(4, 4),
            },
            PartitionOp::ExtractFocal(ObjectId(7)),
            PartitionOp::Deliver(ClusterMsg::StubRemove {
                qid: QueryId(6),
                mon_region: GridRect {
                    x0: 0,
                    y0: 0,
                    x1: 2,
                    y1: 2,
                },
                epoch: 5,
            }),
            PartitionOp::CheckInvariants,
            PartitionOp::Shutdown,
            PartitionOp::InstallBounds {
                generation: 7,
                bounds: vec![0, 12, 24, 36],
            },
            PartitionOp::ExportCells {
                flats: vec![12, 13, 17],
                generation: 7,
            },
            PartitionOp::PruneStubs,
            PartitionOp::FocalIds,
            PartitionOp::FocalAnchorCell(ObjectId(7)),
            PartitionOp::Checkpoint,
            PartitionOp::Trajectory {
                oid: ObjectId(7),
                t0: 30.0,
                t1: 240.0,
            },
            PartitionOp::LoadSignal,
        ]
    }

    fn sample_payloads() -> Vec<ReplyPayload> {
        vec![
            ReplyPayload::Unit,
            ReplyPayload::Bool(true),
            ReplyPayload::U64(42),
            ReplyPayload::Qids(vec![QueryId(1), QueryId(9)]),
            ReplyPayload::OptQids(None),
            ReplyPayload::OptQids(Some(vec![QueryId(3)])),
            ReplyPayload::OptCluster(None),
            ReplyPayload::OptCluster(Some(ClusterMsg::StubMotion {
                focal: ObjectId(1),
                motion: motion(),
                max_vel: 0.02,
                qids: vec![(QueryId(2), 7)],
            })),
            ReplyPayload::OptMotion(Some(motion())),
            ReplyPayload::OptMotion(None),
            ReplyPayload::OptCell(Some(CellId::new(1, 2))),
            ReplyPayload::OptCell(None),
            ReplyPayload::OptOid(Some(ObjectId(5))),
            ReplyPayload::OptOid(None),
            ReplyPayload::Digests(vec![(CellId::new(0, 1), 0xFEED)]),
            ReplyPayload::Leases(vec![(ObjectId(4), vec![QueryId(1)]), (ObjectId(9), vec![])]),
            ReplyPayload::Reinstall(Some((
                QueryRegion::rect(2.0, 3.0),
                Filter::True,
                Some(500.0),
            ))),
            ReplyPayload::Reinstall(None),
            ReplyPayload::ResultSet(Some(vec![ObjectId(1), ObjectId(2)])),
            ReplyPayload::ResultSet(None),
            ReplyPayload::Oids(vec![ObjectId(3), ObjectId(8)]),
            ReplyPayload::Oids(vec![]),
            ReplyPayload::Motions(vec![motion(), motion()]),
            ReplyPayload::Motions(vec![]),
            ReplyPayload::Load {
                focals: 3,
                queries: 5,
                stubs: 11,
            },
        ]
    }

    #[test]
    fn request_roundtrip_covers_every_op() {
        for op in sample_ops() {
            let mut bytes = Vec::new();
            encode_request(17, &op, &mut bytes);
            let (floor, decoded) = decode_request(&bytes).expect("request decodes");
            assert_eq!(floor, 17);
            assert_eq!(decoded, op, "op did not survive the wire");
        }
    }

    #[test]
    fn reply_roundtrip_covers_every_payload() {
        for payload in sample_payloads() {
            let reply = PartitionReply {
                epoch: 9,
                outbox: vec![(
                    1,
                    ClusterMsg::StubRemove {
                        qid: QueryId(3),
                        mon_region: GridRect {
                            x0: 1,
                            y0: 1,
                            x1: 2,
                            y1: 2,
                        },
                        epoch: 4,
                    },
                )],
                net: vec![
                    NetAction::Unicast {
                        node: 7,
                        msg: Downlink::PositionRequest,
                    },
                    NetAction::Broadcast {
                        station: 3,
                        msg: Downlink::FocalNotify { is_focal: true },
                    },
                ],
                payload,
            };
            let mut bytes = Vec::new();
            encode_reply(&reply, &mut bytes);
            let decoded = decode_reply(&bytes).expect("reply decodes");
            assert_eq!(decoded, reply, "reply did not survive the wire");
        }
    }

    #[test]
    fn truncated_requests_and_replies_error_cleanly() {
        for op in sample_ops() {
            let mut bytes = Vec::new();
            encode_request(3, &op, &mut bytes);
            for cut in 0..bytes.len() {
                assert!(
                    decode_request(&bytes[..cut]).is_err(),
                    "truncated {op:?} must not decode"
                );
            }
        }
        let reply = PartitionReply {
            epoch: 1,
            outbox: vec![],
            net: vec![],
            payload: ReplyPayload::Qids(vec![QueryId(1)]),
        };
        let mut bytes = Vec::new();
        encode_reply(&reply, &mut bytes);
        for cut in 0..bytes.len() {
            assert!(decode_reply(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn envelope_frame_roundtrip() {
        use mobieyes_net::Frame;
        let env = Envelope {
            to: 3,
            msg: ClusterMsg::StubRemove {
                qid: QueryId(8),
                mon_region: GridRect {
                    x0: 0,
                    y0: 0,
                    x1: 1,
                    y1: 1,
                },
                epoch: 12,
            },
        };
        let mut bytes = Vec::new();
        env.encode_frame(&mut bytes);
        use mobieyes_net::WireSized;
        assert_eq!(bytes.len(), env.wire_size());
        let back = Envelope::decode_frame(&bytes).expect("decodes");
        assert_eq!(back.to, env.to);
        assert_eq!(back.msg, env.msg);
        assert!(Envelope::decode_frame(&bytes[..bytes.len() - 1]).is_err());
    }
}
