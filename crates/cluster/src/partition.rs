//! Partition map and stateless uplink router for the sharded server tier.

use mobieyes_core::{PartitionTable, Uplink};
use mobieyes_geo::{CellId, Grid};
use std::sync::Arc;

/// Assignment of contiguous grid-cell blocks (flat row-major indices) to
/// partition ids, backed by a shared, versioned [`PartitionTable`].
///
/// The table has `N + 1` bounds entries; partition `p` owns flat indices
/// `[bounds[p], bounds[p+1])`. Contiguity keeps ownership tests a single
/// comparison and makes the concatenation of per-partition digests (in
/// partition order) equal the single server's ascending-index scan — for
/// *any* bounds vector, which is what lets a coordinator re-split the
/// blocks by observed load without perturbing the protocol (see
/// DESIGN.md §10).
#[derive(Debug, Clone)]
pub struct PartitionMap {
    table: Arc<PartitionTable>,
}

impl PartitionMap {
    /// Splits the grid's cells into `n` near-equal contiguous blocks (the
    /// first `num_cells % n` partitions get one extra cell). This is
    /// generation 0; rebalance installs produce later generations.
    pub fn contiguous(grid: &Grid, n: usize) -> Self {
        assert!(n >= 1, "at least one partition");
        let cells = grid.num_cells();
        assert!(cells >= n, "more partitions than grid cells");
        let base = cells / n;
        let rem = cells % n;
        let mut bounds = Vec::with_capacity(n + 1);
        let mut at = 0usize;
        bounds.push(at);
        for p in 0..n {
            at += base + usize::from(p < rem);
            bounds.push(at);
        }
        debug_assert_eq!(*bounds.last().unwrap(), cells);
        PartitionMap {
            table: Arc::new(PartitionTable::new(bounds)),
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.table.num_partitions()
    }

    /// The shared partition table (for [`mobieyes_core::PartitionScope`]).
    pub fn table(&self) -> &Arc<PartitionTable> {
        &self.table
    }

    /// The current map generation (0 until the first rebalance install).
    pub fn generation(&self) -> u64 {
        self.table.generation()
    }

    /// A plain copy of the current bounds vector (`N + 1` entries).
    pub fn bounds_snapshot(&self) -> Vec<usize> {
        self.table.bounds_snapshot()
    }

    /// Installs a new bounds vector, bumping the map generation; every
    /// [`mobieyes_core::PartitionScope`] sharing the table sees the new
    /// ownership immediately. Returns the new generation.
    pub fn install(&self, bounds: &[usize]) -> u64 {
        self.table.install(bounds)
    }

    pub fn owner_of_flat(&self, flat: usize) -> u32 {
        self.table.owner_of(flat)
    }

    pub fn owner_of_cell(&self, grid: &Grid, cell: CellId) -> u32 {
        self.owner_of_flat(grid.flat_index(cell))
    }

    /// Number of cells a partition owns.
    pub fn partition_cells(&self, p: u32) -> usize {
        self.table.owned_range(p).len()
    }
}

/// Computes load-balanced contiguous bounds from per-cell load counts:
/// cut the prefix-sum of `cell_loads` at the `p/n` quantiles, so each
/// block carries a near-equal share of the observed load. Every partition
/// keeps at least one cell (empty blocks would break the `N + 1`-bounds
/// shape), so heavily skewed loads converge over a few rounds rather
/// than in one.
pub fn plan_bounds(cell_loads: &[u64], n: usize) -> Vec<usize> {
    let cells = cell_loads.len();
    assert!(n >= 1 && cells >= n, "more partitions than cells");
    let mut prefix = Vec::with_capacity(cells);
    let mut total: u64 = 0;
    for &l in cell_loads {
        total += l;
        prefix.push(total);
    }
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0usize);
    for p in 1..n {
        let target = (total as u128 * p as u128 / n as u128) as u64;
        let cut = prefix.partition_point(|&v| v <= target);
        // Keep every block non-empty: at least one cell after the previous
        // cut, and enough cells left for the remaining partitions.
        let prev = *bounds.last().unwrap();
        bounds.push(cut.clamp(prev + 1, cells - (n - p)));
    }
    bounds.push(cells);
    bounds
}

/// Stateless uplink router: picks the *primary* partition for a message —
/// the partition owning the cell the sender reports from. Messages that
/// carry no position (result reports, LQT syncs) have no primary and are
/// resolved by the coordinator against the query/focal home tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Router;

impl Router {
    /// The grid cell a message reports from, when it names one. Carried
    /// cells (cell changes, resyncs) are clamped to the grid — a sender
    /// that dead-reckoned past the universe boundary must not produce an
    /// out-of-range flat index downstream.
    pub fn primary_cell(grid: &Grid, msg: &Uplink) -> Option<CellId> {
        Some(match msg {
            Uplink::VelocityReport { motion, .. } => grid.cell_of(motion.pos),
            Uplink::CellChange { new_cell, .. } => grid.clamp_cell(*new_cell),
            Uplink::PositionReply { motion, .. } => grid.cell_of(motion.pos),
            Uplink::Resync { cell, .. } => grid.clamp_cell(*cell),
            Uplink::ResultUpdate { .. }
            | Uplink::GroupResultUpdate { .. }
            | Uplink::LqtSync { .. } => return None,
        })
    }

    /// The partition owning the sender's cell, when the message names one.
    pub fn primary(map: &PartitionMap, grid: &Grid, msg: &Uplink) -> Option<u32> {
        Self::primary_cell(grid, msg).map(|cell| map.owner_of_cell(grid, cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_core::ObjectId;
    use mobieyes_geo::{LinearMotion, Point, Rect, Vec2};

    #[test]
    fn contiguous_blocks_tile_the_grid() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        for n in [1usize, 2, 3, 4, 7] {
            let map = PartitionMap::contiguous(&grid, n);
            assert_eq!(map.num_partitions(), n);
            let mut total = 0usize;
            for p in 0..n {
                total += map.partition_cells(p as u32);
            }
            assert_eq!(total, grid.num_cells());
            for flat in 0..grid.num_cells() {
                let p = map.owner_of_flat(flat);
                assert!((p as usize) < n);
                let lo = map.bounds_snapshot()[p as usize];
                let hi = map.bounds_snapshot()[p as usize + 1];
                assert!((lo..hi).contains(&flat));
            }
        }
    }

    #[test]
    fn remainder_cells_go_to_leading_partitions() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0); // 100 cells
        let map = PartitionMap::contiguous(&grid, 3);
        assert_eq!(map.partition_cells(0), 34);
        assert_eq!(map.partition_cells(1), 33);
        assert_eq!(map.partition_cells(2), 33);
    }

    #[test]
    fn install_shifts_ownership_and_bumps_generation() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let map = PartitionMap::contiguous(&grid, 2);
        assert_eq!(map.generation(), 0);
        assert_eq!(map.owner_of_flat(49), 0);
        let gen = map.install(&[0, 30, 100]);
        assert_eq!(gen, 1);
        assert_eq!(map.generation(), 1);
        assert_eq!(map.owner_of_flat(49), 1);
        assert_eq!(map.partition_cells(0), 30);
        assert_eq!(map.partition_cells(1), 70);
    }

    #[test]
    fn plan_bounds_splits_load_evenly() {
        // All load in the first 10 cells: the planner pushes the cut
        // towards them instead of the cell-count midpoint.
        let mut loads = vec![0u64; 100];
        for l in loads.iter_mut().take(10) {
            *l = 100;
        }
        let bounds = plan_bounds(&loads, 2);
        assert_eq!(bounds.len(), 3);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[2], 100);
        assert!(
            bounds[1] <= 10,
            "cut {} should land in the hot span",
            bounds[1]
        );
        // Uniform load reproduces the near-equal cell split.
        let uniform = vec![5u64; 100];
        assert_eq!(plan_bounds(&uniform, 4), vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn plan_bounds_keeps_every_block_nonempty() {
        // Degenerate load (everything in one cell) must still yield n
        // non-empty blocks.
        let mut loads = vec![0u64; 8];
        loads[7] = 1000;
        let bounds = plan_bounds(&loads, 4);
        assert_eq!(bounds.len(), 5);
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "empty block in {bounds:?}");
        }
        assert_eq!(bounds[4], 8);
        // Zero total load falls back to leading cuts but stays well-formed.
        let cold = vec![0u64; 6];
        let b = plan_bounds(&cold, 3);
        assert_eq!(b.len(), 4);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn router_clamps_boundary_crossing_trajectory() {
        // 10×10 grid; an object dead-reckons past the east edge and
        // reports a cell change into the out-of-grid column 10. The
        // router must clamp instead of producing flat index >= 100.
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let map = PartitionMap::contiguous(&grid, 4);
        let motion = LinearMotion::new(Point::new(99.5, 42.0), Vec2::new(0.2, 0.0), 0.0);
        let msg = Uplink::CellChange {
            oid: ObjectId(7),
            prev_cell: CellId::new(9, 4),
            new_cell: CellId::new(10, 4), // one past the boundary
            motion,
        };
        let cell = Router::primary_cell(&grid, &msg).unwrap();
        assert_eq!(cell, CellId::new(9, 4));
        let p = Router::primary(&map, &grid, &msg).unwrap();
        assert!((p as usize) < map.num_partitions());

        // Same for a resync naming an out-of-grid cell on both axes.
        let resync = Uplink::Resync {
            oid: ObjectId(7),
            cell: CellId::new(12, 11),
            motion,
            max_vel: 0.3,
            fresh: false,
        };
        assert_eq!(
            Router::primary_cell(&grid, &resync).unwrap(),
            CellId::new(9, 9)
        );

        // Position-carrying messages already clamp through `cell_of`.
        let vr = Uplink::VelocityReport {
            oid: ObjectId(7),
            motion: LinearMotion::new(Point::new(130.0, -4.0), Vec2::new(0.0, 0.0), 1.0),
        };
        assert_eq!(Router::primary_cell(&grid, &vr).unwrap(), CellId::new(9, 0));
    }
}
