//! Partition map and stateless uplink router for the sharded server tier.

use mobieyes_core::Uplink;
use mobieyes_geo::{CellId, Grid};
use std::sync::Arc;

/// Assignment of contiguous grid-cell blocks (flat row-major indices) to
/// partition ids.
///
/// `bounds` has `N + 1` entries; partition `p` owns flat indices
/// `[bounds[p], bounds[p+1])`. Contiguity keeps ownership tests a single
/// comparison and makes the concatenation of per-partition digests (in
/// partition order) equal the single server's ascending-index scan.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    bounds: Arc<Vec<usize>>,
}

impl PartitionMap {
    /// Splits the grid's cells into `n` near-equal contiguous blocks (the
    /// first `num_cells % n` partitions get one extra cell).
    pub fn contiguous(grid: &Grid, n: usize) -> Self {
        assert!(n >= 1, "at least one partition");
        let cells = grid.num_cells();
        assert!(cells >= n, "more partitions than grid cells");
        let base = cells / n;
        let rem = cells % n;
        let mut bounds = Vec::with_capacity(n + 1);
        let mut at = 0usize;
        bounds.push(at);
        for p in 0..n {
            at += base + usize::from(p < rem);
            bounds.push(at);
        }
        debug_assert_eq!(*bounds.last().unwrap(), cells);
        PartitionMap {
            bounds: Arc::new(bounds),
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The shared bounds vector (for [`mobieyes_core::PartitionScope`]).
    pub fn bounds(&self) -> &Arc<Vec<usize>> {
        &self.bounds
    }

    pub fn owner_of_flat(&self, flat: usize) -> u32 {
        debug_assert!(flat < *self.bounds.last().unwrap());
        (self.bounds.partition_point(|&b| b <= flat) - 1) as u32
    }

    pub fn owner_of_cell(&self, grid: &Grid, cell: CellId) -> u32 {
        self.owner_of_flat(grid.flat_index(cell))
    }

    /// Number of cells a partition owns.
    pub fn partition_cells(&self, p: u32) -> usize {
        self.bounds[p as usize + 1] - self.bounds[p as usize]
    }
}

/// Stateless uplink router: picks the *primary* partition for a message —
/// the partition owning the cell the sender reports from. Messages that
/// carry no position (result reports, LQT syncs) have no primary and are
/// resolved by the coordinator against the query/focal home tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Router;

impl Router {
    /// The partition owning the sender's cell, when the message names one.
    pub fn primary(map: &PartitionMap, grid: &Grid, msg: &Uplink) -> Option<u32> {
        let cell = match msg {
            Uplink::VelocityReport { motion, .. } => grid.cell_of(motion.pos),
            Uplink::CellChange { new_cell, .. } => *new_cell,
            Uplink::PositionReply { motion, .. } => grid.cell_of(motion.pos),
            Uplink::Resync { cell, .. } => *cell,
            Uplink::ResultUpdate { .. }
            | Uplink::GroupResultUpdate { .. }
            | Uplink::LqtSync { .. } => return None,
        };
        Some(map.owner_of_cell(grid, cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Rect;

    #[test]
    fn contiguous_blocks_tile_the_grid() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        for n in [1usize, 2, 3, 4, 7] {
            let map = PartitionMap::contiguous(&grid, n);
            assert_eq!(map.num_partitions(), n);
            let mut total = 0usize;
            for p in 0..n {
                total += map.partition_cells(p as u32);
            }
            assert_eq!(total, grid.num_cells());
            for flat in 0..grid.num_cells() {
                let p = map.owner_of_flat(flat);
                assert!((p as usize) < n);
                let lo = map.bounds()[p as usize];
                let hi = map.bounds()[p as usize + 1];
                assert!((lo..hi).contains(&flat));
            }
        }
    }

    #[test]
    fn remainder_cells_go_to_leading_partitions() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0); // 100 cells
        let map = PartitionMap::contiguous(&grid, 3);
        assert_eq!(map.partition_cells(0), 34);
        assert_eq!(map.partition_cells(1), 33);
        assert_eq!(map.partition_cells(2), 33);
    }
}
