//! Minimal manual-timing bench harness.
//!
//! The `[[bench]]` targets run as plain `harness = false` binaries: each
//! benchmark is warmed up, then timed either for a fixed iteration count
//! (`MOBIEYES_BENCH_ITERS`) or until a small time budget is exhausted.
//! Reported numbers are mean / min ns per iteration — enough to spot
//! order-of-magnitude regressions without external dependencies.

use std::time::{Duration, Instant};

/// Re-export so benches have a single import for the optimization barrier.
pub use std::hint::black_box;

/// One bench run's configuration.
pub struct Harness {
    /// Fixed iteration count; `None` means "run until the time budget".
    iters: Option<u64>,
    /// Per-benchmark time budget when no fixed count is set.
    budget: Duration,
    warmup: u64,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            iters: None,
            budget: Duration::from_secs(2),
            warmup: 1,
        }
    }
}

impl Harness {
    /// Reads `MOBIEYES_BENCH_ITERS` (fixed count) and
    /// `MOBIEYES_BENCH_MS` (time budget, milliseconds) from the
    /// environment.
    pub fn from_env() -> Self {
        let mut h = Harness::default();
        if let Ok(v) = std::env::var("MOBIEYES_BENCH_ITERS") {
            if let Ok(n) = v.parse::<u64>() {
                h.iters = Some(n.max(1));
            }
        }
        if let Ok(v) = std::env::var("MOBIEYES_BENCH_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                h.budget = Duration::from_millis(ms.max(1));
            }
        }
        h
    }

    /// Times `f`, printing `name: mean ns/iter (min, iters)`.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        self.bench_batched(name, || (), |_| f());
    }

    /// Like [`bench`](Self::bench) but with per-iteration setup excluded
    /// from the timing.
    pub fn bench_batched<S, T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        for _ in 0..self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let mut timings: Vec<u64> = Vec::new();
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timings.push(t0.elapsed().as_nanos() as u64);
            match self.iters {
                Some(n) => {
                    if timings.len() as u64 >= n {
                        break;
                    }
                }
                None => {
                    if started.elapsed() >= self.budget && !timings.is_empty() {
                        break;
                    }
                }
            }
        }
        let n = timings.len() as u64;
        let mean = timings.iter().sum::<u64>() / n.max(1);
        let min = timings.iter().copied().min().unwrap_or(0);
        println!(
            "{name:<45} {:>12} ns/iter  (min {:>12}, n={})",
            fmt(mean),
            fmt(min),
            n
        );
    }
}

fn fmt(n: u64) -> String {
    // Thousands separators keep the nanosecond columns readable.
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_iteration_count_is_respected() {
        let h = Harness {
            iters: Some(3),
            ..Harness::default()
        };
        let mut runs = 0u32;
        h.bench("test/fixed", || runs += 1);
        // warmup (1) + measured (3)
        assert_eq!(runs, 4);
    }

    #[test]
    fn batched_setup_runs_once_per_iteration() {
        let h = Harness {
            iters: Some(5),
            ..Harness::default()
        };
        let mut setups = 0u32;
        let mut routines = 0u32;
        h.bench_batched("test/batched", || setups += 1, |_| routines += 1);
        assert_eq!(setups, 6);
        assert_eq!(routines, 6);
    }
}
