//! Partition-crash recovery benchmark (DESIGN.md §13): kills seeded
//! victim partitions mid-run — one of 2, one of 4, two of 8 — under both
//! recovery modes (failover-only and supervised respawn) and both
//! propagation modes, then freezes mobility and measures how many ticks
//! the fenced deployment needs to reconverge to *exact* ground-truth
//! results.
//!
//! Writes `BENCH_recovery.json` with recovery-latency percentiles (in
//! ticks) across seeds plus the fence telemetry of each run (detections,
//! fences, cells failed over / re-adopted, queries re-installed). Fully
//! deterministic: the same seeds produce the same JSON on every host.
//! Set `MOBIEYES_QUICK=1` for a 2-seed smoke run.

use mobieyes_core::Propagation;
use mobieyes_net::PartitionCrashPlan;
use mobieyes_sim::{MobiEyesSim, RecoveryKind, SimConfig};
use mobieyes_telemetry::rec_keys;
use std::fmt::Write as _;

const LEASE_TICKS: usize = 6;
/// Hard cap on the recovery measurement; the convergence contract
/// (DESIGN.md §13, inherited from §8) promises `3 * lease + 2` = 20 ticks.
const MAX_RECOVERY: usize = 3 * LEASE_TICKS + 2;
/// Measured tick at which the crash plan fires.
const CRASH_TICK: u64 = 8;
/// Live-mobility ticks after the crash before the frozen measurement, so
/// recovery runs under motion first (as it would in production).
const POST_CRASH_TICKS: usize = 4;

/// (partitions, kills): one of 2, one of 4, two of 8.
const TOPOLOGIES: [(usize, usize); 3] = [(2, 1), (4, 1), (8, 2)];

struct Sample {
    seed: u64,
    /// Frozen ticks until every query matched ground truth exactly.
    recovery_ticks: usize,
    crash_detections: u64,
    fences: u64,
    cells_failed_over: u64,
    cells_readopted: u64,
    queries_reinstalled: u64,
    respawns: u64,
}

fn run_one(
    seed: u64,
    propagation: Propagation,
    partitions: usize,
    kills: usize,
    recovery: RecoveryKind,
) -> Sample {
    let config = SimConfig::small_test(seed)
        .with_propagation(propagation)
        .with_lease_ticks(LEASE_TICKS)
        .with_partitions(partitions);
    let mut sim = MobiEyesSim::new(config);
    sim.set_crash_plan(PartitionCrashPlan::seeded(
        seed,
        partitions as u32,
        kills,
        CRASH_TICK,
    ));
    sim.set_recovery(recovery);
    for _ in 0..CRASH_TICK as usize + POST_CRASH_TICKS {
        sim.step(false);
    }
    sim.freeze(true);
    let mut recovery_ticks = MAX_RECOVERY;
    for k in 0..=MAX_RECOVERY {
        let truth = sim.ground_truth();
        let qids = sim.query_ids().to_vec();
        let exact = qids
            .iter()
            .zip(&truth)
            .all(|(&q, t)| sim.query_result_owned(q).map_or(t.is_empty(), |r| &r == t));
        if exact {
            recovery_ticks = k;
            break;
        }
        sim.step(false);
    }
    let s = sim.cluster().bus_telemetry().snapshot();
    Sample {
        seed,
        recovery_ticks,
        crash_detections: s.counter(rec_keys::CRASH_DETECTIONS),
        fences: s.counter(rec_keys::FENCES),
        cells_failed_over: s.counter(rec_keys::CELLS_FAILED_OVER),
        cells_readopted: s.counter(rec_keys::CELLS_READOPTED),
        queries_reinstalled: s.counter(rec_keys::QUERIES_REINSTALLED),
        respawns: s.counter(rec_keys::RESPAWNS),
    }
}

fn percentile(sorted: &[usize], p: f64) -> usize {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let seeds: Vec<u64> = if mobieyes_bench::quick() {
        (701..703).collect()
    } else {
        (701..709).collect()
    };
    eprintln!(
        "crash-recovery bench: {} seeds, topologies {TOPOLOGIES:?}, crash tick {CRASH_TICK}, \
         lease {LEASE_TICKS} ticks",
        seeds.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"crash-recovery\",");
    let _ = writeln!(json, "  {},", mobieyes_bench::host_fields());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"lease_ticks\": {LEASE_TICKS}, \"crash_tick\": {CRASH_TICK}, \
         \"post_crash_ticks\": {POST_CRASH_TICKS}, \"contract_bound_ticks\": {MAX_RECOVERY}, \
         \"seeds\": {}, \"quick\": {} }},",
        seeds.len(),
        mobieyes_bench::quick()
    );
    let _ = writeln!(
        json,
        "  \"note\": \"recovery_ticks = frozen-mobility ticks after the crash+fence until every \
         query result equals the exact ground truth; the convergence contract bounds it by \
         contract_bound_ticks\","
    );
    let _ = writeln!(json, "  \"scenarios\": [");
    let modes = [("eqp", Propagation::Eager), ("lqp", Propagation::Lazy)];
    let recoveries = [RecoveryKind::Failover, RecoveryKind::Respawn];
    let total = modes.len() * recoveries.len() * TOPOLOGIES.len();
    let mut emitted = 0usize;
    for (name, propagation) in modes {
        for recovery in recoveries {
            for (partitions, kills) in TOPOLOGIES {
                let samples: Vec<Sample> = seeds
                    .iter()
                    .map(|&s| run_one(s, propagation, partitions, kills, recovery))
                    .collect();
                let mut latencies: Vec<usize> = samples.iter().map(|s| s.recovery_ticks).collect();
                latencies.sort_unstable();
                let (p50, p90, max) = (
                    percentile(&latencies, 0.5),
                    percentile(&latencies, 0.9),
                    *latencies.last().unwrap(),
                );
                println!(
                    "{name}/{recovery} {kills} of {partitions}: recovery ticks p50={p50} \
                     p90={p90} max={max} (bound {MAX_RECOVERY})"
                );
                let _ = writeln!(
                    json,
                    "    {{ \"mode\": \"{name}\", \"recovery\": \"{recovery}\", \
                     \"partitions\": {partitions}, \"kills\": {kills},"
                );
                let _ = writeln!(
                    json,
                    "      \"recovery_ticks\": {{ \"p50\": {p50}, \"p90\": {p90}, \
                     \"max\": {max} }},"
                );
                let _ = writeln!(json, "      \"runs\": [");
                for (i, s) in samples.iter().enumerate() {
                    let _ = writeln!(
                        json,
                        "        {{ \"seed\": {}, \"recovery_ticks\": {}, \
                         \"crash_detections\": {}, \"fences\": {}, \"cells_failed_over\": {}, \
                         \"cells_readopted\": {}, \"queries_reinstalled\": {}, \
                         \"respawns\": {} }}{}",
                        s.seed,
                        s.recovery_ticks,
                        s.crash_detections,
                        s.fences,
                        s.cells_failed_over,
                        s.cells_readopted,
                        s.queries_reinstalled,
                        s.respawns,
                        if i + 1 == samples.len() { "" } else { "," }
                    );
                }
                let _ = writeln!(json, "      ]");
                emitted += 1;
                let _ = writeln!(json, "    }}{}", if emitted == total { "" } else { "," });
            }
        }
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    eprintln!("wrote BENCH_recovery.json");
}
