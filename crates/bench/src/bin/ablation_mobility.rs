//! Ablation: how the trajectory model affects messaging and accuracy.
//! The paper's velocity-reset model randomizes headings uniformly in time;
//! random waypoint concentrates turns at waypoints. Run with `--release`.

use mobieyes_bench::{scaled, Table};
use mobieyes_sim::{run_approach, Approach, MobilityKind, SimConfig};

fn main() {
    let mut t = Table::new(
        "ablation_mobility",
        "Velocity-reset (paper) vs random-waypoint mobility",
        "num_queries",
        "messages per second / error",
        &[
            "msgs/s reset",
            "msgs/s waypoint",
            "error reset",
            "error waypoint",
            "uplink/s reset",
            "uplink/s waypoint",
        ],
    );
    for &nmq in &[100usize, 500, 1000] {
        let base = scaled(SimConfig::default().with_queries(nmq));
        let reset = run_approach(base.clone(), Approach::MobiEyesEqp).metrics;
        let waypoint = run_approach(
            base.with_mobility(MobilityKind::RandomWaypoint),
            Approach::MobiEyesEqp,
        )
        .metrics;
        t.push(
            nmq as f64,
            vec![
                reset.msgs_per_second,
                waypoint.msgs_per_second,
                reset.avg_result_error,
                waypoint.avg_result_error,
                reset.uplink_msgs_per_second,
                waypoint.uplink_msgs_per_second,
            ],
        );
        eprintln!("[ablation_mobility] nmq={nmq} done");
    }
    t.print();
    t.save().expect("write results/");
}
