//! Cluster-scaling benchmark: runs the same deployment over 1, 2, 4 and 8
//! grid-sharded server partitions and records how the server-side load —
//! uplinks handled per partition and resident SQT entries — divides as the
//! partition count grows, plus the inter-server bus traffic that sharding
//! introduces (focal migrations and remote-region stub synchronization).
//!
//! Every partition count is also checked against the single-server run:
//! per-query results must be identical and the protocol telemetry must
//! compare equal under `MetricsSnapshot::protocol_eq`, so the bench doubles
//! as an end-to-end equivalence gate. Fully deterministic: the same seeds
//! produce the same JSON on every host and at every `MOBIEYES_THREADS`
//! setting. Writes `BENCH_cluster.json`. Set `MOBIEYES_QUICK=1` for a
//! smaller smoke run.

use mobieyes_core::ObjectId;
use mobieyes_sim::{ClusterClient, ClusterSim, HostedPartitions, MobiEyesSim, SimConfig};
use mobieyes_telemetry::{MetricsSnapshot, Telemetry};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

const PARTITIONS: &[usize] = &[1, 2, 4, 8];
const WARMUP: usize = 4;
/// Rebalance cadence for the skew run: frequent enough to fire several
/// times inside the bench window even in quick mode.
const REBALANCE_TICKS: usize = 5;

struct Load {
    uplinks_handled: u64,
    sqt_entries: usize,
    stub_entries: usize,
}

struct Run {
    results: Vec<BTreeSet<ObjectId>>,
    snapshot: MetricsSnapshot,
    per_partition: Vec<Load>,
    bus_msgs: u64,
    bus_bytes: u64,
}

fn run_one(config: &SimConfig, partitions: usize, ticks: usize) -> Run {
    let mut sim = ClusterSim::new(config.clone(), partitions);
    // Manual stepping without the post-warmup reset: uplink totals then
    // cover the whole run, matching the per-partition op counters.
    for _ in 0..WARMUP {
        sim.step(false);
    }
    for _ in 0..ticks {
        sim.step(true);
    }
    let results = sim
        .query_ids()
        .iter()
        .map(|&q| sim.query_result(q).cloned().unwrap_or_default())
        .collect();
    let snapshot = sim.telemetry().snapshot();
    let (per_partition, bus_msgs, bus_bytes) = match sim.cluster() {
        Some(c) => {
            let loads = (0..partitions)
                .map(|p| Load {
                    uplinks_handled: c.partition_ops(p),
                    sqt_entries: c.partition(p).expect("lockstep partition").num_queries(),
                    stub_entries: c.partition(p).expect("lockstep partition").num_stubs(),
                })
                .collect();
            let meter = c.bus_meter();
            (loads, meter.total_msgs(), meter.total_bytes())
        }
        None => (
            vec![Load {
                uplinks_handled: snapshot.counter("srv.uplinks_processed"),
                sqt_entries: sim.sim().server().num_queries(),
                stub_entries: 0,
            }],
            0,
            0,
        ),
    };
    Run {
        results,
        snapshot,
        per_partition,
        bus_msgs,
        bus_bytes,
    }
}

struct RebalanceRun {
    results: Vec<BTreeSet<ObjectId>>,
    snapshot: MetricsSnapshot,
    map_generation: u64,
    /// Per-partition primary uplinks handled after the first map install —
    /// the window where the load-driven bounds are in effect.
    window_ops: Vec<u64>,
}

/// Runs `partitions` servers with periodic load-driven rebalancing and
/// measures how evenly the primary-uplink load divides once the first
/// recomputed partition map is installed.
fn run_rebalanced(config: &SimConfig, partitions: usize, ticks: usize) -> RebalanceRun {
    let mut sim = ClusterSim::new(
        config.clone().with_rebalance_ticks(REBALANCE_TICKS),
        partitions,
    );
    let mut base: Option<Vec<u64>> = None;
    let ops = |sim: &ClusterSim| -> Vec<u64> {
        let c = sim.cluster().expect("rebalance run is partitioned");
        (0..partitions).map(|p| c.partition_ops(p)).collect()
    };
    for i in 0..WARMUP + ticks {
        sim.step(i >= WARMUP);
        if base.is_none() && sim.cluster().expect("partitioned").map_generation() > 0 {
            base = Some(ops(&sim));
        }
    }
    let base = base.expect("rebalance cadence must fire inside the bench window");
    let window_ops = ops(&sim)
        .iter()
        .zip(&base)
        .map(|(now, b)| now - b)
        .collect();
    RebalanceRun {
        results: sim
            .query_ids()
            .iter()
            .map(|&q| sim.query_result(q).cloned().unwrap_or_default())
            .collect(),
        snapshot: sim.telemetry().snapshot(),
        map_generation: sim.cluster().expect("partitioned").map_generation(),
        window_ops,
    }
}

/// Same measurement as [`run_rebalanced`], but against live partition
/// services behind real Unix sockets: the quiesce / install / RQI-transfer
/// fence rides the framed RPC surface instead of the in-process bus.
fn run_rebalanced_remote(config: &SimConfig, partitions: usize, ticks: usize) -> RebalanceRun {
    let hosted = HostedPartitions::spawn(partitions, true).expect("spawn partition services");
    let client = ClusterClient::connect(hosted.endpoints(), Duration::from_secs(10))
        .expect("connect to hosted partitions");
    let mut sim = client.into_sim(
        config.clone().with_rebalance_ticks(REBALANCE_TICKS),
        Telemetry::new(),
    );
    let mut base: Option<Vec<u64>> = None;
    let ops = |sim: &MobiEyesSim| -> Vec<u64> {
        (0..partitions)
            .map(|p| sim.cluster().partition_ops(p))
            .collect()
    };
    for i in 0..WARMUP + ticks {
        sim.step(i >= WARMUP);
        if base.is_none() && sim.cluster().map_generation() > 0 {
            base = Some(ops(&sim));
        }
    }
    let base = base.expect("rebalance cadence must fire inside the bench window");
    let window_ops = ops(&sim)
        .iter()
        .zip(&base)
        .map(|(now, b)| now - b)
        .collect();
    let run = RebalanceRun {
        results: sim
            .query_ids()
            .iter()
            .map(|&q| sim.query_result_owned(q).unwrap_or_default())
            .collect(),
        snapshot: sim.telemetry().snapshot(),
        map_generation: sim.cluster().map_generation(),
        window_ops,
    };
    sim.shutdown();
    hosted.join().expect("partition services exit cleanly");
    run
}

/// Load skew: heaviest partition over lightest (1.0 = perfectly even).
fn skew(ops: &[u64]) -> f64 {
    let max = ops.iter().copied().max().unwrap_or(0);
    let min = ops.iter().copied().min().unwrap_or(0).max(1);
    max as f64 / min as f64
}

fn main() {
    let quick = mobieyes_bench::quick();
    let (config, ticks) = if quick {
        (SimConfig::small_test(701), 10)
    } else {
        (
            SimConfig::small_test(701)
                .with_objects(2000)
                .with_queries(200)
                .with_nmo(200),
            20,
        )
    };
    eprintln!(
        "cluster-scaling bench: {} objects, {} queries, {} ticks, partitions {PARTITIONS:?}",
        config.num_objects, config.num_queries, ticks
    );

    let runs: Vec<Run> = PARTITIONS
        .iter()
        .map(|&n| run_one(&config, n, ticks))
        .collect();
    let reference = &runs[0];

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"cluster-scaling\",");
    let _ = writeln!(json, "  {},", mobieyes_bench::host_fields());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"objects\": {}, \"queries\": {}, \"ticks\": {ticks}, \
         \"warmup\": {WARMUP}, \"seed\": {}, \"quick\": {quick} }},",
        config.num_objects, config.num_queries, config.seed
    );
    let _ = writeln!(
        json,
        "  \"note\": \"uplinks_handled counts the uplinks a partition processed as primary over \
         the whole run; sqt/stub entries are resident table sizes at the end; every partition \
         count is asserted byte-identical (results + protocol telemetry) to n = 1\","
    );
    let _ = writeln!(json, "  \"partitions\": [");
    for (i, (&n, run)) in PARTITIONS.iter().zip(&runs).enumerate() {
        // Equivalence gate: results and protocol telemetry must match the
        // single-server reference exactly.
        assert_eq!(
            reference.results, run.results,
            "query results diverged at {n} partitions"
        );
        assert!(
            reference.snapshot.protocol_eq(&run.snapshot),
            "protocol telemetry diverged at {n} partitions"
        );
        let max_uplinks = run
            .per_partition
            .iter()
            .map(|l| l.uplinks_handled)
            .max()
            .unwrap_or(0);
        let max_sqt = run
            .per_partition
            .iter()
            .map(|l| l.sqt_entries)
            .max()
            .unwrap_or(0);
        println!(
            "n={n}: max uplinks/partition {max_uplinks}, max SQT entries {max_sqt}, \
             bus {} msgs / {} bytes",
            run.bus_msgs, run.bus_bytes
        );
        let _ = writeln!(json, "    {{ \"n\": {n},");
        let _ = writeln!(
            json,
            "      \"max_uplinks_handled\": {max_uplinks}, \"max_sqt_entries\": {max_sqt},"
        );
        let _ = writeln!(
            json,
            "      \"bus_msgs\": {}, \"bus_bytes\": {},",
            run.bus_msgs, run.bus_bytes
        );
        let _ = writeln!(json, "      \"per_partition\": [");
        for (p, l) in run.per_partition.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{ \"partition\": {p}, \"uplinks_handled\": {}, \"sqt_entries\": {}, \
                 \"stub_entries\": {} }}{}",
                l.uplinks_handled,
                l.sqt_entries,
                l.stub_entries,
                if p + 1 == run.per_partition.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 == PARTITIONS.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");

    // Load-skew measurement: the widest deployment again, now with the
    // partition map recomputed from observed per-cell load every
    // REBALANCE_TICKS ticks. Rebalancing must leave results and protocol
    // telemetry untouched and flatten the per-partition uplink split.
    let widest_n = *PARTITIONS.last().unwrap();
    let rebalanced = run_rebalanced(&config, widest_n, ticks);
    assert_eq!(
        reference.results, rebalanced.results,
        "rebalancing changed query results at {widest_n} partitions"
    );
    assert!(
        reference.snapshot.protocol_eq(&rebalanced.snapshot),
        "rebalancing changed protocol telemetry at {widest_n} partitions"
    );
    let static_ops: Vec<u64> = runs
        .last()
        .expect("at least one partition count")
        .per_partition
        .iter()
        .map(|l| l.uplinks_handled)
        .collect();
    let skew_before = skew(&static_ops);
    let skew_after = skew(&rebalanced.window_ops);
    println!(
        "n={widest_n} rebalanced: map generation {}, uplink skew {skew_before:.4} -> {skew_after:.4}",
        rebalanced.map_generation
    );
    assert!(
        skew_after < skew_before,
        "rebalancing must flatten the uplink split ({skew_before:.4} -> {skew_after:.4})"
    );
    if !quick {
        assert!(
            skew_after <= 1.15,
            "post-rebalance skew target missed: {skew_after:.4} > 1.15 at n={widest_n}"
        );
    }
    let _ = writeln!(
        json,
        "  \"rebalance\": {{ \"n\": {widest_n}, \"rebalance_ticks\": {REBALANCE_TICKS}, \
         \"map_generation\": {}, \"skew_before\": {skew_before:.4}, \
         \"skew_after\": {skew_after:.4} }},",
        rebalanced.map_generation
    );

    // The same skew measurement over real sockets: live partition services
    // behind Unix-domain endpoints, the rebalance fence running as RPCs.
    // Load planning is coordinator-side and deployment-independent, so the
    // remote run must install the identical generations and land on the
    // identical post-install uplink split as the in-process run above.
    let remote = run_rebalanced_remote(&config, widest_n, ticks);
    assert_eq!(
        reference.results, remote.results,
        "remote rebalancing changed query results at {widest_n} partitions"
    );
    // No protocol_eq gate here: server-side protocol counters accumulate
    // inside the remote partition services, not the coordinator's sink.
    // Results plus the coordinator-side op split are the remote gates.
    assert_eq!(
        rebalanced.map_generation, remote.map_generation,
        "remote deployment installed a different generation count"
    );
    assert_eq!(
        rebalanced.window_ops, remote.window_ops,
        "remote post-install uplink split diverged from in-process"
    );
    let skew_remote = skew(&remote.window_ops);
    println!(
        "n={widest_n} rebalanced over sockets: map generation {}, uplink skew \
         {skew_before:.4} -> {skew_remote:.4}",
        remote.map_generation
    );
    let _ = writeln!(
        json,
        "  \"rebalance_remote\": {{ \"n\": {widest_n}, \"rebalance_ticks\": {REBALANCE_TICKS}, \
         \"transport\": \"uds\", \"map_generation\": {}, \"skew_before\": {skew_before:.4}, \
         \"skew_after\": {skew_remote:.4} }}",
        remote.map_generation
    );
    let _ = writeln!(json, "}}");

    // The point of sharding: per-partition load must actually divide.
    let max_load = |run: &Run| {
        run.per_partition
            .iter()
            .map(|l| l.uplinks_handled)
            .max()
            .unwrap_or(0)
    };
    let max_sqt = |run: &Run| {
        run.per_partition
            .iter()
            .map(|l| l.sqt_entries)
            .max()
            .unwrap_or(0)
    };
    let single = &runs[0];
    let widest = runs.last().expect("at least one partition count");
    assert!(
        max_load(widest) < max_load(single),
        "per-partition uplink load must decrease with the partition count \
         ({} at n={} vs {} at n=1)",
        max_load(widest),
        PARTITIONS.last().unwrap(),
        max_load(single)
    );
    assert!(
        max_sqt(widest) < max_sqt(single),
        "per-partition SQT residency must decrease with the partition count"
    );

    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    eprintln!("wrote BENCH_cluster.json");
}
