//! Runs every figure and ablation in sequence, writing all artifacts to
//! `results/`. This is the one-shot reproduction entry point:
//! `cargo run -p mobieyes-bench --release --bin all_figures`.

use mobieyes_bench::figures;

fn main() {
    let start = std::time::Instant::now();
    let tables = vec![
        figures::table1(),
        figures::fig1(),
        figures::fig2(),
        figures::fig3(),
        figures::fig4(),
    ];
    for t in &tables {
        t.print();
        println!();
        t.save().expect("write results/");
    }
    let (t5, t6) = figures::fig5_6();
    for t in [&t5, &t6] {
        t.print();
        println!();
        t.save().expect("write results/");
    }
    let rest = vec![
        figures::fig7(),
        figures::fig8(),
        figures::fig9(),
        figures::fig10(),
        figures::fig11(),
        figures::fig12(),
        figures::fig13(),
        figures::ablation_grouping(),
        figures::ablation_delta(),
    ];
    for t in &rest {
        t.print();
        println!();
        t.save().expect("write results/");
    }
    eprintln!("all figures done in {:.1} s", start.elapsed().as_secs_f64());
}
