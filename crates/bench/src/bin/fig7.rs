//! Regenerates fig7 of the paper. Run with `--release`; set
//! `MOBIEYES_QUICK=1` for a fast smoke run.

fn main() {
    let table = mobieyes_bench::figures::fig7();
    table.print();
    table.save().expect("write results/");
    eprintln!("wrote results/{}.csv and .json", table.id);
}
