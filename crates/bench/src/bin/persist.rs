//! Durable-log persistence benchmark (DESIGN.md §14): runs the same
//! deployment with and without a journal to price the write path, then
//! measures cold-start recovery (rebuild a server purely from the log and
//! demand a byte-identical state digest), raw append throughput over the
//! run's real record mix, and checkpoint compaction cost.
//!
//! Writes `BENCH_persist.json`. `scripts/check.sh` gates on
//! `digest_match` and a replay-rate floor; the numbers themselves are
//! host-dependent, the digests are not. Set `MOBIEYES_QUICK=1` for a
//! smaller smoke run.

use mobieyes_core::Propagation;
use mobieyes_sim::{MobiEyesSim, SimConfig, SimConfigBuilder};
use mobieyes_store::{self as store, Store, StoreConfig};
use mobieyes_telemetry::Telemetry;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn bench_config(seed: u64, mode: Propagation) -> SimConfig {
    let (objects, queries, nmo, ticks, warmup) = if mobieyes_bench::quick() {
        (400, 30, 40, 12, 3)
    } else {
        (2000, 100, 200, 40, 5)
    };
    SimConfigBuilder::from_config(SimConfig::small_test(seed).with_propagation(mode))
        .objects(objects)
        .queries(queries)
        .objects_changing_velocity(nmo)
        .ticks(ticks)
        .warmup_ticks(warmup)
        .build_or_panic()
}

/// Total bytes of every file under the partition's log directory.
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

struct Sample {
    ticks: usize,
    /// Seconds per tick without / with the journal attached.
    baseline_s_per_tick: f64,
    store_s_per_tick: f64,
    /// Valid records in the log after the run, and their on-disk size.
    records: u64,
    log_bytes: u64,
    /// Cold-start drill: flush + rebuild from the log alone.
    recovery_ms: f64,
    replay_records_per_s: f64,
    digest_match: bool,
    /// Re-appending the run's record mix to a fresh store, then flushing.
    append_records_per_s: f64,
    /// Snapshot + rotate + GC, and the log size it leaves behind.
    checkpoint_ms: f64,
    log_bytes_after_checkpoint: u64,
}

fn timed_run(config: SimConfig) -> (MobiEyesSim, f64) {
    let mut sim = MobiEyesSim::new(config);
    for _ in 0..sim.config.warmup_ticks {
        sim.step(false);
    }
    let ticks = sim.config.ticks;
    let t = Instant::now();
    for _ in 0..ticks {
        sim.step(false);
    }
    (sim, t.elapsed().as_secs_f64() / ticks as f64)
}

fn run_one(seed: u64, mode: Propagation, root: &Path) -> Sample {
    let _ = std::fs::remove_dir_all(root);
    let (_, baseline_s_per_tick) = timed_run(bench_config(seed, mode));
    let log_root = root.join("log");
    let (mut sim, store_s_per_tick) =
        timed_run(bench_config(seed, mode).with_store_dir(log_root.clone()));

    // Cold-start drill: the rebuilt server must be byte-identical.
    let digest_before = sim.server().state_digest();
    let t = Instant::now();
    sim.rebuild_server_from_log();
    let recovery_s = t.elapsed().as_secs_f64();
    let digest_match = sim.server().state_digest() == digest_before;

    // The rebuild flushed the store, so the on-disk log is now complete.
    let p0 = log_root.join("p0");
    let scan = store::read_log_dir(&p0, 0).expect("scan log");
    let records = scan.records.len() as u64;
    let log_bytes = dir_bytes(&p0);
    let replay_records_per_s = records as f64 / recovery_s;

    // Raw append throughput over the run's real record mix.
    let append_dir = root.join("append");
    let fresh = Store::open(StoreConfig::new(&append_dir, 0), Telemetry::new()).expect("open");
    let t = Instant::now();
    for (_, rec) in &scan.records {
        fresh.append_record(rec);
    }
    fresh.flush();
    let append_records_per_s = records as f64 / t.elapsed().as_secs_f64();

    // Compaction: snapshot + rotate + GC on the live deployment.
    let t = Instant::now();
    sim.checkpoint_now();
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    let log_bytes_after_checkpoint = dir_bytes(&p0);

    let ticks = sim.config.ticks;
    let _ = std::fs::remove_dir_all(root);
    Sample {
        ticks,
        baseline_s_per_tick,
        store_s_per_tick,
        records,
        log_bytes,
        recovery_ms: recovery_s * 1e3,
        replay_records_per_s,
        digest_match,
        append_records_per_s,
        checkpoint_ms,
        log_bytes_after_checkpoint,
    }
}

fn main() {
    let root = std::env::temp_dir().join(format!("mobieyes-bench-persist-{}", std::process::id()));
    let seed = 21u64;
    eprintln!(
        "persistence bench: seed {seed}, quick={}",
        mobieyes_bench::quick()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"persistence\",");
    let _ = writeln!(json, "  {},", mobieyes_bench::host_fields());
    let _ = writeln!(
        json,
        "  \"note\": \"digest_match: a server rebuilt purely from its log is byte-identical to \
         the one that wrote it; replay_records_per_s times that cold-start drill\","
    );
    let _ = writeln!(json, "  \"scenarios\": [");
    let modes = [("eqp", Propagation::Eager), ("lqp", Propagation::Lazy)];
    for (i, (name, mode)) in modes.iter().enumerate() {
        let mode_root: PathBuf = root.join(name);
        let s = run_one(seed, *mode, &mode_root);
        let overhead_pct =
            (s.store_s_per_tick - s.baseline_s_per_tick) / s.baseline_s_per_tick * 100.0;
        println!(
            "{name}: {} records over {} ticks ({} log bytes, {:.0} B/tick), append {:.0} rec/s, \
             journal overhead {overhead_pct:.1}%, replay {:.0} rec/s ({:.1} ms), \
             checkpoint {:.1} ms -> {} bytes, digest_match={}",
            s.records,
            s.ticks,
            s.log_bytes,
            s.log_bytes as f64 / s.ticks as f64,
            s.append_records_per_s,
            s.replay_records_per_s,
            s.recovery_ms,
            s.checkpoint_ms,
            s.log_bytes_after_checkpoint,
            s.digest_match
        );
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{name}\", \"ticks\": {}, \"records\": {}, \"log_bytes\": {}, \
             \"log_bytes_per_tick\": {:.1},",
            s.ticks,
            s.records,
            s.log_bytes,
            s.log_bytes as f64 / s.ticks as f64
        );
        let _ = writeln!(
            json,
            "      \"baseline_s_per_tick\": {:.6}, \"store_s_per_tick\": {:.6}, \
             \"journal_overhead_pct\": {overhead_pct:.2},",
            s.baseline_s_per_tick, s.store_s_per_tick
        );
        let _ = writeln!(
            json,
            "      \"append_records_per_s\": {:.0}, \"replay_records_per_s\": {:.0}, \
             \"recovery_ms\": {:.3}, \"digest_match\": {},",
            s.append_records_per_s, s.replay_records_per_s, s.recovery_ms, s.digest_match
        );
        let _ = writeln!(
            json,
            "      \"checkpoint_ms\": {:.3}, \"log_bytes_after_checkpoint\": {} }}{}",
            s.checkpoint_ms,
            s.log_bytes_after_checkpoint,
            if i + 1 == modes.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_persist.json", &json).expect("write BENCH_persist.json");
    eprintln!("wrote BENCH_persist.json");
    let _ = std::fs::remove_dir_all(&root);
}
