//! Tiny JSON field assertion helper for shell gates (`scripts/check.sh`),
//! replacing fragile `grep -o` pipelines over the `BENCH_*.json` files.
//!
//! ```console
//! $ assert-json BENCH_chaos.json get contract_bound_ticks      # prints 20
//! $ assert-json BENCH_chaos.json forbid recovery_ticks 20      # fails if present
//! $ assert-json BENCH_cluster.json require bench cluster-scaling
//! $ assert-json BENCH_scale.json max seconds_per_tick          # prints largest
//! $ assert-json BENCH_persist.json min replay_records_per_s    # prints smallest
//! ```
//!
//! Scans for `"<key>": <scalar>` pairs (numbers, strings, booleans) —
//! exactly the shapes the in-tree bench writers emit. `get` prints the
//! first value; `max` prints the numerically largest (for budget checks
//! over series entries); `min` the smallest (for throughput floors);
//! `forbid` exits non-zero when any pair matches the given value;
//! `require` exits non-zero unless one does.

use std::process::exit;

/// All scalar values appearing under `"key":` anywhere in the document.
fn values_of(doc: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\"");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find(&needle) {
        let after = &rest[at + needle.len()..];
        let after = after.trim_start();
        if let Some(stripped) = after.strip_prefix(':') {
            let v = stripped.trim_start();
            let val = if let Some(s) = v.strip_prefix('"') {
                // String value: up to the closing quote (the writers never
                // emit escaped quotes).
                s.split('"').next().unwrap_or("").to_string()
            } else {
                // Number / boolean / null: up to a delimiter.
                v.split([',', '}', ']', '\n', ' '])
                    .next()
                    .unwrap_or("")
                    .to_string()
            };
            if !val.is_empty() {
                out.push(val);
            }
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: assert-json <file> get <key>\n       assert-json <file> max <key>\n       assert-json <file> min <key>\n       assert-json <file> forbid <key> <value>\n       assert-json <file> require <key> <value>"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (file, cmd) = match args.as_slice() {
        [f, c, rest @ ..] if !rest.is_empty() => (f, (c.as_str(), rest)),
        _ => usage(),
    };
    let doc = match std::fs::read_to_string(file) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("assert-json: cannot read {file}: {e}");
            exit(2);
        }
    };
    match cmd {
        ("get", [key]) => {
            let vals = values_of(&doc, key);
            match vals.first() {
                Some(v) => println!("{v}"),
                None => {
                    eprintln!("assert-json: key \"{key}\" not found in {file}");
                    exit(1);
                }
            }
        }
        ("max", [key]) => {
            let max = values_of(&doc, key)
                .iter()
                .filter_map(|v| v.parse::<f64>().ok())
                .fold(f64::NAN, f64::max);
            if max.is_nan() {
                eprintln!("assert-json: key \"{key}\" has no numeric values in {file}");
                exit(1);
            }
            println!("{max}");
        }
        ("min", [key]) => {
            let min = values_of(&doc, key)
                .iter()
                .filter_map(|v| v.parse::<f64>().ok())
                .fold(f64::NAN, f64::min);
            if min.is_nan() {
                eprintln!("assert-json: key \"{key}\" has no numeric values in {file}");
                exit(1);
            }
            println!("{min}");
        }
        ("forbid", [key, value]) => {
            if values_of(&doc, key).iter().any(|v| v == value) {
                eprintln!("assert-json: {file} contains \"{key}\": {value} (forbidden)");
                exit(1);
            }
        }
        ("require", [key, value]) => {
            if !values_of(&doc, key).iter().any(|v| v == value) {
                eprintln!("assert-json: {file} has no \"{key}\": {value} (required)");
                exit(1);
            }
        }
        _ => usage(),
    }
}
