//! Regenerates Figures 5 and 6 of the paper (one shared sweep). Run with
//! `--release`; set `MOBIEYES_QUICK=1` for a fast smoke run.

fn main() {
    let (t5, t6) = mobieyes_bench::figures::fig5_6();
    t5.print();
    println!();
    t6.print();
    t5.save().expect("write results/");
    t6.save().expect("write results/");
    eprintln!("wrote results/fig5.* and results/fig6.*");
}
