//! Chaos-recovery benchmark: drives EQP and LQP deployments through the
//! fault scenario of `tests/chaos_convergence.rs` — 30% uplink drop, 30%
//! downlink drop, 20% duplication both ways, 12% object churn (half of
//! the churned objects crashing) — then clears the faults, freezes
//! mobility and measures how many fault-free ticks the self-healing layer
//! needs to reach *exact* ground-truth results again.
//!
//! Writes `BENCH_chaos.json` with recovery-latency percentiles (in ticks)
//! across seeds, plus the stale-state telemetry of the recovery. Fully
//! deterministic: the same seeds produce the same JSON on every host.
//! Set `MOBIEYES_QUICK=1` for a 3-seed smoke run.

use mobieyes_core::Propagation;
use mobieyes_net::ChurnPlan;
use mobieyes_sim::{MobiEyesSim, SimConfig};
use std::fmt::Write as _;

const LEASE_TICKS: usize = 6;
const WARMUP: usize = 5;
const CHAOS_TICKS: usize = 10;
/// Hard cap on the recovery measurement; the convergence contract
/// (DESIGN.md §8) promises `3 * lease + 2` = 20 ticks.
const MAX_RECOVERY: usize = 3 * LEASE_TICKS + 2;

const UPLINK_DROP: f64 = 0.3;
const DOWNLINK_DROP: f64 = 0.3;
const DUP_RATE: f64 = 0.2;
const CHURN_RATE: f64 = 0.12;

struct Sample {
    seed: u64,
    /// Fault-free ticks until every query matched ground truth exactly.
    recovery_ticks: usize,
    stale_results_purged: u64,
    stale_discarded: u64,
    resync_requests: u64,
    leases_expired: u64,
}

fn run_one(seed: u64, propagation: Propagation) -> Sample {
    let config = SimConfig::small_test(seed)
        .with_propagation(propagation)
        .with_lease_ticks(LEASE_TICKS);
    let mut sim = MobiEyesSim::new(config);
    for _ in 0..WARMUP {
        sim.step(false);
    }
    sim.set_churn(ChurnPlan::new(
        UPLINK_DROP,
        DUP_RATE,
        DOWNLINK_DROP,
        DUP_RATE,
        CHURN_RATE,
        CHAOS_TICKS as u64,
        seed ^ 0xC0A5_7A11,
    ));
    for _ in 0..CHAOS_TICKS {
        sim.step(false);
    }
    sim.clear_faults();
    sim.freeze(true);
    let mut recovery_ticks = MAX_RECOVERY;
    for k in 1..=MAX_RECOVERY {
        sim.step(false);
        let truth = sim.ground_truth();
        let qids = sim.query_ids().to_vec();
        let exact = qids.iter().zip(&truth).all(|(&q, t)| {
            sim.server()
                .query_result(q)
                .map_or(t.is_empty(), |r| r == t)
        });
        if exact {
            recovery_ticks = k;
            break;
        }
    }
    let s = sim.telemetry().snapshot();
    Sample {
        seed,
        recovery_ticks,
        stale_results_purged: s.counter("srv.stale_results_purged"),
        stale_discarded: s.counter("agent.stale_discarded"),
        resync_requests: s.counter("agent.resync_requests"),
        leases_expired: s.counter("srv.leases_expired"),
    }
}

fn percentile(sorted: &[usize], p: f64) -> usize {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let seeds: Vec<u64> = if mobieyes_bench::quick() {
        (601..604).collect()
    } else {
        (601..613).collect()
    };
    eprintln!(
        "chaos-recovery bench: {} seeds, uplink drop {UPLINK_DROP}, downlink drop \
         {DOWNLINK_DROP}, dup {DUP_RATE}, churn {CHURN_RATE}, lease {LEASE_TICKS} ticks",
        seeds.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"chaos-recovery\",");
    let _ = writeln!(json, "  {},", mobieyes_bench::host_fields());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"uplink_drop\": {UPLINK_DROP}, \"downlink_drop\": {DOWNLINK_DROP}, \
         \"dup_rate\": {DUP_RATE}, \"churn_rate\": {CHURN_RATE}, \"lease_ticks\": {LEASE_TICKS}, \
         \"chaos_ticks\": {CHAOS_TICKS}, \"contract_bound_ticks\": {MAX_RECOVERY}, \"seeds\": {}, \
         \"quick\": {} }},",
        seeds.len(),
        mobieyes_bench::quick()
    );
    let _ = writeln!(
        json,
        "  \"note\": \"recovery_ticks = fault-free ticks until every query result equals the \
         exact ground truth; the convergence contract bounds it by contract_bound_ticks\","
    );
    let _ = writeln!(json, "  \"modes\": [");
    let modes = [("eqp", Propagation::Eager), ("lqp", Propagation::Lazy)];
    for (mi, (name, propagation)) in modes.iter().enumerate() {
        let samples: Vec<Sample> = seeds.iter().map(|&s| run_one(s, *propagation)).collect();
        let mut latencies: Vec<usize> = samples.iter().map(|s| s.recovery_ticks).collect();
        latencies.sort_unstable();
        let (p50, p90, max) = (
            percentile(&latencies, 0.5),
            percentile(&latencies, 0.9),
            *latencies.last().unwrap(),
        );
        println!("{name}: recovery ticks p50={p50} p90={p90} max={max} (bound {MAX_RECOVERY})");
        let _ = writeln!(json, "    {{ \"mode\": \"{name}\",");
        let _ = writeln!(
            json,
            "      \"recovery_ticks\": {{ \"p50\": {p50}, \"p90\": {p90}, \"max\": {max} }},"
        );
        let _ = writeln!(json, "      \"runs\": [");
        for (i, s) in samples.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{ \"seed\": {}, \"recovery_ticks\": {}, \"stale_results_purged\": {}, \
                 \"stale_discarded\": {}, \"resync_requests\": {}, \"leases_expired\": {} }}{}",
                s.seed,
                s.recovery_ticks,
                s.stale_results_purged,
                s.stale_discarded,
                s.resync_requests,
                s.leases_expired,
                if i + 1 == samples.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if mi + 1 == modes.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    eprintln!("wrote BENCH_chaos.json");
}
