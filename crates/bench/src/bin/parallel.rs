//! Sequential-vs-parallel tick-engine benchmark.
//!
//! Drives the Figure 1-scale MobiEyes deployment (10 000 objects, 1 000
//! queries, Table 1 defaults) through the same measured tick loop at 1, 2
//! and 4 worker threads and writes `BENCH_parallel.json` with wall time
//! per tick and the speedup over the sequential engine (threads = 1).
//!
//! The two engines share one code path — a single shard runs the
//! buffer-and-merge machinery inline — so the comparison isolates the
//! cost/benefit of the worker pool itself. Determinism across thread
//! counts is asserted by `tests/parallel_equivalence.rs`; this binary only
//! measures. Set `MOBIEYES_QUICK=1` to shrink the workload ~10x.

use mobieyes_sim::{MobiEyesSim, SimConfig, SimConfigBuilder};
use std::fmt::Write as _;
use std::time::Instant;

const THREADS: &[usize] = &[1, 2, 4];

struct Sample {
    threads: usize,
    total_seconds: f64,
    seconds_per_tick: f64,
}

fn main() {
    let base = mobieyes_bench::scaled(
        SimConfig::builder()
            .ticks(8)
            .warmup_ticks(3)
            .build_or_panic(),
    );
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "parallel tick-engine bench: {} objects, {} queries, {} measured ticks (host has {} hardware thread{})",
        base.num_objects,
        base.num_queries,
        base.ticks,
        host_threads,
        if host_threads == 1 { "" } else { "s" }
    );

    let mut samples = Vec::new();
    for &threads in THREADS {
        let config = SimConfigBuilder::from_config(base.clone())
            .threads(threads)
            .build_or_panic();
        let mut sim = MobiEyesSim::new(config);
        for _ in 0..base.warmup_ticks {
            sim.step(false);
        }
        let t0 = Instant::now();
        for _ in 0..base.ticks {
            sim.step(true);
        }
        let total_seconds = t0.elapsed().as_secs_f64();
        let seconds_per_tick = total_seconds / base.ticks as f64;
        println!(
            "threads={threads:<2}  {total_seconds:>8.3} s total  {:>10.1} ms/tick",
            seconds_per_tick * 1e3
        );
        samples.push(Sample {
            threads,
            total_seconds,
            seconds_per_tick,
        });
    }

    let sequential = samples[0].total_seconds;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"parallel-tick-engine\",");
    let _ = writeln!(json, "  {},", mobieyes_bench::host_fields());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"objects\": {}, \"queries\": {}, \"measured_ticks\": {}, \"warmup_ticks\": {}, \"quick\": {} }},",
        base.num_objects,
        base.num_queries,
        base.ticks,
        base.warmup_ticks,
        mobieyes_bench::quick()
    );
    let _ = writeln!(
        json,
        "  \"host\": {{ \"available_parallelism\": {host_threads} }},"
    );
    let _ = writeln!(
        json,
        "  \"note\": \"Speedup is bounded by the host's hardware threads: on a single-CPU host every thread count serializes onto one core and speedup stays ~1.0x; >=2x at 4 threads requires >=4 cores. Results are byte-identical at every thread count (tests/parallel_equivalence.rs).\","
    );
    let _ = writeln!(json, "  \"series\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"threads\": {}, \"total_seconds\": {:.6}, \"seconds_per_tick\": {:.6}, \"speedup_vs_sequential\": {:.3} }}{}",
            s.threads,
            s.total_seconds,
            s.seconds_per_tick,
            sequential / s.total_seconds,
            if i + 1 == samples.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    eprintln!("wrote BENCH_parallel.json");
}
