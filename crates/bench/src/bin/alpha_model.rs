//! Validates the analytical α messaging-cost model (the model the paper
//! mentions but omits) against the measured Figure 4 sweep: both curves
//! must be U-shaped with nearby minima.
//!
//! Run with `--release`; set `MOBIEYES_QUICK=1` for a fast smoke run.

use mobieyes_bench::{scaled, sweeps, Table};
use mobieyes_sim::{alpha_model, run_approach, Approach, SimConfig, WorkloadMoments};

fn main() {
    let mut t = Table::new(
        "alpha_model",
        "Analytical alpha model vs measured messaging cost",
        "alpha",
        "messages per second",
        &["model total", "model cell-up", "model bcast", "measured"],
    );
    let config = SimConfig::default();
    let moments = WorkloadMoments::from_config(&config);
    for &alpha in sweeps::ALPHA {
        let pred = alpha_model::predict(&config, &moments, alpha);
        let measured = run_approach(
            scaled(SimConfig::default().with_alpha(alpha)),
            Approach::MobiEyesEqp,
        )
        .metrics
        .msgs_per_second;
        t.push(
            alpha,
            vec![
                pred.total(),
                pred.cell_change_uplinks,
                pred.broadcasts,
                measured,
            ],
        );
        eprintln!("[alpha_model] alpha={alpha} done");
    }
    let optimal = alpha_model::optimal_alpha(&config);
    t.print();
    println!("\nmodel-optimal alpha = {optimal:.2} miles (paper observes [4, 6])");
    t.save().expect("write results/");
}
