//! Million-object hot-path scaling benchmark.
//!
//! Sweeps the struct-of-arrays tick engine from 2 000 to 1 000 000
//! objects at the Table 1 density (0.1 objects / sq mile — the area grows
//! with the population), recording wall-clock per tick and wireless bytes
//! per object per tick, then runs the seed engine head-to-head at the
//! 100 000-object point for the headline speedup. Writes
//! `BENCH_scale.json`.
//!
//! The two engines are byte-identical in everything but wall clock
//! (`tests/engine_equivalence.rs`); this binary only measures. Set
//! `MOBIEYES_QUICK=1` for a 20 000-object ceiling (the `check.sh` smoke
//! stage).

use mobieyes_sim::{EngineKind, MobiEyesSim, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;

const SIZES: &[usize] = &[2_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000];
const QUICK_SIZES: &[usize] = &[2_000, 10_000, 20_000];

struct Sample {
    objects: usize,
    seconds_per_tick: f64,
    bytes_per_object_tick: f64,
}

fn config_for(objects: usize, engine: EngineKind) -> SimConfig {
    let mut config = SimConfig::small_test(17)
        .with_objects(objects)
        .with_queries(1_000.min(objects / 10))
        .with_nmo(1_000.min(objects / 10))
        .with_alen(10.0)
        // Safe periods on (§4.2): the steady-state configuration the hot
        // path is built for. Both engines run the identical config; the
        // results stay byte-identical (the equivalence matrix covers
        // safe-period runs).
        .with_safe_period(true)
        .with_engine(engine);
    // Table 1 density: 0.1 objects per square mile at every size, so the
    // per-object workload (cell crossings, query contact) stays constant
    // and the sweep isolates how cost grows with population.
    config.area = objects as f64 * 10.0;
    config
}

/// Runs `measured` ticks after warmup, returning (seconds/tick,
/// bytes/object/tick) over the measured window.
fn measure(config: SimConfig, warmup: usize, measured: usize) -> (f64, f64) {
    let objects = config.num_objects;
    let mut sim = MobiEyesSim::new(config);
    for _ in 0..warmup {
        sim.step(false);
    }
    let bytes_at = |sim: &MobiEyesSim| {
        let snap = sim.telemetry().snapshot();
        snap.counter("net.uplink.bytes")
            + snap.counter("net.unicast.bytes")
            + snap.counter("net.broadcast.bytes")
    };
    let bytes_before = bytes_at(&sim);
    let t0 = Instant::now();
    for _ in 0..measured {
        // step(false): skip the harness's exact ground-truth scoring pass —
        // engine-independent instrumentation that would dilute the tick-path
        // comparison equally on both sides.
        sim.step(false);
    }
    let seconds_per_tick = t0.elapsed().as_secs_f64() / measured as f64;
    let bytes = bytes_at(&sim) - bytes_before;
    let bytes_per_object_tick = bytes as f64 / (objects as f64 * measured as f64);
    (seconds_per_tick, bytes_per_object_tick)
}

fn main() {
    let quick = mobieyes_bench::quick();
    let sizes = if quick { QUICK_SIZES } else { SIZES };
    let compare_at = *sizes.last().expect("nonempty sweep").min(&100_000);
    eprintln!(
        "scale bench: SoA sweep over {sizes:?} objects, seed-vs-SoA comparison at {compare_at}"
    );

    let mut samples = Vec::new();
    for &objects in sizes {
        // Big populations amortize less per tick, so fewer measured ticks
        // keep the full sweep tractable without hiding the steady state.
        let measured = if objects > 100_000 { 3 } else { 5 };
        let (seconds_per_tick, bytes_per_object_tick) =
            measure(config_for(objects, EngineKind::Soa), 2, measured);
        println!(
            "objects={objects:<9} {:>10.2} ms/tick  {:>8.2} bytes/object/tick",
            seconds_per_tick * 1e3,
            bytes_per_object_tick
        );
        samples.push(Sample {
            objects,
            seconds_per_tick,
            bytes_per_object_tick,
        });
    }

    let (seed_spt, _) = measure(config_for(compare_at, EngineKind::Seed), 2, 3);
    let soa_spt = samples
        .iter()
        .find(|s| s.objects == compare_at)
        .expect("comparison size is in the sweep")
        .seconds_per_tick;
    let speedup = seed_spt / soa_spt;
    println!(
        "seed engine at {compare_at}: {:.2} ms/tick -> SoA speedup {speedup:.2}x",
        seed_spt * 1e3
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"scale-sweep\",");
    let _ = writeln!(json, "  {},", mobieyes_bench::host_fields());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"density_objects_per_sq_mile\": 0.1, \"quick\": {quick} }},"
    );
    let _ = writeln!(
        json,
        "  \"note\": \"Both engines are byte-identical in results and protocol telemetry (tests/engine_equivalence.rs); speedup is pure tick-path wall clock on this host.\","
    );
    let _ = writeln!(
        json,
        "  \"seed_comparison\": {{ \"objects\": {compare_at}, \"seed_seconds_per_tick\": {seed_spt:.6}, \"soa_seconds_per_tick\": {soa_spt:.6}, \"soa_speedup\": {speedup:.3} }},"
    );
    let _ = writeln!(json, "  \"series\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"objects\": {}, \"seconds_per_tick\": {:.6}, \"bytes_per_object_tick\": {:.3} }}{}",
            s.objects,
            s.seconds_per_tick,
            s.bytes_per_object_tick,
            if i + 1 == samples.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    eprintln!("wrote BENCH_scale.json");
}
