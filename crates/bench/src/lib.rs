//! Shared machinery for the figure-reproduction binaries and Criterion
//! benches: result tables (aligned stdout + CSV + JSON), the standard
//! sweep values, and the quick-mode scaling knob.
//!
//! Every `fig*` binary regenerates one table/figure of the paper:
//! `cargo run -p mobieyes-bench --release --bin fig1` (etc.) prints the
//! series and writes `results/fig1.csv` / `results/fig1.json`.
//! Set `MOBIEYES_QUICK=1` to shrink workloads ~10x for smoke runs.

pub mod figures;
pub mod harness;
pub mod table;

pub use harness::Harness;
pub use table::Table;

use mobieyes_sim::{SimConfig, SimConfigBuilder};

/// Is quick mode requested (smaller workloads, same shapes)?
pub fn quick() -> bool {
    std::env::var("MOBIEYES_QUICK")
        .map(|v| v == "1" || v == "true")
        .unwrap_or(false)
}

/// Host-provenance JSON fields every `BENCH_*.json` embeds: the machine's
/// core count and the `MOBIEYES_THREADS` setting the run used (`"auto"`
/// when unset). Returned as a fragment — `"host_cores": 8,
/// "mobieyes_threads": "4"` — for splicing into a JSON object.
pub fn host_fields() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = std::env::var("MOBIEYES_THREADS").unwrap_or_else(|_| "auto".to_string());
    let transport = std::env::var("MOBIEYES_TRANSPORT").unwrap_or_else(|_| "lockstep".to_string());
    format!(
        "\"host_cores\": {cores}, \"mobieyes_threads\": \"{threads}\", \"transport\": \"{transport}\""
    )
}

/// Applies quick-mode scaling to a configuration produced by a sweep. The
/// object/query counts and the area shrink together so densities (and thus
/// the figure shapes) are preserved.
pub fn scaled(config: SimConfig) -> SimConfig {
    if !quick() {
        return config;
    }
    SimConfigBuilder::from_config(config.clone())
        .objects((config.num_objects / 10).max(50))
        .queries((config.num_queries / 10).max(5))
        .objects_changing_velocity((config.objects_changing_velocity / 10).max(5))
        .area(config.area / 10.0)
        .ticks(config.ticks.min(15))
        .warmup_ticks(config.warmup_ticks.min(3))
        .build_or_panic()
}

/// The sweep values used across figures (paper ranges).
pub mod sweeps {
    /// Query-count sweep (Table 1: 100–1 000).
    pub const NMQ: &[usize] = &[100, 250, 500, 750, 1000];
    /// Object-count sweep (Table 1: 1 000–10 000).
    pub const NO: &[usize] = &[1000, 2500, 5000, 7500, 10_000];
    /// Velocity-changes-per-step sweep (Table 1: 100–1 000).
    pub const NMO: &[usize] = &[100, 250, 500, 750, 1000];
    /// Grid cell side sweep (Table 1: 0.5–16 miles).
    pub const ALPHA: &[f64] = &[0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 16.0];
    /// Base-station side sweep (Table 1: 5–80 miles).
    pub const ALEN: &[f64] = &[5.0, 10.0, 20.0, 40.0, 80.0];
    /// Figure 12 radius factors.
    pub const RADIUS_FACTOR: &[f64] = &[0.5, 1.0, 1.5, 2.0, 3.0, 4.0];
}
