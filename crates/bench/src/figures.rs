//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every function runs the corresponding parameter sweep through the
//! unified [`run_approach`] entry point and returns a [`Table`] with
//! exactly the series the paper plots. Absolute numbers differ from the
//! paper (different hardware, different substrate); the *shapes* — who
//! wins, by what order of magnitude, where the crossovers and optima sit
//! — are the reproduction targets (see EXPERIMENTS.md).

use crate::table::Table;
use crate::{scaled, sweeps};
use mobieyes_sim::{run_approach, Approach, RunMetrics, SimConfig, SimConfigBuilder};

fn progress(fig: &str, msg: &str) {
    eprintln!("[{fig}] {msg}");
}

/// Runs one engine over one configuration and returns the metrics view.
fn run(config: SimConfig, approach: Approach) -> RunMetrics {
    run_approach(config, approach).metrics
}

/// Table 1: the simulation parameters (printed, not measured).
pub fn table1() -> Table {
    let c = SimConfig::default();
    let mut t = Table::new(
        "table1",
        "Simulation parameters (defaults)",
        "param#",
        "default value",
        &["value"],
    );
    // Rendered as ordered rows; the binary prints names alongside.
    let values = [
        c.time_step,
        c.alpha,
        c.num_objects as f64,
        c.num_queries as f64,
        c.objects_changing_velocity as f64,
        c.area,
        c.alen,
        c.selectivity,
        c.delta,
    ];
    for (i, v) in values.iter().enumerate() {
        t.push(i as f64, vec![*v]);
    }
    t
}

/// Figure 1: server load (s per time step, log scale) vs number of
/// queries, for the object index, the query index, MobiEyes EQP and LQP.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "fig1",
        "Impact of distributed query processing on server load",
        "num_queries",
        "server seconds per time step (log scale)",
        &[
            "object-index",
            "query-index",
            "mobieyes-eqp",
            "mobieyes-lqp",
        ],
    );
    for &nmq in sweeps::NMQ {
        let base = scaled(SimConfig::default().with_queries(nmq));
        let ys = [
            Approach::ObjectIndex,
            Approach::QueryIndex,
            Approach::MobiEyesEqp,
            Approach::MobiEyesLqp,
        ]
        .map(|a| run(base.clone(), a).server_seconds_per_tick);
        t.push(nmq as f64, ys.to_vec());
        progress("fig1", &format!("nmq={nmq} done"));
    }
    t
}

/// Figure 2: average result error of lazy query propagation vs the number
/// of objects changing velocity per time step, for α ∈ {2, 5, 10}.
pub fn fig2() -> Table {
    let alphas = [2.0, 5.0, 10.0];
    let mut t = Table::new(
        "fig2",
        "Error associated with lazy query propagation",
        "objects_changing_velocity",
        "avg result error (missing/|truth|)",
        &["alpha=2", "alpha=5", "alpha=10"],
    );
    for &nmo in sweeps::NMO {
        let mut ys = Vec::new();
        for &alpha in &alphas {
            let config = scaled(SimConfig::default().with_nmo(nmo).with_alpha(alpha));
            ys.push(run(config, Approach::MobiEyesLqp).avg_result_error);
        }
        t.push(nmo as f64, ys);
        progress("fig2", &format!("nmo={nmo} done"));
    }
    t
}

/// Figure 3: server load vs grid cell side α. The centralized baselines do
/// not depend on α, so they are measured once and drawn as flat lines.
pub fn fig3() -> Table {
    let mut t = Table::new(
        "fig3",
        "Effect of alpha on server load",
        "alpha",
        "server seconds per time step (log scale)",
        &[
            "object-index",
            "query-index",
            "mobieyes-eqp",
            "mobieyes-lqp",
        ],
    );
    let base = scaled(SimConfig::default());
    let oi = run(base.clone(), Approach::ObjectIndex).server_seconds_per_tick;
    let qi = run(base, Approach::QueryIndex).server_seconds_per_tick;
    for &alpha in sweeps::ALPHA {
        let base = scaled(SimConfig::default().with_alpha(alpha));
        let eqp = run(base.clone(), Approach::MobiEyesEqp).server_seconds_per_tick;
        let lqp = run(base, Approach::MobiEyesLqp).server_seconds_per_tick;
        t.push(alpha, vec![oi, qi, eqp, lqp]);
        progress("fig3", &format!("alpha={alpha} done"));
    }
    t
}

/// Figure 4: total messages per second vs α for different query counts.
pub fn fig4() -> Table {
    let nmqs = [100usize, 500, 1000];
    let mut t = Table::new(
        "fig4",
        "Effect of alpha on messaging cost",
        "alpha",
        "messages per second",
        &["nmq=100", "nmq=500", "nmq=1000"],
    );
    for &alpha in sweeps::ALPHA {
        let mut ys = Vec::new();
        for &nmq in &nmqs {
            let config = scaled(SimConfig::default().with_alpha(alpha).with_queries(nmq));
            ys.push(run(config, Approach::MobiEyesEqp).msgs_per_second);
        }
        t.push(alpha, ys);
        progress("fig4", &format!("alpha={alpha} done"));
    }
    t
}

/// Figures 5 and 6: total and uplink messages per second vs the number of
/// objects (nmo kept at 10 % of the objects, per the paper), for the
/// naive, central-optimal, MobiEyes EQP and LQP approaches at nmq ∈
/// {100, 1000}. Computed in one sweep; returned as (fig5, fig6).
pub fn fig5_6() -> (Table, Table) {
    let nmqs = [100usize, 1000];
    let columns = [
        "naive",
        "central-opt nmq=100",
        "central-opt nmq=1000",
        "eqp nmq=100",
        "eqp nmq=1000",
        "lqp nmq=100",
        "lqp nmq=1000",
    ];
    let mut t5 = Table::new(
        "fig5",
        "Effect of number of objects on messaging cost",
        "num_objects",
        "messages per second",
        &columns,
    );
    let mut t6 = Table::new(
        "fig6",
        "Effect of number of objects on uplink messaging cost",
        "num_objects",
        "uplink messages per second (log scale)",
        &columns,
    );
    for &no in sweeps::NO {
        let nmo = no / 10; // keep the ratio at its Table 1 default
        let mk = |nmq: usize| {
            scaled(
                SimConfig::default()
                    .with_objects(no)
                    .with_nmo(nmo)
                    .with_queries(nmq),
            )
        };
        // Naive and central-optimal do not depend on the query count.
        let naive = run(mk(100), Approach::Naive);
        let mut total = vec![naive.msgs_per_second];
        let mut uplink = vec![naive.uplink_msgs_per_second];
        for &nmq in &nmqs {
            let m = run(mk(nmq), Approach::CentralOptimal);
            total.push(m.msgs_per_second);
            uplink.push(m.uplink_msgs_per_second);
        }
        // Central-optimal truly has one line; the nmq column split keeps the
        // table rectangular (both columns are equal by construction).
        let co = total[1];
        total[2] = co;
        let cu = uplink[1];
        uplink[2] = cu;
        for approach in [Approach::MobiEyesEqp, Approach::MobiEyesLqp] {
            for &nmq in &nmqs {
                let m = run(mk(nmq), approach);
                total.push(m.msgs_per_second);
                uplink.push(m.uplink_msgs_per_second);
            }
        }
        t5.push(no as f64, total);
        t6.push(no as f64, uplink);
        progress("fig5/6", &format!("no={no} done"));
    }
    (t5, t6)
}

/// Figure 7: messages per second vs the number of objects changing their
/// velocity vector per time step.
pub fn fig7() -> Table {
    let mut t = Table::new(
        "fig7",
        "Effect of velocity changes per time step on messaging cost",
        "objects_changing_velocity",
        "messages per second",
        &[
            "central-optimal",
            "eqp nmq=100",
            "eqp nmq=1000",
            "lqp nmq=100",
            "lqp nmq=1000",
        ],
    );
    for &nmo in sweeps::NMO {
        let mk = |nmq: usize| scaled(SimConfig::default().with_nmo(nmo).with_queries(nmq));
        let mut ys = vec![run(mk(100), Approach::CentralOptimal).msgs_per_second];
        for approach in [Approach::MobiEyesEqp, Approach::MobiEyesLqp] {
            for &nmq in &[100usize, 1000] {
                ys.push(run(mk(nmq), approach).msgs_per_second);
            }
        }
        t.push(nmo as f64, ys);
        progress("fig7", &format!("nmo={nmo} done"));
    }
    t
}

/// Figure 8: messages per second vs base-station side length.
pub fn fig8() -> Table {
    let nmqs = [100usize, 500, 1000];
    let mut t = Table::new(
        "fig8",
        "Effect of base station coverage area on messaging cost",
        "alen",
        "messages per second",
        &["nmq=100", "nmq=500", "nmq=1000"],
    );
    for &alen in sweeps::ALEN {
        let mut ys = Vec::new();
        for &nmq in &nmqs {
            let config = scaled(SimConfig::default().with_alen(alen).with_queries(nmq));
            ys.push(run(config, Approach::MobiEyesEqp).msgs_per_second);
        }
        t.push(alen, ys);
        progress("fig8", &format!("alen={alen} done"));
    }
    t
}

/// Figure 9: per-object power consumption due to communication vs the
/// number of queries.
pub fn fig9() -> Table {
    let mut t = Table::new(
        "fig9",
        "Per-object power consumption due to communication",
        "num_queries",
        "average power (mW)",
        &["naive", "central-optimal", "mobieyes-eqp"],
    );
    for &nmq in sweeps::NMQ {
        let base = scaled(SimConfig::default().with_queries(nmq));
        let ys = [
            Approach::Naive,
            Approach::CentralOptimal,
            Approach::MobiEyesEqp,
        ]
        .map(|a| run(base.clone(), a).avg_power_mw);
        t.push(nmq as f64, ys.to_vec());
        progress("fig9", &format!("nmq={nmq} done"));
    }
    t
}

/// Figure 10: average LQT size vs α for different query counts.
pub fn fig10() -> Table {
    let nmqs = [100usize, 500, 1000];
    let mut t = Table::new(
        "fig10",
        "Effect of alpha on the average number of queries on a moving object",
        "alpha",
        "average LQT size",
        &["nmq=100", "nmq=500", "nmq=1000"],
    );
    for &alpha in sweeps::ALPHA {
        let mut ys = Vec::new();
        for &nmq in &nmqs {
            let config = scaled(SimConfig::default().with_alpha(alpha).with_queries(nmq));
            ys.push(run(config, Approach::MobiEyesEqp).avg_lqt_size);
        }
        t.push(alpha, ys);
        progress("fig10", &format!("alpha={alpha} done"));
    }
    t
}

/// Figure 11: average LQT size vs the number of queries for α ∈ {2,5,10}.
pub fn fig11() -> Table {
    let alphas = [2.0, 5.0, 10.0];
    let mut t = Table::new(
        "fig11",
        "Effect of the total number of queries on the average LQT size",
        "num_queries",
        "average LQT size",
        &["alpha=2", "alpha=5", "alpha=10"],
    );
    for &nmq in sweeps::NMQ {
        let mut ys = Vec::new();
        for &alpha in &alphas {
            let config = scaled(SimConfig::default().with_queries(nmq).with_alpha(alpha));
            ys.push(run(config, Approach::MobiEyesEqp).avg_lqt_size);
        }
        t.push(nmq as f64, ys);
        progress("fig11", &format!("nmq={nmq} done"));
    }
    t
}

/// Figure 12: average LQT size vs the query radius factor.
pub fn fig12() -> Table {
    let mut t = Table::new(
        "fig12",
        "Effect of the query radius on the average LQT size",
        "radius_factor",
        "average LQT size",
        &["mobieyes-eqp"],
    );
    for &f in sweeps::RADIUS_FACTOR {
        let config = scaled(SimConfig::default().with_radius_factor(f));
        t.push(f, vec![run(config, Approach::MobiEyesEqp).avg_lqt_size]);
        progress("fig12", &format!("factor={f} done"));
    }
    t
}

/// Figure 13: per-object query processing load vs α with and without the
/// safe-period optimization.
pub fn fig13() -> Table {
    let alphas = [1.0, 2.0, 4.0, 8.0, 16.0];
    let mut t = Table::new(
        "fig13",
        "Effect of the safe period optimization on processing load",
        "alpha",
        "avg microseconds per object per time step",
        &[
            "base",
            "safe-period",
            "evals base",
            "evals safe",
            "skips safe",
        ],
    );
    for &alpha in &alphas {
        let base = run(
            scaled(SimConfig::default().with_alpha(alpha)),
            Approach::MobiEyesEqp,
        );
        let safe = run(
            scaled(
                SimConfig::default()
                    .with_alpha(alpha)
                    .with_safe_period(true),
            ),
            Approach::MobiEyesEqp,
        );
        t.push(
            alpha,
            vec![
                base.avg_eval_micros_per_object_tick,
                safe.avg_eval_micros_per_object_tick,
                base.avg_evals_per_object_tick,
                safe.avg_evals_per_object_tick,
                safe.avg_safe_period_skips,
            ],
        );
        progress("fig13", &format!("alpha={alpha} done"));
    }
    t
}

/// Ablation: query grouping vs focal-object skew. Groupable queries only
/// exist when focal objects repeat, so we sweep the size of the focal pool
/// and compare broadcast counts, bytes and evaluation work.
pub fn ablation_grouping() -> Table {
    let pools = [1usize, 2, 5, 20, 100];
    let mut t = Table::new(
        "ablation_grouping",
        "Query grouping vs focal-object skew (smaller pool = more skew)",
        "focal_pool",
        "messages per second / evaluations per object-tick",
        &[
            "msgs/s plain",
            "msgs/s grouped",
            "evals plain",
            "evals grouped",
            "error plain",
            "error grouped",
        ],
    );
    for &pool in &pools {
        let base = SimConfigBuilder::from_config(scaled(SimConfig::default().with_queries(200)))
            .focal_pool(pool)
            .build_or_panic();
        let plain = run(base.clone(), Approach::MobiEyesEqp);
        let grouped = run(base.with_grouping(true), Approach::MobiEyesEqp);
        t.push(
            pool as f64,
            vec![
                plain.msgs_per_second,
                grouped.msgs_per_second,
                plain.avg_evals_per_object_tick,
                grouped.avg_evals_per_object_tick,
                plain.avg_result_error,
                grouped.avg_result_error,
            ],
        );
        progress("ablation_grouping", &format!("pool={pool} done"));
    }
    t
}

/// Ablation: the dead-reckoning threshold Δ trades messaging cost against
/// result accuracy.
pub fn ablation_delta() -> Table {
    let deltas = [0.05, 0.2, 0.5, 1.0, 2.0];
    let mut t = Table::new(
        "ablation_delta",
        "Dead-reckoning threshold: messaging vs accuracy",
        "delta_miles",
        "messages per second / avg error",
        &["msgs/s", "uplink msgs/s", "avg error"],
    );
    for &d in &deltas {
        let config = SimConfigBuilder::from_config(scaled(SimConfig::default()))
            .delta(d)
            .build_or_panic();
        let m = run(config, Approach::MobiEyesEqp);
        t.push(
            d,
            vec![
                m.msgs_per_second,
                m.uplink_msgs_per_second,
                m.avg_result_error,
            ],
        );
        progress("ablation_delta", &format!("delta={d} done"));
    }
    t
}
