//! Result tables: aligned stdout rendering plus CSV and JSON artifacts.

use mobieyes_telemetry::json::Value;
use std::fs;
use std::path::PathBuf;

/// One figure's data: an x column plus one y column per series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure identifier, e.g. "fig1".
    pub id: String,
    /// Human title, e.g. "Server load vs number of queries".
    pub title: String,
    /// Label of the x column.
    pub xlabel: String,
    /// Label of the y values (units).
    pub ylabel: String,
    /// Series names.
    pub columns: Vec<String>,
    /// `(x, y per column)` rows. `NaN` renders as "-".
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    pub fn new(id: &str, title: &str, xlabel: &str, ylabel: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            xlabel: xlabel.to_string(),
            ylabel: ylabel.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, ys: Vec<f64>) {
        assert_eq!(ys.len(), self.columns.len(), "row width mismatch");
        self.rows.push((x, ys));
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&format!("# y: {}\n", self.ylabel));
        let mut header = vec![self.xlabel.clone()];
        header.extend(self.columns.iter().cloned());
        let mut grid: Vec<Vec<String>> = vec![header];
        for (x, ys) in &self.rows {
            let mut row = vec![fmt_num(*x)];
            row.extend(ys.iter().map(|y| fmt_num(*y)));
            grid.push(row);
        }
        let widths: Vec<usize> = (0..grid[0].len())
            .map(|c| grid.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for row in &grid {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, v)| format!("{:>w$}", v, w = widths[c]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes `results/<id>.csv` and `results/<id>.json`.
    pub fn save(&self) -> std::io::Result<()> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let mut csv = String::new();
        csv.push_str(&self.xlabel);
        for c in &self.columns {
            csv.push(',');
            csv.push_str(c);
        }
        csv.push('\n');
        for (x, ys) in &self.rows {
            csv.push_str(&format!("{x}"));
            for y in ys {
                csv.push(',');
                csv.push_str(&format!("{y}"));
            }
            csv.push('\n');
        }
        fs::write(dir.join(format!("{}.csv", self.id)), csv)?;
        fs::write(
            dir.join(format!("{}.json", self.id)),
            self.to_json().to_string_pretty(),
        )?;
        Ok(())
    }

    /// The JSON document written next to the CSV:
    /// `{id, title, xlabel, ylabel, columns, rows: [[x, [ys]], ...]}`.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::str(&self.id)),
            ("title".into(), Value::str(&self.title)),
            ("xlabel".into(), Value::str(&self.xlabel)),
            ("ylabel".into(), Value::str(&self.ylabel)),
            (
                "columns".into(),
                Value::Arr(self.columns.iter().map(Value::str).collect()),
            ),
            (
                "rows".into(),
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|(x, ys)| {
                            Value::Arr(vec![
                                Value::Num(*x),
                                Value::Arr(ys.iter().map(|y| Value::Num(*y)).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn fmt_num(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

/// Where figure artifacts land: `<workspace>/results`.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("figX", "Test", "alpha", "msgs/s", &["a", "longname"]);
        t.push(0.5, vec![1.0, 1234.5678]);
        t.push(16.0, vec![0.001234, f64::NAN]);
        let r = t.render();
        assert!(r.contains("figX"));
        assert!(r.contains("longname"));
        assert!(r.contains("-"), "NaN renders as dash");
        // Every data line has the same number of columns.
        let lines: Vec<&str> = r.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_checks_width() {
        let mut t = Table::new("f", "t", "x", "y", &["a"]);
        t.push(1.0, vec![1.0, 2.0]);
    }

    #[test]
    fn save_writes_csv_and_json() {
        let mut t = Table::new("testtable_unit", "Test", "x", "y", &["a"]);
        t.push(1.0, vec![2.0]);
        t.save().unwrap();
        let dir = results_dir();
        let csv = std::fs::read_to_string(dir.join("testtable_unit.csv")).unwrap();
        assert!(csv.starts_with("x,a\n1,2\n"));
        let json = std::fs::read_to_string(dir.join("testtable_unit.json")).unwrap();
        assert!(json.contains("\"id\": \"testtable_unit\""));
        // Clean up test artifacts.
        let _ = std::fs::remove_file(dir.join("testtable_unit.csv"));
        let _ = std::fs::remove_file(dir.join("testtable_unit.json"));
    }
}
