//! Shape regression tests: the qualitative claims of the paper's figures,
//! checked at quick scale on every test run. These are the "does the
//! reproduction still reproduce?" tests — each asserts the *ordering and
//! trend* a figure shows, not absolute numbers.

use mobieyes_bench::figures;
use std::sync::{Mutex, MutexGuard};

/// Figure runs measure wall-clock server load; running them concurrently
/// on shared cores makes those measurements noisy. Serialize the tests.
static SERIAL: Mutex<()> = Mutex::new(());

fn quick() -> MutexGuard<'static, ()> {
    // Process-global, but every test sets the same value.
    std::env::set_var("MOBIEYES_QUICK", "1");
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn fig1_shape_mobieyes_beats_centralized_indexes() {
    let _serial = quick();
    let t = figures::fig1();
    for (nmq, ys) in &t.rows {
        let (oi, qi, eqp, lqp) = (ys[0], ys[1], ys[2], ys[3]);
        assert!(eqp < oi, "nmq={nmq}: EQP {eqp} must beat object index {oi}");
        assert!(eqp < qi, "nmq={nmq}: EQP {eqp} must beat query index {qi}");
        assert!(
            lqp <= eqp * 2.0,
            "nmq={nmq}: LQP {lqp} should not exceed EQP {eqp} much"
        );
    }
    // Query index grows with nmq; object index stays within a small band.
    let first = &t.rows.first().unwrap().1;
    let last = &t.rows.last().unwrap().1;
    assert!(
        last[1] > first[1],
        "query-index load must grow with queries"
    );
    assert!(
        last[0] < first[0] * 5.0,
        "object-index load must stay near constant"
    );
    // MobiEyes sits far below the object index (two orders of magnitude at
    // paper scale; >5x even at quick scale under timing noise).
    assert!(
        first[0] / first[2] > 5.0,
        "EQP should be far below object index at nmq=100"
    );
}

#[test]
fn fig2_shape_lqp_error_decreases_with_velocity_changes() {
    let _serial = quick();
    let t = figures::fig2();
    // For every α column, the error at the max nmo must be below the error
    // at the min nmo.
    let first = &t.rows.first().unwrap().1;
    let last = &t.rows.last().unwrap().1;
    for c in 0..t.columns.len() {
        assert!(
            last[c] <= first[c] + 0.01,
            "{}: error should fall with nmo ({} -> {})",
            t.columns[c],
            first[c],
            last[c]
        );
    }
    // The largest α is the most accurate at high velocity-change rates.
    assert!(
        last[2] <= last[0] + 0.01,
        "alpha=10 should beat alpha=2 at nmo=max"
    );
}

#[test]
fn fig9_shape_power_ordering() {
    let _serial = quick();
    let t = figures::fig9();
    for (nmq, ys) in &t.rows {
        let (naive, co, me) = (ys[0], ys[1], ys[2]);
        assert!(
            naive > me,
            "nmq={nmq}: naive power {naive} must exceed MobiEyes {me}"
        );
        assert!(co < naive, "nmq={nmq}: central-optimal must beat naive");
    }
    // MobiEyes power grows with the query count.
    assert!(
        t.rows.last().unwrap().1[2] > t.rows.first().unwrap().1[2],
        "MobiEyes power must grow with queries"
    );
}

#[test]
fn fig10_shape_lqt_grows_with_alpha_and_queries() {
    let _serial = quick();
    let t = figures::fig10();
    // Monotone in α for each query count (allowing small noise).
    for c in 0..t.columns.len() {
        let first = t.rows.first().unwrap().1[c];
        let last = t.rows.last().unwrap().1[c];
        assert!(last > first, "{}: LQT must grow with alpha", t.columns[c]);
    }
    // More queries -> larger LQT at every α.
    for (alpha, ys) in &t.rows {
        assert!(
            ys[2] >= ys[0],
            "alpha={alpha}: nmq=1000 LQT must be >= nmq=100"
        );
    }
}

#[test]
fn fig12_shape_lqt_grows_with_radius() {
    let _serial = quick();
    let t = figures::fig12();
    let first = t.rows.first().unwrap().1[0];
    let last = t.rows.last().unwrap().1[0];
    assert!(
        last > first * 1.5,
        "radius factor 4 must clearly grow the LQT ({first} -> {last})"
    );
}

#[test]
fn fig13_shape_safe_period_saves_evaluations_at_large_alpha() {
    let _serial = quick();
    let t = figures::fig13();
    let last = &t.rows.last().unwrap().1; // largest α
    let (evals_base, evals_safe, skips) = (last[2], last[3], last[4]);
    assert!(
        evals_safe < evals_base / 2.0,
        "safe period must halve evaluations at large alpha ({evals_base} -> {evals_safe})"
    );
    assert!(skips > 0.0, "skip counter must be non-zero");
}

#[test]
fn fig7_shape_central_optimal_grows_with_nmo_while_eqp_stays_flat() {
    let _serial = quick();
    let t = figures::fig7();
    let first = &t.rows.first().unwrap().1;
    let last = &t.rows.last().unwrap().1;
    // central-optimal (col 0) grows substantially with the velocity-change
    // rate; EQP at nmq=100 (col 1) moves far less in relative terms.
    assert!(
        last[0] > first[0] * 2.0,
        "central-optimal must grow with nmo"
    );
    assert!(
        last[1] < first[1] * 1.5,
        "EQP messaging must be nearly flat in nmo ({} -> {})",
        first[1],
        last[1]
    );
    // The paper's gap-closing claim: (EQP - central-optimal) shrinks.
    assert!(
        last[1] - last[0] < first[1] - first[0],
        "the EQP / central-optimal gap must shrink as nmo grows"
    );
}

#[test]
fn fig8_shape_messaging_falls_then_flattens_with_station_size() {
    let _serial = quick();
    let t = figures::fig8();
    // Largest query count column: monotone non-increasing.
    let col = t.columns.len() - 1;
    for w in t.rows.windows(2) {
        assert!(
            w[1].1[col] <= w[0].1[col] * 1.05,
            "messaging must not grow with station size ({} -> {} at alen {})",
            w[0].1[col],
            w[1].1[col],
            w[1].0
        );
    }
    // The first doubling saves more than the last (flattening).
    let n = t.rows.len();
    let first_drop = t.rows[0].1[col] - t.rows[1].1[col];
    let last_drop = t.rows[n - 2].1[col] - t.rows[n - 1].1[col];
    assert!(first_drop > last_drop, "savings must flatten out");
}
