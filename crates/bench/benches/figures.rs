//! Smoke-scale figure regeneration: measures one reduced sweep point per
//! figure family so `cargo bench` exercises every experiment code path and
//! tracks its cost over time. The full paper-scale sweeps are the `fig*`
//! binaries.

use mobieyes_bench::harness::{black_box, Harness};
use mobieyes_core::Propagation;
use mobieyes_sim::{run_approach, Approach, SimConfig};

fn smoke() -> SimConfig {
    let mut c = SimConfig::small_test(77);
    c.ticks = 8;
    c.warmup_ticks = 2;
    c
}

fn main() {
    let h = Harness::from_env();

    // Figures 1 and 3: server load for each approach.
    h.bench("figures/serverload_mobieyes_eqp", || {
        black_box(
            run_approach(smoke(), Approach::MobiEyesEqp)
                .metrics
                .server_seconds_per_tick,
        )
    });
    h.bench("figures/serverload_object_index", || {
        black_box(
            run_approach(smoke(), Approach::ObjectIndex)
                .metrics
                .server_seconds_per_tick,
        )
    });
    h.bench("figures/serverload_query_index", || {
        black_box(
            run_approach(smoke(), Approach::QueryIndex)
                .metrics
                .server_seconds_per_tick,
        )
    });

    // Figures 4–9: messaging-cost and power measurements.
    h.bench("figures/messaging_eqp", || {
        black_box(
            run_approach(smoke(), Approach::MobiEyesEqp)
                .metrics
                .msgs_per_second,
        )
    });
    h.bench("figures/messaging_lqp", || {
        black_box(
            run_approach(
                smoke().with_propagation(Propagation::Lazy),
                Approach::MobiEyesLqp,
            )
            .metrics
            .msgs_per_second,
        )
    });
    h.bench("figures/messaging_naive_model", || {
        black_box(
            run_approach(smoke(), Approach::Naive)
                .metrics
                .msgs_per_second,
        )
    });
    h.bench("figures/messaging_central_optimal_model", || {
        black_box(
            run_approach(smoke(), Approach::CentralOptimal)
                .metrics
                .msgs_per_second,
        )
    });

    // Figures 10–13: LQT sizes and safe-period processing load.
    h.bench("figures/lqt_and_error_eqp", || {
        let m = run_approach(smoke(), Approach::MobiEyesEqp).metrics;
        black_box((m.avg_lqt_size, m.avg_result_error))
    });
    h.bench("figures/safe_period_eval_load", || {
        black_box(
            run_approach(smoke().with_safe_period(true), Approach::MobiEyesEqp)
                .metrics
                .avg_eval_micros_per_object_tick,
        )
    });
}
