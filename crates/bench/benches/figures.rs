//! Smoke-scale figure regeneration under Criterion: measures one reduced
//! sweep point per figure family so `cargo bench` exercises every
//! experiment code path and tracks its cost over time. The full paper-scale
//! sweeps are the `fig*` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mobieyes_core::Propagation;
use mobieyes_sim::{
    CentralKind, CentralSim, MessagingKind, MessagingModel, MobiEyesSim, SimConfig,
};

fn smoke() -> SimConfig {
    let mut c = SimConfig::small_test(77);
    c.ticks = 8;
    c.warmup_ticks = 2;
    c
}

fn bench_serverload_family(c: &mut Criterion) {
    // Figures 1 and 3: server load for each approach.
    c.bench_function("figures/serverload_mobieyes_eqp", |b| {
        b.iter(|| black_box(MobiEyesSim::new(smoke()).run().server_seconds_per_tick))
    });
    c.bench_function("figures/serverload_object_index", |b| {
        b.iter(|| {
            black_box(CentralSim::new(smoke(), CentralKind::ObjectIndex).run().server_seconds_per_tick)
        })
    });
    c.bench_function("figures/serverload_query_index", |b| {
        b.iter(|| {
            black_box(CentralSim::new(smoke(), CentralKind::QueryIndex).run().server_seconds_per_tick)
        })
    });
}

fn bench_messaging_family(c: &mut Criterion) {
    // Figures 4–9: messaging-cost and power measurements.
    c.bench_function("figures/messaging_eqp", |b| {
        b.iter(|| black_box(MobiEyesSim::new(smoke()).run().msgs_per_second))
    });
    c.bench_function("figures/messaging_lqp", |b| {
        b.iter(|| {
            black_box(
                MobiEyesSim::new(smoke().with_propagation(Propagation::Lazy))
                    .run()
                    .msgs_per_second,
            )
        })
    });
    c.bench_function("figures/messaging_naive_model", |b| {
        b.iter(|| black_box(MessagingModel::new(smoke(), MessagingKind::Naive).run().msgs_per_second))
    });
    c.bench_function("figures/messaging_central_optimal_model", |b| {
        b.iter(|| {
            black_box(
                MessagingModel::new(smoke(), MessagingKind::CentralOptimal).run().msgs_per_second,
            )
        })
    });
}

fn bench_objectside_family(c: &mut Criterion) {
    // Figures 10–13: LQT sizes and safe-period processing load.
    c.bench_function("figures/lqt_and_error_eqp", |b| {
        b.iter(|| {
            let m = MobiEyesSim::new(smoke()).run();
            black_box((m.avg_lqt_size, m.avg_result_error))
        })
    });
    c.bench_function("figures/safe_period_eval_load", |b| {
        b.iter(|| {
            black_box(
                MobiEyesSim::new(smoke().with_safe_period(true))
                    .run()
                    .avg_eval_micros_per_object_tick,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serverload_family, bench_messaging_family, bench_objectside_family
}
criterion_main!(benches);
