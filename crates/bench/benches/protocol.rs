//! End-to-end protocol benchmarks: one full simulation time step for
//! MobiEyes and for each centralized engine, at a reduced but structurally
//! faithful scale (1 000 objects, 100 queries).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use mobieyes_baselines::{CentralEngine, ObjectIndexEngine, ObjectReport, QueryDef, QueryIndexEngine};
use mobieyes_core::{Filter, ObjectId, Properties, QueryId};
use mobieyes_geo::QueryRegion;
use mobieyes_sim::{MobiEyesSim, Mobility, SimConfig, Workload};
use std::sync::Arc;

fn bench_config() -> SimConfig {
    SimConfig {
        num_objects: 1000,
        num_queries: 100,
        objects_changing_velocity: 100,
        area: 10_000.0,
        ..SimConfig::default()
    }
}

fn bench_mobieyes_step(c: &mut Criterion) {
    c.bench_function("protocol/mobieyes_full_tick_1k_objects", |b| {
        let mut sim = MobiEyesSim::new(bench_config());
        // Settle installation first.
        for _ in 0..5 {
            sim.step(false);
        }
        b.iter(|| {
            sim.step(false);
            black_box(sim.now())
        })
    });
}

fn engine_tick_bench(c: &mut Criterion, name: &str, make: impl Fn() -> Box<dyn CentralEngine>) {
    let config = bench_config();
    let workload = Workload::generate(&config);
    c.bench_function(name, |b| {
        let mut engine = make();
        for i in 0..workload.objects.len() {
            engine.register_object(ObjectId(i as u32), Properties::new());
        }
        for (q, spec) in workload.queries.iter().enumerate() {
            engine.install_query(QueryDef {
                qid: QueryId(q as u32),
                focal: ObjectId(spec.focal_idx as u32),
                region: QueryRegion::circle(spec.radius),
                filter: Arc::new(Filter::with_selectivity(workload.selectivity, spec.filter_salt)),
            });
        }
        let mut mobility = Mobility::new(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
        );
        let mut t = 0.0;
        b.iter_batched(
            || {
                mobility.step();
                t += config.time_step;
                let reports = (0..mobility.len())
                    .map(|i| ObjectReport {
                        oid: ObjectId(i as u32),
                        pos: mobility.positions[i],
                        vel: mobility.velocities[i],
                        tm: t,
                    })
                    .collect::<Vec<_>>();
                (t, reports)
            },
            |(t, reports)| {
                engine.tick(&reports, t);
                black_box(engine.num_queries())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_central_ticks(c: &mut Criterion) {
    engine_tick_bench(c, "protocol/object_index_tick_1k_objects", || {
        Box::new(ObjectIndexEngine::new())
    });
    engine_tick_bench(c, "protocol/query_index_tick_1k_objects", || {
        Box::new(QueryIndexEngine::new())
    });
}

criterion_group!(benches, bench_mobieyes_step, bench_central_ticks);
criterion_main!(benches);
