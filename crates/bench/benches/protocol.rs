//! End-to-end protocol benchmarks: one full simulation time step for
//! MobiEyes and for each centralized engine, at a reduced but structurally
//! faithful scale (1 000 objects, 100 queries).

use mobieyes_baselines::{
    CentralEngine, ObjectIndexEngine, ObjectReport, QueryDef, QueryIndexEngine,
};
use mobieyes_bench::harness::{black_box, Harness};
use mobieyes_core::{Filter, ObjectId, Properties, QueryId};
use mobieyes_geo::QueryRegion;
use mobieyes_sim::{MobiEyesSim, Mobility, SimConfig, Workload};
use std::sync::Arc;

fn bench_config() -> SimConfig {
    SimConfig {
        num_objects: 1000,
        num_queries: 100,
        objects_changing_velocity: 100,
        area: 10_000.0,
        ..SimConfig::default()
    }
}

fn engine_tick_bench(h: &Harness, name: &str, make: impl Fn() -> Box<dyn CentralEngine>) {
    let config = bench_config();
    let workload = Workload::generate(&config);
    let mut engine = make();
    for i in 0..workload.objects.len() {
        engine.register_object(ObjectId(i as u32), Properties::new());
    }
    for (q, spec) in workload.queries.iter().enumerate() {
        engine.install_query(QueryDef {
            qid: QueryId(q as u32),
            focal: ObjectId(spec.focal_idx as u32),
            region: QueryRegion::circle(spec.radius),
            filter: Arc::new(Filter::with_selectivity(
                workload.selectivity,
                spec.filter_salt,
            )),
        });
    }
    let mut mobility = Mobility::new(
        &workload,
        config.objects_changing_velocity,
        config.time_step,
        config.seed,
    );
    let mut t = 0.0;
    h.bench_batched(
        name,
        || {
            mobility.step();
            t += config.time_step;
            let reports = (0..mobility.len())
                .map(|i| ObjectReport {
                    oid: ObjectId(i as u32),
                    pos: mobility.positions[i],
                    vel: mobility.velocities[i],
                    tm: t,
                })
                .collect::<Vec<_>>();
            (t, reports)
        },
        |(t, reports)| {
            engine.tick(&reports, t);
            black_box(engine.num_queries())
        },
    );
}

fn main() {
    let h = Harness::from_env();

    let mut sim = MobiEyesSim::new(bench_config());
    // Settle installation first.
    for _ in 0..5 {
        sim.step(false);
    }
    h.bench("protocol/mobieyes_full_tick_1k_objects", || {
        sim.step(false);
        black_box(sim.now())
    });

    engine_tick_bench(&h, "protocol/object_index_tick_1k_objects", || {
        Box::new(ObjectIndexEngine::new())
    });
    engine_tick_bench(&h, "protocol/query_index_tick_1k_objects", || {
        Box::new(QueryIndexEngine::new())
    });
}
