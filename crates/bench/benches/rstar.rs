//! Microbenchmarks of the R*-tree substrate (the engine behind both
//! centralized baselines): insertion, point/range queries, and the
//! delete+insert "update" the object index performs per position report.

use mobieyes_bench::harness::{black_box, Harness};
use mobieyes_geo::{Point, Rect};
use mobieyes_rstar::RStarTree;

fn lcg(seed: &mut u64) -> f64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 33) as f64) / ((1u64 << 31) as f64)
}

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut s = seed;
    (0..n)
        .map(|_| Point::new(lcg(&mut s) * 316.0, lcg(&mut s) * 316.0))
        .collect()
}

fn build_tree(points: &[Point]) -> RStarTree<u32> {
    let mut t = RStarTree::new();
    for (i, p) in points.iter().enumerate() {
        t.insert(Rect::from_point(*p), i as u32);
    }
    t
}

fn main() {
    let h = Harness::from_env();

    let points = random_points(10_000, 1);
    h.bench("rstar/insert_10k_points", || {
        let t = build_tree(black_box(&points));
        black_box(t.len())
    });

    let points = random_points(10_000, 2);
    let tree = build_tree(&points);
    let mut s = 3u64;
    h.bench("rstar/range_query_10mi_window", || {
        let x = lcg(&mut s) * 300.0;
        let y = lcg(&mut s) * 300.0;
        let hits = tree.query_rect(&Rect::new(x, y, 10.0, 10.0));
        black_box(hits.len())
    });
    let mut i = 0usize;
    h.bench("rstar/point_query", || {
        let p = points[i % points.len()];
        i += 1;
        black_box(tree.query_point(p).len())
    });

    let points = random_points(10_000, 4);
    let mut tree = build_tree(&points);
    let mut pos = points.clone();
    let mut s = 5u64;
    let mut i = 0usize;
    h.bench("rstar/update_position", || {
        let idx = i % pos.len();
        i += 1;
        let new = Point::new(lcg(&mut s) * 316.0, lcg(&mut s) * 316.0);
        tree.update(
            &Rect::from_point(pos[idx]),
            Rect::from_point(new),
            idx as u32,
        );
        pos[idx] = new;
    });

    let points = random_points(10_000, 6);
    h.bench("rstar/bulk_load_10k_points", || {
        let entries: Vec<_> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (Rect::from_point(*p), i as u32))
            .collect();
        let t = RStarTree::bulk_load(entries);
        black_box(t.len())
    });

    let points = random_points(10_000, 7);
    let tree = build_tree(&points);
    let mut s = 8u64;
    h.bench("rstar/knn_10_of_10k", || {
        let q = Point::new(lcg(&mut s) * 316.0, lcg(&mut s) * 316.0);
        black_box(tree.nearest(q, 10).len())
    });
}
