//! Microbenchmarks of the grid substrate: position-to-cell mapping,
//! monitoring-region computation and base-station cover selection — the
//! hot geometric primitives of both server and agents.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mobieyes_geo::{CellId, Grid, Point, Rect};
use mobieyes_net::BaseStationLayout;

fn bench_cell_of(c: &mut Criterion) {
    let grid = Grid::new(Rect::new(0.0, 0.0, 316.0, 316.0), 5.0);
    c.bench_function("grid/cell_of", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 7.3) % 316.0;
            black_box(grid.cell_of(Point::new(x, 316.0 - x)))
        })
    });
}

fn bench_monitoring_region(c: &mut Criterion) {
    let grid = Grid::new(Rect::new(0.0, 0.0, 316.0, 316.0), 5.0);
    c.bench_function("grid/monitoring_region", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 60;
            black_box(grid.monitoring_region(CellId::new(i, 60 - i), 3.0))
        })
    });
}

fn bench_minimal_cover(c: &mut Criterion) {
    let grid = Grid::new(Rect::new(0.0, 0.0, 316.0, 316.0), 5.0);
    let layout = BaseStationLayout::new(Rect::new(0.0, 0.0, 316.0, 316.0), 10.0);
    c.bench_function("net/minimal_cover", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 55;
            let region = grid.monitoring_region(CellId::new(i + 2, i + 2), 4.0);
            black_box(layout.minimal_cover(&grid, &region).len())
        })
    });
}

fn bench_station_at(c: &mut Criterion) {
    let layout = BaseStationLayout::new(Rect::new(0.0, 0.0, 316.0, 316.0), 10.0);
    c.bench_function("net/station_at", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 3.7) % 316.0;
            black_box(layout.station_at(Point::new(x, x)))
        })
    });
}

criterion_group!(benches, bench_cell_of, bench_monitoring_region, bench_minimal_cover, bench_station_at);
criterion_main!(benches);
