//! Microbenchmarks of the grid substrate: position-to-cell mapping,
//! monitoring-region computation and base-station cover selection — the
//! hot geometric primitives of both server and agents.

use mobieyes_bench::harness::{black_box, Harness};
use mobieyes_geo::{CellId, Grid, Point, Rect};
use mobieyes_net::BaseStationLayout;

fn main() {
    let h = Harness::from_env();

    let grid = Grid::new(Rect::new(0.0, 0.0, 316.0, 316.0), 5.0);
    let mut x = 0.0f64;
    h.bench("grid/cell_of", || {
        x = (x + 7.3) % 316.0;
        black_box(grid.cell_of(Point::new(x, 316.0 - x)))
    });

    let mut i = 0u32;
    h.bench("grid/monitoring_region", || {
        i = (i + 1) % 60;
        black_box(grid.monitoring_region(CellId::new(i, 60 - i), 3.0))
    });

    let layout = BaseStationLayout::new(Rect::new(0.0, 0.0, 316.0, 316.0), 10.0);
    let mut i = 0u32;
    h.bench("net/minimal_cover", || {
        i = (i + 1) % 55;
        let region = grid.monitoring_region(CellId::new(i + 2, i + 2), 4.0);
        black_box(layout.minimal_cover(&grid, &region).len())
    });

    let mut x = 0.0f64;
    h.bench("net/station_at", || {
        x = (x + 3.7) % 316.0;
        black_box(layout.station_at(Point::new(x, x)))
    });
}
