//! The universe of discourse and its grid decomposition (paper §2.2–2.3).
//!
//! The universe of discourse `U = Rect(X, Y, W, H)` is mapped onto a grid of
//! α×α cells. We index cells 0-based by `(x, y)` where `x` counts columns
//! along the x-axis and `y` counts rows along the y-axis; `Pmap` is a plain
//! floor division clamped to the grid (see DESIGN.md for the deviation note
//! from the paper's 1-based ceil formulation — the partitioning of space is
//! identical).

use crate::point::Point;
use crate::rect::Rect;

/// A grid cell index: column `x`, row `y` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    pub x: u32,
    pub y: u32,
}

impl CellId {
    #[inline]
    pub fn new(x: u32, y: u32) -> Self {
        CellId { x, y }
    }
}

/// The gridded universe of discourse `G(U, α)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// The universe of discourse.
    pub universe: Rect,
    /// Grid cell side length α.
    pub alpha: f64,
    /// Number of columns, `N = ceil(W/α)`.
    pub cols: u32,
    /// Number of rows, `M = ceil(H/α)`.
    pub rows: u32,
}

impl Grid {
    /// Builds the grid for a universe of discourse and cell side α.
    ///
    /// # Panics
    /// Panics when α is not strictly positive / finite or the universe is
    /// degenerate.
    pub fn new(universe: Rect, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "grid cell side must be positive"
        );
        assert!(
            universe.w() > 0.0 && universe.h() > 0.0,
            "degenerate universe of discourse"
        );
        let cols = (universe.w() / alpha).ceil() as u32;
        let rows = (universe.h() / alpha).ceil() as u32;
        Grid {
            universe,
            alpha,
            cols,
            rows,
        }
    }

    /// Total number of cells `M * N`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Inverse of [`flat_index`](Self::flat_index): the cell at a
    /// row-major flat index.
    #[inline]
    pub fn cell_from_flat(&self, flat: usize) -> CellId {
        debug_assert!(flat < self.num_cells());
        CellId::new(
            (flat % self.cols as usize) as u32,
            (flat / self.cols as usize) as u32,
        )
    }

    /// `Pmap(pos)`: the current grid cell of a position. Positions outside
    /// the universe are clamped to the nearest boundary cell, so every
    /// position maps to a valid cell (objects can briefly overshoot the
    /// universe between ticks in the simulation).
    pub fn cell_of(&self, p: Point) -> CellId {
        let fx = (p.x - self.universe.lx) / self.alpha;
        let fy = (p.y - self.universe.ly) / self.alpha;
        let x = (fx.floor() as i64).clamp(0, self.cols as i64 - 1) as u32;
        let y = (fy.floor() as i64).clamp(0, self.rows as i64 - 1) as u32;
        CellId { x, y }
    }

    /// The α×α rectangle covered by a cell (the last row/column may extend
    /// past the universe edge when W or H is not a multiple of α, exactly as
    /// in the paper's `M = ceil(H/α)` definition).
    pub fn cell_rect(&self, c: CellId) -> Rect {
        debug_assert!(self.contains_cell(c), "cell {c:?} outside grid");
        Rect::new(
            self.universe.lx + c.x as f64 * self.alpha,
            self.universe.ly + c.y as f64 * self.alpha,
            self.alpha,
            self.alpha,
        )
    }

    #[inline]
    pub fn contains_cell(&self, c: CellId) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// Clamps a cell index to the grid. Wire-carried cells (cell changes,
    /// resyncs) are computed by the sender and may name a coordinate past
    /// the boundary after an aggressive dead-reckoning overshoot; clamping
    /// keeps every downstream flat-index lookup in range.
    #[inline]
    pub fn clamp_cell(&self, c: CellId) -> CellId {
        CellId {
            x: c.x.min(self.cols - 1),
            y: c.y.min(self.rows - 1),
        }
    }

    /// Flat index of a cell, row-major; used for matrix-shaped indexes such
    /// as the server's RQI.
    #[inline]
    pub fn flat_index(&self, c: CellId) -> usize {
        c.y as usize * self.cols as usize + c.x as usize
    }

    /// Clamped flat index of a wire-carried cell: in-range for any cell
    /// coordinate, matching [`clamp_cell`](Self::clamp_cell) +
    /// [`flat_index`](Self::flat_index).
    #[inline]
    pub fn clamped_flat_index(&self, c: CellId) -> usize {
        self.flat_index(self.clamp_cell(c))
    }

    /// Flat cell index of a position in one step —
    /// `flat_index(cell_of(p))`, the hot-path form used by the
    /// struct-of-arrays tick engine's cell-change test.
    #[inline]
    pub fn flat_cell_of(&self, p: Point) -> usize {
        self.flat_index(self.cell_of(p))
    }

    /// Inverse of [`flat_index`](Self::flat_index): the cell at a
    /// row-major flat index.
    #[inline]
    pub fn cell_at(&self, flat: usize) -> CellId {
        debug_assert!(flat < self.num_cells(), "flat index {flat} out of grid");
        CellId {
            x: (flat % self.cols as usize) as u32,
            y: (flat / self.cols as usize) as u32,
        }
    }

    /// The cells whose (closed) rectangles intersect `rect`, as a compact
    /// cell-range. Returns an empty range when `rect` lies outside the grid.
    pub fn cells_overlapping(&self, rect: &Rect) -> GridRect {
        let gx = |v: f64| (v - self.universe.lx) / self.alpha;
        let gy = |v: f64| (v - self.universe.ly) / self.alpha;
        // Closed intersection: a rect edge exactly on a cell boundary touches
        // both neighboring cells, so low uses floor and high uses floor too
        // (a boundary value v==k*α belongs to cells k-1 and k; floor gives k,
        // and the low side compensates by flooring the *low* coordinate).
        let lo_x = gx(rect.lx).floor() as i64;
        let lo_y = gy(rect.ly).floor() as i64;
        let hi_x = gx(rect.hx()).floor() as i64;
        let hi_y = gy(rect.hy()).floor() as i64;
        // A high edge exactly on a boundary k*α touches cell k as well, which
        // floor already yields; a low edge on k*α touches cell k-1 too.
        let lo_x = if gx(rect.lx).fract() == 0.0 {
            lo_x - 1
        } else {
            lo_x
        };
        let lo_y = if gy(rect.ly).fract() == 0.0 {
            lo_y - 1
        } else {
            lo_y
        };
        let x0 = lo_x.clamp(0, self.cols as i64 - 1);
        let y0 = lo_y.clamp(0, self.rows as i64 - 1);
        let x1 = hi_x.clamp(-1, self.cols as i64 - 1);
        let y1 = hi_y.clamp(-1, self.rows as i64 - 1);
        if hi_x < 0
            || hi_y < 0
            || lo_x >= self.cols as i64
            || lo_y >= self.rows as i64
            || x1 < x0
            || y1 < y0
        {
            return GridRect::EMPTY;
        }
        GridRect {
            x0: x0 as u32,
            y0: y0 as u32,
            x1: x1 as u32,
            y1: y1 as u32,
        }
    }

    /// The paper's `bound_box(q)`: the focal cell's rectangle inflated by the
    /// query's reach `r` on every side — all space the query region can touch
    /// while the focal object stays in `cell`.
    pub fn bound_box(&self, cell: CellId, reach: f64) -> Rect {
        debug_assert!(reach >= 0.0);
        let rc = self.cell_rect(cell);
        Rect::new(
            rc.lx - reach,
            rc.ly - reach,
            rc.w() + 2.0 * reach,
            rc.h() + 2.0 * reach,
        )
    }

    /// The paper's `mon_region(q)`: all grid cells intersecting the bounding
    /// box of a query whose focal object sits in `cell`.
    pub fn monitoring_region(&self, cell: CellId, reach: f64) -> GridRect {
        self.cells_overlapping(&self.bound_box(cell, reach))
    }
}

/// A rectangular, inclusive range of grid cells `[x0..=x1] × [y0..=y1]`.
///
/// Monitoring regions are always cell-ranges (the bounding box is a
/// rectangle), which makes membership checks O(1) and the structure `Copy` —
/// important because it travels inside protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridRect {
    pub x0: u32,
    pub y0: u32,
    pub x1: u32,
    pub y1: u32,
}

impl GridRect {
    /// The canonical empty range (x0 > x1).
    pub const EMPTY: GridRect = GridRect {
        x0: 1,
        y0: 1,
        x1: 0,
        y1: 0,
    };

    #[inline]
    pub fn single(c: CellId) -> Self {
        GridRect {
            x0: c.x,
            y0: c.y,
            x1: c.x,
            y1: c.y,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 > self.x1 || self.y0 > self.y1
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0 + 1) as usize * (self.y1 - self.y0 + 1) as usize
        }
    }

    #[inline]
    pub fn contains(&self, c: CellId) -> bool {
        c.x >= self.x0 && c.x <= self.x1 && c.y >= self.y0 && c.y <= self.y1
    }

    /// Do two cell-ranges share a cell?
    pub fn intersects(&self, other: &GridRect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x0 <= other.x1
            && other.x0 <= self.x1
            && self.y0 <= other.y1
            && other.y0 <= self.y1
    }

    /// Smallest cell-range covering both; used when a focal object changes
    /// cells and the server must notify the union of old and new monitoring
    /// regions.
    pub fn union(&self, other: &GridRect) -> GridRect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        GridRect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Iterates the covered cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        let empty = self.is_empty();
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        (y0..=y1)
            .flat_map(move |y| (x0..=x1).map(move |x| CellId { x, y }))
            .filter(move |_| !empty)
    }

    /// Serialized size on the wire (4 × u32).
    pub const WIRE_SIZE: usize = 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid10() -> Grid {
        Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0)
    }

    #[test]
    fn dimensions() {
        let g = grid10();
        assert_eq!(g.cols, 10);
        assert_eq!(g.rows, 10);
        assert_eq!(g.num_cells(), 100);
        // Non-divisible extents round up.
        let g2 = Grid::new(Rect::new(0.0, 0.0, 95.0, 101.0), 10.0);
        assert_eq!(g2.cols, 10);
        assert_eq!(g2.rows, 11);
    }

    #[test]
    fn cell_of_interior_points() {
        let g = grid10();
        assert_eq!(g.cell_of(Point::new(0.5, 0.5)), CellId::new(0, 0));
        assert_eq!(g.cell_of(Point::new(15.0, 25.0)), CellId::new(1, 2));
        assert_eq!(g.cell_of(Point::new(99.9, 99.9)), CellId::new(9, 9));
    }

    #[test]
    fn cell_of_clamps_out_of_universe() {
        let g = grid10();
        assert_eq!(g.cell_of(Point::new(-5.0, 50.0)), CellId::new(0, 5));
        assert_eq!(g.cell_of(Point::new(150.0, -1.0)), CellId::new(9, 0));
        // Exactly on the far boundary maps to the last cell.
        assert_eq!(g.cell_of(Point::new(100.0, 100.0)), CellId::new(9, 9));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = grid10();
        for c in [CellId::new(0, 0), CellId::new(3, 7), CellId::new(9, 9)] {
            let r = g.cell_rect(c);
            assert_eq!(g.cell_of(r.center()), c);
            assert_eq!(r.w(), 10.0);
            assert_eq!(r.h(), 10.0);
        }
    }

    #[test]
    fn flat_index_is_row_major_and_unique() {
        let g = grid10();
        let mut seen = std::collections::HashSet::new();
        for y in 0..g.rows {
            for x in 0..g.cols {
                assert!(seen.insert(g.flat_index(CellId::new(x, y))));
            }
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(g.flat_index(CellId::new(2, 1)), 12);
    }

    #[test]
    fn cells_overlapping_interior_rect() {
        let g = grid10();
        let gr = g.cells_overlapping(&Rect::new(12.0, 12.0, 15.0, 5.0));
        assert_eq!(
            gr,
            GridRect {
                x0: 1,
                y0: 1,
                x1: 2,
                y1: 1
            }
        );
        assert_eq!(gr.len(), 2);
    }

    #[test]
    fn cells_overlapping_includes_boundary_touch() {
        let g = grid10();
        // Rect exactly [10,20]x[10,20] touches cells 0..=2 in each axis
        // under closed intersection semantics.
        let gr = g.cells_overlapping(&Rect::new(10.0, 10.0, 10.0, 10.0));
        assert_eq!(
            gr,
            GridRect {
                x0: 0,
                y0: 0,
                x1: 2,
                y1: 2
            }
        );
    }

    #[test]
    fn cells_overlapping_clamps_to_grid() {
        let g = grid10();
        let gr = g.cells_overlapping(&Rect::new(-50.0, -50.0, 200.0, 200.0));
        assert_eq!(
            gr,
            GridRect {
                x0: 0,
                y0: 0,
                x1: 9,
                y1: 9
            }
        );
        assert!(g
            .cells_overlapping(&Rect::new(200.0, 200.0, 5.0, 5.0))
            .is_empty());
        assert!(g
            .cells_overlapping(&Rect::new(-50.0, -50.0, 5.0, 5.0))
            .is_empty());
    }

    #[test]
    fn bound_box_matches_paper_definition() {
        let g = grid10();
        let bb = g.bound_box(CellId::new(2, 3), 4.0);
        // rc = [20,30]x[30,40]; inflated by r=4 on each side.
        assert_eq!(bb, Rect::new(16.0, 26.0, 18.0, 18.0));
    }

    #[test]
    fn monitoring_region_covers_all_reachable_space() {
        let g = grid10();
        let c = CellId::new(5, 5);
        let r = 3.0;
        let mr = g.monitoring_region(c, r);
        // Any circle of radius 3 centered anywhere in cell (5,5) must lie
        // inside the union of the monitoring region cells.
        let rc = g.cell_rect(c);
        for fx in [rc.lx, rc.lx + 5.0, rc.hx()] {
            for fy in [rc.ly, rc.ly + 5.0, rc.hy()] {
                let q = crate::circle::Circle::new(Point::new(fx, fy), r);
                let bb = q.bbox();
                let covered = g.cells_overlapping(&bb);
                assert!(
                    mr.contains(CellId::new(covered.x0, covered.y0))
                        && mr.contains(CellId::new(covered.x1, covered.y1)),
                    "monitoring region must cover query bbox cells"
                );
            }
        }
    }

    #[test]
    fn monitoring_region_small_radius_is_3x3_plus_boundary() {
        let g = grid10();
        // With radius < α and the focal cell interior, the monitoring region
        // is the focal cell plus its 8 neighbors (boundary-touching included).
        let mr = g.monitoring_region(CellId::new(5, 5), 3.0);
        assert_eq!(
            mr,
            GridRect {
                x0: 4,
                y0: 4,
                x1: 6,
                y1: 6
            }
        );
    }

    #[test]
    fn monitoring_region_at_corner_is_clipped() {
        let g = grid10();
        let mr = g.monitoring_region(CellId::new(0, 0), 3.0);
        assert_eq!(
            mr,
            GridRect {
                x0: 0,
                y0: 0,
                x1: 1,
                y1: 1
            }
        );
    }

    #[test]
    fn gridrect_ops() {
        let a = GridRect {
            x0: 1,
            y0: 1,
            x1: 3,
            y1: 2,
        };
        let b = GridRect {
            x0: 3,
            y0: 2,
            x1: 5,
            y1: 5,
        };
        let c = GridRect {
            x0: 7,
            y0: 7,
            x1: 8,
            y1: 8,
        };
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(
            a.union(&b),
            GridRect {
                x0: 1,
                y0: 1,
                x1: 5,
                y1: 5
            }
        );
        assert_eq!(a.len(), 6);
        assert!(a.contains(CellId::new(2, 1)));
        assert!(!a.contains(CellId::new(4, 1)));
    }

    #[test]
    fn gridrect_empty_behaviour() {
        let e = GridRect::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert!(!e.contains(CellId::new(0, 0)));
        assert!(!e.intersects(&GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9
        }));
        let a = GridRect {
            x0: 1,
            y0: 1,
            x1: 2,
            y1: 2,
        };
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
    }

    #[test]
    fn gridrect_iter_row_major() {
        let a = GridRect {
            x0: 1,
            y0: 1,
            x1: 2,
            y1: 2,
        };
        let cells: Vec<_> = a.iter().collect();
        assert_eq!(
            cells,
            vec![
                CellId::new(1, 1),
                CellId::new(2, 1),
                CellId::new(1, 2),
                CellId::new(2, 2)
            ]
        );
    }

    #[test]
    fn single_cell_gridrect() {
        let s = GridRect::single(CellId::new(4, 2));
        assert_eq!(s.len(), 1);
        assert!(s.contains(CellId::new(4, 2)));
        assert!(!s.contains(CellId::new(4, 3)));
    }
}
