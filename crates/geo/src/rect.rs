//! Axis-aligned rectangles, `Rect(lx, ly, w, h)` in the paper's notation.

use crate::point::Point;

/// A closed axis-aligned rectangle `[lx, hx] x [ly, hy]`.
///
/// Rectangles are the paper's `Rect(lx, ly, w, h)`; they are used for the
/// universe of discourse, grid cells, query bounding boxes and R*-tree keys.
///
/// Internally the rectangle stores its two corners rather than
/// lower-corner-plus-extent: corner storage keeps `union` exact in floating
/// point (the union of rects contains every input corner bit-for-bit), which
/// the R*-tree's closed-set containment invariants rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub lx: f64,
    pub ly: f64,
    hx: f64,
    hy: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and extents (the
    /// paper's `Rect(lx, ly, w, h)`).
    ///
    /// # Panics
    /// Panics in debug builds if `w` or `h` is negative or any value is
    /// non-finite.
    #[inline]
    pub fn new(lx: f64, ly: f64, w: f64, h: f64) -> Self {
        debug_assert!(w >= 0.0 && h >= 0.0, "negative rect extents {w}x{h}");
        debug_assert!(
            lx.is_finite() && ly.is_finite() && w.is_finite() && h.is_finite(),
            "non-finite rect"
        );
        Rect {
            lx,
            ly,
            hx: lx + w,
            hy: ly + h,
        }
    }

    /// Creates a rectangle directly from corner bounds.
    ///
    /// # Panics
    /// Panics in debug builds when `hx < lx` or `hy < ly`.
    #[inline]
    pub fn from_bounds(lx: f64, ly: f64, hx: f64, hy: f64) -> Self {
        debug_assert!(hx >= lx && hy >= ly, "inverted rect bounds");
        Rect { lx, ly, hx, hy }
    }

    /// Rectangle from two opposite corner points (any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            lx: a.x.min(b.x),
            ly: a.y.min(b.y),
            hx: a.x.max(b.x),
            hy: a.y.max(b.y),
        }
    }

    /// Degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect {
            lx: p.x,
            ly: p.y,
            hx: p.x,
            hy: p.y,
        }
    }

    #[inline]
    pub fn hx(&self) -> f64 {
        self.hx
    }

    #[inline]
    pub fn hy(&self) -> f64 {
        self.hy
    }

    /// Width (x-extent).
    #[inline]
    pub fn w(&self) -> f64 {
        self.hx - self.lx
    }

    /// Height (y-extent).
    #[inline]
    pub fn h(&self) -> f64 {
        self.hy - self.ly
    }

    #[inline]
    pub fn low(&self) -> Point {
        Point::new(self.lx, self.ly)
    }

    #[inline]
    pub fn high(&self) -> Point {
        Point::new(self.hx, self.hy)
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lx + self.hx) / 2.0, (self.ly + self.hy) / 2.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.w() * self.h()
    }

    /// Perimeter half-sum (the R* "margin").
    #[inline]
    pub fn margin(&self) -> f64 {
        self.w() + self.h()
    }

    /// Closed containment: boundary points are inside.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.lx && p.x <= self.hx && p.y >= self.ly && p.y <= self.hy
    }

    /// True when `other` lies entirely within `self` (closed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.lx >= self.lx && other.hx <= self.hx && other.ly >= self.ly && other.hy <= self.hy
    }

    /// Closed intersection test: rectangles sharing only a boundary count as
    /// intersecting, matching the paper's `A_ij ∩ bound_box(q) ≠ ∅`.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lx <= other.hx && other.lx <= self.hx && self.ly <= other.hy && other.ly <= self.hy
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lx: self.lx.max(other.lx),
            ly: self.ly.max(other.ly),
            hx: self.hx.min(other.hx),
            hy: self.hy.min(other.hy),
        })
    }

    /// Area of overlap with `other` (0 when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let ox = (self.hx.min(other.hx) - self.lx.max(other.lx)).max(0.0);
        let oy = (self.hy.min(other.hy) - self.ly.max(other.ly)).max(0.0);
        ox * oy
    }

    /// Smallest rectangle covering both `self` and `other`. Exact: the
    /// result's corners are bit-for-bit copies of input corners.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lx: self.lx.min(other.lx),
            ly: self.ly.min(other.ly),
            hx: self.hx.max(other.hx),
            hy: self.hy.max(other.hy),
        }
    }

    /// How much the area would grow if enlarged to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Rectangle grown by `d` on every side (shrunk when `d < 0`; extents are
    /// clamped at zero, keeping the center fixed).
    pub fn inflate(&self, d: f64) -> Rect {
        let w = (self.w() + 2.0 * d).max(0.0);
        let h = (self.h() + 2.0 * d).max(0.0);
        let c = self.center();
        Rect::new(c.x - w / 2.0, c.y - h / 2.0, w, h)
    }

    /// Minimum distance from `p` to this rectangle (0 when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.lx - p.x).max(0.0).max(p.x - self.hx);
        let dy = (self.ly - p.y).max(0.0).max(p.y - self.hy);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_and_accessors() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.hx(), 4.0);
        assert_eq!(r.hy(), 6.0);
        assert_eq!(r.w(), 3.0);
        assert_eq!(r.h(), 4.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.margin(), 7.0);
    }

    #[test]
    fn from_corners_any_order() {
        let a = Point::new(4.0, 6.0);
        let b = Point::new(1.0, 2.0);
        assert_eq!(Rect::from_corners(a, b), Rect::new(1.0, 2.0, 3.0, 4.0));
        assert_eq!(Rect::from_corners(b, a), Rect::new(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn from_bounds_matches_new() {
        assert_eq!(
            Rect::from_bounds(1.0, 2.0, 4.0, 6.0),
            Rect::new(1.0, 2.0, 3.0, 4.0)
        );
    }

    #[test]
    fn containment_is_closed() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains_point(Point::new(0.0, 0.0)));
        assert!(r.contains_point(Point::new(2.0, 2.0)));
        assert!(r.contains_point(Point::new(1.0, 1.0)));
        assert!(!r.contains_point(Point::new(2.0 + 1e-9, 1.0)));
    }

    #[test]
    fn rect_containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&Rect::new(2.0, 2.0, 3.0, 3.0)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::new(8.0, 8.0, 3.0, 3.0)));
    }

    #[test]
    fn intersection_tests() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b), Some(Rect::new(1.0, 1.0, 1.0, 1.0)));
        assert_eq!(a.intersection(&c), None);
        // Touching edges count as intersecting (closed semantics).
        let d = Rect::new(2.0, 0.0, 1.0, 2.0);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection(&d).unwrap().area(), 0.0);
    }

    #[test]
    fn overlap_area_and_union() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&Rect::new(9.0, 9.0, 1.0, 1.0)), 0.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(&b), 9.0 - 4.0);
    }

    #[test]
    fn union_preserves_corners_exactly() {
        // Regression test for the R*-tree MBR bug: the union of rects must
        // contain every input corner bit-for-bit, even when extents would
        // round.
        let p = Point::new(6.360036374065704, 82.47893634992757);
        let a = Rect::from_point(p);
        let b = Rect::from_point(Point::new(-94.14328784832503, 38.97444383713389));
        let u = a.union(&b);
        assert!(u.contains_point(p));
        assert_eq!(u.hx(), p.x);
        assert_eq!(u.hy(), p.y);
        assert!(u.intersects(&Rect::from_point(p)));
    }

    #[test]
    fn inflate_grows_and_shrinks_around_center() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        let g = r.inflate(0.5);
        assert_eq!(g, Rect::new(0.5, 0.5, 3.0, 3.0));
        let s = r.inflate(-0.5);
        assert_eq!(s, Rect::new(1.5, 1.5, 1.0, 1.0));
        // Over-shrinking clamps to a degenerate rect at the center.
        let z = r.inflate(-5.0);
        assert_eq!(z.area(), 0.0);
        assert_eq!(z.center(), r.center());
    }

    #[test]
    fn distance_to_point() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(r.distance_to_point(Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn degenerate_point_rect() {
        let r = Rect::from_point(Point::new(3.0, 4.0));
        assert_eq!(r.area(), 0.0);
        assert!(r.contains_point(Point::new(3.0, 4.0)));
        assert!(r.intersects(&Rect::new(0.0, 0.0, 3.0, 4.0)));
    }
}
