//! Circle regions, `Circle(cx, cy, r)` in the paper's notation.

use crate::point::Point;
use crate::rect::Rect;

/// A closed disc of radius `r` centered at `center`.
///
/// Circles are the canonical moving-query spatial region in the paper; the
/// center doubles as the binding point to the focal object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub r: f64,
}

impl Circle {
    /// # Panics
    /// Panics in debug builds on a negative or non-finite radius.
    #[inline]
    pub fn new(center: Point, r: f64) -> Self {
        debug_assert!(r >= 0.0 && r.is_finite(), "bad circle radius {r}");
        Circle { center, r }
    }

    /// Closed containment check (boundary points are inside). This is the
    /// "computationally cheap point containment check" the paper requires of
    /// query region shapes.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.r * self.r
    }

    /// Tight axis-aligned bounding rectangle.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::new(
            self.center.x - self.r,
            self.center.y - self.r,
            2.0 * self.r,
            2.0 * self.r,
        )
    }

    /// True when the disc and the (closed) rectangle share a point.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.distance_to_point(self.center) <= self.r
    }

    /// The same disc translated so it is centered on `p`. Used when the focal
    /// object moves: the region shape is fixed, the binding point follows.
    #[inline]
    pub fn at(&self, p: Point) -> Circle {
        Circle::new(p, self.r)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.r * self.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_closed_on_boundary() {
        let c = Circle::new(Point::new(0.0, 0.0), 5.0);
        assert!(c.contains_point(Point::new(3.0, 4.0))); // exactly on boundary
        assert!(c.contains_point(Point::new(0.0, 0.0)));
        assert!(!c.contains_point(Point::new(3.0, 4.1)));
    }

    #[test]
    fn zero_radius_contains_only_center() {
        let c = Circle::new(Point::new(1.0, 1.0), 0.0);
        assert!(c.contains_point(Point::new(1.0, 1.0)));
        assert!(!c.contains_point(Point::new(1.0, 1.0 + 1e-9)));
    }

    #[test]
    fn bbox_is_tight() {
        let c = Circle::new(Point::new(2.0, 3.0), 1.5);
        assert_eq!(c.bbox(), Rect::new(0.5, 1.5, 3.0, 3.0));
    }

    #[test]
    fn rect_intersection() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.intersects_rect(&Rect::new(-0.5, -0.5, 1.0, 1.0))); // center inside
        assert!(c.intersects_rect(&Rect::new(1.0, -0.5, 1.0, 1.0))); // touches edge
        assert!(!c.intersects_rect(&Rect::new(1.1, 1.1, 1.0, 1.0))); // corner too far
                                                                     // A rect whose corner region is near but diagonal distance > r.
        assert!(!c.intersects_rect(&Rect::new(0.8, 0.8, 1.0, 1.0)));
    }

    #[test]
    fn rebinding_moves_center_keeps_radius() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        let moved = c.at(Point::new(7.0, -1.0));
        assert_eq!(moved.center, Point::new(7.0, -1.0));
        assert_eq!(moved.r, 2.0);
    }

    #[test]
    fn area() {
        let c = Circle::new(Point::ORIGIN, 2.0);
        assert!((c.area() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }
}
