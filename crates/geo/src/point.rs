//! Points and 2-D vectors.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A location in the universe of discourse.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A 2-D vector; used for velocities (distance units per second) and offsets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector from `self` to `other`.
    #[inline]
    pub fn to(&self, other: Point) -> Vec2 {
        Vec2::new(other.x - self.x, other.y - self.y)
    }

    /// True when both coordinates are finite (no NaN/inf).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared length.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Unit vector in the same direction, or zero when the vector is zero.
    pub fn normalized(&self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    /// Unit vector for an angle in radians (0 = +x axis).
    #[inline]
    pub fn from_angle(theta: f64) -> Vec2 {
        Vec2::new(theta.cos(), theta.sin())
    }

    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vec2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vec2) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Point) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, other: Vec2) {
        self.x += other.x;
        self.y += other.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, other: Vec2) {
        self.x -= other.x;
        self.y -= other.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -1.5);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 1.0);
        let v = Vec2::new(2.0, -0.5);
        assert_eq!(p + v, Point::new(3.0, 0.5));
        assert_eq!((p + v) - v, p);
        assert_eq!(p.to(p + v), v);
        assert_eq!((p + v) - p, v);
    }

    #[test]
    fn vector_scaling_and_norm() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!((v * 2.0).norm(), 10.0);
        assert_eq!((v / 5.0).norm(), 1.0);
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
    }

    #[test]
    fn normalized_zero_vector_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let v = Vec2::new(0.0, 2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_angle_produces_unit_vectors() {
        for k in 0..8 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_4;
            let v = Vec2::from_angle(theta);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
        let east = Vec2::from_angle(0.0);
        assert!((east.x - 1.0).abs() < 1e-12 && east.y.abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a.dot(b), 1.0);
        // Orthogonal vectors have zero dot product.
        assert_eq!(Vec2::new(1.0, 0.0).dot(Vec2::new(0.0, 5.0)), 0.0);
    }

    #[test]
    fn finiteness_checks() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
