//! Geometry and grid substrate for MobiEyes.
//!
//! This crate implements the spatial primitives of Section 2 of the paper:
//! points and velocity vectors, rectangle and circle regions, the universe of
//! discourse and its grid decomposition, position-to-cell mapping, query
//! bounding boxes and monitoring regions, and the linear dead-reckoning
//! motion model used by both the server and the moving objects.
//!
//! All coordinates are `f64` in *miles* (the unit of the paper's evaluation)
//! and all times are `f64` *seconds*, but nothing in the crate depends on the
//! units being miles/seconds as long as they are used consistently.

pub mod circle;
pub mod grid;
pub mod motion;
pub mod point;
pub mod rect;
pub mod region;

pub use circle::Circle;
pub use grid::{CellId, Grid, GridRect};
pub use motion::LinearMotion;
pub use point::{Point, Vec2};
pub use rect::Rect;
pub use region::{QueryRegion, Region};
