//! The query-region abstraction.
//!
//! The paper allows "any closed shape description which has a computationally
//! cheap point containment check" as a moving-query region. `Region` captures
//! that contract; the crate ships circle and rectangle regions, and downstream
//! code is generic where practical while the protocol's wire types use the
//! concrete [`QueryRegion`] enum so messages stay `Copy`.

use crate::circle::Circle;
use crate::point::Point;
use crate::rect::Rect;

/// A closed spatial region with cheap containment, bound to a focal point.
pub trait Region {
    /// Is `p` inside the region when the region is bound at `binding`?
    fn contains_from(&self, binding: Point, p: Point) -> bool;

    /// Tight bounding rectangle when bound at `binding`.
    fn bbox_from(&self, binding: Point) -> Rect;

    /// The maximum distance from the binding point to any point of the
    /// region. For a circle this is its radius; it drives bounding-box and
    /// safe-period computations.
    fn reach(&self) -> f64;
}

/// Concrete region shapes supported on the protocol wire.
///
/// `Circle` stores only the radius: the center always tracks the focal
/// object. `Rect` stores half-extents around the binding point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRegion {
    /// Disc of the given radius centered on the focal object.
    Circle { radius: f64 },
    /// Axis-aligned rectangle with the given half-extents centered on the
    /// focal object.
    Rect { half_w: f64, half_h: f64 },
}

impl QueryRegion {
    #[inline]
    pub fn circle(radius: f64) -> Self {
        debug_assert!(radius >= 0.0 && radius.is_finite());
        QueryRegion::Circle { radius }
    }

    #[inline]
    pub fn rect(half_w: f64, half_h: f64) -> Self {
        debug_assert!(half_w >= 0.0 && half_h >= 0.0);
        QueryRegion::Rect { half_w, half_h }
    }

    /// Serialized size of the shape on the wire, in bytes (tag + payload).
    /// Used by the network substrate's message accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            QueryRegion::Circle { .. } => 1 + 8,
            QueryRegion::Rect { .. } => 1 + 16,
        }
    }
}

impl Region for QueryRegion {
    fn contains_from(&self, binding: Point, p: Point) -> bool {
        match *self {
            QueryRegion::Circle { radius } => Circle::new(binding, radius).contains_point(p),
            QueryRegion::Rect { half_w, half_h } => Rect::new(
                binding.x - half_w,
                binding.y - half_h,
                2.0 * half_w,
                2.0 * half_h,
            )
            .contains_point(p),
        }
    }

    fn bbox_from(&self, binding: Point) -> Rect {
        match *self {
            QueryRegion::Circle { radius } => Circle::new(binding, radius).bbox(),
            QueryRegion::Rect { half_w, half_h } => Rect::new(
                binding.x - half_w,
                binding.y - half_h,
                2.0 * half_w,
                2.0 * half_h,
            ),
        }
    }

    fn reach(&self) -> f64 {
        match *self {
            QueryRegion::Circle { radius } => radius,
            QueryRegion::Rect { half_w, half_h } => (half_w * half_w + half_h * half_h).sqrt(),
        }
    }
}

impl Region for Circle {
    fn contains_from(&self, binding: Point, p: Point) -> bool {
        self.at(binding).contains_point(p)
    }

    fn bbox_from(&self, binding: Point) -> Rect {
        self.at(binding).bbox()
    }

    fn reach(&self) -> f64 {
        self.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_region_contains_and_bbox() {
        let q = QueryRegion::circle(2.0);
        let b = Point::new(10.0, 10.0);
        assert!(q.contains_from(b, Point::new(11.0, 11.0)));
        assert!(q.contains_from(b, Point::new(12.0, 10.0))); // boundary
        assert!(!q.contains_from(b, Point::new(12.0, 12.0)));
        assert_eq!(q.bbox_from(b), Rect::new(8.0, 8.0, 4.0, 4.0));
        assert_eq!(q.reach(), 2.0);
    }

    #[test]
    fn rect_region_contains_and_bbox() {
        let q = QueryRegion::rect(1.0, 2.0);
        let b = Point::new(0.0, 0.0);
        assert!(q.contains_from(b, Point::new(1.0, 2.0))); // corner
        assert!(!q.contains_from(b, Point::new(1.5, 0.0)));
        assert_eq!(q.bbox_from(b), Rect::new(-1.0, -2.0, 2.0, 4.0));
        assert!((q.reach() - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn region_moves_with_binding_point() {
        let q = QueryRegion::circle(1.0);
        assert!(q.contains_from(Point::new(0.0, 0.0), Point::new(0.5, 0.0)));
        assert!(!q.contains_from(Point::new(10.0, 0.0), Point::new(0.5, 0.0)));
        assert!(q.contains_from(Point::new(10.0, 0.0), Point::new(10.5, 0.0)));
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(QueryRegion::circle(1.0).wire_size(), 9);
        assert_eq!(QueryRegion::rect(1.0, 1.0).wire_size(), 17);
    }

    #[test]
    fn circle_type_implements_region() {
        let c = Circle::new(Point::ORIGIN, 3.0);
        assert!(c.contains_from(Point::new(1.0, 1.0), Point::new(2.0, 1.0)));
        assert_eq!(c.reach(), 3.0);
        assert_eq!(
            c.bbox_from(Point::new(5.0, 5.0)),
            Rect::new(2.0, 2.0, 6.0, 6.0)
        );
    }
}
