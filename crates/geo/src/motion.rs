//! Linear dead-reckoning motion model (paper §3.4).
//!
//! Both the server and the moving objects predict a focal object's position
//! by extrapolating the last reported `(pos, vel, tm)` sample linearly:
//! `pos + vel * (t - tm)`. A focal object relays a new sample whenever its
//! true position deviates from this prediction by more than a threshold Δ.

use crate::point::{Point, Vec2};

/// A recorded motion sample: position and velocity at a timestamp.
///
/// This is the `(pos, vel, tm)` triple stored in the server's FOT and in
/// every moving object's LQT entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearMotion {
    /// Position at time `tm`.
    pub pos: Point,
    /// Velocity vector (distance units per second).
    pub vel: Vec2,
    /// Timestamp at which `pos` and `vel` were recorded (seconds).
    pub tm: f64,
}

impl LinearMotion {
    #[inline]
    pub fn new(pos: Point, vel: Vec2, tm: f64) -> Self {
        LinearMotion { pos, vel, tm }
    }

    /// A stationary sample.
    #[inline]
    pub fn at_rest(pos: Point, tm: f64) -> Self {
        LinearMotion {
            pos,
            vel: Vec2::ZERO,
            tm,
        }
    }

    /// Predicted position at time `t` (times before `tm` extrapolate
    /// backwards, which callers normally avoid but is well-defined).
    #[inline]
    pub fn predict(&self, t: f64) -> Point {
        self.pos + self.vel * (t - self.tm)
    }

    /// Distance between the prediction at `t` and an observed position —
    /// the dead-reckoning deviation the reporting decision is based on.
    #[inline]
    pub fn deviation(&self, t: f64, actual: Point) -> f64 {
        self.predict(t).distance(actual)
    }

    /// The dead-reckoning reporting rule: should a new sample be relayed?
    #[inline]
    pub fn should_report(&self, t: f64, actual: Point, delta: f64) -> bool {
        self.deviation(t, actual) > delta
    }

    /// Serialized size on the wire: pos (16) + vel (16) + tm (8).
    pub const WIRE_SIZE: usize = 40;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_linearly() {
        let m = LinearMotion::new(Point::new(0.0, 0.0), Vec2::new(1.0, 2.0), 10.0);
        assert_eq!(m.predict(10.0), Point::new(0.0, 0.0));
        assert_eq!(m.predict(12.0), Point::new(2.0, 4.0));
        assert_eq!(m.predict(9.0), Point::new(-1.0, -2.0)); // backwards
    }

    #[test]
    fn at_rest_never_moves() {
        let m = LinearMotion::at_rest(Point::new(3.0, 4.0), 0.0);
        assert_eq!(m.predict(1e6), Point::new(3.0, 4.0));
    }

    #[test]
    fn deviation_measures_prediction_error() {
        let m = LinearMotion::new(Point::new(0.0, 0.0), Vec2::new(1.0, 0.0), 0.0);
        // After 5s prediction is (5,0); actual is (5,3) -> deviation 3.
        assert_eq!(m.deviation(5.0, Point::new(5.0, 3.0)), 3.0);
        assert_eq!(m.deviation(5.0, Point::new(5.0, 0.0)), 0.0);
    }

    #[test]
    fn should_report_thresholds() {
        let m = LinearMotion::new(Point::new(0.0, 0.0), Vec2::new(1.0, 0.0), 0.0);
        assert!(!m.should_report(5.0, Point::new(5.0, 0.5), 1.0));
        assert!(m.should_report(5.0, Point::new(5.0, 1.5), 1.0));
        // Exactly at the threshold does not trigger (strict inequality).
        assert!(!m.should_report(5.0, Point::new(5.0, 1.0), 1.0));
    }

    #[test]
    fn zero_delta_reports_any_deviation() {
        let m = LinearMotion::new(Point::new(0.0, 0.0), Vec2::ZERO, 0.0);
        assert!(m.should_report(1.0, Point::new(1e-9, 0.0), 0.0));
        assert!(!m.should_report(1.0, Point::new(0.0, 0.0), 0.0));
    }
}
