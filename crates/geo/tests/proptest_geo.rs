//! Property tests for the geometry/grid substrate: the invariants the
//! protocol's correctness rests on.

use mobieyes_geo::{Circle, Grid, Point, Rect, Region};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0..150.0f64, -50.0..150.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-50.0..150.0f64, -50.0..150.0f64, 0.0..60.0f64, 0.0..60.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        // Union is exact on corners: no larger than needed on any side.
        prop_assert_eq!(u.lx, a.lx.min(b.lx));
        prop_assert_eq!(u.hx(), a.hx().max(b.hx()));
    }

    #[test]
    fn intersection_is_contained_and_symmetric(a in arb_rect(), b in arb_rect()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(i1), Some(i2)) => {
                prop_assert_eq!(i1, i2);
                prop_assert!(a.contains_rect(&i1));
                prop_assert!(b.contains_rect(&i1));
            }
            (None, None) => prop_assert!(!a.intersects(&b)),
            _ => prop_assert!(false, "intersection not symmetric"),
        }
    }

    #[test]
    fn overlap_area_matches_intersection(a in arb_rect(), b in arb_rect()) {
        let via_area = a.overlap_area(&b);
        let via_rect = a.intersection(&b).map(|r| r.area()).unwrap_or(0.0);
        prop_assert!((via_area - via_rect).abs() < 1e-9);
    }

    #[test]
    fn point_containment_consistent_with_distance(r in arb_rect(), p in arb_point()) {
        if r.contains_point(p) {
            prop_assert_eq!(r.distance_to_point(p), 0.0);
        } else {
            prop_assert!(r.distance_to_point(p) > 0.0);
        }
    }

    #[test]
    fn circle_rect_intersection_agrees_with_sampling(
        cx in -20.0..120.0f64, cy in -20.0..120.0f64, radius in 0.1..40.0f64, r in arb_rect()
    ) {
        let c = Circle::new(Point::new(cx, cy), radius);
        // If any corner / center / closest point is inside the circle, they
        // must intersect.
        let closest = Point::new(
            cx.clamp(r.lx, r.hx()),
            cy.clamp(r.ly, r.hy()),
        );
        let expect = c.contains_point(closest);
        prop_assert_eq!(c.intersects_rect(&r), expect);
    }

    #[test]
    fn every_point_maps_to_the_cell_containing_it(p in arb_point(), alpha in 0.5..20.0f64) {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), alpha);
        let cell = grid.cell_of(p);
        let rect = grid.cell_rect(cell);
        // For in-universe points the cell rect must contain the point (with
        // closed upper boundaries possibly shared with the next cell).
        if grid.universe.contains_point(p) {
            prop_assert!(
                rect.contains_point(p) || (p.x - rect.hx()).abs() < 1e-9 || (p.y - rect.hy()).abs() < 1e-9,
                "point {p:?} not in its cell rect {rect:?}"
            );
        }
        prop_assert!(grid.contains_cell(cell));
    }

    #[test]
    fn cells_overlapping_is_sound_and_complete(r in arb_rect(), alpha in 1.0..25.0f64) {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), alpha);
        let range = grid.cells_overlapping(&r);
        // Soundness: every cell in the range intersects the rect.
        for cell in range.iter() {
            prop_assert!(grid.cell_rect(cell).intersects(&r), "cell {cell:?} does not intersect");
        }
        // Completeness: every grid cell that intersects is in the range.
        for y in 0..grid.rows {
            for x in 0..grid.cols {
                let cell = mobieyes_geo::CellId::new(x, y);
                if grid.cell_rect(cell).intersects(&r) {
                    prop_assert!(range.contains(cell), "missed intersecting cell {cell:?}");
                }
            }
        }
    }

    #[test]
    fn monitoring_region_covers_every_reachable_query_position(
        cell_x in 0u32..20, cell_y in 0u32..20, radius in 0.1..15.0f64,
        fx in 0.0..1.0f64, fy in 0.0..1.0f64,
    ) {
        // The defining property of the monitoring region (§2.3): wherever
        // the focal object sits inside its current cell, the query circle
        // stays within the monitoring region's cells.
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let cell = mobieyes_geo::CellId::new(cell_x.min(grid.cols - 1), cell_y.min(grid.rows - 1));
        let mon = grid.monitoring_region(cell, radius);
        let rect = grid.cell_rect(cell);
        let focal = Point::new(rect.lx + fx * rect.w(), rect.ly + fy * rect.h());
        let bbox = Circle::new(focal, radius).bbox();
        let covered = grid.cells_overlapping(&bbox);
        for c in covered.iter() {
            prop_assert!(mon.contains(c), "query can reach cell {c:?} outside monitoring region {mon:?}");
        }
    }

    #[test]
    fn dead_reckoning_prediction_is_exact_for_linear_motion(
        p in arb_point(),
        vx in -0.1..0.1f64, vy in -0.1..0.1f64,
        t0 in 0.0..1000.0f64, dt in 0.0..600.0f64,
    ) {
        let m = mobieyes_geo::LinearMotion::new(p, mobieyes_geo::Vec2::new(vx, vy), t0);
        let truth = Point::new(p.x + vx * dt, p.y + vy * dt);
        prop_assert!(m.predict(t0 + dt).distance(truth) < 1e-9);
        // An object moving exactly as advertised never triggers a report.
        prop_assert!(!m.should_report(t0 + dt, truth, 1e-6));
    }

    #[test]
    fn query_region_bbox_contains_region(
        radius in 0.0..20.0f64, b in arb_point(), p in arb_point()
    ) {
        let q = mobieyes_geo::QueryRegion::circle(radius);
        if q.contains_from(b, p) {
            prop_assert!(q.bbox_from(b).contains_point(p));
        }
    }
}
