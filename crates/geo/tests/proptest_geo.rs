//! Randomized (seeded, deterministic) tests for the geometry/grid
//! substrate: the invariants the protocol's correctness rests on.

use mobieyes_geo::{Circle, Grid, Point, Rect, Region};

/// Tiny deterministic generator (splitmix64) so these sweeps are
/// reproducible without an external property-testing dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

impl Rng {
    fn point(&mut self) -> Point {
        Point::new(self.range(-50.0, 150.0), self.range(-50.0, 150.0))
    }

    fn rect(&mut self) -> Rect {
        Rect::new(
            self.range(-50.0, 150.0),
            self.range(-50.0, 150.0),
            self.range(0.0, 60.0),
            self.range(0.0, 60.0),
        )
    }
}

#[test]
fn union_contains_both() {
    let mut rng = Rng(1);
    for _ in 0..256 {
        let (a, b) = (rng.rect(), rng.rect());
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        // Union is exact on corners: no larger than needed on any side.
        assert_eq!(u.lx, a.lx.min(b.lx));
        assert_eq!(u.hx(), a.hx().max(b.hx()));
    }
}

#[test]
fn intersection_is_contained_and_symmetric() {
    let mut rng = Rng(2);
    for _ in 0..256 {
        let (a, b) = (rng.rect(), rng.rect());
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(i1), Some(i2)) => {
                assert_eq!(i1, i2);
                assert!(a.contains_rect(&i1));
                assert!(b.contains_rect(&i1));
            }
            (None, None) => assert!(!a.intersects(&b)),
            _ => panic!("intersection not symmetric"),
        }
    }
}

#[test]
fn overlap_area_matches_intersection() {
    let mut rng = Rng(3);
    for _ in 0..256 {
        let (a, b) = (rng.rect(), rng.rect());
        let via_area = a.overlap_area(&b);
        let via_rect = a.intersection(&b).map(|r| r.area()).unwrap_or(0.0);
        assert!((via_area - via_rect).abs() < 1e-9);
    }
}

#[test]
fn point_containment_consistent_with_distance() {
    let mut rng = Rng(4);
    for _ in 0..256 {
        let (r, p) = (rng.rect(), rng.point());
        if r.contains_point(p) {
            assert_eq!(r.distance_to_point(p), 0.0);
        } else {
            assert!(r.distance_to_point(p) > 0.0);
        }
    }
}

#[test]
fn circle_rect_intersection_agrees_with_closest_point() {
    let mut rng = Rng(5);
    for _ in 0..256 {
        let (cx, cy) = (rng.range(-20.0, 120.0), rng.range(-20.0, 120.0));
        let radius = rng.range(0.1, 40.0);
        let r = rng.rect();
        let c = Circle::new(Point::new(cx, cy), radius);
        let closest = Point::new(cx.clamp(r.lx, r.hx()), cy.clamp(r.ly, r.hy()));
        let expect = c.contains_point(closest);
        assert_eq!(c.intersects_rect(&r), expect);
    }
}

#[test]
fn every_point_maps_to_the_cell_containing_it() {
    let mut rng = Rng(6);
    for _ in 0..256 {
        let p = rng.point();
        let alpha = rng.range(0.5, 20.0);
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), alpha);
        let cell = grid.cell_of(p);
        let rect = grid.cell_rect(cell);
        // For in-universe points the cell rect must contain the point (with
        // closed upper boundaries possibly shared with the next cell).
        if grid.universe.contains_point(p) {
            assert!(
                rect.contains_point(p)
                    || (p.x - rect.hx()).abs() < 1e-9
                    || (p.y - rect.hy()).abs() < 1e-9,
                "point {p:?} not in its cell rect {rect:?}"
            );
        }
        assert!(grid.contains_cell(cell));
    }
}

#[test]
fn cells_overlapping_is_sound_and_complete() {
    let mut rng = Rng(7);
    for _ in 0..128 {
        let r = rng.rect();
        let alpha = rng.range(1.0, 25.0);
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), alpha);
        let range = grid.cells_overlapping(&r);
        // Soundness: every cell in the range intersects the rect.
        for cell in range.iter() {
            assert!(
                grid.cell_rect(cell).intersects(&r),
                "cell {cell:?} does not intersect"
            );
        }
        // Completeness: every grid cell that intersects is in the range.
        for y in 0..grid.rows {
            for x in 0..grid.cols {
                let cell = mobieyes_geo::CellId::new(x, y);
                if grid.cell_rect(cell).intersects(&r) {
                    assert!(range.contains(cell), "missed intersecting cell {cell:?}");
                }
            }
        }
    }
}

#[test]
fn monitoring_region_covers_every_reachable_query_position() {
    let mut rng = Rng(8);
    for _ in 0..256 {
        // The defining property of the monitoring region (§2.3): wherever
        // the focal object sits inside its current cell, the query circle
        // stays within the monitoring region's cells.
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let cell = mobieyes_geo::CellId::new(
            (rng.below(20) as u32).min(grid.cols - 1),
            (rng.below(20) as u32).min(grid.rows - 1),
        );
        let radius = rng.range(0.1, 15.0);
        let mon = grid.monitoring_region(cell, radius);
        let rect = grid.cell_rect(cell);
        let focal = Point::new(
            rect.lx + rng.unit() * rect.w(),
            rect.ly + rng.unit() * rect.h(),
        );
        let bbox = Circle::new(focal, radius).bbox();
        let covered = grid.cells_overlapping(&bbox);
        for c in covered.iter() {
            assert!(
                mon.contains(c),
                "query can reach cell {c:?} outside monitoring region {mon:?}"
            );
        }
    }
}

#[test]
fn dead_reckoning_prediction_is_exact_for_linear_motion() {
    let mut rng = Rng(9);
    for _ in 0..256 {
        let p = rng.point();
        let (vx, vy) = (rng.range(-0.1, 0.1), rng.range(-0.1, 0.1));
        let t0 = rng.range(0.0, 1000.0);
        let dt = rng.range(0.0, 600.0);
        let m = mobieyes_geo::LinearMotion::new(p, mobieyes_geo::Vec2::new(vx, vy), t0);
        let truth = Point::new(p.x + vx * dt, p.y + vy * dt);
        assert!(m.predict(t0 + dt).distance(truth) < 1e-9);
        // An object moving exactly as advertised never triggers a report.
        assert!(!m.should_report(t0 + dt, truth, 1e-6));
    }
}

#[test]
fn query_region_bbox_contains_region() {
    let mut rng = Rng(10);
    for _ in 0..256 {
        let radius = rng.range(0.0, 20.0);
        let (b, p) = (rng.point(), rng.point());
        let q = mobieyes_geo::QueryRegion::circle(radius);
        if q.contains_from(b, p) {
            assert!(q.bbox_from(b).contains_point(p));
        }
    }
}
