//! Journal codec property tests: every [`LogRecord`] variant must
//! round-trip exactly through the binary log encoding, and the decoder —
//! which reads crash-recovered disk input — must reject truncated or
//! corrupted frames with an error, never a panic.
//!
//! Uses a seeded splitmix64 sweep so every run checks the same cases.

use mobieyes_core::codec::Reader;
use mobieyes_core::journal::{decode_record, record_bytes, LogRecord};
use mobieyes_core::server::Net;
use mobieyes_core::{
    ClusterMsg, Filter, ObjectId, PropValue, ProtocolConfig, QueryId, QueryMigration, QuerySpec,
    Server, Uplink,
};
use mobieyes_geo::{CellId, Grid, GridRect, LinearMotion, Point, QueryRegion, Rect, Vec2};
use mobieyes_net::BaseStationLayout;
use std::sync::Arc;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn rand_motion(rng: &mut Rng) -> LinearMotion {
    LinearMotion::new(
        Point::new(rng.range(-1e3, 1e3), rng.range(-1e3, 1e3)),
        Vec2::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)),
        rng.range(0.0, 1e6),
    )
}

fn rand_key(rng: &mut Rng) -> String {
    let len = 1 + rng.below(8);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn rand_prop_value(rng: &mut Rng) -> PropValue {
    match rng.below(4) {
        0 => PropValue::Int(rng.next_u64() as i64),
        1 => PropValue::Float(rng.range(-1e6, 1e6)),
        2 => PropValue::Text(rand_key(rng)),
        _ => PropValue::Bool(rng.coin()),
    }
}

fn rand_filter(rng: &mut Rng, depth: u32) -> Filter {
    let pick = if depth == 0 {
        rng.below(6)
    } else {
        rng.below(9)
    };
    match pick {
        0 => Filter::True,
        1 => Filter::False,
        2 => Filter::Selectivity {
            selectivity: rng.unit(),
            salt: rng.next_u64(),
        },
        3 => Filter::Eq(rand_key(rng), rand_prop_value(rng)),
        4 => Filter::Lt(rand_key(rng), rng.range(-100.0, 100.0)),
        5 => Filter::Gt(rand_key(rng), rng.range(-100.0, 100.0)),
        6 => Filter::And(
            Box::new(rand_filter(rng, depth - 1)),
            Box::new(rand_filter(rng, depth - 1)),
        ),
        7 => Filter::Or(
            Box::new(rand_filter(rng, depth - 1)),
            Box::new(rand_filter(rng, depth - 1)),
        ),
        _ => Filter::Not(Box::new(rand_filter(rng, depth - 1))),
    }
}

fn rand_region(rng: &mut Rng) -> QueryRegion {
    if rng.coin() {
        QueryRegion::circle(rng.range(0.0, 50.0))
    } else {
        QueryRegion::rect(rng.range(0.0, 50.0), rng.range(0.0, 50.0))
    }
}

fn rand_cell(rng: &mut Rng) -> CellId {
    CellId::new(rng.below(100) as u32, rng.below(100) as u32)
}

fn rand_grid_rect(rng: &mut Rng) -> GridRect {
    let x0 = rng.below(100) as u32;
    let y0 = rng.below(100) as u32;
    GridRect {
        x0,
        y0,
        x1: x0 + rng.below(10) as u32,
        y1: y0 + rng.below(10) as u32,
    }
}

fn rand_spec(rng: &mut Rng) -> QuerySpec {
    QuerySpec {
        qid: QueryId(rng.next_u64() as u32),
        region: rand_region(rng),
        filter: Arc::new(rand_filter(rng, 3)),
        slot: rng.next_u64() as u8,
        seq: rng.next_u64(),
    }
}

fn rand_uplink(rng: &mut Rng) -> Uplink {
    match rng.below(7) {
        0 => Uplink::VelocityReport {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
        },
        1 => Uplink::CellChange {
            oid: ObjectId(rng.next_u64() as u32),
            prev_cell: rand_cell(rng),
            new_cell: rand_cell(rng),
            motion: rand_motion(rng),
        },
        2 => Uplink::ResultUpdate {
            oid: ObjectId(rng.next_u64() as u32),
            changes: (0..rng.below(20))
                .map(|_| (QueryId(rng.next_u64() as u32), rng.coin()))
                .collect(),
        },
        3 => Uplink::GroupResultUpdate {
            oid: ObjectId(rng.next_u64() as u32),
            focal: ObjectId(rng.next_u64() as u32),
            mask: rng.next_u64(),
            targets: rng.next_u64(),
        },
        4 => Uplink::PositionReply {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
        },
        5 => Uplink::Resync {
            oid: ObjectId(rng.next_u64() as u32),
            cell: rand_cell(rng),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            fresh: rng.coin(),
        },
        _ => Uplink::LqtSync {
            oid: ObjectId(rng.next_u64() as u32),
            entries: (0..rng.below(20))
                .map(|_| (QueryId(rng.next_u64() as u32), rng.coin()))
                .collect(),
        },
    }
}

fn rand_migration(rng: &mut Rng) -> QueryMigration {
    QueryMigration {
        spec: rand_spec(rng),
        curr_cell: rand_cell(rng),
        mon_region: rand_grid_rect(rng),
        expires_at: rng.coin().then(|| rng.range(0.0, 1e6)),
        result: (0..rng.below(20))
            .map(|_| ObjectId(rng.next_u64() as u32))
            .collect(),
    }
}

fn rand_cluster(rng: &mut Rng) -> ClusterMsg {
    match rng.below(4) {
        0 => ClusterMsg::MigrateFocal {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            used_slots: rng.next_u64(),
            last_heard: rng.range(0.0, 1e6),
            epoch: rng.next_u64(),
            queries: (0..rng.below(5)).map(|_| rand_migration(rng)).collect(),
        },
        1 => ClusterMsg::StubUpdate {
            focal: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            curr_cell: rand_cell(rng),
            mon_region: rand_grid_rect(rng),
            old_mon: rng.coin().then(|| rand_grid_rect(rng)),
            spec: rand_spec(rng),
        },
        2 => ClusterMsg::StubMotion {
            focal: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            qids: (0..rng.below(20))
                .map(|_| (QueryId(rng.next_u64() as u32), rng.next_u64()))
                .collect(),
        },
        _ => ClusterMsg::StubRemove {
            qid: QueryId(rng.next_u64() as u32),
            mon_region: rand_grid_rect(rng),
            epoch: rng.next_u64(),
        },
    }
}

/// One random record of the given tag, so the sweep covers every variant
/// explicitly instead of sampling.
fn rand_record(rng: &mut Rng, tag: u64) -> LogRecord {
    match tag {
        0 => LogRecord::Meta {
            partition: rng.next_u64() as u32,
            num_partitions: rng.next_u64() as u32,
        },
        1 => LogRecord::Floor(rng.next_u64()),
        2 => LogRecord::SetTime(rng.range(0.0, 1e6)),
        3 => LogRecord::Heartbeat(rng.range(0.0, 1e6)),
        4 => LogRecord::Uplink {
            from: rng.next_u64() as u32,
            msg: rand_uplink(rng),
        },
        5 => LogRecord::InstallQuery {
            qid: QueryId(rng.next_u64() as u32),
            focal: ObjectId(rng.next_u64() as u32),
            region: rand_region(rng),
            filter: rand_filter(rng, 3),
            expires_at: rng.coin().then(|| rng.range(0.0, 1e6)),
        },
        6 => LogRecord::CompleteInstall {
            qid: QueryId(rng.next_u64() as u32),
            focal: ObjectId(rng.next_u64() as u32),
            region: rand_region(rng),
            filter: rand_filter(rng, 3),
            expires_at: rng.coin().then(|| rng.range(0.0, 1e6)),
        },
        7 => LogRecord::RemoveQuery(QueryId(rng.next_u64() as u32)),
        8 => LogRecord::UpdateRegion {
            qid: QueryId(rng.next_u64() as u32),
            region: rand_region(rng),
        },
        9 => LogRecord::RenewLease(ObjectId(rng.next_u64() as u32)),
        10 => LogRecord::VelocityReport {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
        },
        11 => LogRecord::CellChangeFocal {
            oid: ObjectId(rng.next_u64() as u32),
            new_cell: rand_cell(rng),
            motion: rand_motion(rng),
        },
        12 => LogRecord::CellChangeFresh {
            oid: ObjectId(rng.next_u64() as u32),
            prev_cell: rand_cell(rng),
            new_cell: rand_cell(rng),
            motion: rand_motion(rng),
        },
        13 => LogRecord::ResultChange {
            qid: QueryId(rng.next_u64() as u32),
            oid: ObjectId(rng.next_u64() as u32),
            is_target: rng.coin(),
        },
        14 => LogRecord::GroupResultUpdate {
            oid: ObjectId(rng.next_u64() as u32),
            focal: ObjectId(rng.next_u64() as u32),
            mask: rng.next_u64(),
            targets: rng.next_u64(),
        },
        15 => LogRecord::RefreshFocalMotion {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            insert: rng.coin(),
        },
        16 => LogRecord::PurgeObject(ObjectId(rng.next_u64() as u32)),
        17 => LogRecord::ResultDelta {
            qid: QueryId(rng.next_u64() as u32),
            oid: ObjectId(rng.next_u64() as u32),
            entered: rng.coin(),
        },
        18 => LogRecord::LqtReconcile {
            qid: QueryId(rng.next_u64() as u32),
            oid: ObjectId(rng.next_u64() as u32),
            is_target: rng.coin(),
        },
        19 => LogRecord::FocalReassert(ObjectId(rng.next_u64() as u32)),
        20 => LogRecord::CellSyncReply {
            oid: ObjectId(rng.next_u64() as u32),
            cell: rand_cell(rng),
        },
        21 => LogRecord::ExtractFocal(ObjectId(rng.next_u64() as u32)),
        22 => LogRecord::Cluster(rand_cluster(rng)),
        23 => LogRecord::ExportCells {
            flats: (0..rng.below(30)).map(|_| rng.next_u64() as u32).collect(),
            generation: rng.next_u64(),
        },
        24 => LogRecord::PruneStubs,
        25 => LogRecord::BumpEpoch,
        26 => LogRecord::Bounds {
            generation: rng.next_u64(),
            bounds: (0..rng.below(10)).map(|_| rng.next_u64()).collect(),
        },
        _ => LogRecord::Checkpoint((0..rng.below(300)).map(|_| rng.next_u64() as u8).collect()),
    }
}

const NUM_TAGS: u64 = 28;

#[test]
fn every_variant_roundtrips() {
    let mut rng = Rng(0x5eed_10c4_0001);
    for case in 0..NUM_TAGS * 32 {
        let rec = rand_record(&mut rng, case % NUM_TAGS);
        let bytes = record_bytes(&rec);
        let mut buf = Reader::new(&bytes);
        let decoded = decode_record(&mut buf).expect("decodes");
        assert_eq!(decoded, rec, "case {case}");
        assert_eq!(buf.remaining(), 0, "case {case}: trailing bytes");
    }
}

/// Every strict prefix of a valid encoding must error cleanly — a torn
/// write hands the reader exactly this shape of input.
#[test]
fn truncation_never_panics_and_always_errors() {
    let mut rng = Rng(0x5eed_10c4_0002);
    for tag in 0..NUM_TAGS {
        let rec = rand_record(&mut rng, tag);
        let bytes = record_bytes(&rec);
        for cut in 0..bytes.len() {
            let mut buf = Reader::new(&bytes[..cut]);
            match decode_record(&mut buf) {
                // Some prefixes decode as a shorter valid record (e.g. a
                // collection cut between elements); that is the frame
                // CRC's job to reject, not the codec's. It must still
                // consume only what it parsed.
                Ok(_) => assert!(buf.remaining() <= cut),
                Err(e) => assert!(!e.0.is_empty()),
            }
        }
    }
}

/// Single-byte corruption anywhere in a record must never panic the
/// decoder (CRC catches it in the store; the codec just must survive).
#[test]
fn corruption_never_panics() {
    let mut rng = Rng(0x5eed_10c4_0003);
    for tag in 0..NUM_TAGS {
        let rec = rand_record(&mut rng, tag);
        let bytes = record_bytes(&rec);
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut b = bytes.clone();
                b[pos] ^= flip;
                let _ = decode_record(&mut Reader::new(&b));
            }
        }
    }
}

/// Pure garbage — including oversized length prefixes — must error, not
/// panic or allocate unboundedly.
#[test]
fn garbage_never_panics() {
    let mut rng = Rng(0x5eed_10c4_0004);
    for _ in 0..512 {
        let data: Vec<u8> = (0..rng.below(200)).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_record(&mut Reader::new(&data));
    }
    // Adversarial length prefixes on the collection-bearing tags.
    for tag in [23u8, 26, 27] {
        let mut data = vec![tag];
        data.extend_from_slice(&u64::MAX.to_le_bytes()); // generation / size field
        data.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd count
        let err = decode_record(&mut Reader::new(&data));
        assert!(err.is_err(), "tag {tag} accepted an absurd length prefix");
    }
}

/// A server must survive `restore_checkpoint` on arbitrary bytes without
/// panicking, and reject them without mutating its state.
#[test]
fn restore_checkpoint_rejects_garbage_untouched() {
    let universe = Rect::new(0.0, 0.0, 60.0, 60.0);
    let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 8.0)));
    let mut net = Net::new(BaseStationLayout::new(universe, 15.0));
    let mut server = Server::new(Arc::clone(&config));
    server.install_query(
        ObjectId(1),
        QueryRegion::circle(5.0),
        Filter::True,
        &mut net,
    );
    let digest = server.state_digest();

    let mut rng = Rng(0x5eed_10c4_0005);
    for _ in 0..256 {
        let data: Vec<u8> = (0..rng.below(300)).map(|_| rng.next_u64() as u8).collect();
        if server.restore_checkpoint(&data).is_ok() {
            // Vanishingly unlikely, but then state legitimately changed.
            continue;
        }
        assert_eq!(
            server.state_digest(),
            digest,
            "failed restore mutated state"
        );
    }

    // And a genuine image round-trips into a twin.
    let image = server.checkpoint_bytes();
    let mut twin = Server::new(config);
    twin.restore_checkpoint(&image)
        .expect("valid image restores");
    assert_eq!(twin.state_digest(), digest);
}
