//! Duplicate-delivery idempotence: the fault layer may deliver any
//! downlink message twice (duplication faults) or let a stale removal
//! arrive after a newer install (reordering across a heartbeat repair).
//! The epoch/sequence scheme must make both harmless: for randomized
//! query state, (1) applying a message twice leaves the agent's LQT
//! byte-identical to applying it once, and (2) a removal and a newer
//! install commute — either arrival order ends in the installed state.
//!
//! Uses a seeded splitmix64 sweep so every run checks the same cases.

use mobieyes_core::server::Net;
use mobieyes_core::{
    Downlink, Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, QueryGroupInfo,
    QueryId, QuerySpec, Uplink,
};
use mobieyes_geo::{Grid, GridRect, LinearMotion, Point, QueryRegion, Rect, Vec2};
use mobieyes_net::BaseStationLayout;
use std::sync::Arc;

const SIDE: f64 = 60.0;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn config() -> Arc<ProtocolConfig> {
    Arc::new(ProtocolConfig::new(Grid::new(
        Rect::new(0.0, 0.0, SIDE, SIDE),
        8.0,
    )))
}

fn fresh_agent(config: &Arc<ProtocolConfig>, pos: Point) -> MovingObjectAgent {
    MovingObjectAgent::new(
        ObjectId(0),
        Properties::new(),
        0.08,
        pos,
        Vec2::ZERO,
        Arc::clone(config),
    )
}

/// A group info whose monitoring region covers the agent's cell, so the
/// install path actually runs.
fn rand_info(rng: &mut Rng, config: &ProtocolConfig, agent_pos: Point, seq: u64) -> QueryGroupInfo {
    let cell = config.grid.cell_of(agent_pos);
    let focal_pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
    let specs: Vec<QuerySpec> = (0..1 + rng.below(3))
        .map(|k| QuerySpec {
            qid: QueryId(rng.below(6) as u32 * 7 + k as u32),
            region: if rng.coin() {
                QueryRegion::circle(rng.range(1.0, 12.0))
            } else {
                QueryRegion::rect(rng.range(1.0, 12.0), rng.range(1.0, 12.0))
            },
            filter: Arc::new(Filter::True),
            slot: rng.below(64) as u8,
            seq,
        })
        .collect();
    QueryGroupInfo {
        focal: ObjectId(1 + rng.below(9) as u32),
        motion: LinearMotion::new(
            focal_pos,
            Vec2::new(rng.range(-0.05, 0.05), rng.range(-0.05, 0.05)),
            rng.range(0.0, 100.0),
        ),
        max_vel: 0.08,
        mon_region: GridRect {
            x0: cell.x.saturating_sub(rng.below(2) as u32),
            y0: cell.y.saturating_sub(rng.below(2) as u32),
            x1: cell.x + rng.below(3) as u32,
            y1: cell.y + rng.below(3) as u32,
        },
        queries: Arc::new(specs),
    }
}

/// Full observable protocol state of an agent: the LQT rows plus any
/// uplink traffic its processing produced.
type Fingerprint = (Vec<(QueryId, bool, u64)>, Vec<(u32, Uplink)>);

fn fingerprint(agent: &MovingObjectAgent, net: &mut Net) -> Fingerprint {
    let ups = net
        .drain_uplinks()
        .into_iter()
        .map(|(n, u)| (n.0, u))
        .collect();
    (agent.lqt_entries(), ups)
}

fn deliver(agent: &mut MovingObjectAgent, t: f64, msgs: &[Downlink], net: &mut Net) {
    agent.tick_process(t, msgs.iter(), net);
}

#[test]
fn double_delivery_leaves_lqt_identical() {
    let mut rng = Rng(0x5eed_1de3_0001);
    let config = config();
    for case in 0..128 {
        let pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
        let seq = 1 + rng.below(50);
        let info = rand_info(&mut rng, &config, pos, seq);
        let once_msg = Downlink::QueryState { info: info.clone() };
        let twice_msgs = [once_msg.clone(), once_msg.clone()];

        let mut net_a = Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, SIDE, SIDE),
            15.0,
        ));
        let mut net_b = Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, SIDE, SIDE),
            15.0,
        ));
        let mut once = fresh_agent(&config, pos);
        let mut twice = fresh_agent(&config, pos);
        deliver(&mut once, 30.0, std::slice::from_ref(&once_msg), &mut net_a);
        deliver(&mut twice, 30.0, &twice_msgs, &mut net_b);
        assert_eq!(
            fingerprint(&once, &mut net_a),
            fingerprint(&twice, &mut net_b),
            "case {case}: double delivery changed observable state"
        );
    }
}

#[test]
fn removal_and_newer_install_commute() {
    let mut rng = Rng(0x5eed_1de3_0002);
    let config = config();
    for case in 0..128 {
        let pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
        let remove_epoch = 1 + rng.below(40);
        let install_seq = remove_epoch + 1 + rng.below(10);
        let info = rand_info(&mut rng, &config, pos, install_seq);
        let qid = info.queries[0].qid;
        let install = Downlink::QueryState { info };
        let remove = Downlink::RemoveQuery {
            qid,
            epoch: remove_epoch,
        };

        let run = |msgs: &[Downlink]| {
            let mut net = Net::new(BaseStationLayout::new(
                Rect::new(0.0, 0.0, SIDE, SIDE),
                15.0,
            ));
            let mut agent = fresh_agent(&config, pos);
            deliver(&mut agent, 30.0, msgs, &mut net);
            (agent.lqt_entries(), net.drain_uplinks().len())
        };
        let (a, _) = run(&[install.clone(), remove.clone()]);
        let (b, _) = run(&[remove.clone(), install.clone()]);
        assert_eq!(
            a, b,
            "case {case}: removal (epoch {remove_epoch}) and newer install \
             (seq {install_seq}) did not commute"
        );
        assert!(
            a.iter().any(|(q, _, s)| *q == qid && *s == install_seq),
            "case {case}: the newer install must win in both orders"
        );
    }
}

#[test]
fn stale_removal_after_crash_does_not_resurrect() {
    // A removal that raced a heartbeat repair: the agent already applied
    // a *newer* removal tombstone; a duplicate of the old install must
    // not resurrect the query.
    let mut rng = Rng(0x5eed_1de3_0003);
    let config = config();
    for case in 0..64 {
        let pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
        let install_seq = 1 + rng.below(40);
        let remove_epoch = install_seq + rng.below(10);
        let info = rand_info(&mut rng, &config, pos, install_seq);
        let qid = info.queries[0].qid;
        let mut net = Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, SIDE, SIDE),
            15.0,
        ));
        let mut agent = fresh_agent(&config, pos);
        deliver(
            &mut agent,
            30.0,
            &[
                Downlink::QueryState { info: info.clone() },
                Downlink::RemoveQuery {
                    qid,
                    epoch: remove_epoch,
                },
                // Late duplicate of the original install.
                Downlink::QueryState { info },
            ],
            &mut net,
        );
        assert!(
            !agent.lqt_entries().iter().any(|(q, _, _)| *q == qid),
            "case {case}: tombstoned query resurrected by a late duplicate"
        );
    }
}
