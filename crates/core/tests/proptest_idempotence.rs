//! Duplicate-delivery idempotence: the fault layer may deliver any
//! downlink message twice (duplication faults) or let a stale removal
//! arrive after a newer install (reordering across a heartbeat repair).
//! The epoch/sequence scheme must make both harmless: for randomized
//! query state, (1) applying a message twice leaves the agent's LQT
//! byte-identical to applying it once, and (2) a removal and a newer
//! install commute — either arrival order ends in the installed state.
//!
//! Uses a seeded splitmix64 sweep so every run checks the same cases.

use mobieyes_core::server::Net;
use mobieyes_core::{
    ClusterMsg, Downlink, Filter, MovingObjectAgent, ObjectId, PartitionScope, PartitionTable,
    Properties, ProtocolConfig, QueryGroupInfo, QueryId, QuerySpec, Server, Uplink,
};
use mobieyes_geo::{CellId, Grid, GridRect, LinearMotion, Point, QueryRegion, Rect, Vec2};
use mobieyes_net::BaseStationLayout;
use std::collections::BTreeSet;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

const SIDE: f64 = 60.0;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn config() -> Arc<ProtocolConfig> {
    Arc::new(ProtocolConfig::new(Grid::new(
        Rect::new(0.0, 0.0, SIDE, SIDE),
        8.0,
    )))
}

fn fresh_agent(config: &Arc<ProtocolConfig>, pos: Point) -> MovingObjectAgent {
    MovingObjectAgent::new(
        ObjectId(0),
        Properties::new(),
        0.08,
        pos,
        Vec2::ZERO,
        Arc::clone(config),
    )
}

/// A group info whose monitoring region covers the agent's cell, so the
/// install path actually runs.
fn rand_info(rng: &mut Rng, config: &ProtocolConfig, agent_pos: Point, seq: u64) -> QueryGroupInfo {
    let cell = config.grid.cell_of(agent_pos);
    let focal_pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
    let specs: Vec<QuerySpec> = (0..1 + rng.below(3))
        .map(|k| QuerySpec {
            qid: QueryId(rng.below(6) as u32 * 7 + k as u32),
            region: if rng.coin() {
                QueryRegion::circle(rng.range(1.0, 12.0))
            } else {
                QueryRegion::rect(rng.range(1.0, 12.0), rng.range(1.0, 12.0))
            },
            filter: Arc::new(Filter::True),
            slot: rng.below(64) as u8,
            seq,
        })
        .collect();
    QueryGroupInfo {
        focal: ObjectId(1 + rng.below(9) as u32),
        motion: LinearMotion::new(
            focal_pos,
            Vec2::new(rng.range(-0.05, 0.05), rng.range(-0.05, 0.05)),
            rng.range(0.0, 100.0),
        ),
        max_vel: 0.08,
        mon_region: GridRect {
            x0: cell.x.saturating_sub(rng.below(2) as u32),
            y0: cell.y.saturating_sub(rng.below(2) as u32),
            x1: cell.x + rng.below(3) as u32,
            y1: cell.y + rng.below(3) as u32,
        },
        queries: Arc::new(specs),
    }
}

/// Full observable protocol state of an agent: the LQT rows plus any
/// uplink traffic its processing produced.
type Fingerprint = (Vec<(QueryId, bool, u64)>, Vec<(u32, Uplink)>);

fn fingerprint(agent: &MovingObjectAgent, net: &mut Net) -> Fingerprint {
    let ups = net
        .drain_uplinks()
        .into_iter()
        .map(|(n, u)| (n.0, u))
        .collect();
    (agent.lqt_entries(), ups)
}

fn deliver(agent: &mut MovingObjectAgent, t: f64, msgs: &[Downlink], net: &mut Net) {
    agent.tick_process(t, msgs.iter(), net);
}

#[test]
fn double_delivery_leaves_lqt_identical() {
    let mut rng = Rng(0x5eed_1de3_0001);
    let config = config();
    for case in 0..128 {
        let pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
        let seq = 1 + rng.below(50);
        let info = rand_info(&mut rng, &config, pos, seq);
        let once_msg = Downlink::QueryState { info: info.clone() };
        let twice_msgs = [once_msg.clone(), once_msg.clone()];

        let mut net_a = Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, SIDE, SIDE),
            15.0,
        ));
        let mut net_b = Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, SIDE, SIDE),
            15.0,
        ));
        let mut once = fresh_agent(&config, pos);
        let mut twice = fresh_agent(&config, pos);
        deliver(&mut once, 30.0, std::slice::from_ref(&once_msg), &mut net_a);
        deliver(&mut twice, 30.0, &twice_msgs, &mut net_b);
        assert_eq!(
            fingerprint(&once, &mut net_a),
            fingerprint(&twice, &mut net_b),
            "case {case}: double delivery changed observable state"
        );
    }
}

#[test]
fn removal_and_newer_install_commute() {
    let mut rng = Rng(0x5eed_1de3_0002);
    let config = config();
    for case in 0..128 {
        let pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
        let remove_epoch = 1 + rng.below(40);
        let install_seq = remove_epoch + 1 + rng.below(10);
        let info = rand_info(&mut rng, &config, pos, install_seq);
        let qid = info.queries[0].qid;
        let install = Downlink::QueryState { info };
        let remove = Downlink::RemoveQuery {
            qid,
            epoch: remove_epoch,
        };

        let run = |msgs: &[Downlink]| {
            let mut net = Net::new(BaseStationLayout::new(
                Rect::new(0.0, 0.0, SIDE, SIDE),
                15.0,
            ));
            let mut agent = fresh_agent(&config, pos);
            deliver(&mut agent, 30.0, msgs, &mut net);
            (agent.lqt_entries(), net.drain_uplinks().len())
        };
        let (a, _) = run(&[install.clone(), remove.clone()]);
        let (b, _) = run(&[remove.clone(), install.clone()]);
        assert_eq!(
            a, b,
            "case {case}: removal (epoch {remove_epoch}) and newer install \
             (seq {install_seq}) did not commute"
        );
        assert!(
            a.iter().any(|(q, _, s)| *q == qid && *s == install_seq),
            "case {case}: the newer install must win in both orders"
        );
    }
}

/// Everything a neighbor partition can observe after a handoff: table
/// sizes, the per-cell digest that drives heartbeat broadcasts, and the
/// full result set of every homed query.
type ServerFingerprint = (
    usize,
    usize,
    Vec<(CellId, u64)>,
    Vec<(QueryId, BTreeSet<ObjectId>)>,
);

fn server_fingerprint(s: &Server) -> ServerFingerprint {
    let mut results: Vec<(QueryId, BTreeSet<ObjectId>)> = s
        .query_ids()
        .map(|q| (q, s.query_result(q).cloned().unwrap_or_default()))
        .collect();
    results.sort();
    (s.num_queries(), s.num_stubs(), s.digest_cells(), results)
}

/// Drives one randomized border-crossing handoff — stub installs, a stub
/// motion refresh, an optional stub removal, then a full `MigrateFocal` —
/// and applies the resulting inter-server messages to the receiving
/// partition. When `duplicate` is set every message is delivered twice
/// (the bus duplication fault), and the final migration a third time.
fn run_handoff(case: u64, duplicate: bool) -> (usize, ServerFingerprint) {
    let mut rng = Rng(0x5eed_1de3_0004 ^ case.wrapping_mul(0x9e37));
    let config = config();
    let total = config.grid.num_cells();
    let table = Arc::new(PartitionTable::new(vec![0, total / 2, total]));
    let epoch = Arc::new(AtomicU64::new(0));
    let mut p0 = Server::new(Arc::clone(&config)).with_scope(PartitionScope::new(
        0,
        Arc::clone(&table),
        Arc::clone(&epoch),
    ));
    let mut p1 = Server::new(Arc::clone(&config)).with_scope(PartitionScope::new(1, table, epoch));
    let mut net = Net::new(BaseStationLayout::new(
        Rect::new(0.0, 0.0, SIDE, SIDE),
        15.0,
    ));

    // Focal homed on partition 0 (rows y < 4), close enough to the y = 32
    // border that its monitoring regions straddle into partition 1.
    let focal = ObjectId(1 + rng.below(9) as u32);
    let pos = Point::new(rng.range(5.0, 55.0), rng.range(25.0, 31.0));
    let vel = Vec2::new(rng.range(-0.05, 0.05), rng.range(-0.05, 0.05));
    p0.refresh_focal_motion(
        focal,
        LinearMotion::new(pos, vel, rng.range(0.0, 50.0)),
        0.08,
        true,
    );

    let mut msgs = Vec::new();
    let drain = |p0: &mut Server, msgs: &mut Vec<_>| {
        for (to, m) in p0.take_outbox() {
            assert_eq!(to, 1, "two-partition split: all stubs go to partition 1");
            msgs.push(m);
        }
    };
    let qids: Vec<QueryId> = (0..1 + rng.below(3))
        .map(|_| {
            p0.install_query(
                focal,
                QueryRegion::circle(rng.range(6.0, 12.0)),
                Filter::True,
                &mut net,
            )
        })
        .collect();
    drain(&mut p0, &mut msgs); // StubUpdate per straddling query
    let newer = LinearMotion::new(
        Point::new(pos.x, pos.y + 0.4),
        vel,
        60.0 + rng.range(0.0, 5.0),
    );
    p0.refresh_focal_motion(focal, newer, 0.08, false);
    drain(&mut p0, &mut msgs); // StubMotion
    if rng.coin() && qids.len() > 1 {
        p0.remove_query(qids[0], &mut net);
        drain(&mut p0, &mut msgs); // StubRemove
    }
    let migration = p0.extract_focal(focal).expect("focal homed on p0");
    msgs.push(migration.clone());
    assert!(
        msgs.len() >= 2,
        "case {case}: handoff produced no stub traffic"
    );

    for m in &msgs {
        p1.apply_cluster_msg(m);
        if duplicate {
            p1.apply_cluster_msg(m);
        }
    }
    if duplicate {
        p1.apply_cluster_msg(&migration);
    }
    let _ = net.drain_uplinks();
    (msgs.len(), server_fingerprint(&p1))
}

#[test]
fn replayed_handoff_migration_is_a_no_op() {
    for case in 0..128 {
        let (n_once, once) = run_handoff(case, false);
        let (n_twice, twice) = run_handoff(case, true);
        assert_eq!(n_once, n_twice, "case {case}: scenario not deterministic");
        assert!(
            once.0 > 0,
            "case {case}: migration must home queries on the receiver"
        );
        assert_eq!(
            once, twice,
            "case {case}: duplicated handoff delivery changed receiver state"
        );
    }
}

/// Drives one randomized partition-map rebalance: two scoped servers share
/// a `PartitionTable`, partition 0 homes a focal whose monitoring regions
/// sit in the cell range that a new generation reassigns to partition 1,
/// and the reassigned rows travel in a `RebalanceCells` cut for exactly
/// that generation. `duplicate` delivers the transfer twice (the bus
/// duplication fault); `stale_replay` installs a further generation and
/// replays the now-stale transfer, which must be dropped whole.
fn run_rebalance(case: u64, duplicate: bool, stale_replay: bool) -> (usize, ServerFingerprint) {
    let mut rng = Rng(0x5eed_1de3_0005 ^ case.wrapping_mul(0x9e37));
    let config = config();
    let total = config.grid.num_cells();
    let table = Arc::new(PartitionTable::new(vec![0, total / 2, total]));
    let epoch = Arc::new(AtomicU64::new(0));
    let mut p0 = Server::new(Arc::clone(&config)).with_scope(PartitionScope::new(
        0,
        Arc::clone(&table),
        Arc::clone(&epoch),
    ));
    let mut p1 = Server::new(Arc::clone(&config)).with_scope(PartitionScope::new(
        1,
        Arc::clone(&table),
        epoch,
    ));
    let mut net = Net::new(BaseStationLayout::new(
        Rect::new(0.0, 0.0, SIDE, SIDE),
        15.0,
    ));

    // Focal homed on partition 0, inside the cell rows the new generation
    // will hand to partition 1 (flats [total/4, total/2)).
    let focal = ObjectId(1 + rng.below(9) as u32);
    let pos = Point::new(rng.range(5.0, 55.0), rng.range(17.0, 30.0));
    let vel = Vec2::new(rng.range(-0.05, 0.05), rng.range(-0.05, 0.05));
    p0.refresh_focal_motion(
        focal,
        LinearMotion::new(pos, vel, rng.range(0.0, 50.0)),
        0.08,
        true,
    );
    for _ in 0..1 + rng.below(3) {
        p0.install_query(
            focal,
            QueryRegion::circle(rng.range(4.0, 10.0)),
            Filter::True,
            &mut net,
        );
    }
    // Forward any straddling-stub traffic so both partitions start consistent.
    for (to, m) in p0.take_outbox() {
        assert_eq!(to, 1, "two-partition split: all stubs go to partition 1");
        p1.apply_cluster_msg(&m);
    }

    let generation = table.install(&[0, total / 4, total]);
    let moved: Vec<usize> = (total / 4..total / 2).collect();
    let msg = p0
        .export_cells(&moved, generation)
        .expect("focal's monitoring region occupies reassigned cells");
    let exported = match &msg {
        ClusterMsg::RebalanceCells { cells, .. } => cells.len(),
        other => panic!("export_cells produced {other:?}"),
    };

    p1.apply_cluster_msg(&msg);
    if duplicate {
        p1.apply_cluster_msg(&msg);
    }
    if stale_replay {
        table.install(&[0, total / 2, total]);
        p1.apply_cluster_msg(&msg); // generation mismatch: dropped whole
    }
    let _ = net.drain_uplinks();
    (exported, server_fingerprint(&p1))
}

#[test]
fn duplicated_rebalance_transfer_is_a_no_op() {
    for case in 0..128 {
        let (n_once, once) = run_rebalance(case, false, false);
        let (n_twice, twice) = run_rebalance(case, true, false);
        assert_eq!(n_once, n_twice, "case {case}: scenario not deterministic");
        assert!(
            n_once > 0,
            "case {case}: rebalance must transfer at least one RQI row"
        );
        assert_eq!(
            once, twice,
            "case {case}: duplicated RebalanceCells delivery changed receiver state"
        );
    }
}

#[test]
fn stale_generation_rebalance_transfer_is_dropped() {
    for case in 0..128 {
        let (_, applied) = run_rebalance(case, false, false);
        let (_, replayed) = run_rebalance(case, false, true);
        assert_eq!(
            applied, replayed,
            "case {case}: a RebalanceCells cut for a superseded generation \
             must be dropped without touching any table"
        );
    }
}

#[test]
fn stale_removal_after_crash_does_not_resurrect() {
    // A removal that raced a heartbeat repair: the agent already applied
    // a *newer* removal tombstone; a duplicate of the old install must
    // not resurrect the query.
    let mut rng = Rng(0x5eed_1de3_0003);
    let config = config();
    for case in 0..64 {
        let pos = Point::new(rng.range(5.0, 55.0), rng.range(5.0, 55.0));
        let install_seq = 1 + rng.below(40);
        let remove_epoch = install_seq + rng.below(10);
        let info = rand_info(&mut rng, &config, pos, install_seq);
        let qid = info.queries[0].qid;
        let mut net = Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, SIDE, SIDE),
            15.0,
        ));
        let mut agent = fresh_agent(&config, pos);
        deliver(
            &mut agent,
            30.0,
            &[
                Downlink::QueryState { info: info.clone() },
                Downlink::RemoveQuery {
                    qid,
                    epoch: remove_epoch,
                },
                // Late duplicate of the original install.
                Downlink::QueryState { info },
            ],
            &mut net,
        );
        assert!(
            !agent.lqt_entries().iter().any(|(q, _, _)| *q == qid),
            "case {case}: tombstoned query resurrected by a late duplicate"
        );
    }
}
