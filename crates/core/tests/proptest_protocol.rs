//! Protocol-level property test: random small scenarios must keep all
//! server invariants intact, and once motion stops the distributed result
//! must converge exactly to the brute-force answer.
//!
//! Uses a seeded splitmix64 sweep so every run checks the same cases.

use mobieyes_core::server::Net;
use mobieyes_core::{
    Filter, MovingObjectAgent, ObjectId, Propagation, Properties, ProtocolConfig, Server,
};
use mobieyes_geo::{Grid, Point, QueryRegion, Rect, Vec2};
use mobieyes_net::BaseStationLayout;
use std::sync::Arc;

const SIDE: f64 = 60.0;
const TS: f64 = 30.0;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    /// Initial object positions.
    objects: Vec<(f64, f64)>,
    /// (focal index, radius) per query.
    queries: Vec<(usize, f64)>,
    /// Per-tick velocity for every object (index = tick * n + object).
    moves: Vec<(f64, f64)>,
    lazy: bool,
    grouping: bool,
    safe_period: bool,
}

fn rand_scenario(rng: &mut Rng) -> Scenario {
    let n = 3 + rng.below(7) as usize;
    let q = 1 + rng.below(4) as usize;
    let ticks = 2 + rng.below(4) as usize;
    Scenario {
        objects: (0..n)
            .map(|_| (rng.range(5.0, 55.0), rng.range(5.0, 55.0)))
            .collect(),
        queries: (0..q)
            .map(|_| (rng.below(n as u64) as usize, rng.range(1.0, 12.0)))
            .collect(),
        moves: (0..n * ticks)
            .map(|_| (rng.range(-0.05, 0.05), rng.range(-0.05, 0.05)))
            .collect(),
        lazy: rng.coin(),
        grouping: rng.coin(),
        safe_period: rng.coin(),
    }
}

fn run_scenario(case: usize, s: &Scenario) {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let config = Arc::new(
        ProtocolConfig::new(Grid::new(universe, 8.0))
            .with_propagation(if s.lazy {
                Propagation::Lazy
            } else {
                Propagation::Eager
            })
            .with_grouping(s.grouping)
            .with_safe_period(s.safe_period)
            .with_delta(0.05),
    );
    let mut net = Net::new(BaseStationLayout::new(universe, 15.0));
    let mut server = Server::new(Arc::clone(&config));
    let n = s.objects.len();
    let mut positions: Vec<Point> = s.objects.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let mut agents: Vec<MovingObjectAgent> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new(),
                0.08,
                p,
                Vec2::ZERO,
                Arc::clone(&config),
            )
        })
        .collect();
    let qids: Vec<_> = s
        .queries
        .iter()
        .map(|&(f, r)| {
            server.install_query(
                ObjectId(f as u32),
                QueryRegion::circle(r),
                Filter::True,
                &mut net,
            )
        })
        .collect();

    let ticks = s.moves.len() / n;
    let step = |t: f64,
                positions: &mut Vec<Point>,
                agents: &mut Vec<MovingObjectAgent>,
                server: &mut Server,
                net: &mut Net,
                vels: &[Vec2]| {
        for i in 0..n {
            let p = positions[i] + vels[i] * TS;
            positions[i] = Point::new(p.x.clamp(0.0, SIDE), p.y.clamp(0.0, SIDE));
        }
        for (i, a) in agents.iter_mut().enumerate() {
            a.tick_motion(t, positions[i], vels[i], net);
        }
        server.tick(net);
        for (i, a) in agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            net.deliver(ObjectId(i as u32).node(), positions[i], &mut inbox);
            a.tick_process(t, inbox.iter().map(|m| &**m), net);
        }
        net.end_tick();
        server.tick(net);
        server.check_invariants();
    };

    // Moving phase.
    for k in 0..ticks {
        let vels: Vec<Vec2> = (0..n)
            .map(|i| Vec2::new(s.moves[k * n + i].0, s.moves[k * n + i].1))
            .collect();
        step(
            (k + 1) as f64 * TS,
            &mut positions,
            &mut agents,
            &mut server,
            &mut net,
            &vels,
        );
    }
    // Freeze: everyone stops; dead reckoning converges; results must be
    // exactly the brute-force answer under every mode (safe periods only
    // postpone *entering* objects, and nothing moves anymore; lazy
    // propagation converges because focal cell changes stop too).
    let zero = vec![Vec2::ZERO; n];
    for k in 0..4 {
        step(
            (ticks + k + 1) as f64 * TS,
            &mut positions,
            &mut agents,
            &mut server,
            &mut net,
            &zero,
        );
    }

    for (qi, &(f, r)) in s.queries.iter().enumerate() {
        let expect: std::collections::BTreeSet<ObjectId> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| positions[f].distance(**p) <= r)
            .map(|(i, _)| ObjectId(i as u32))
            .collect();
        let got = server.query_result(qids[qi]).cloned().unwrap_or_default();
        // Lazy propagation may leave an object unaware of a query if no
        // focal event ever reached its cell; tolerate missing members under
        // lazy mode but never spurious ones.
        if s.lazy {
            assert!(
                got.is_subset(&expect),
                "case {case} query {qi}: spurious members {got:?} vs {expect:?}"
            );
        } else {
            assert_eq!(
                got, expect,
                "case {case} query {qi} (focal {f}, r {r}): got {got:?}, want {expect:?}"
            );
        }
    }
}

#[test]
fn random_scenarios_converge_to_exact_results() {
    let mut rng = Rng(0x5eed_9207_0c01);
    for case in 0..48 {
        let s = rand_scenario(&mut rng);
        run_scenario(case, &s);
    }
}
