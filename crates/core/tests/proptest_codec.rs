//! Codec property tests: for *arbitrary* protocol messages, the binary
//! encoding must round-trip exactly and its length must equal the declared
//! `wire_size` that drives all messaging-cost accounting.

use mobieyes_core::codec::{decode_downlink, decode_uplink, downlink_bytes, uplink_bytes};
use mobieyes_core::{Downlink, Filter, ObjectId, PropValue, QueryGroupInfo, QueryId, QuerySpec, Uplink};
use mobieyes_geo::{CellId, GridRect, LinearMotion, Point, QueryRegion, Vec2};
use mobieyes_net::WireSized;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_motion() -> impl Strategy<Value = LinearMotion> {
    (-1e3..1e3f64, -1e3..1e3f64, -1.0..1.0f64, -1.0..1.0f64, 0.0..1e6f64)
        .prop_map(|(x, y, vx, vy, tm)| LinearMotion::new(Point::new(x, y), Vec2::new(vx, vy), tm))
}

fn arb_prop_value() -> impl Strategy<Value = PropValue> {
    prop_oneof![
        any::<i64>().prop_map(PropValue::Int),
        (-1e6..1e6f64).prop_map(PropValue::Float),
        "[a-z]{0,12}".prop_map(PropValue::Text),
        any::<bool>().prop_map(PropValue::Bool),
    ]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::True),
        Just(Filter::False),
        (0.0..1.0f64, any::<u64>())
            .prop_map(|(s, salt)| Filter::Selectivity { selectivity: s, salt }),
        ("[a-z]{1,8}", arb_prop_value()).prop_map(|(k, v)| Filter::Eq(k, v)),
        ("[a-z]{1,8}", -100.0..100.0f64).prop_map(|(k, x)| Filter::Lt(k, x)),
        ("[a-z]{1,8}", -100.0..100.0f64).prop_map(|(k, x)| Filter::Gt(k, x)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Filter::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Filter::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

fn arb_region() -> impl Strategy<Value = QueryRegion> {
    prop_oneof![
        (0.0..50.0f64).prop_map(QueryRegion::circle),
        (0.0..50.0f64, 0.0..50.0f64).prop_map(|(w, h)| QueryRegion::rect(w, h)),
    ]
}

fn arb_group_info() -> impl Strategy<Value = QueryGroupInfo> {
    (
        any::<u32>(),
        arb_motion(),
        0.0..0.1f64,
        (0u32..100, 0u32..100, 0u32..10, 0u32..10),
        prop::collection::vec((any::<u32>(), arb_region(), arb_filter(), any::<u8>()), 0..5),
    )
        .prop_map(|(focal, motion, max_vel, (x0, y0, dx, dy), specs)| QueryGroupInfo {
            focal: ObjectId(focal),
            motion,
            max_vel,
            mon_region: GridRect { x0, y0, x1: x0 + dx, y1: y0 + dy },
            queries: Arc::new(
                specs
                    .into_iter()
                    .map(|(qid, region, filter, slot)| QuerySpec {
                        qid: QueryId(qid),
                        region,
                        filter: Arc::new(filter),
                        slot,
                    })
                    .collect(),
            ),
        })
}

fn arb_uplink() -> impl Strategy<Value = Uplink> {
    prop_oneof![
        (any::<u32>(), arb_motion())
            .prop_map(|(o, m)| Uplink::VelocityReport { oid: ObjectId(o), motion: m }),
        (any::<u32>(), 0u32..100, 0u32..100, 0u32..100, 0u32..100, arb_motion()).prop_map(
            |(o, a, b, c, d, m)| Uplink::CellChange {
                oid: ObjectId(o),
                prev_cell: CellId::new(a, b),
                new_cell: CellId::new(c, d),
                motion: m,
            }
        ),
        (any::<u32>(), prop::collection::vec((any::<u32>(), any::<bool>()), 0..20)).prop_map(
            |(o, ch)| Uplink::ResultUpdate {
                oid: ObjectId(o),
                changes: ch.into_iter().map(|(q, b)| (QueryId(q), b)).collect(),
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(o, f, mask, targets)| Uplink::GroupResultUpdate {
                oid: ObjectId(o),
                focal: ObjectId(f),
                mask,
                targets,
            }
        ),
        (any::<u32>(), arb_motion(), 0.0..0.1f64).prop_map(|(o, m, v)| Uplink::PositionReply {
            oid: ObjectId(o),
            motion: m,
            max_vel: v,
        }),
    ]
}

fn arb_downlink() -> impl Strategy<Value = Downlink> {
    prop_oneof![
        arb_group_info().prop_map(|info| Downlink::QueryState { info }),
        (any::<u32>(), arb_motion(), prop::collection::vec(any::<u32>(), 0..20)).prop_map(
            |(f, m, qids)| Downlink::VelocityChange {
                focal: ObjectId(f),
                motion: m,
                qids: qids.into_iter().map(QueryId).collect(),
            }
        ),
        prop::collection::vec(arb_group_info(), 0..3)
            .prop_map(|infos| Downlink::NewQueries { infos }),
        any::<u32>().prop_map(|q| Downlink::RemoveQuery { qid: QueryId(q) }),
        any::<bool>().prop_map(|b| Downlink::FocalNotify { is_focal: b }),
        Just(Downlink::PositionRequest),
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(q, o, e)| Downlink::ResultDelta {
            qid: QueryId(q),
            object: ObjectId(o),
            entered: e,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn uplink_roundtrip(msg in arb_uplink()) {
        let bytes = uplink_bytes(&msg);
        prop_assert_eq!(bytes.len(), msg.wire_size(), "wire_size mismatch");
        let mut buf = bytes;
        let decoded = decode_uplink(&mut buf).expect("decodes");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(bytes::Buf::remaining(&buf), 0);
    }

    #[test]
    fn downlink_roundtrip(msg in arb_downlink()) {
        let bytes = downlink_bytes(&msg);
        prop_assert_eq!(bytes.len(), msg.wire_size(), "wire_size mismatch");
        let mut buf = bytes;
        let decoded = decode_downlink(&mut buf).expect("decodes");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(bytes::Buf::remaining(&buf), 0);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut buf = bytes::Bytes::from(data.clone());
        let _ = decode_uplink(&mut buf);
        let mut buf = bytes::Bytes::from(data);
        let _ = decode_downlink(&mut buf);
    }
}
