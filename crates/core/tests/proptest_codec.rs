//! Codec property tests: for *randomized* protocol messages, the binary
//! encoding must round-trip exactly and its length must equal the declared
//! `wire_size` that drives all messaging-cost accounting.
//!
//! Uses a seeded splitmix64 sweep so every run checks the same cases.

use mobieyes_core::codec::{
    cluster_bytes, decode_cluster, decode_downlink, decode_uplink, downlink_bytes, uplink_bytes,
    Reader,
};
use mobieyes_core::{
    ClusterMsg, Downlink, Filter, ObjectId, PropValue, QueryGroupInfo, QueryId, QueryMigration,
    QuerySpec, Uplink,
};
use mobieyes_geo::{CellId, GridRect, LinearMotion, Point, QueryRegion, Vec2};
use mobieyes_net::WireSized;
use std::sync::Arc;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn rand_motion(rng: &mut Rng) -> LinearMotion {
    LinearMotion::new(
        Point::new(rng.range(-1e3, 1e3), rng.range(-1e3, 1e3)),
        Vec2::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)),
        rng.range(0.0, 1e6),
    )
}

fn rand_text(rng: &mut Rng, max_len: u64) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn rand_key(rng: &mut Rng) -> String {
    let len = 1 + rng.below(8);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn rand_prop_value(rng: &mut Rng) -> PropValue {
    match rng.below(4) {
        0 => PropValue::Int(rng.next_u64() as i64),
        1 => PropValue::Float(rng.range(-1e6, 1e6)),
        2 => PropValue::Text(rand_text(rng, 12)),
        _ => PropValue::Bool(rng.coin()),
    }
}

fn rand_filter(rng: &mut Rng, depth: u32) -> Filter {
    let pick = if depth == 0 {
        rng.below(6)
    } else {
        rng.below(9)
    };
    match pick {
        0 => Filter::True,
        1 => Filter::False,
        2 => Filter::Selectivity {
            selectivity: rng.unit(),
            salt: rng.next_u64(),
        },
        3 => Filter::Eq(rand_key(rng), rand_prop_value(rng)),
        4 => Filter::Lt(rand_key(rng), rng.range(-100.0, 100.0)),
        5 => Filter::Gt(rand_key(rng), rng.range(-100.0, 100.0)),
        6 => Filter::And(
            Box::new(rand_filter(rng, depth - 1)),
            Box::new(rand_filter(rng, depth - 1)),
        ),
        7 => Filter::Or(
            Box::new(rand_filter(rng, depth - 1)),
            Box::new(rand_filter(rng, depth - 1)),
        ),
        _ => Filter::Not(Box::new(rand_filter(rng, depth - 1))),
    }
}

fn rand_region(rng: &mut Rng) -> QueryRegion {
    if rng.coin() {
        QueryRegion::circle(rng.range(0.0, 50.0))
    } else {
        QueryRegion::rect(rng.range(0.0, 50.0), rng.range(0.0, 50.0))
    }
}

fn rand_group_info(rng: &mut Rng) -> QueryGroupInfo {
    let x0 = rng.below(100) as u32;
    let y0 = rng.below(100) as u32;
    let specs: Vec<QuerySpec> = (0..rng.below(5))
        .map(|_| QuerySpec {
            qid: QueryId(rng.next_u64() as u32),
            region: rand_region(rng),
            filter: Arc::new(rand_filter(rng, 3)),
            slot: rng.next_u64() as u8,
            seq: rng.next_u64(),
        })
        .collect();
    QueryGroupInfo {
        focal: ObjectId(rng.next_u64() as u32),
        motion: rand_motion(rng),
        max_vel: rng.range(0.0, 0.1),
        mon_region: GridRect {
            x0,
            y0,
            x1: x0 + rng.below(10) as u32,
            y1: y0 + rng.below(10) as u32,
        },
        queries: Arc::new(specs),
    }
}

fn rand_uplink(rng: &mut Rng) -> Uplink {
    match rng.below(7) {
        0 => Uplink::VelocityReport {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
        },
        1 => Uplink::CellChange {
            oid: ObjectId(rng.next_u64() as u32),
            prev_cell: CellId::new(rng.below(100) as u32, rng.below(100) as u32),
            new_cell: CellId::new(rng.below(100) as u32, rng.below(100) as u32),
            motion: rand_motion(rng),
        },
        2 => Uplink::ResultUpdate {
            oid: ObjectId(rng.next_u64() as u32),
            changes: (0..rng.below(20))
                .map(|_| (QueryId(rng.next_u64() as u32), rng.coin()))
                .collect(),
        },
        3 => Uplink::GroupResultUpdate {
            oid: ObjectId(rng.next_u64() as u32),
            focal: ObjectId(rng.next_u64() as u32),
            mask: rng.next_u64(),
            targets: rng.next_u64(),
        },
        4 => Uplink::PositionReply {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
        },
        5 => Uplink::Resync {
            oid: ObjectId(rng.next_u64() as u32),
            cell: CellId::new(rng.below(100) as u32, rng.below(100) as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            fresh: rng.coin(),
        },
        _ => Uplink::LqtSync {
            oid: ObjectId(rng.next_u64() as u32),
            entries: (0..rng.below(20))
                .map(|_| (QueryId(rng.next_u64() as u32), rng.coin()))
                .collect(),
        },
    }
}

fn rand_downlink(rng: &mut Rng) -> Downlink {
    match rng.below(9) {
        0 => Downlink::QueryState {
            info: rand_group_info(rng),
        },
        1 => Downlink::VelocityChange {
            focal: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            qids: (0..rng.below(20))
                .map(|_| QueryId(rng.next_u64() as u32))
                .collect(),
            seq: rng.next_u64(),
        },
        2 => Downlink::NewQueries {
            infos: (0..rng.below(3)).map(|_| rand_group_info(rng)).collect(),
        },
        3 => Downlink::RemoveQuery {
            qid: QueryId(rng.next_u64() as u32),
            epoch: rng.next_u64(),
        },
        4 => Downlink::FocalNotify {
            is_focal: rng.coin(),
        },
        5 => Downlink::PositionRequest,
        6 => Downlink::ResultDelta {
            qid: QueryId(rng.next_u64() as u32),
            object: ObjectId(rng.next_u64() as u32),
            entered: rng.coin(),
        },
        7 => Downlink::Heartbeat {
            epoch: rng.next_u64(),
            cell_digests: (0..rng.below(12))
                .map(|_| {
                    (
                        CellId::new(rng.below(100) as u32, rng.below(100) as u32),
                        rng.next_u64(),
                    )
                })
                .collect(),
        },
        _ => Downlink::CellSync {
            cell: CellId::new(rng.below(100) as u32, rng.below(100) as u32),
            epoch: rng.next_u64(),
            infos: (0..rng.below(3)).map(|_| rand_group_info(rng)).collect(),
        },
    }
}

fn rand_spec(rng: &mut Rng) -> QuerySpec {
    QuerySpec {
        qid: QueryId(rng.next_u64() as u32),
        region: rand_region(rng),
        filter: Arc::new(rand_filter(rng, 3)),
        slot: rng.next_u64() as u8,
        seq: rng.next_u64(),
    }
}

fn rand_grid_rect(rng: &mut Rng) -> GridRect {
    let x0 = rng.below(100) as u32;
    let y0 = rng.below(100) as u32;
    GridRect {
        x0,
        y0,
        x1: x0 + rng.below(10) as u32,
        y1: y0 + rng.below(10) as u32,
    }
}

fn rand_migration(rng: &mut Rng) -> QueryMigration {
    QueryMigration {
        spec: rand_spec(rng),
        curr_cell: CellId::new(rng.below(100) as u32, rng.below(100) as u32),
        mon_region: rand_grid_rect(rng),
        expires_at: rng.coin().then(|| rng.range(0.0, 1e6)),
        result: (0..rng.below(20))
            .map(|_| ObjectId(rng.next_u64() as u32))
            .collect(),
    }
}

fn rand_cluster(rng: &mut Rng) -> ClusterMsg {
    match rng.below(4) {
        0 => ClusterMsg::MigrateFocal {
            oid: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            used_slots: rng.next_u64(),
            last_heard: rng.range(0.0, 1e6),
            epoch: rng.next_u64(),
            queries: (0..rng.below(5)).map(|_| rand_migration(rng)).collect(),
        },
        1 => ClusterMsg::StubUpdate {
            focal: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            curr_cell: CellId::new(rng.below(100) as u32, rng.below(100) as u32),
            mon_region: rand_grid_rect(rng),
            old_mon: rng.coin().then(|| rand_grid_rect(rng)),
            spec: rand_spec(rng),
        },
        2 => ClusterMsg::StubMotion {
            focal: ObjectId(rng.next_u64() as u32),
            motion: rand_motion(rng),
            max_vel: rng.range(0.0, 0.1),
            qids: (0..rng.below(20))
                .map(|_| (QueryId(rng.next_u64() as u32), rng.next_u64()))
                .collect(),
        },
        _ => ClusterMsg::StubRemove {
            qid: QueryId(rng.next_u64() as u32),
            mon_region: rand_grid_rect(rng),
            epoch: rng.next_u64(),
        },
    }
}

#[test]
fn uplink_roundtrip() {
    let mut rng = Rng(0x5eed_c0de_c001);
    for case in 0..256 {
        let msg = rand_uplink(&mut rng);
        let bytes = uplink_bytes(&msg);
        assert_eq!(
            bytes.len(),
            msg.wire_size(),
            "case {case}: wire_size mismatch for {msg:?}"
        );
        let mut buf = Reader::new(&bytes);
        let decoded = decode_uplink(&mut buf).expect("decodes");
        assert_eq!(decoded, msg, "case {case}");
        assert_eq!(buf.remaining(), 0, "case {case}: trailing bytes");
    }
}

#[test]
fn downlink_roundtrip() {
    let mut rng = Rng(0x5eed_c0de_c002);
    for case in 0..256 {
        let msg = rand_downlink(&mut rng);
        let bytes = downlink_bytes(&msg);
        assert_eq!(
            bytes.len(),
            msg.wire_size(),
            "case {case}: wire_size mismatch for {msg:?}"
        );
        let mut buf = Reader::new(&bytes);
        let decoded = decode_downlink(&mut buf).expect("decodes");
        assert_eq!(decoded, msg, "case {case}");
        assert_eq!(buf.remaining(), 0, "case {case}: trailing bytes");
    }
}

#[test]
fn cluster_roundtrip() {
    let mut rng = Rng(0x5eed_c0de_c004);
    for case in 0..256 {
        let msg = rand_cluster(&mut rng);
        let bytes = cluster_bytes(&msg);
        assert_eq!(
            bytes.len(),
            msg.wire_size(),
            "case {case}: wire_size mismatch for {msg:?}"
        );
        let mut buf = Reader::new(&bytes);
        let decoded = decode_cluster(&mut buf).expect("decodes");
        assert_eq!(decoded, msg, "case {case}");
        assert_eq!(buf.remaining(), 0, "case {case}: trailing bytes");
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = Rng(0x5eed_c0de_c003);
    for _ in 0..256 {
        let data: Vec<u8> = (0..rng.below(200)).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_uplink(&mut Reader::new(&data));
        let _ = decode_downlink(&mut Reader::new(&data));
        let _ = decode_cluster(&mut Reader::new(&data));
    }
}
