//! The durable input journal: typed log records for every mutating entry
//! point of the [`Server`](crate::Server).
//!
//! The persistence layer (`mobieyes-store`) does not snapshot tables on
//! every change — it journals the server's *inputs*. Every public mutating
//! method of the `Server` (the same surface the cluster's `PartitionOp`
//! RPC dispatches) appends one [`LogRecord`] describing its arguments, and
//! replaying those records against a fresh server reproduces the exact
//! FOT/SQT/RQI byte-for-byte, because the protocol logic is deterministic.
//!
//! Two record kinds carry context a replayed partition cannot rederive on
//! its own:
//!
//! - [`LogRecord::Floor`] — the shared cluster epoch observed at the next
//!   op. Live partitions share one atomic sequencer, so the seq stamps a
//!   partition writes depend on its *siblings'* bumps; journaling the
//!   observed floor (deduplicated: only when it changed) and raising the
//!   replayed epoch with `fetch_max` reproduces the exact stamp sequence —
//!   the same trick the remote partition RPC protocol uses per request.
//! - [`LogRecord::Bounds`] — a partition-map install (rebalance, failover
//!   or re-adoption fence). Replayed partitions rebuild a private
//!   [`PartitionTable`](crate::PartitionTable) from these so historical
//!   ownership decisions resolve exactly as they did live.
//!
//! [`LogRecord::Checkpoint`] carries a full state snapshot
//! ([`Server::checkpoint_bytes`](crate::Server::checkpoint_bytes)); replay
//! starts at the newest checkpoint and applies the tail after it.
//!
//! Encoding composes the existing in-tree codec primitives; like every
//! other decoder in the tree, [`decode_record`] returns an error on any
//! malformed input and never panics.

use crate::codec::{
    self, decode_cluster, decode_uplink, encode_cluster, encode_uplink, DecodeError, Put, Reader,
};
use crate::filter::Filter;
use crate::messages::{ClusterMsg, Uplink};
use crate::model::{ObjectId, QueryId};
use mobieyes_geo::{CellId, LinearMotion, QueryRegion};

type Result<T> = std::result::Result<T, DecodeError>;

/// One journaled server input. Variants map 1:1 onto the public mutating
/// entry points of the [`Server`](crate::Server), plus the replay-context
/// records (`Meta`, `Floor`, `Bounds`, `Checkpoint`).
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// First record of a journal: which partition slot this log belongs
    /// to. Replay sanity-checks it against the directory being replayed.
    Meta {
        partition: u32,
        num_partitions: u32,
    },
    /// Shared-epoch floor observed before the next op (see module docs).
    Floor(u64),
    SetTime(f64),
    Heartbeat(f64),
    /// One agent uplink, journaled at the outermost dispatch; the nested
    /// primitives it decomposes into are suppressed.
    Uplink {
        from: u32,
        msg: Uplink,
    },
    InstallQuery {
        qid: QueryId,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        expires_at: Option<f64>,
    },
    CompleteInstall {
        qid: QueryId,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        expires_at: Option<f64>,
    },
    RemoveQuery(QueryId),
    UpdateRegion {
        qid: QueryId,
        region: QueryRegion,
    },
    RenewLease(ObjectId),
    VelocityReport {
        oid: ObjectId,
        motion: LinearMotion,
    },
    CellChangeFocal {
        oid: ObjectId,
        new_cell: CellId,
        motion: LinearMotion,
    },
    CellChangeFresh {
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        /// The reported motion. Replay ignores it (the fresh-cell-change
        /// handler is position-free) but the trajectory index reads it,
        /// so cluster logs cover ordinary objects, not just focal ones.
        motion: LinearMotion,
    },
    ResultChange {
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
    },
    GroupResultUpdate {
        oid: ObjectId,
        focal: ObjectId,
        mask: u64,
        targets: u64,
    },
    RefreshFocalMotion {
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        insert: bool,
    },
    PurgeObject(ObjectId),
    ResultDelta {
        qid: QueryId,
        oid: ObjectId,
        entered: bool,
    },
    LqtReconcile {
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
    },
    FocalReassert(ObjectId),
    CellSyncReply {
        oid: ObjectId,
        cell: CellId,
    },
    ExtractFocal(ObjectId),
    /// An inter-partition message applied to this partition.
    Cluster(ClusterMsg),
    ExportCells {
        flats: Vec<u32>,
        generation: u64,
    },
    PruneStubs,
    BumpEpoch,
    /// Partition-map install under a fence (see module docs).
    Bounds {
        generation: u64,
        bounds: Vec<u64>,
    },
    /// Full state snapshot; replay restores it and applies the tail.
    Checkpoint(Vec<u8>),
}

impl LogRecord {
    /// The motion sample this record carries for the trajectory index, if
    /// any: `(object, motion)` as reported by the agent.
    pub fn motion_sample(&self) -> Option<(ObjectId, LinearMotion)> {
        match self {
            LogRecord::VelocityReport { oid, motion }
            | LogRecord::CellChangeFocal { oid, motion, .. }
            | LogRecord::CellChangeFresh { oid, motion, .. }
            | LogRecord::RefreshFocalMotion { oid, motion, .. } => Some((*oid, *motion)),
            LogRecord::Uplink {
                msg:
                    Uplink::VelocityReport { oid, motion }
                    | Uplink::CellChange { oid, motion, .. }
                    | Uplink::PositionReply { oid, motion, .. }
                    | Uplink::Resync { oid, motion, .. },
                ..
            } => Some((*oid, *motion)),
            _ => None,
        }
    }
}

/// Where a server sends its journal records. Implemented by the
/// `mobieyes-store` writer; injected into a [`Server`](crate::Server) like
/// a `Telemetry` sink. Append must be infallible from the server's point
/// of view — a failing store poisons itself and counts the error.
pub trait JournalSink: Send + Sync + std::fmt::Debug {
    fn append(&self, rec: &LogRecord);
}

/// A `Vec`-backed sink for tests.
#[derive(Debug, Default)]
pub struct VecSink(pub std::sync::Mutex<Vec<LogRecord>>);

impl JournalSink for VecSink {
    fn append(&self, rec: &LogRecord) {
        self.0.lock().unwrap().push(rec.clone());
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.put_u8(1);
            out.put_f64_le(x);
        }
        None => out.put_u8(0),
    }
}

fn get_opt_f64(buf: &mut Reader<'_>) -> Result<Option<f64>> {
    Ok(if buf.get_u8("option flag")? != 0 {
        Some(buf.get_f64_le("f64 value")?)
    } else {
        None
    })
}

/// Bounds-checked u32 length prefix (journal counts are u32 — checkpoint
/// payloads and cell lists can exceed the u16 the message codec uses).
pub(crate) fn get_count32(buf: &mut Reader<'_>, min_elem_size: usize, what: &str) -> Result<usize> {
    let n = buf.get_u32_le(what)? as usize;
    if n * min_elem_size > buf.remaining() {
        return Err(DecodeError(format!(
            "oversized length prefix: {what} claims {n} elements but only {} bytes remain",
            buf.remaining()
        )));
    }
    Ok(n)
}

fn put_install(
    out: &mut Vec<u8>,
    qid: QueryId,
    focal: ObjectId,
    region: &QueryRegion,
    filter: &Filter,
    expires_at: Option<f64>,
) {
    out.put_u32_le(qid.0);
    out.put_u32_le(focal.0);
    codec::put_region(out, region);
    codec::put_filter(out, filter);
    put_opt_f64(out, expires_at);
}

type Install = (QueryId, ObjectId, QueryRegion, Filter, Option<f64>);

fn get_install(buf: &mut Reader<'_>) -> Result<Install> {
    let qid = QueryId(buf.get_u32_le("query id")?);
    let focal = ObjectId(buf.get_u32_le("focal id")?);
    let region = codec::get_region(buf)?;
    let filter = codec::get_filter(buf)?;
    let expires_at = get_opt_f64(buf)?;
    Ok((qid, focal, region, filter, expires_at))
}

/// Encodes one record (tag byte + payload) onto `out`.
pub fn encode_record(rec: &LogRecord, out: &mut Vec<u8>) {
    match rec {
        LogRecord::Meta {
            partition,
            num_partitions,
        } => {
            out.put_u8(0);
            out.put_u32_le(*partition);
            out.put_u32_le(*num_partitions);
        }
        LogRecord::Floor(v) => {
            out.put_u8(1);
            out.put_u64_le(*v);
        }
        LogRecord::SetTime(t) => {
            out.put_u8(2);
            out.put_f64_le(*t);
        }
        LogRecord::Heartbeat(t) => {
            out.put_u8(3);
            out.put_f64_le(*t);
        }
        LogRecord::Uplink { from, msg } => {
            out.put_u8(4);
            out.put_u32_le(*from);
            encode_uplink(msg, out);
        }
        LogRecord::InstallQuery {
            qid,
            focal,
            region,
            filter,
            expires_at,
        } => {
            out.put_u8(5);
            put_install(out, *qid, *focal, region, filter, *expires_at);
        }
        LogRecord::CompleteInstall {
            qid,
            focal,
            region,
            filter,
            expires_at,
        } => {
            out.put_u8(6);
            put_install(out, *qid, *focal, region, filter, *expires_at);
        }
        LogRecord::RemoveQuery(qid) => {
            out.put_u8(7);
            out.put_u32_le(qid.0);
        }
        LogRecord::UpdateRegion { qid, region } => {
            out.put_u8(8);
            out.put_u32_le(qid.0);
            codec::put_region(out, region);
        }
        LogRecord::RenewLease(oid) => {
            out.put_u8(9);
            out.put_u32_le(oid.0);
        }
        LogRecord::VelocityReport { oid, motion } => {
            out.put_u8(10);
            out.put_u32_le(oid.0);
            codec::put_motion(out, motion);
        }
        LogRecord::CellChangeFocal {
            oid,
            new_cell,
            motion,
        } => {
            out.put_u8(11);
            out.put_u32_le(oid.0);
            codec::put_cell(out, *new_cell);
            codec::put_motion(out, motion);
        }
        LogRecord::CellChangeFresh {
            oid,
            prev_cell,
            new_cell,
            motion,
        } => {
            out.put_u8(12);
            out.put_u32_le(oid.0);
            codec::put_cell(out, *prev_cell);
            codec::put_cell(out, *new_cell);
            codec::put_motion(out, motion);
        }
        LogRecord::ResultChange {
            qid,
            oid,
            is_target,
        } => {
            out.put_u8(13);
            out.put_u32_le(qid.0);
            out.put_u32_le(oid.0);
            out.put_u8(*is_target as u8);
        }
        LogRecord::GroupResultUpdate {
            oid,
            focal,
            mask,
            targets,
        } => {
            out.put_u8(14);
            out.put_u32_le(oid.0);
            out.put_u32_le(focal.0);
            out.put_u64_le(*mask);
            out.put_u64_le(*targets);
        }
        LogRecord::RefreshFocalMotion {
            oid,
            motion,
            max_vel,
            insert,
        } => {
            out.put_u8(15);
            out.put_u32_le(oid.0);
            codec::put_motion(out, motion);
            out.put_f64_le(*max_vel);
            out.put_u8(*insert as u8);
        }
        LogRecord::PurgeObject(oid) => {
            out.put_u8(16);
            out.put_u32_le(oid.0);
        }
        LogRecord::ResultDelta { qid, oid, entered } => {
            out.put_u8(17);
            out.put_u32_le(qid.0);
            out.put_u32_le(oid.0);
            out.put_u8(*entered as u8);
        }
        LogRecord::LqtReconcile {
            qid,
            oid,
            is_target,
        } => {
            out.put_u8(18);
            out.put_u32_le(qid.0);
            out.put_u32_le(oid.0);
            out.put_u8(*is_target as u8);
        }
        LogRecord::FocalReassert(oid) => {
            out.put_u8(19);
            out.put_u32_le(oid.0);
        }
        LogRecord::CellSyncReply { oid, cell } => {
            out.put_u8(20);
            out.put_u32_le(oid.0);
            codec::put_cell(out, *cell);
        }
        LogRecord::ExtractFocal(oid) => {
            out.put_u8(21);
            out.put_u32_le(oid.0);
        }
        LogRecord::Cluster(msg) => {
            out.put_u8(22);
            encode_cluster(msg, out);
        }
        LogRecord::ExportCells { flats, generation } => {
            out.put_u8(23);
            out.put_u64_le(*generation);
            out.put_u32_le(flats.len() as u32);
            for f in flats {
                out.put_u32_le(*f);
            }
        }
        LogRecord::PruneStubs => out.put_u8(24),
        LogRecord::BumpEpoch => out.put_u8(25),
        LogRecord::Bounds { generation, bounds } => {
            out.put_u8(26);
            out.put_u64_le(*generation);
            out.put_u32_le(bounds.len() as u32);
            for b in bounds {
                out.put_u64_le(*b);
            }
        }
        LogRecord::Checkpoint(bytes) => {
            out.put_u8(27);
            out.put_u32_le(bytes.len() as u32);
            out.put_slice(bytes);
        }
    }
}

/// Encodes one record into a fresh buffer.
pub fn record_bytes(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::new();
    encode_record(rec, &mut out);
    out
}

/// Decodes one record. Errors (never panics) on truncated input, unknown
/// tags or oversized counts.
pub fn decode_record(buf: &mut Reader<'_>) -> Result<LogRecord> {
    let tag = buf.get_u8("record tag")?;
    Ok(match tag {
        0 => LogRecord::Meta {
            partition: buf.get_u32_le("partition")?,
            num_partitions: buf.get_u32_le("num partitions")?,
        },
        1 => LogRecord::Floor(buf.get_u64_le("epoch floor")?),
        2 => LogRecord::SetTime(buf.get_f64_le("time")?),
        3 => LogRecord::Heartbeat(buf.get_f64_le("time")?),
        4 => LogRecord::Uplink {
            from: buf.get_u32_le("from node")?,
            msg: decode_uplink(buf)?,
        },
        5 => {
            let (qid, focal, region, filter, expires_at) = get_install(buf)?;
            LogRecord::InstallQuery {
                qid,
                focal,
                region,
                filter,
                expires_at,
            }
        }
        6 => {
            let (qid, focal, region, filter, expires_at) = get_install(buf)?;
            LogRecord::CompleteInstall {
                qid,
                focal,
                region,
                filter,
                expires_at,
            }
        }
        7 => LogRecord::RemoveQuery(QueryId(buf.get_u32_le("query id")?)),
        8 => LogRecord::UpdateRegion {
            qid: QueryId(buf.get_u32_le("query id")?),
            region: codec::get_region(buf)?,
        },
        9 => LogRecord::RenewLease(ObjectId(buf.get_u32_le("object id")?)),
        10 => LogRecord::VelocityReport {
            oid: ObjectId(buf.get_u32_le("object id")?),
            motion: codec::get_motion(buf)?,
        },
        11 => LogRecord::CellChangeFocal {
            oid: ObjectId(buf.get_u32_le("object id")?),
            new_cell: codec::get_cell(buf)?,
            motion: codec::get_motion(buf)?,
        },
        12 => LogRecord::CellChangeFresh {
            oid: ObjectId(buf.get_u32_le("object id")?),
            prev_cell: codec::get_cell(buf)?,
            new_cell: codec::get_cell(buf)?,
            motion: codec::get_motion(buf)?,
        },
        13 => LogRecord::ResultChange {
            qid: QueryId(buf.get_u32_le("query id")?),
            oid: ObjectId(buf.get_u32_le("object id")?),
            is_target: buf.get_u8("is_target")? != 0,
        },
        14 => LogRecord::GroupResultUpdate {
            oid: ObjectId(buf.get_u32_le("object id")?),
            focal: ObjectId(buf.get_u32_le("focal id")?),
            mask: buf.get_u64_le("mask")?,
            targets: buf.get_u64_le("targets")?,
        },
        15 => LogRecord::RefreshFocalMotion {
            oid: ObjectId(buf.get_u32_le("object id")?),
            motion: codec::get_motion(buf)?,
            max_vel: buf.get_f64_le("max_vel")?,
            insert: buf.get_u8("insert")? != 0,
        },
        16 => LogRecord::PurgeObject(ObjectId(buf.get_u32_le("object id")?)),
        17 => LogRecord::ResultDelta {
            qid: QueryId(buf.get_u32_le("query id")?),
            oid: ObjectId(buf.get_u32_le("object id")?),
            entered: buf.get_u8("entered")? != 0,
        },
        18 => LogRecord::LqtReconcile {
            qid: QueryId(buf.get_u32_le("query id")?),
            oid: ObjectId(buf.get_u32_le("object id")?),
            is_target: buf.get_u8("is_target")? != 0,
        },
        19 => LogRecord::FocalReassert(ObjectId(buf.get_u32_le("object id")?)),
        20 => LogRecord::CellSyncReply {
            oid: ObjectId(buf.get_u32_le("object id")?),
            cell: codec::get_cell(buf)?,
        },
        21 => LogRecord::ExtractFocal(ObjectId(buf.get_u32_le("object id")?)),
        22 => LogRecord::Cluster(decode_cluster(buf)?),
        23 => {
            let generation = buf.get_u64_le("generation")?;
            let n = get_count32(buf, 4, "flat cell count")?;
            let mut flats = Vec::with_capacity(n);
            for _ in 0..n {
                flats.push(buf.get_u32_le("flat cell")?);
            }
            LogRecord::ExportCells { flats, generation }
        }
        24 => LogRecord::PruneStubs,
        25 => LogRecord::BumpEpoch,
        26 => {
            let generation = buf.get_u64_le("generation")?;
            let n = get_count32(buf, 8, "bounds count")?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push(buf.get_u64_le("bound")?);
            }
            LogRecord::Bounds { generation, bounds }
        }
        27 => {
            let n = get_count32(buf, 1, "checkpoint size")?;
            LogRecord::Checkpoint(buf.take(n, "checkpoint bytes")?.to_vec())
        }
        t => return Err(DecodeError(format!("unknown log record tag {t}"))),
    })
}

/// FNV-1a over a byte slice — the digest primitive behind
/// [`Server::state_digest`](crate::Server::state_digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
