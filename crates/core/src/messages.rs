//! Protocol wire messages.
//!
//! Every variant declares a serialized size (in bytes) through
//! [`WireSized`]; the sizes drive the message/byte accounting behind the
//! paper's messaging-cost and power figures. Sizes follow a simple fixed
//! encoding: u32 ids (4), f64 scalars (8), `LinearMotion` (40), `GridRect`
//! (16), plus a 1-byte message tag and 2-byte length prefixes on vectors.

use crate::filter::Filter;
use crate::model::{ObjectId, QueryId};
use mobieyes_geo::{CellId, GridRect, LinearMotion, QueryRegion};
use mobieyes_net::WireSized;
use std::sync::Arc;

/// Sentinel slot for queries beyond the 64-bit group bitmap: these always
/// report their containment itemized, never via bitmaps.
pub const NO_SLOT: u8 = u8::MAX;

/// Digest of an empty query set (no queries relevant to a cell). Cells
/// absent from a heartbeat's digest list implicitly carry this value.
pub const EMPTY_STATE_DIGEST: u64 = 0;

/// Order-sensitive fold digest of `(query id, sequence number)` pairs.
/// Callers must feed pairs in ascending query-id order; the server digests
/// its RQI slice for a cell, objects digest their local query table, and a
/// mismatch triggers a resync handshake. splitmix64-style mixing keeps
/// accidental collisions vanishingly unlikely (and a collision only delays
/// repair by one heartbeat, never corrupts state).
pub fn state_digest<I: IntoIterator<Item = (QueryId, u64)>>(pairs: I) -> u64 {
    let mut h = EMPTY_STATE_DIGEST;
    for (qid, seq) in pairs {
        let mut z = h ^ (qid.0 as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seq.rotate_left(32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        h = z ^ (z >> 31);
    }
    h
}

/// One query inside a (possibly grouped) dissemination message.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    pub qid: QueryId,
    pub region: QueryRegion,
    /// Shared so broadcast fan-out does not deep-copy predicate trees.
    pub filter: Arc<Filter>,
    /// Server-assigned group slot: the bit index this query occupies in
    /// grouped result bitmaps (unique among the focal object's queries).
    pub slot: u8,
    /// Server epoch at the query's last state change. Receivers discard
    /// specs whose `seq` is older than the state they already hold, which
    /// makes reordered/duplicated broadcasts harmless.
    pub seq: u64,
}

impl QuerySpec {
    fn wire_size(&self) -> usize {
        4 + 1 + 8 + self.region.wire_size() + self.filter.wire_size()
    }
}

/// Full state of one *query group*: all queries bound to the same focal
/// object that share a monitoring region. Without grouping each group
/// carries exactly one query.
///
/// This is the unit of the three full-state dissemination flows: query
/// installation, focal cell changes (the paper's combined-region update)
/// and velocity updates under lazy propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGroupInfo {
    pub focal: ObjectId,
    /// Last reported motion sample of the focal object.
    pub motion: LinearMotion,
    /// Maximum speed of the focal object (for safe-period computation).
    pub max_vel: f64,
    pub mon_region: GridRect,
    pub queries: Arc<Vec<QuerySpec>>,
}

impl QueryGroupInfo {
    fn wire_size(&self) -> usize {
        4 + LinearMotion::WIRE_SIZE
            + 8
            + GridRect::WIRE_SIZE
            + 2
            + self.queries.iter().map(QuerySpec::wire_size).sum::<usize>()
    }
}

/// Object → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Uplink {
    /// A focal object's dead-reckoning report: its advertised linear motion
    /// deviated from reality by more than Δ.
    VelocityReport { oid: ObjectId, motion: LinearMotion },
    /// The object moved to a different grid cell. Sent by every object
    /// under eager propagation, and only by focal objects under lazy
    /// propagation. Carries fresh motion so the server can update the FOT
    /// and re-disseminate in one round trip.
    CellChange {
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        motion: LinearMotion,
    },
    /// Differential result maintenance: containment status flips observed
    /// by the object during its local evaluation.
    ResultUpdate {
        oid: ObjectId,
        /// `(query, is_now_target)` pairs.
        changes: Vec<(QueryId, bool)>,
    },
    /// Grouped result maintenance (§4.1): the full query bitmap of one
    /// focal object's query group. `mask` marks which bits are being
    /// reported (the queries installed at this object), `targets` the
    /// subset where the object is inside the region and passes the filter.
    /// Bit `i` refers to the query holding group slot `i` of `focal`
    /// (slots are server-assigned and travel in [`QuerySpec::slot`]).
    GroupResultUpdate {
        oid: ObjectId,
        focal: ObjectId,
        mask: u64,
        targets: u64,
    },
    /// Response to a server position request during query installation:
    /// the object's current motion sample and its maximum speed.
    PositionReply {
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
    },
    /// Reconnect / repair handshake: the object asks the server to replay
    /// the query state for its current grid cell. Sent after an offline
    /// period, and whenever the heartbeat digest for the cell disagrees
    /// with the object's local query table. `fresh` means the object
    /// restarted with empty state (crash) — the server must also purge the
    /// object from all query results it can no longer vouch for.
    Resync {
        oid: ObjectId,
        cell: CellId,
        motion: LinearMotion,
        max_vel: f64,
        fresh: bool,
    },
    /// Soft-state refresh: the object's full local result view — every
    /// installed query with its current containment bit. Doubles as a
    /// lease keepalive for focal objects and lets the server drop stale
    /// result members whose departure reports were lost.
    LqtSync {
        oid: ObjectId,
        /// `(query, is_target)` for every query installed at the object.
        entries: Vec<(QueryId, bool)>,
    },
}

impl WireSized for Uplink {
    fn wire_size(&self) -> usize {
        1 + match self {
            Uplink::VelocityReport { .. } => 4 + LinearMotion::WIRE_SIZE,
            Uplink::CellChange { .. } => 4 + 8 + 8 + LinearMotion::WIRE_SIZE,
            Uplink::ResultUpdate { changes, .. } => 4 + 2 + changes.len() * 5,
            Uplink::GroupResultUpdate { .. } => 4 + 4 + 8 + 8,
            Uplink::PositionReply { .. } => 4 + LinearMotion::WIRE_SIZE + 8,
            Uplink::Resync { .. } => 4 + 8 + LinearMotion::WIRE_SIZE + 8 + 1,
            Uplink::LqtSync { entries, .. } => 4 + 2 + entries.len() * 5,
        }
    }
}

/// Server → object messages (unicast or broadcast).
#[derive(Debug, Clone, PartialEq)]
pub enum Downlink {
    /// Full query-group state. Broadcast to the (possibly combined old∪new)
    /// monitoring region on installation and focal cell changes, and — under
    /// lazy propagation — on focal velocity changes. Receivers inside the
    /// monitoring region install/update; receivers outside remove.
    QueryState { info: QueryGroupInfo },
    /// Velocity-only update under eager propagation: receivers that already
    /// hold these queries refresh the focal motion sample.
    VelocityChange {
        focal: ObjectId,
        motion: LinearMotion,
        qids: Vec<QueryId>,
        /// Server epoch of the update; receivers ignore it for queries
        /// whose installed state is already newer.
        seq: u64,
    },
    /// Eager propagation: the queries an object must install after
    /// reporting a cell change (unicast).
    NewQueries { infos: Vec<QueryGroupInfo> },
    /// A query was removed from the system (broadcast to its monitoring
    /// region). `epoch` tombstones the removal: a later `QueryState` for
    /// the same query with an older sequence number must not resurrect it.
    RemoveQuery { qid: QueryId, epoch: u64 },
    /// Tells an object whether it is (still) the focal object of at least
    /// one query (unicast; sets the paper's `hasMQ` flag).
    FocalNotify { is_focal: bool },
    /// Asks an object for its current motion sample (unicast, during
    /// installation when the focal object is unknown to the server).
    PositionRequest,
    /// One membership change of a query's result, pushed to the issuing
    /// focal object when result delivery is enabled.
    ResultDelta {
        qid: QueryId,
        object: ObjectId,
        entered: bool,
    },
    /// Periodic soft-state beacon, broadcast through every base station.
    /// Carries the server epoch and a digest of the RQI slice per grid
    /// cell (only cells with at least one relevant query are listed).
    /// Objects compare the digest for their cell against their local
    /// query table and request a resync on mismatch.
    Heartbeat {
        epoch: u64,
        /// `(cell, digest)` pairs, sorted by cell, for non-empty cells.
        cell_digests: Vec<(CellId, u64)>,
    },
    /// Reconnect-handshake reply (unicast): the authoritative query state
    /// for one grid cell — every query group whose monitoring region
    /// covers `cell`. The receiver reconciles its local table to exactly
    /// this set.
    CellSync {
        cell: CellId,
        epoch: u64,
        infos: Vec<QueryGroupInfo>,
    },
}

impl WireSized for Downlink {
    fn wire_size(&self) -> usize {
        1 + match self {
            Downlink::QueryState { info } => info.wire_size(),
            Downlink::VelocityChange { qids, .. } => {
                4 + LinearMotion::WIRE_SIZE + 2 + qids.len() * 4 + 8
            }
            Downlink::NewQueries { infos } => {
                2 + infos.iter().map(QueryGroupInfo::wire_size).sum::<usize>()
            }
            Downlink::RemoveQuery { .. } => 4 + 8,
            Downlink::FocalNotify { .. } => 1,
            Downlink::PositionRequest => 0,
            Downlink::ResultDelta { .. } => 4 + 4 + 1,
            Downlink::Heartbeat { cell_digests, .. } => 8 + 2 + cell_digests.len() * 16,
            Downlink::CellSync { infos, .. } => {
                8 + 8 + 2 + infos.iter().map(QueryGroupInfo::wire_size).sum::<usize>()
            }
        }
    }
}

/// One query's full server-side state in flight during a focal handoff:
/// the SQT row (including the current result set) that migrates to the
/// partition taking ownership of the focal object's new cell.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMigration {
    pub spec: QuerySpec,
    pub curr_cell: CellId,
    pub mon_region: GridRect,
    /// Absolute expiry time; `None` = no lifetime bound.
    pub expires_at: Option<f64>,
    /// Current result membership, ascending object id.
    pub result: Vec<ObjectId>,
}

impl QueryMigration {
    fn wire_size(&self) -> usize {
        self.spec.wire_size()
            + 8
            + GridRect::WIRE_SIZE
            + 1
            + if self.expires_at.is_some() { 8 } else { 0 }
            + 2
            + self.result.len() * 4
    }
}

/// Everything a partition needs to reconstruct one remote-region stub
/// during a rebalance cell transfer: the query spec plus the focal
/// object's motion state. See [`ClusterMsg::RebalanceCells`].
#[derive(Debug, Clone, PartialEq)]
pub struct StubSeed {
    pub focal: ObjectId,
    pub motion: LinearMotion,
    pub max_vel: f64,
    pub mon_region: GridRect,
    pub spec: QuerySpec,
}

impl StubSeed {
    fn wire_size(&self) -> usize {
        4 + LinearMotion::WIRE_SIZE + 8 + GridRect::WIRE_SIZE + self.spec.wire_size()
    }
}

/// Server ↔ server messages of the partitioned cluster tier.
///
/// Carried over a dedicated inter-server [`mobieyes_net::NetworkSim`]
/// link, so the same fault plans that perturb the wireless legs can
/// drop/duplicate handoff traffic too. Every variant is stamped with the
/// epoch/seq machinery of the fault-tolerance layer: receivers discard
/// anything not strictly newer than the state they already hold, which
/// makes replayed or duplicated handoffs no-ops.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMsg {
    /// Full focal-object handoff when a focal's cell change crosses a
    /// partition border: the FOT row plus every SQT row bound to it.
    MigrateFocal {
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        used_slots: u64,
        /// Lease timestamp travels with the row so the new owner does not
        /// spuriously expire a healthy focal.
        last_heard: f64,
        /// Sender's view of the global epoch when the handoff was cut.
        epoch: u64,
        queries: Vec<QueryMigration>,
    },
    /// Install or refresh a *remote-region stub*: a read-only replica of a
    /// query homed on another partition whose monitoring region covers
    /// some of the receiver's cells, so RQI lookups (fresh-query replies,
    /// cell syncs, heartbeat digests) stay complete at the border.
    /// `old_mon` is the previous monitoring region whose RQI entries the
    /// receiver must clear first (region moved or grew).
    StubUpdate {
        focal: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        curr_cell: CellId,
        mon_region: GridRect,
        old_mon: Option<GridRect>,
        spec: QuerySpec,
    },
    /// Motion-only refresh of existing stubs after the focal object
    /// reported new motion (velocity report or position reply). `qids`
    /// carries the per-query seq stamps of the update.
    StubMotion {
        focal: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        qids: Vec<(QueryId, u64)>,
    },
    /// Drop a stub: the query was removed or its monitoring region no
    /// longer reaches the receiver's cells.
    StubRemove {
        qid: QueryId,
        mon_region: GridRect,
        epoch: u64,
    },
    /// Rebalance cell transfer: the verbatim RQI rows of a batch of cells
    /// reassigned to the receiver by a new partition-map generation, plus
    /// the stub seeds needed to resolve the referenced queries locally.
    /// Valid only for the exact `generation` it was cut for — receivers
    /// drop the whole message on any mismatch, which makes duplicated or
    /// stale deliveries no-ops.
    RebalanceCells {
        /// The partition-map generation this transfer belongs to.
        generation: u64,
        /// Sender's view of the global epoch when the transfer was cut.
        epoch: u64,
        /// `(flat cell index, RQI row in home insertion order)`.
        cells: Vec<(u32, Vec<QueryId>)>,
        /// Stub material for every distinct query named in `cells`.
        stubs: Vec<StubSeed>,
    },
    /// Crash-failover cell adoption: the receiver now owns `cells`, whose
    /// previous owner died taking its RQI rows with it. Unlike
    /// [`ClusterMsg::RebalanceCells`] there is no verbatim row to carry —
    /// the receiver rebuilds each adopted row from its *own* SQT and stub
    /// tables (the queries it already knows whose monitoring regions reach
    /// the cell); everything else repopulates through agent resyncs. Valid
    /// only for the exact `generation` it was cut for, exactly like a
    /// rebalance transfer, so duplicated or stale deliveries are no-ops.
    RecoverCells {
        /// The partition-map generation this adoption belongs to.
        generation: u64,
        /// Sender's view of the global epoch when the fence was raised.
        epoch: u64,
        /// Flat cell indices the receiver adopts under `generation`.
        cells: Vec<u32>,
    },
}

impl WireSized for ClusterMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            ClusterMsg::MigrateFocal { queries, .. } => {
                4 + LinearMotion::WIRE_SIZE
                    + 8
                    + 8
                    + 8
                    + 8
                    + 2
                    + queries.iter().map(QueryMigration::wire_size).sum::<usize>()
            }
            ClusterMsg::StubUpdate { old_mon, spec, .. } => {
                4 + LinearMotion::WIRE_SIZE
                    + 8
                    + 8
                    + GridRect::WIRE_SIZE
                    + 1
                    + if old_mon.is_some() {
                        GridRect::WIRE_SIZE
                    } else {
                        0
                    }
                    + spec.wire_size()
            }
            ClusterMsg::StubMotion { qids, .. } => {
                4 + LinearMotion::WIRE_SIZE + 8 + 2 + qids.len() * 12
            }
            ClusterMsg::StubRemove { .. } => 4 + GridRect::WIRE_SIZE + 8,
            ClusterMsg::RebalanceCells { cells, stubs, .. } => {
                8 + 8
                    + 2
                    + cells
                        .iter()
                        .map(|(_, qids)| 4 + 2 + qids.len() * 4)
                        .sum::<usize>()
                    + 2
                    + stubs.iter().map(StubSeed::wire_size).sum::<usize>()
            }
            ClusterMsg::RecoverCells { cells, .. } => 8 + 8 + 2 + cells.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::{Point, Vec2};

    fn motion() -> LinearMotion {
        LinearMotion::new(Point::new(1.0, 2.0), Vec2::new(0.1, 0.2), 30.0)
    }

    fn spec(qid: u32) -> QuerySpec {
        QuerySpec {
            qid: QueryId(qid),
            region: QueryRegion::circle(3.0),
            filter: Arc::new(Filter::True),
            slot: qid as u8,
            seq: qid as u64,
        }
    }

    fn group(n: u32) -> QueryGroupInfo {
        QueryGroupInfo {
            focal: ObjectId(7),
            motion: motion(),
            max_vel: 0.05,
            mon_region: GridRect {
                x0: 0,
                y0: 0,
                x1: 2,
                y1: 2,
            },
            queries: Arc::new((0..n).map(spec).collect()),
        }
    }

    #[test]
    fn uplink_sizes() {
        assert_eq!(
            Uplink::VelocityReport {
                oid: ObjectId(1),
                motion: motion()
            }
            .wire_size(),
            45
        );
        assert_eq!(
            Uplink::CellChange {
                oid: ObjectId(1),
                prev_cell: CellId::new(0, 0),
                new_cell: CellId::new(1, 0),
                motion: motion()
            }
            .wire_size(),
            61
        );
        assert_eq!(
            Uplink::ResultUpdate {
                oid: ObjectId(1),
                changes: vec![(QueryId(1), true)]
            }
            .wire_size(),
            12
        );
        assert_eq!(
            Uplink::GroupResultUpdate {
                oid: ObjectId(1),
                focal: ObjectId(2),
                mask: 1,
                targets: 1
            }
            .wire_size(),
            25
        );
        assert_eq!(
            Uplink::PositionReply {
                oid: ObjectId(1),
                motion: motion(),
                max_vel: 0.1
            }
            .wire_size(),
            53
        );
        assert_eq!(
            Uplink::Resync {
                oid: ObjectId(1),
                cell: CellId::new(2, 3),
                motion: motion(),
                max_vel: 0.1,
                fresh: true
            }
            .wire_size(),
            62
        );
        assert_eq!(
            Uplink::LqtSync {
                oid: ObjectId(1),
                entries: vec![(QueryId(1), true), (QueryId(2), false)]
            }
            .wire_size(),
            17
        );
    }

    #[test]
    fn grouped_state_is_smaller_than_separate_states() {
        // One grouped message for 3 queries must be cheaper than 3
        // single-query messages: the focal motion/region header is shared.
        let grouped = Downlink::QueryState { info: group(3) }.wire_size();
        let single = Downlink::QueryState { info: group(1) }.wire_size();
        assert!(
            grouped < 3 * single,
            "grouped {grouped} vs 3x single {single}"
        );
    }

    #[test]
    fn result_update_grows_with_changes() {
        let one = Uplink::ResultUpdate {
            oid: ObjectId(1),
            changes: vec![(QueryId(1), true)],
        };
        let three = Uplink::ResultUpdate {
            oid: ObjectId(1),
            changes: vec![(QueryId(1), true), (QueryId(2), false), (QueryId(3), true)],
        };
        assert_eq!(three.wire_size() - one.wire_size(), 10);
    }

    #[test]
    fn bitmap_beats_itemized_updates_for_large_groups() {
        let bitmap = Uplink::GroupResultUpdate {
            oid: ObjectId(1),
            focal: ObjectId(2),
            mask: u64::MAX,
            targets: 0,
        };
        let itemized = Uplink::ResultUpdate {
            oid: ObjectId(1),
            changes: (0..10).map(|i| (QueryId(i), true)).collect(),
        };
        assert!(bitmap.wire_size() < itemized.wire_size());
    }

    #[test]
    fn downlink_sizes() {
        assert_eq!(
            Downlink::RemoveQuery {
                qid: QueryId(1),
                epoch: 9
            }
            .wire_size(),
            13
        );
        assert_eq!(Downlink::FocalNotify { is_focal: true }.wire_size(), 2);
        assert_eq!(Downlink::PositionRequest.wire_size(), 1);
        let vc = Downlink::VelocityChange {
            focal: ObjectId(1),
            motion: motion(),
            qids: vec![QueryId(1)],
            seq: 3,
        };
        assert_eq!(vc.wire_size(), 1 + 4 + 40 + 2 + 4 + 8);
        assert_eq!(
            Downlink::Heartbeat {
                epoch: 1,
                cell_digests: vec![(CellId::new(0, 0), 7), (CellId::new(1, 0), 9)]
            }
            .wire_size(),
            1 + 8 + 2 + 2 * 16
        );
        let sync = Downlink::CellSync {
            cell: CellId::new(1, 1),
            epoch: 4,
            infos: vec![group(2)],
        };
        assert_eq!(
            sync.wire_size(),
            1 + 8 + 8 + 2 + Downlink::QueryState { info: group(2) }.wire_size() - 1
        );
    }

    #[test]
    fn cluster_msg_sizes() {
        let mig = ClusterMsg::MigrateFocal {
            oid: ObjectId(1),
            motion: motion(),
            max_vel: 0.05,
            used_slots: 0b11,
            last_heard: 42.0,
            epoch: 9,
            queries: vec![QueryMigration {
                spec: spec(0),
                curr_cell: CellId::new(1, 1),
                mon_region: GridRect {
                    x0: 0,
                    y0: 0,
                    x1: 2,
                    y1: 2,
                },
                expires_at: Some(99.0),
                result: vec![ObjectId(4), ObjectId(5)],
            }],
        };
        // tag + oid + motion + 3 f64/u64 + epoch + count + one migration.
        let one = spec(0).wire_size() + 8 + 16 + 1 + 8 + 2 + 8;
        assert_eq!(mig.wire_size(), 1 + 4 + 40 + 8 + 8 + 8 + 8 + 2 + one);
        let stub = ClusterMsg::StubUpdate {
            focal: ObjectId(1),
            motion: motion(),
            max_vel: 0.05,
            curr_cell: CellId::new(0, 0),
            mon_region: GridRect {
                x0: 0,
                y0: 0,
                x1: 1,
                y1: 1,
            },
            old_mon: None,
            spec: spec(0),
        };
        assert_eq!(
            stub.wire_size(),
            1 + 4 + 40 + 8 + 8 + 16 + 1 + spec(0).wire_size()
        );
        let refresh = ClusterMsg::StubMotion {
            focal: ObjectId(1),
            motion: motion(),
            max_vel: 0.05,
            qids: vec![(QueryId(1), 7), (QueryId(2), 7)],
        };
        assert_eq!(refresh.wire_size(), 1 + 4 + 40 + 8 + 2 + 24);
        let rm = ClusterMsg::StubRemove {
            qid: QueryId(1),
            mon_region: GridRect {
                x0: 0,
                y0: 0,
                x1: 1,
                y1: 1,
            },
            epoch: 3,
        };
        assert_eq!(rm.wire_size(), 1 + 4 + 16 + 8);
        let reb = ClusterMsg::RebalanceCells {
            generation: 2,
            epoch: 11,
            cells: vec![(3, vec![QueryId(0), QueryId(1)]), (4, Vec::new())],
            stubs: vec![StubSeed {
                focal: ObjectId(1),
                motion: motion(),
                max_vel: 0.05,
                mon_region: GridRect {
                    x0: 0,
                    y0: 0,
                    x1: 1,
                    y1: 1,
                },
                spec: spec(0),
            }],
        };
        let seed = 4 + 40 + 8 + 16 + spec(0).wire_size();
        assert_eq!(
            reb.wire_size(),
            1 + 8 + 8 + 2 + (4 + 2 + 8) + (4 + 2) + 2 + seed
        );
    }

    #[test]
    fn velocity_change_is_cheaper_than_full_state() {
        // The EQP velocity update must be smaller than the LQP full-state
        // update for the same group — that is the bandwidth trade-off the
        // paper describes.
        let eqp = Downlink::VelocityChange {
            focal: ObjectId(7),
            motion: motion(),
            qids: vec![QueryId(0), QueryId(1), QueryId(2)],
            seq: 1,
        };
        let lqp = Downlink::QueryState { info: group(3) };
        assert!(eqp.wire_size() < lqp.wire_size());
    }
}
