//! Canonical binary wire encoding for the protocol messages.
//!
//! The message accounting (and thus the paper's messaging-cost and power
//! figures) is driven by [`mobieyes_net::WireSized::wire_size`]; this module provides the
//! actual encoding those sizes describe, so the accounting is not a guess:
//! the `codec` property tests assert `encode(msg).len() == msg.wire_size()`
//! for every message shape, and that decoding inverts encoding exactly.
//!
//! Format: little-endian fixed-width scalars, 1-byte enum tags, u16 length
//! prefixes on strings and vectors. No varints, no compression — the point
//! is a transparent, auditable cost model, not maximal density.
//!
//! Since the socket transport landed this is an *untrusted* boundary:
//! every read through [`Reader`] is bounds-checked and returns a
//! [`DecodeError`] on truncated or oversized input — malformed bytes can
//! never panic the decoder. The primitive accessors and the composite
//! helpers ([`put_motion`]/[`get_motion`] and friends) are public so the
//! cluster RPC codec composes the same building blocks.

use crate::filter::Filter;
use crate::messages::{
    ClusterMsg, Downlink, QueryGroupInfo, QueryMigration, QuerySpec, StubSeed, Uplink,
};
use crate::model::{ObjectId, PropValue, QueryId};
use mobieyes_geo::{CellId, GridRect, LinearMotion, Point, QueryRegion, Vec2};
use std::sync::Arc;

/// Cursor over an encoded byte slice. Every accessor is bounds-checked:
/// reading past the end returns a [`DecodeError`] naming the field that
/// was being read, never a slice panic.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or errors (`what` names the field) when
    /// fewer remain.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError(format!(
                "truncated input: {what} needs {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_u16_le(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn get_u32_le(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_u64_le(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_i64_le(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_f64_le(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a u16 element count and sanity-checks it against the bytes
    /// remaining: a count that could not possibly be satisfied (fewer than
    /// `min_elem_size` bytes per element left) is an oversized-length
    /// error, caught before any allocation.
    pub fn get_count(&mut self, min_elem_size: usize, what: &str) -> Result<usize> {
        let n = self.get_u16_le(what)? as usize;
        if n * min_elem_size > self.remaining() {
            return Err(DecodeError(format!(
                "oversized length prefix: {what} claims {n} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Little-endian append helpers over the output buffer. Public so other
/// codecs (the cluster RPC wire format) compose the same primitives.
pub trait Put {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, v: &[u8]);
}

impl Put for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Decoding failure: malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

fn err<T>(what: &str) -> Result<T> {
    Err(DecodeError(what.to_string()))
}

// --- primitive helpers -----------------------------------------------------

pub fn put_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.put_u16_le(s.len() as u16);
    out.put_slice(s.as_bytes());
}

pub fn get_string(buf: &mut Reader<'_>) -> Result<String> {
    let len = buf.get_u16_le("string length")? as usize;
    String::from_utf8(buf.take(len, "string body")?.to_vec())
        .map_err(|_| DecodeError("invalid utf8".into()))
}

pub fn put_motion(out: &mut Vec<u8>, m: &LinearMotion) {
    out.put_f64_le(m.pos.x);
    out.put_f64_le(m.pos.y);
    out.put_f64_le(m.vel.x);
    out.put_f64_le(m.vel.y);
    out.put_f64_le(m.tm);
}

pub fn get_motion(buf: &mut Reader<'_>) -> Result<LinearMotion> {
    Ok(LinearMotion::new(
        Point::new(buf.get_f64_le("motion")?, buf.get_f64_le("motion")?),
        Vec2::new(buf.get_f64_le("motion")?, buf.get_f64_le("motion")?),
        buf.get_f64_le("motion")?,
    ))
}

pub fn put_cell(out: &mut Vec<u8>, c: CellId) {
    out.put_u32_le(c.x);
    out.put_u32_le(c.y);
}

pub fn get_cell(buf: &mut Reader<'_>) -> Result<CellId> {
    Ok(CellId::new(
        buf.get_u32_le("cell id")?,
        buf.get_u32_le("cell id")?,
    ))
}

pub fn put_grid_rect(out: &mut Vec<u8>, r: &GridRect) {
    out.put_u32_le(r.x0);
    out.put_u32_le(r.y0);
    out.put_u32_le(r.x1);
    out.put_u32_le(r.y1);
}

pub fn get_grid_rect(buf: &mut Reader<'_>) -> Result<GridRect> {
    Ok(GridRect {
        x0: buf.get_u32_le("grid rect")?,
        y0: buf.get_u32_le("grid rect")?,
        x1: buf.get_u32_le("grid rect")?,
        y1: buf.get_u32_le("grid rect")?,
    })
}

pub fn put_region(out: &mut Vec<u8>, r: &QueryRegion) {
    match *r {
        QueryRegion::Circle { radius } => {
            out.put_u8(0);
            out.put_f64_le(radius);
        }
        QueryRegion::Rect { half_w, half_h } => {
            out.put_u8(1);
            out.put_f64_le(half_w);
            out.put_f64_le(half_h);
        }
    }
}

pub fn get_region(buf: &mut Reader<'_>) -> Result<QueryRegion> {
    match buf.get_u8("region tag")? {
        0 => Ok(QueryRegion::Circle {
            radius: buf.get_f64_le("circle radius")?,
        }),
        1 => Ok(QueryRegion::Rect {
            half_w: buf.get_f64_le("rect extents")?,
            half_h: buf.get_f64_le("rect extents")?,
        }),
        t => err(&format!("unknown region tag {t}")),
    }
}

fn put_prop_value(out: &mut Vec<u8>, v: &PropValue) {
    match v {
        PropValue::Int(i) => {
            out.put_u8(0);
            out.put_i64_le(*i);
        }
        PropValue::Float(f) => {
            out.put_u8(1);
            out.put_f64_le(*f);
        }
        PropValue::Text(s) => {
            out.put_u8(2);
            put_string(out, s);
        }
        PropValue::Bool(b) => {
            out.put_u8(3);
            out.put_u8(*b as u8);
        }
    }
}

fn get_prop_value(buf: &mut Reader<'_>) -> Result<PropValue> {
    match buf.get_u8("prop value tag")? {
        0 => Ok(PropValue::Int(buf.get_i64_le("int value")?)),
        1 => Ok(PropValue::Float(buf.get_f64_le("float value")?)),
        2 => Ok(PropValue::Text(get_string(buf)?)),
        3 => Ok(PropValue::Bool(buf.get_u8("bool value")? != 0)),
        t => err(&format!("unknown prop value tag {t}")),
    }
}

pub fn put_filter(out: &mut Vec<u8>, f: &Filter) {
    match f {
        Filter::True => out.put_u8(0),
        Filter::False => out.put_u8(1),
        Filter::Selectivity { selectivity, salt } => {
            out.put_u8(2);
            out.put_f64_le(*selectivity);
            out.put_u64_le(*salt);
        }
        Filter::Eq(k, v) => {
            out.put_u8(3);
            put_string(out, k);
            put_prop_value(out, v);
        }
        Filter::Lt(k, x) => {
            out.put_u8(4);
            put_string(out, k);
            out.put_f64_le(*x);
        }
        Filter::Gt(k, x) => {
            out.put_u8(5);
            put_string(out, k);
            out.put_f64_le(*x);
        }
        Filter::And(a, b) => {
            out.put_u8(6);
            put_filter(out, a);
            put_filter(out, b);
        }
        Filter::Or(a, b) => {
            out.put_u8(7);
            put_filter(out, a);
            put_filter(out, b);
        }
        Filter::Not(inner) => {
            out.put_u8(8);
            put_filter(out, inner);
        }
    }
}

pub fn get_filter(buf: &mut Reader<'_>) -> Result<Filter> {
    Ok(match buf.get_u8("filter tag")? {
        0 => Filter::True,
        1 => Filter::False,
        2 => Filter::Selectivity {
            selectivity: buf.get_f64_le("selectivity")?,
            salt: buf.get_u64_le("selectivity salt")?,
        },
        3 => Filter::Eq(get_string(buf)?, get_prop_value(buf)?),
        4 => {
            let k = get_string(buf)?;
            Filter::Lt(k, buf.get_f64_le("lt threshold")?)
        }
        5 => {
            let k = get_string(buf)?;
            Filter::Gt(k, buf.get_f64_le("gt threshold")?)
        }
        6 => Filter::And(Box::new(get_filter(buf)?), Box::new(get_filter(buf)?)),
        7 => Filter::Or(Box::new(get_filter(buf)?), Box::new(get_filter(buf)?)),
        8 => Filter::Not(Box::new(get_filter(buf)?)),
        t => return err(&format!("unknown filter tag {t}")),
    })
}

fn put_group_info(out: &mut Vec<u8>, info: &QueryGroupInfo) {
    out.put_u32_le(info.focal.0);
    put_motion(out, &info.motion);
    out.put_f64_le(info.max_vel);
    put_grid_rect(out, &info.mon_region);
    debug_assert!(info.queries.len() <= u16::MAX as usize);
    out.put_u16_le(info.queries.len() as u16);
    for spec in info.queries.iter() {
        put_spec(out, spec);
    }
}

fn get_group_info(buf: &mut Reader<'_>) -> Result<QueryGroupInfo> {
    let focal = ObjectId(buf.get_u32_le("focal id")?);
    let motion = get_motion(buf)?;
    let max_vel = buf.get_f64_le("max vel")?;
    let mon_region = get_grid_rect(buf)?;
    let n = buf.get_count(14, "spec count")?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        queries.push(get_spec(buf)?);
    }
    Ok(QueryGroupInfo {
        focal,
        motion,
        max_vel,
        mon_region,
        queries: Arc::new(queries),
    })
}

// --- uplink ------------------------------------------------------------------

/// Encodes an uplink message into `out`.
pub fn encode_uplink(msg: &Uplink, out: &mut Vec<u8>) {
    match msg {
        Uplink::VelocityReport { oid, motion } => {
            out.put_u8(0);
            out.put_u32_le(oid.0);
            put_motion(out, motion);
        }
        Uplink::CellChange {
            oid,
            prev_cell,
            new_cell,
            motion,
        } => {
            out.put_u8(1);
            out.put_u32_le(oid.0);
            put_cell(out, *prev_cell);
            put_cell(out, *new_cell);
            put_motion(out, motion);
        }
        Uplink::ResultUpdate { oid, changes } => {
            out.put_u8(2);
            out.put_u32_le(oid.0);
            debug_assert!(changes.len() <= u16::MAX as usize);
            out.put_u16_le(changes.len() as u16);
            for (qid, is_target) in changes {
                out.put_u32_le(qid.0);
                out.put_u8(*is_target as u8);
            }
        }
        Uplink::GroupResultUpdate {
            oid,
            focal,
            mask,
            targets,
        } => {
            out.put_u8(3);
            out.put_u32_le(oid.0);
            out.put_u32_le(focal.0);
            out.put_u64_le(*mask);
            out.put_u64_le(*targets);
        }
        Uplink::PositionReply {
            oid,
            motion,
            max_vel,
        } => {
            out.put_u8(4);
            out.put_u32_le(oid.0);
            put_motion(out, motion);
            out.put_f64_le(*max_vel);
        }
        Uplink::Resync {
            oid,
            cell,
            motion,
            max_vel,
            fresh,
        } => {
            out.put_u8(5);
            out.put_u32_le(oid.0);
            put_cell(out, *cell);
            put_motion(out, motion);
            out.put_f64_le(*max_vel);
            out.put_u8(*fresh as u8);
        }
        Uplink::LqtSync { oid, entries } => {
            out.put_u8(6);
            out.put_u32_le(oid.0);
            debug_assert!(entries.len() <= u16::MAX as usize);
            out.put_u16_le(entries.len() as u16);
            for (qid, is_target) in entries {
                out.put_u32_le(qid.0);
                out.put_u8(*is_target as u8);
            }
        }
    }
}

/// Decodes one uplink message from `buf`.
pub fn decode_uplink(buf: &mut Reader<'_>) -> Result<Uplink> {
    Ok(match buf.get_u8("uplink tag")? {
        0 => Uplink::VelocityReport {
            oid: ObjectId(buf.get_u32_le("oid")?),
            motion: get_motion(buf)?,
        },
        1 => Uplink::CellChange {
            oid: ObjectId(buf.get_u32_le("oid")?),
            prev_cell: get_cell(buf)?,
            new_cell: get_cell(buf)?,
            motion: get_motion(buf)?,
        },
        2 => {
            let oid = ObjectId(buf.get_u32_le("oid")?);
            let n = buf.get_count(5, "result change count")?;
            let mut changes = Vec::with_capacity(n);
            for _ in 0..n {
                changes.push((
                    QueryId(buf.get_u32_le("result change qid")?),
                    buf.get_u8("result change flag")? != 0,
                ));
            }
            Uplink::ResultUpdate { oid, changes }
        }
        3 => Uplink::GroupResultUpdate {
            oid: ObjectId(buf.get_u32_le("oid")?),
            focal: ObjectId(buf.get_u32_le("focal")?),
            mask: buf.get_u64_le("mask")?,
            targets: buf.get_u64_le("targets")?,
        },
        4 => {
            let oid = ObjectId(buf.get_u32_le("oid")?);
            let motion = get_motion(buf)?;
            Uplink::PositionReply {
                oid,
                motion,
                max_vel: buf.get_f64_le("max vel")?,
            }
        }
        5 => {
            let oid = ObjectId(buf.get_u32_le("oid")?);
            let cell = get_cell(buf)?;
            let motion = get_motion(buf)?;
            Uplink::Resync {
                oid,
                cell,
                motion,
                max_vel: buf.get_f64_le("max vel")?,
                fresh: buf.get_u8("fresh flag")? != 0,
            }
        }
        6 => {
            let oid = ObjectId(buf.get_u32_le("oid")?);
            let n = buf.get_count(5, "lqt sync count")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((
                    QueryId(buf.get_u32_le("lqt sync qid")?),
                    buf.get_u8("lqt sync flag")? != 0,
                ));
            }
            Uplink::LqtSync { oid, entries }
        }
        t => return err(&format!("unknown uplink tag {t}")),
    })
}

// --- downlink ----------------------------------------------------------------

/// Encodes a downlink message into `out`.
pub fn encode_downlink(msg: &Downlink, out: &mut Vec<u8>) {
    match msg {
        Downlink::QueryState { info } => {
            out.put_u8(0);
            put_group_info(out, info);
        }
        Downlink::VelocityChange {
            focal,
            motion,
            qids,
            seq,
        } => {
            out.put_u8(1);
            out.put_u32_le(focal.0);
            put_motion(out, motion);
            out.put_u64_le(*seq);
            debug_assert!(qids.len() <= u16::MAX as usize);
            out.put_u16_le(qids.len() as u16);
            for q in qids {
                out.put_u32_le(q.0);
            }
        }
        Downlink::NewQueries { infos } => {
            out.put_u8(2);
            debug_assert!(infos.len() <= u16::MAX as usize);
            out.put_u16_le(infos.len() as u16);
            for info in infos {
                put_group_info(out, info);
            }
        }
        Downlink::RemoveQuery { qid, epoch } => {
            out.put_u8(3);
            out.put_u32_le(qid.0);
            out.put_u64_le(*epoch);
        }
        Downlink::FocalNotify { is_focal } => {
            out.put_u8(4);
            out.put_u8(*is_focal as u8);
        }
        Downlink::PositionRequest => out.put_u8(5),
        Downlink::ResultDelta {
            qid,
            object,
            entered,
        } => {
            out.put_u8(6);
            out.put_u32_le(qid.0);
            out.put_u32_le(object.0);
            out.put_u8(*entered as u8);
        }
        Downlink::Heartbeat {
            epoch,
            cell_digests,
        } => {
            out.put_u8(7);
            out.put_u64_le(*epoch);
            debug_assert!(cell_digests.len() <= u16::MAX as usize);
            out.put_u16_le(cell_digests.len() as u16);
            for (cell, digest) in cell_digests {
                put_cell(out, *cell);
                out.put_u64_le(*digest);
            }
        }
        Downlink::CellSync { cell, epoch, infos } => {
            out.put_u8(8);
            put_cell(out, *cell);
            out.put_u64_le(*epoch);
            debug_assert!(infos.len() <= u16::MAX as usize);
            out.put_u16_le(infos.len() as u16);
            for info in infos {
                put_group_info(out, info);
            }
        }
    }
}

/// Decodes one downlink message from `buf`.
pub fn decode_downlink(buf: &mut Reader<'_>) -> Result<Downlink> {
    Ok(match buf.get_u8("downlink tag")? {
        0 => Downlink::QueryState {
            info: get_group_info(buf)?,
        },
        1 => {
            let focal = ObjectId(buf.get_u32_le("focal id")?);
            let motion = get_motion(buf)?;
            let seq = buf.get_u64_le("seq")?;
            let n = buf.get_count(4, "qid count")?;
            let mut qids = Vec::with_capacity(n);
            for _ in 0..n {
                qids.push(QueryId(buf.get_u32_le("qid")?));
            }
            Downlink::VelocityChange {
                focal,
                motion,
                qids,
                seq,
            }
        }
        2 => {
            let n = buf.get_count(70, "info count")?;
            let mut infos = Vec::with_capacity(n);
            for _ in 0..n {
                infos.push(get_group_info(buf)?);
            }
            Downlink::NewQueries { infos }
        }
        3 => Downlink::RemoveQuery {
            qid: QueryId(buf.get_u32_le("remove qid")?),
            epoch: buf.get_u64_le("remove epoch")?,
        },
        4 => Downlink::FocalNotify {
            is_focal: buf.get_u8("flag")? != 0,
        },
        5 => Downlink::PositionRequest,
        6 => Downlink::ResultDelta {
            qid: QueryId(buf.get_u32_le("result delta qid")?),
            object: ObjectId(buf.get_u32_le("result delta oid")?),
            entered: buf.get_u8("result delta flag")? != 0,
        },
        7 => {
            let epoch = buf.get_u64_le("heartbeat epoch")?;
            let n = buf.get_count(16, "cell digest count")?;
            let mut cell_digests = Vec::with_capacity(n);
            for _ in 0..n {
                let cell = get_cell(buf)?;
                cell_digests.push((cell, buf.get_u64_le("cell digest")?));
            }
            Downlink::Heartbeat {
                epoch,
                cell_digests,
            }
        }
        8 => {
            let cell = get_cell(buf)?;
            let epoch = buf.get_u64_le("cell sync epoch")?;
            let n = buf.get_count(70, "cell sync info count")?;
            let mut infos = Vec::with_capacity(n);
            for _ in 0..n {
                infos.push(get_group_info(buf)?);
            }
            Downlink::CellSync { cell, epoch, infos }
        }
        t => return err(&format!("unknown downlink tag {t}")),
    })
}

// --- cluster (server ↔ server) ----------------------------------------------

pub fn put_spec(out: &mut Vec<u8>, spec: &QuerySpec) {
    out.put_u32_le(spec.qid.0);
    out.put_u8(spec.slot);
    out.put_u64_le(spec.seq);
    put_region(out, &spec.region);
    put_filter(out, &spec.filter);
}

pub fn get_spec(buf: &mut Reader<'_>) -> Result<QuerySpec> {
    let qid = QueryId(buf.get_u32_le("spec qid")?);
    let slot = buf.get_u8("spec slot")?;
    let seq = buf.get_u64_le("spec seq")?;
    let region = get_region(buf)?;
    let filter = Arc::new(get_filter(buf)?);
    Ok(QuerySpec {
        qid,
        region,
        filter,
        slot,
        seq,
    })
}

fn put_migration(out: &mut Vec<u8>, m: &QueryMigration) {
    put_spec(out, &m.spec);
    put_cell(out, m.curr_cell);
    put_grid_rect(out, &m.mon_region);
    match m.expires_at {
        Some(t) => {
            out.put_u8(1);
            out.put_f64_le(t);
        }
        None => out.put_u8(0),
    }
    debug_assert!(m.result.len() <= u16::MAX as usize);
    out.put_u16_le(m.result.len() as u16);
    for oid in &m.result {
        out.put_u32_le(oid.0);
    }
}

fn get_migration(buf: &mut Reader<'_>) -> Result<QueryMigration> {
    let spec = get_spec(buf)?;
    let curr_cell = get_cell(buf)?;
    let mon_region = get_grid_rect(buf)?;
    let expires_at = if buf.get_u8("expiry flag")? != 0 {
        Some(buf.get_f64_le("expiry time")?)
    } else {
        None
    };
    let n = buf.get_count(4, "result count")?;
    let mut result = Vec::with_capacity(n);
    for _ in 0..n {
        result.push(ObjectId(buf.get_u32_le("result member")?));
    }
    Ok(QueryMigration {
        spec,
        curr_cell,
        mon_region,
        expires_at,
        result,
    })
}

/// Encodes an inter-server cluster message into `out`.
pub fn encode_cluster(msg: &ClusterMsg, out: &mut Vec<u8>) {
    match msg {
        ClusterMsg::MigrateFocal {
            oid,
            motion,
            max_vel,
            used_slots,
            last_heard,
            epoch,
            queries,
        } => {
            out.put_u8(0);
            out.put_u32_le(oid.0);
            put_motion(out, motion);
            out.put_f64_le(*max_vel);
            out.put_u64_le(*used_slots);
            out.put_f64_le(*last_heard);
            out.put_u64_le(*epoch);
            debug_assert!(queries.len() <= u16::MAX as usize);
            out.put_u16_le(queries.len() as u16);
            for q in queries {
                put_migration(out, q);
            }
        }
        ClusterMsg::StubUpdate {
            focal,
            motion,
            max_vel,
            curr_cell,
            mon_region,
            old_mon,
            spec,
        } => {
            out.put_u8(1);
            out.put_u32_le(focal.0);
            put_motion(out, motion);
            out.put_f64_le(*max_vel);
            put_cell(out, *curr_cell);
            put_grid_rect(out, mon_region);
            match old_mon {
                Some(r) => {
                    out.put_u8(1);
                    put_grid_rect(out, r);
                }
                None => out.put_u8(0),
            }
            put_spec(out, spec);
        }
        ClusterMsg::StubMotion {
            focal,
            motion,
            max_vel,
            qids,
        } => {
            out.put_u8(2);
            out.put_u32_le(focal.0);
            put_motion(out, motion);
            out.put_f64_le(*max_vel);
            debug_assert!(qids.len() <= u16::MAX as usize);
            out.put_u16_le(qids.len() as u16);
            for (qid, seq) in qids {
                out.put_u32_le(qid.0);
                out.put_u64_le(*seq);
            }
        }
        ClusterMsg::StubRemove {
            qid,
            mon_region,
            epoch,
        } => {
            out.put_u8(3);
            out.put_u32_le(qid.0);
            put_grid_rect(out, mon_region);
            out.put_u64_le(*epoch);
        }
        ClusterMsg::RebalanceCells {
            generation,
            epoch,
            cells,
            stubs,
        } => {
            out.put_u8(4);
            out.put_u64_le(*generation);
            out.put_u64_le(*epoch);
            debug_assert!(cells.len() <= u16::MAX as usize);
            out.put_u16_le(cells.len() as u16);
            for (flat, qids) in cells {
                out.put_u32_le(*flat);
                debug_assert!(qids.len() <= u16::MAX as usize);
                out.put_u16_le(qids.len() as u16);
                for qid in qids {
                    out.put_u32_le(qid.0);
                }
            }
            debug_assert!(stubs.len() <= u16::MAX as usize);
            out.put_u16_le(stubs.len() as u16);
            for s in stubs {
                out.put_u32_le(s.focal.0);
                put_motion(out, &s.motion);
                out.put_f64_le(s.max_vel);
                put_grid_rect(out, &s.mon_region);
                put_spec(out, &s.spec);
            }
        }
        ClusterMsg::RecoverCells {
            generation,
            epoch,
            cells,
        } => {
            out.put_u8(5);
            out.put_u64_le(*generation);
            out.put_u64_le(*epoch);
            debug_assert!(cells.len() <= u16::MAX as usize);
            out.put_u16_le(cells.len() as u16);
            for flat in cells {
                out.put_u32_le(*flat);
            }
        }
    }
}

/// Decodes one inter-server cluster message from `buf`.
pub fn decode_cluster(buf: &mut Reader<'_>) -> Result<ClusterMsg> {
    Ok(match buf.get_u8("cluster tag")? {
        0 => {
            let oid = ObjectId(buf.get_u32_le("oid")?);
            let motion = get_motion(buf)?;
            let max_vel = buf.get_f64_le("max vel")?;
            let used_slots = buf.get_u64_le("used slots")?;
            let last_heard = buf.get_f64_le("last heard")?;
            let epoch = buf.get_u64_le("epoch")?;
            let n = buf.get_count(48, "migration count")?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(get_migration(buf)?);
            }
            ClusterMsg::MigrateFocal {
                oid,
                motion,
                max_vel,
                used_slots,
                last_heard,
                epoch,
                queries,
            }
        }
        1 => {
            let focal = ObjectId(buf.get_u32_le("focal")?);
            let motion = get_motion(buf)?;
            let max_vel = buf.get_f64_le("max vel")?;
            let curr_cell = get_cell(buf)?;
            let mon_region = get_grid_rect(buf)?;
            let old_mon = if buf.get_u8("old-region flag")? != 0 {
                Some(get_grid_rect(buf)?)
            } else {
                None
            };
            let spec = get_spec(buf)?;
            ClusterMsg::StubUpdate {
                focal,
                motion,
                max_vel,
                curr_cell,
                mon_region,
                old_mon,
                spec,
            }
        }
        2 => {
            let focal = ObjectId(buf.get_u32_le("focal")?);
            let motion = get_motion(buf)?;
            let max_vel = buf.get_f64_le("max vel")?;
            let n = buf.get_count(12, "stub motion count")?;
            let mut qids = Vec::with_capacity(n);
            for _ in 0..n {
                qids.push((
                    QueryId(buf.get_u32_le("stub motion qid")?),
                    buf.get_u64_le("stub motion seq")?,
                ));
            }
            ClusterMsg::StubMotion {
                focal,
                motion,
                max_vel,
                qids,
            }
        }
        3 => {
            let qid = QueryId(buf.get_u32_le("qid")?);
            let mon_region = get_grid_rect(buf)?;
            ClusterMsg::StubRemove {
                qid,
                mon_region,
                epoch: buf.get_u64_le("epoch")?,
            }
        }
        4 => {
            let generation = buf.get_u64_le("generation")?;
            let epoch = buf.get_u64_le("epoch")?;
            let n = buf.get_count(6, "rebalance cell count")?;
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                let flat = buf.get_u32_le("rebalance cell flat")?;
                let k = buf.get_count(4, "rebalance qid count")?;
                let mut qids = Vec::with_capacity(k);
                for _ in 0..k {
                    qids.push(QueryId(buf.get_u32_le("rebalance qid")?));
                }
                cells.push((flat, qids));
            }
            let m = buf.get_count(85, "stub seed count")?;
            let mut stubs = Vec::with_capacity(m);
            for _ in 0..m {
                let focal = ObjectId(buf.get_u32_le("stub seed focal")?);
                let motion = get_motion(buf)?;
                let max_vel = buf.get_f64_le("stub seed max vel")?;
                let mon_region = get_grid_rect(buf)?;
                let spec = get_spec(buf)?;
                stubs.push(StubSeed {
                    focal,
                    motion,
                    max_vel,
                    mon_region,
                    spec,
                });
            }
            ClusterMsg::RebalanceCells {
                generation,
                epoch,
                cells,
                stubs,
            }
        }
        5 => {
            let generation = buf.get_u64_le("generation")?;
            let epoch = buf.get_u64_le("epoch")?;
            let n = buf.get_count(4, "recover cell count")?;
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                cells.push(buf.get_u32_le("recover cell flat")?);
            }
            ClusterMsg::RecoverCells {
                generation,
                epoch,
                cells,
            }
        }
        t => return err(&format!("unknown cluster tag {t}")),
    })
}

/// Convenience: encodes to a fresh buffer.
pub fn cluster_bytes(msg: &ClusterMsg) -> Vec<u8> {
    let mut out = Vec::new();
    encode_cluster(msg, &mut out);
    out
}

/// Convenience: encodes to a fresh buffer.
pub fn uplink_bytes(msg: &Uplink) -> Vec<u8> {
    let mut out = Vec::new();
    encode_uplink(msg, &mut out);
    out
}

/// Convenience: encodes to a fresh buffer.
pub fn downlink_bytes(msg: &Downlink) -> Vec<u8> {
    let mut out = Vec::new();
    encode_downlink(msg, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_net::WireSized;

    fn motion() -> LinearMotion {
        LinearMotion::new(Point::new(1.5, -2.25), Vec2::new(0.125, 0.0625), 90.0)
    }

    pub(crate) fn sample_uplinks() -> Vec<Uplink> {
        vec![
            Uplink::VelocityReport {
                oid: ObjectId(7),
                motion: motion(),
            },
            Uplink::CellChange {
                oid: ObjectId(8),
                prev_cell: CellId::new(1, 2),
                new_cell: CellId::new(2, 2),
                motion: motion(),
            },
            Uplink::ResultUpdate {
                oid: ObjectId(9),
                changes: vec![],
            },
            Uplink::ResultUpdate {
                oid: ObjectId(9),
                changes: vec![(QueryId(1), true), (QueryId(2), false)],
            },
            Uplink::GroupResultUpdate {
                oid: ObjectId(10),
                focal: ObjectId(11),
                mask: 0b1011,
                targets: 0b0010,
            },
            Uplink::PositionReply {
                oid: ObjectId(12),
                motion: motion(),
                max_vel: 0.069,
            },
            Uplink::Resync {
                oid: ObjectId(13),
                cell: CellId::new(4, 7),
                motion: motion(),
                max_vel: 0.05,
                fresh: true,
            },
            Uplink::Resync {
                oid: ObjectId(14),
                cell: CellId::new(0, 0),
                motion: motion(),
                max_vel: 0.02,
                fresh: false,
            },
            Uplink::LqtSync {
                oid: ObjectId(15),
                entries: vec![],
            },
            Uplink::LqtSync {
                oid: ObjectId(15),
                entries: vec![(QueryId(3), true), (QueryId(9), false)],
            },
        ]
    }

    fn sample_downlinks() -> Vec<Downlink> {
        let specs = vec![
            QuerySpec {
                qid: QueryId(1),
                region: QueryRegion::circle(3.5),
                filter: Arc::new(Filter::True),
                slot: 0,
                seq: 11,
            },
            QuerySpec {
                qid: QueryId(2),
                region: QueryRegion::rect(2.0, 1.0),
                filter: Arc::new(Filter::And(
                    Box::new(Filter::Eq("kind".into(), PropValue::Text("taxi".into()))),
                    Box::new(Filter::Not(Box::new(Filter::Lt("weight".into(), 2.5)))),
                )),
                slot: 5,
                seq: 12,
            },
        ];
        let info = QueryGroupInfo {
            focal: ObjectId(3),
            motion: motion(),
            max_vel: 0.05,
            mon_region: GridRect {
                x0: 1,
                y0: 2,
                x1: 4,
                y1: 5,
            },
            queries: Arc::new(specs),
        };
        vec![
            Downlink::QueryState { info: info.clone() },
            Downlink::VelocityChange {
                focal: ObjectId(3),
                motion: motion(),
                qids: vec![QueryId(1), QueryId(2), QueryId(3)],
                seq: 6,
            },
            Downlink::NewQueries {
                infos: vec![info.clone(), info.clone()],
            },
            Downlink::NewQueries { infos: vec![] },
            Downlink::RemoveQuery {
                qid: QueryId(42),
                epoch: 17,
            },
            Downlink::FocalNotify { is_focal: true },
            Downlink::FocalNotify { is_focal: false },
            Downlink::PositionRequest,
            Downlink::ResultDelta {
                qid: QueryId(9),
                object: ObjectId(77),
                entered: true,
            },
            Downlink::Heartbeat {
                epoch: 0,
                cell_digests: vec![],
            },
            Downlink::Heartbeat {
                epoch: 99,
                cell_digests: vec![(CellId::new(1, 2), 0xDEAD), (CellId::new(3, 4), 0xBEEF)],
            },
            Downlink::CellSync {
                cell: CellId::new(5, 6),
                epoch: 21,
                infos: vec![info],
            },
            Downlink::CellSync {
                cell: CellId::new(0, 0),
                epoch: 0,
                infos: vec![],
            },
        ]
    }

    pub(crate) fn sample_cluster_msgs() -> Vec<ClusterMsg> {
        let spec = QuerySpec {
            qid: QueryId(5),
            region: QueryRegion::circle(2.5),
            filter: Arc::new(Filter::Gt("speed".into(), 1.5)),
            slot: 3,
            seq: 21,
        };
        let mon = GridRect {
            x0: 2,
            y0: 3,
            x1: 5,
            y1: 6,
        };
        vec![
            ClusterMsg::MigrateFocal {
                oid: ObjectId(9),
                motion: motion(),
                max_vel: 0.04,
                used_slots: 0b1001,
                last_heard: 120.0,
                epoch: 33,
                queries: vec![
                    QueryMigration {
                        spec: spec.clone(),
                        curr_cell: CellId::new(3, 4),
                        mon_region: mon,
                        expires_at: Some(600.0),
                        result: vec![ObjectId(1), ObjectId(2), ObjectId(8)],
                    },
                    QueryMigration {
                        spec: spec.clone(),
                        curr_cell: CellId::new(3, 4),
                        mon_region: mon,
                        expires_at: None,
                        result: vec![],
                    },
                ],
            },
            ClusterMsg::MigrateFocal {
                oid: ObjectId(10),
                motion: motion(),
                max_vel: 0.01,
                used_slots: 0,
                last_heard: 0.0,
                epoch: 1,
                queries: vec![],
            },
            ClusterMsg::StubUpdate {
                focal: ObjectId(9),
                motion: motion(),
                max_vel: 0.04,
                curr_cell: CellId::new(3, 4),
                mon_region: mon,
                old_mon: Some(GridRect {
                    x0: 1,
                    y0: 2,
                    x1: 4,
                    y1: 5,
                }),
                spec: spec.clone(),
            },
            ClusterMsg::StubUpdate {
                focal: ObjectId(9),
                motion: motion(),
                max_vel: 0.04,
                curr_cell: CellId::new(3, 4),
                mon_region: mon,
                old_mon: None,
                spec,
            },
            ClusterMsg::StubMotion {
                focal: ObjectId(9),
                motion: motion(),
                max_vel: 0.04,
                qids: vec![(QueryId(5), 22), (QueryId(6), 22)],
            },
            ClusterMsg::StubMotion {
                focal: ObjectId(9),
                motion: motion(),
                max_vel: 0.04,
                qids: vec![],
            },
            ClusterMsg::StubRemove {
                qid: QueryId(5),
                mon_region: mon,
                epoch: 40,
            },
            ClusterMsg::RebalanceCells {
                generation: 3,
                epoch: 44,
                cells: vec![
                    (17, vec![QueryId(5), QueryId(6)]),
                    (18, vec![]),
                    (19, vec![QueryId(6)]),
                ],
                stubs: vec![StubSeed {
                    focal: ObjectId(9),
                    motion: motion(),
                    max_vel: 0.04,
                    mon_region: mon,
                    spec: QuerySpec {
                        qid: QueryId(6),
                        region: QueryRegion::circle(1.0),
                        filter: Arc::new(Filter::True),
                        slot: 0,
                        seq: 44,
                    },
                }],
            },
            ClusterMsg::RebalanceCells {
                generation: 1,
                epoch: 2,
                cells: vec![],
                stubs: vec![],
            },
            ClusterMsg::RecoverCells {
                generation: 4,
                epoch: 50,
                cells: vec![17, 18, 19],
            },
            ClusterMsg::RecoverCells {
                generation: 1,
                epoch: 2,
                cells: vec![],
            },
        ]
    }

    #[test]
    fn cluster_roundtrip_and_size() {
        for msg in sample_cluster_msgs() {
            let bytes = cluster_bytes(&msg);
            assert_eq!(
                bytes.len(),
                msg.wire_size(),
                "declared wire size mismatch for {msg:?}"
            );
            let mut buf = Reader::new(&bytes);
            let decoded = decode_cluster(&mut buf).expect("decodes");
            assert_eq!(decoded, msg);
            assert_eq!(buf.remaining(), 0, "trailing bytes after {msg:?}");
        }
    }

    #[test]
    fn cluster_truncated_input_errors_cleanly() {
        for msg in sample_cluster_msgs() {
            let bytes = cluster_bytes(&msg);
            for cut in 0..bytes.len() {
                let mut buf = Reader::new(&bytes[0..cut]);
                let _ = decode_cluster(&mut buf);
            }
        }
        let mut buf = Reader::new(&[250u8, 0, 0]);
        assert!(decode_cluster(&mut buf).is_err());
    }

    #[test]
    fn uplink_roundtrip_and_size() {
        for msg in sample_uplinks() {
            let bytes = uplink_bytes(&msg);
            assert_eq!(
                bytes.len(),
                msg.wire_size(),
                "declared wire size mismatch for {msg:?}"
            );
            let mut buf = Reader::new(&bytes);
            let decoded = decode_uplink(&mut buf).expect("decodes");
            assert_eq!(decoded, msg);
            assert_eq!(buf.remaining(), 0, "trailing bytes after {msg:?}");
        }
    }

    #[test]
    fn downlink_roundtrip_and_size() {
        for msg in sample_downlinks() {
            let bytes = downlink_bytes(&msg);
            assert_eq!(
                bytes.len(),
                msg.wire_size(),
                "declared wire size mismatch for {msg:?}"
            );
            let mut buf = Reader::new(&bytes);
            let decoded = decode_downlink(&mut buf).expect("decodes");
            assert_eq!(decoded, msg);
            assert_eq!(buf.remaining(), 0, "trailing bytes after {msg:?}");
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        for msg in sample_downlinks() {
            let bytes = downlink_bytes(&msg);
            for cut in 0..bytes.len() {
                let mut buf = Reader::new(&bytes[0..cut]);
                // Must never panic; empty PositionRequest-like prefixes may
                // legitimately decode to a shorter message, but only if the
                // cut produced a valid full message (impossible here since
                // cut < len and our encoding has no trailing slack).
                let _ = decode_downlink(&mut buf);
            }
        }
    }

    #[test]
    fn unknown_tags_error() {
        let mut buf = Reader::new(&[250u8, 0, 0]);
        assert!(decode_uplink(&mut buf).is_err());
        let mut buf = Reader::new(&[250u8, 0, 0]);
        assert!(decode_downlink(&mut buf).is_err());
    }

    #[test]
    fn oversized_length_prefix_errors_before_allocating() {
        // A ResultUpdate whose count claims 65535 entries with 3 bytes of
        // body: the count sanity check must reject it up front.
        let mut bytes = Vec::new();
        bytes.put_u8(2); // ResultUpdate tag
        bytes.put_u32_le(9); // oid
        bytes.put_u16_le(u16::MAX); // hostile count
        bytes.put_slice(&[0, 0, 0]); // far too short a body
        let mut buf = Reader::new(&bytes);
        let e = decode_uplink(&mut buf).unwrap_err();
        assert!(
            e.0.contains("oversized"),
            "expected an oversized-length error, got: {e}"
        );

        // Same for a string length prefix overrunning the buffer.
        let mut bytes = Vec::new();
        bytes.put_u8(3); // Filter::Eq tag
        bytes.put_u16_le(u16::MAX); // hostile string length
        bytes.put_slice(b"abc");
        let mut buf = Reader::new(&bytes);
        assert!(get_filter(&mut buf).is_err());
    }

    #[test]
    fn reader_take_is_checked() {
        let mut buf = Reader::new(&[1u8, 2, 3]);
        assert_eq!(buf.take(2, "x").unwrap(), &[1, 2]);
        assert!(buf.take(2, "x").is_err(), "overrun must error, not panic");
        // The failed take consumes nothing.
        assert_eq!(buf.remaining(), 1);
        assert_eq!(buf.get_u8("y").unwrap(), 3);
        assert!(buf.get_u8("y").is_err());
    }

    #[test]
    fn back_to_back_messages_decode_in_sequence() {
        let mut out = Vec::new();
        let msgs = sample_uplinks();
        for m in &msgs {
            encode_uplink(m, &mut out);
        }
        let mut buf = Reader::new(&out);
        for m in &msgs {
            assert_eq!(&decode_uplink(&mut buf).unwrap(), m);
        }
        assert_eq!(buf.remaining(), 0);
    }
}
