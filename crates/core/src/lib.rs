//! The MobiEyes protocol: distributed processing of continuously moving
//! queries (MQs) on moving objects (paper §3–§4).
//!
//! A moving query is a spatial region bound to a *focal* moving object plus
//! a boolean filter over target-object properties; its result — the set of
//! objects inside the region that satisfy the filter — is maintained
//! continuously and cooperatively:
//!
//! - the [`Server`] mediates: it tracks focal objects (FOT),
//!   queries (SQT), a reverse query index (RQI) and disseminates query state
//!   to the objects inside each query's *monitoring region*;
//! - each [`MovingObjectAgent`] keeps a local
//!   query table (LQT) of nearby queries and decides *by itself*, via
//!   dead-reckoning prediction of the focal object, whether it belongs to
//!   each query's result, reporting only containment *changes*.
//!
//! The three optimizations of the paper are implemented and individually
//! switchable in [`ProtocolConfig`]: lazy query
//! propagation (§3.5), query grouping (§4.1) and safe periods (§4.2).
//!
//! The protocol logic is pure message-passing (uplink in → downlink out), so
//! the same server/agent types run under the lock-step simulator
//! (`mobieyes-sim`) and the threaded actor runtime (`mobieyes-runtime`).

pub mod codec;
pub mod config;
pub mod filter;
pub mod journal;
pub mod knn;
pub mod messages;
pub mod model;
pub mod object;
pub mod server;

pub use config::{Propagation, ProtocolConfig};
pub use filter::Filter;
pub use journal::{JournalSink, LogRecord};
pub use knn::{KnnConfig, KnnCoordinator};
pub use messages::{
    ClusterMsg, Downlink, QueryGroupInfo, QueryMigration, QuerySpec, StubSeed, Uplink,
};
pub use model::{ObjectId, PropValue, Properties, QueryId};
pub use object::{AgentStats, MovingObjectAgent};
pub use server::{PartitionScope, PartitionTable, Server, ServerStats};
