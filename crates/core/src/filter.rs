//! Query filters: boolean predicates over target-object properties.
//!
//! The paper defines a filter abstractly ("a Boolean predicate defined over
//! the properties of the target objects") and, in the evaluation, only by
//! its selectivity (0.75). We provide both:
//!
//! - a small predicate AST over typed properties for real applications, and
//! - [`Filter::Selectivity`], a deterministic pseudo-random predicate that
//!   passes each (query, object) pair independently with a configurable
//!   probability — the filter the simulation experiments use.

use crate::model::{ObjectId, PropValue, Properties};

/// A boolean predicate over object properties.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches everything.
    True,
    /// Matches nothing (useful for tests and query retirement).
    False,
    /// Deterministic pseudo-random filter: object `oid` passes iff
    /// `hash(salt, oid) < selectivity`. Models the paper's "query
    /// selectivity" parameter without attaching real attributes.
    Selectivity {
        selectivity: f64,
        salt: u64,
    },
    /// Property equals the given value.
    Eq(String, PropValue),
    /// Numeric property strictly less than the threshold (Int and Float
    /// properties compare; other types never match).
    Lt(String, f64),
    /// Numeric property strictly greater than the threshold.
    Gt(String, f64),
    And(Box<Filter>, Box<Filter>),
    Or(Box<Filter>, Box<Filter>),
    Not(Box<Filter>),
}

impl Filter {
    /// Convenience constructor for the simulation filter.
    pub fn with_selectivity(selectivity: f64, salt: u64) -> Self {
        assert!((0.0..=1.0).contains(&selectivity));
        Filter::Selectivity { selectivity, salt }
    }

    /// Does object `oid` with properties `props` satisfy the filter?
    pub fn matches(&self, oid: ObjectId, props: &Properties) -> bool {
        match self {
            Filter::True => true,
            Filter::False => false,
            Filter::Selectivity { selectivity, salt } => {
                let h = splitmix64(salt ^ ((oid.0 as u64) << 1 | 1));
                ((h >> 11) as f64 / (1u64 << 53) as f64) < *selectivity
            }
            Filter::Eq(key, value) => props.get(key) == Some(value),
            Filter::Lt(key, threshold) => numeric(props.get(key)).is_some_and(|v| v < *threshold),
            Filter::Gt(key, threshold) => numeric(props.get(key)).is_some_and(|v| v > *threshold),
            Filter::And(a, b) => a.matches(oid, props) && b.matches(oid, props),
            Filter::Or(a, b) => a.matches(oid, props) || b.matches(oid, props),
            Filter::Not(f) => !f.matches(oid, props),
        }
    }

    /// Exact serialized size in bytes under the canonical wire encoding
    /// (see [`crate::codec`]); drives message accounting. Keys are
    /// u16-length-prefixed, property values carry a 1-byte type tag, text
    /// values a u16 length.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Filter::True | Filter::False => 0,
            Filter::Selectivity { .. } => 16,
            Filter::Eq(k, v) => 2 + k.len() + prop_value_wire_size(v),
            Filter::Lt(k, _) | Filter::Gt(k, _) => 2 + k.len() + 8,
            Filter::And(a, b) | Filter::Or(a, b) => a.wire_size() + b.wire_size(),
            Filter::Not(f) => f.wire_size(),
        }
    }
}

/// Serialized size of a property value: type tag plus payload.
pub(crate) fn prop_value_wire_size(v: &PropValue) -> usize {
    1 + match v {
        PropValue::Int(_) | PropValue::Float(_) => 8,
        PropValue::Text(s) => 2 + s.len(),
        PropValue::Bool(_) => 1,
    }
}

fn numeric(v: Option<&PropValue>) -> Option<f64> {
    match v {
        Some(PropValue::Int(i)) => Some(*i as f64),
        Some(PropValue::Float(f)) => Some(*f),
        _ => None,
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props() -> Properties {
        Properties::new()
            .with("color", "red")
            .with("speed_class", 3i64)
            .with("weight", 1.5f64)
    }

    #[test]
    fn constants() {
        assert!(Filter::True.matches(ObjectId(0), &props()));
        assert!(!Filter::False.matches(ObjectId(0), &props()));
    }

    #[test]
    fn equality_on_each_type() {
        let p = props();
        assert!(Filter::Eq("color".into(), "red".into()).matches(ObjectId(0), &p));
        assert!(!Filter::Eq("color".into(), "blue".into()).matches(ObjectId(0), &p));
        assert!(Filter::Eq("speed_class".into(), PropValue::Int(3)).matches(ObjectId(0), &p));
        assert!(!Filter::Eq("missing".into(), PropValue::Bool(true)).matches(ObjectId(0), &p));
    }

    #[test]
    fn numeric_comparisons_cover_int_and_float() {
        let p = props();
        assert!(Filter::Lt("speed_class".into(), 4.0).matches(ObjectId(0), &p));
        assert!(!Filter::Lt("speed_class".into(), 3.0).matches(ObjectId(0), &p));
        assert!(Filter::Gt("weight".into(), 1.0).matches(ObjectId(0), &p));
        assert!(!Filter::Gt("weight".into(), 2.0).matches(ObjectId(0), &p));
        // Non-numeric or missing properties never match comparisons.
        assert!(!Filter::Lt("color".into(), 100.0).matches(ObjectId(0), &p));
        assert!(!Filter::Gt("missing".into(), 0.0).matches(ObjectId(0), &p));
    }

    #[test]
    fn boolean_combinators() {
        let p = props();
        let red = Filter::Eq("color".into(), "red".into());
        let heavy = Filter::Gt("weight".into(), 2.0);
        assert!(
            !Filter::And(Box::new(red.clone()), Box::new(heavy.clone())).matches(ObjectId(0), &p)
        );
        assert!(Filter::Or(Box::new(red.clone()), Box::new(heavy.clone())).matches(ObjectId(0), &p));
        assert!(Filter::Not(Box::new(heavy)).matches(ObjectId(0), &p));
    }

    #[test]
    fn selectivity_is_deterministic_per_object() {
        let f = Filter::with_selectivity(0.75, 42);
        let p = Properties::new();
        for oid in 0..100 {
            assert_eq!(f.matches(ObjectId(oid), &p), f.matches(ObjectId(oid), &p));
        }
    }

    #[test]
    fn selectivity_rate_is_approximate() {
        let f = Filter::with_selectivity(0.75, 7);
        let p = Properties::new();
        let hits = (0..10_000).filter(|&i| f.matches(ObjectId(i), &p)).count();
        let rate = hits as f64 / 10_000.0;
        assert!(
            (0.72..0.78).contains(&rate),
            "selectivity 0.75 observed {rate}"
        );
    }

    #[test]
    fn selectivity_extremes() {
        let p = Properties::new();
        let none = Filter::with_selectivity(0.0, 1);
        let all = Filter::with_selectivity(1.0, 1);
        for oid in 0..100 {
            assert!(!none.matches(ObjectId(oid), &p));
            assert!(all.matches(ObjectId(oid), &p));
        }
    }

    #[test]
    fn different_salts_give_different_subsets() {
        let p = Properties::new();
        let a = Filter::with_selectivity(0.5, 1);
        let b = Filter::with_selectivity(0.5, 2);
        let differs = (0..1000).any(|i| a.matches(ObjectId(i), &p) != b.matches(ObjectId(i), &p));
        assert!(differs);
    }

    #[test]
    fn wire_sizes_are_positive_and_compose() {
        assert_eq!(Filter::True.wire_size(), 1);
        assert_eq!(Filter::with_selectivity(0.5, 1).wire_size(), 17);
        let a = Filter::Eq("k".into(), PropValue::Int(1));
        assert_eq!(a.wire_size(), 1 + 2 + 1 + 1 + 8);
        let b = Filter::Lt("key2".into(), 3.0);
        assert_eq!(b.wire_size(), 1 + 2 + 4 + 8);
        let and = Filter::And(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(and.wire_size(), 1 + a.wire_size() + b.wire_size());
        let text = Filter::Eq("tag".into(), PropValue::Text("ab".into()));
        assert_eq!(text.wire_size(), 1 + 2 + 3 + 1 + 2 + 2);
    }
}
