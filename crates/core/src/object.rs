//! The moving-object side of the protocol (paper §3.3–§3.6, §4).
//!
//! A [`MovingObjectAgent`] owns the object's kinematic state, its local
//! query table (LQT) and the `hasMQ` flag. Each tick it:
//!
//! 1. processes downlink messages (query installs/updates/removals, focal
//!    velocity changes, position requests),
//! 2. detects grid-cell changes (dropping queries whose monitoring region
//!    no longer covers it, and notifying the server when the propagation
//!    mode or its focal role requires),
//! 3. runs dead reckoning when it is a focal object,
//! 4. evaluates every LQT entry — predicting the focal object's position
//!    linearly — and reports containment *changes* to the server,
//!    optionally grouped into query bitmaps and pruned by nested radii and
//!    safe periods.

use crate::config::{Propagation, ProtocolConfig};
use crate::messages::{state_digest, Downlink, QueryGroupInfo, Uplink, EMPTY_STATE_DIGEST};
use crate::model::{ObjectId, Properties, QueryId};
use crate::server::Net;
use mobieyes_geo::{CellId, GridRect, LinearMotion, Point, QueryRegion, Region, Vec2};
use mobieyes_telemetry::{EventKind, MetricsSnapshot, Telemetry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The `agent.*` telemetry keys recorded by [`MovingObjectAgent`].
pub mod agent_keys {
    /// Containment evaluations actually performed (counter).
    pub const EVALUATED: &str = "agent.evaluated";
    /// Evaluations skipped by the safe-period optimization (counter).
    pub const SKIPPED_SAFE_PERIOD: &str = "agent.skipped_safe_period";
    /// Evaluations skipped by nested-radius group pruning (counter).
    pub const SKIPPED_GROUP_PRUNE: &str = "agent.skipped_group_prune";
    /// Containment status flips reported to the server (counter).
    pub const RESULT_CHANGES: &str = "agent.result_changes";
    /// Uplink messages sent (counter).
    pub const UPLINKS_SENT: &str = "agent.uplinks_sent";
    /// Nanoseconds spent in LQT processing (wall timer, Figure 13).
    pub const EVAL_NANOS: &str = "agent.eval_nanos";
    /// LQT size observed once per processing tick (histogram,
    /// Figures 10–12).
    pub const LQT_SIZE: &str = "agent.lqt_size";
    /// Stale or duplicated downlink state discarded by epoch/sequence
    /// checks (counter).
    pub const STALE_DISCARDED: &str = "agent.stale_discarded";
    /// Resync handshakes initiated (reconnects and heartbeat digest
    /// mismatches; counter).
    pub const RESYNC_REQUESTS: &str = "agent.resync_requests";
    /// Full LQT snapshots sent in answer to server heartbeats (counter).
    pub const LQT_SYNCS: &str = "agent.lqt_syncs";
}

/// One LQT row: a nearby query this object is responsible for evaluating.
#[derive(Debug, Clone)]
struct LqtEntry {
    focal: ObjectId,
    /// Last known motion sample of the focal object (`pos`, `vel`, `tm`).
    motion: LinearMotion,
    region: QueryRegion,
    mon_region: GridRect,
    /// Group slot bit index for bitmap result reports.
    slot: u8,
    /// Maximum speed of the focal object, for safe periods.
    focal_max_vel: f64,
    /// Result of the last evaluation (the paper's `isTarget`).
    is_target: bool,
    /// Safe-period processing time: skip evaluation while `t < ptm`.
    ptm: f64,
    /// Server epoch of the last applied state for this query. Older
    /// downlink state (late duplicates, reordered broadcasts) is
    /// discarded; equal state re-applies idempotently.
    seq: u64,
}

/// Per-agent work counters (drive the paper's Figures 10–13) — a view
/// over the `agent.*` telemetry counters. When several agents share one
/// [`Telemetry`] sink the view aggregates across all of them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AgentStats {
    /// Containment evaluations actually performed.
    pub evaluated: u64,
    /// Evaluations skipped by the safe-period optimization.
    pub skipped_safe_period: u64,
    /// Evaluations skipped by nested-radius group pruning.
    pub skipped_group_prune: u64,
    /// Containment status flips reported to the server.
    pub result_changes: u64,
    /// Uplink messages sent.
    pub uplinks_sent: u64,
    /// Nanoseconds spent in LQT processing (the Figure 13 metric).
    pub eval_nanos: u64,
}

impl AgentStats {
    /// Materializes the view from a metrics snapshot.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Self {
        AgentStats {
            evaluated: snapshot.counter(agent_keys::EVALUATED),
            skipped_safe_period: snapshot.counter(agent_keys::SKIPPED_SAFE_PERIOD),
            skipped_group_prune: snapshot.counter(agent_keys::SKIPPED_GROUP_PRUNE),
            result_changes: snapshot.counter(agent_keys::RESULT_CHANGES),
            uplinks_sent: snapshot.counter(agent_keys::UPLINKS_SENT),
            eval_nanos: snapshot.wall(agent_keys::EVAL_NANOS),
        }
    }
}

/// The moving-object protocol agent.
#[derive(Debug)]
pub struct MovingObjectAgent {
    oid: ObjectId,
    config: Arc<ProtocolConfig>,
    props: Properties,
    max_vel: f64,
    pos: Point,
    vel: Vec2,
    curr_cell: CellId,
    has_mq: bool,
    /// Motion sample last advertised to the server (dead-reckoning base).
    advertised: Option<LinearMotion>,
    lqt: BTreeMap<QueryId, LqtEntry>,
    /// Local view of the results of queries this object issued (filled by
    /// `ResultDelta` pushes when result delivery is enabled).
    own_results: BTreeMap<QueryId, std::collections::BTreeSet<ObjectId>>,
    /// Departure reports produced while handling downlink messages
    /// (monitoring-region shrinks); flushed with the next evaluation.
    pending_departures: Vec<(QueryId, bool)>,
    /// Queries covering our cell whose filter rejected us. Tracked (with
    /// seq and monitoring region) so the heartbeat digest of "queries of
    /// my cell" matches the server's RQI view even when we evaluate none
    /// of them.
    shadow: BTreeMap<QueryId, (u64, GridRect)>,
    /// Tombstones of removed queries: qid → removal epoch. Installs with
    /// an older or equal seq are resurrection attempts by late duplicates
    /// and are discarded.
    removed: BTreeMap<QueryId, u64>,
    /// Epoch of the last server heartbeat answered; beacons arrive once
    /// per covering base station (plus duplication faults) and must be
    /// answered exactly once.
    last_heartbeat_epoch: u64,
    telemetry: Telemetry,
    /// Scratch buffers reused across ticks.
    scratch_changes: Vec<(QueryId, bool)>,
    scratch_groups: Vec<(ObjectId, QueryId, f64)>,
}

impl MovingObjectAgent {
    /// Creates an agent at an initial position/velocity at time `t0`.
    pub fn new(
        oid: ObjectId,
        props: Properties,
        max_vel: f64,
        pos: Point,
        vel: Vec2,
        config: Arc<ProtocolConfig>,
    ) -> Self {
        let curr_cell = config.grid.cell_of(pos);
        MovingObjectAgent {
            oid,
            config,
            props,
            max_vel,
            pos,
            vel,
            curr_cell,
            has_mq: false,
            advertised: None,
            lqt: BTreeMap::new(),
            own_results: BTreeMap::new(),
            pending_departures: Vec::new(),
            shadow: BTreeMap::new(),
            removed: BTreeMap::new(),
            last_heartbeat_epoch: 0,
            telemetry: Telemetry::new(),
            scratch_changes: Vec::new(),
            scratch_groups: Vec::new(),
        }
    }

    /// Redirects this agent's instrumentation into a shared sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn oid(&self) -> ObjectId {
        self.oid
    }

    pub fn position(&self) -> Point {
        self.pos
    }

    pub fn properties(&self) -> &Properties {
        &self.props
    }

    /// Number of queries currently installed in the LQT (the paper's
    /// Figure 10–12 metric).
    pub fn lqt_len(&self) -> usize {
        self.lqt.len()
    }

    pub fn has_mq(&self) -> bool {
        self.has_mq
    }

    /// The grid cell this agent last registered itself in.
    pub fn current_cell(&self) -> CellId {
        self.curr_cell
    }

    /// Whether the next processing phase has real work beyond telemetry:
    /// an installed query to evaluate or a buffered departure to flush.
    /// When this is false and no downlink is pending, `tick_process` is a
    /// no-op except for its `agent.lqt_size`/`agent.eval_nanos` samples —
    /// the struct-of-arrays engine skips the call and batch-records the
    /// samples instead.
    pub fn needs_process(&self) -> bool {
        !self.lqt.is_empty() || !self.pending_departures.is_empty()
    }

    /// Whether departures are buffered for the next evaluation (these
    /// force a full evaluation even inside every entry's safe period).
    pub fn has_pending_departures(&self) -> bool {
        !self.pending_departures.is_empty()
    }

    /// Whether the filter-shadow table is empty. With an empty LQT *and*
    /// an empty shadow, a `VelocityChange` downlink (and a `QueryState`
    /// whose monitoring region excludes this agent's cell) is a provable
    /// no-op — the struct-of-arrays engine uses this to drop such
    /// deliveries without running `tick_process`.
    pub fn shadow_is_empty(&self) -> bool {
        self.shadow.is_empty()
    }

    /// The earliest safe-period deadline across the LQT: evaluations
    /// before this time skip every entry (§4.2), changing nothing but the
    /// `agent.skipped_safe_period` counter and the LQT-size sample. The
    /// struct-of-arrays engine mirrors this into a parallel deadline
    /// vector so whole agents can be skipped without touching their heap
    /// state. `-inf` when the LQT is empty (an empty LQT has no safe
    /// window; the caller's emptiness check gates the skip anyway).
    pub fn min_safe_deadline(&self) -> f64 {
        if self.lqt.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.lqt
            .values()
            .map(|e| e.ptm)
            .fold(f64::INFINITY, f64::min)
    }

    /// Did the last evaluation consider this object a target of `qid`?
    pub fn is_target_of(&self, qid: QueryId) -> bool {
        self.lqt.get(&qid).map(|e| e.is_target).unwrap_or(false)
    }

    /// Query ids currently installed (ascending).
    pub fn installed_queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.lqt.keys().copied()
    }

    /// Full LQT fingerprint `(qid, is_target, seq)` in ascending qid
    /// order — the observable protocol state duplicate-delivery and
    /// reordering tests compare against.
    pub fn lqt_entries(&self) -> Vec<(QueryId, bool, u64)> {
        self.lqt
            .iter()
            .map(|(&q, e)| (q, e.is_target, e.seq))
            .collect()
    }

    /// The locally-known result of a query this object issued (only
    /// populated when the protocol runs with result delivery enabled).
    pub fn own_result(&self, qid: QueryId) -> Option<&std::collections::BTreeSet<ObjectId>> {
        self.own_results.get(&qid)
    }

    /// The agent-side work counters, materialized from the telemetry
    /// sink. Aggregated across agents when the sink is shared.
    pub fn stats(&self) -> AgentStats {
        AgentStats::from_snapshot(&self.telemetry.snapshot())
    }

    /// Phase A of a time step: absorb the new kinematic state and report
    /// significant motion events (grid-cell changes, dead-reckoning
    /// deviations) uplink. Runs *before* the server's mediation phase so
    /// that the resulting broadcasts reach the other objects within the
    /// same time step — the paper's simulation resolves updates within a
    /// step.
    pub fn tick_motion(&mut self, t: f64, pos: Point, vel: Vec2, net: &mut Net) {
        self.pos = pos;
        self.vel = vel;
        let new_cell = self.config.grid.cell_of(pos);
        if new_cell != self.curr_cell {
            let prev = self.curr_cell;
            self.curr_cell = new_cell;
            self.telemetry.event_at(
                t,
                EventKind::CellCrossing {
                    oid: self.oid.0 as u64,
                },
            );
            // Drop queries whose monitoring region no longer covers us.
            // Leaving a monitoring region implies leaving the query region
            // (the circle is contained in it), so any entry we were a
            // target of must report its departure — otherwise the server
            // would keep a stale member. This applies in *both* propagation
            // modes: LQP only silences new-query discovery, never result
            // maintenance.
            let mut departures: Vec<(QueryId, bool)> = Vec::new();
            self.lqt.retain(|qid, e| {
                let keep = e.mon_region.contains(new_cell);
                if !keep && e.is_target {
                    departures.push((*qid, false));
                }
                keep
            });
            self.shadow.retain(|_, (_, mon)| mon.contains(new_cell));
            if !departures.is_empty() {
                self.telemetry
                    .add(agent_keys::RESULT_CHANGES, departures.len() as u64);
                self.send(
                    net,
                    Uplink::ResultUpdate {
                        oid: self.oid,
                        changes: departures,
                    },
                );
            }
            // Eagerly notify the server; under lazy propagation only focal
            // objects do (that is the whole point of LQP).
            if self.config.propagation == Propagation::Eager || self.has_mq {
                let motion = LinearMotion::new(pos, vel, t);
                self.send(
                    net,
                    Uplink::CellChange {
                        oid: self.oid,
                        prev_cell: prev,
                        new_cell,
                        motion,
                    },
                );
                self.advertised = Some(motion);
            }
        } else if self.has_mq {
            // Dead reckoning (focal objects only, §3.4).
            let needs_report = match &self.advertised {
                Some(adv) => adv.should_report(t, pos, self.config.delta),
                None => true,
            };
            if needs_report {
                let motion = LinearMotion::new(pos, vel, t);
                self.send(
                    net,
                    Uplink::VelocityReport {
                        oid: self.oid,
                        motion,
                    },
                );
                self.advertised = Some(motion);
            }
        }
    }

    /// Phase B of a time step: process downlink messages (installs,
    /// updates, removals, focal motion changes), then evaluate the LQT and
    /// report containment changes (§3.6).
    ///
    /// Generic over the inbox so callers can hand over a plain
    /// `&[Downlink]` slice or borrow out of `Arc`-shared deliveries
    /// (`inbox.iter().map(|m| &**m)`) without copying messages.
    pub fn tick_process<'a, I>(&mut self, t: f64, inbox: I, net: &mut Net)
    where
        I: IntoIterator<Item = &'a Downlink>,
    {
        let my_cell = self.config.grid.cell_of(self.pos);
        for msg in inbox {
            self.handle_downlink(t, my_cell, msg, net);
        }
        let start = std::time::Instant::now();
        self.evaluate(t, net);
        self.telemetry
            .wall_add(agent_keys::EVAL_NANOS, start.elapsed().as_nanos() as u64);
        self.telemetry
            .observe(agent_keys::LQT_SIZE, self.lqt.len() as f64);
    }

    /// Advances the agent one full time step in one call (motion phase
    /// followed by the processing phase). Deployments that interleave a
    /// server phase between the two — which lets motion broadcasts take
    /// effect within the same step — call [`tick_motion`](Self::tick_motion)
    /// and [`tick_process`](Self::tick_process) directly.
    pub fn tick<'a, I>(&mut self, t: f64, pos: Point, vel: Vec2, inbox: I, net: &mut Net)
    where
        I: IntoIterator<Item = &'a Downlink>,
    {
        self.tick_motion(t, pos, vel, net);
        self.tick_process(t, inbox, net);
    }

    fn send(&mut self, net: &mut Net, msg: Uplink) {
        self.telemetry.incr(agent_keys::UPLINKS_SENT);
        net.send_uplink(self.oid.node(), msg);
    }

    fn handle_downlink(&mut self, t: f64, my_cell: CellId, msg: &Downlink, net: &mut Net) {
        match msg {
            Downlink::QueryState { info } => self.apply_query_state(my_cell, info),
            Downlink::NewQueries { infos } => {
                for info in infos {
                    self.apply_query_state(my_cell, info);
                }
            }
            Downlink::VelocityChange {
                motion, qids, seq, ..
            } => {
                for qid in qids {
                    if let Some(e) = self.lqt.get_mut(qid) {
                        if *seq >= e.seq {
                            e.motion = *motion;
                            e.seq = *seq;
                        } else {
                            self.telemetry.incr(agent_keys::STALE_DISCARDED);
                        }
                    }
                    if let Some(s) = self.shadow.get_mut(qid) {
                        if *seq >= s.0 {
                            s.0 = *seq;
                        }
                    }
                }
            }
            Downlink::RemoveQuery { qid, epoch } => {
                // A removal is stale when we already hold newer state for
                // the query (a re-install after a lease teardown) or have
                // already applied this or a later removal.
                let newer_local = self.lqt.get(qid).is_some_and(|e| e.seq > *epoch)
                    || self.shadow.get(qid).is_some_and(|s| s.0 > *epoch)
                    || self.removed.get(qid).is_some_and(|&te| te >= *epoch);
                if newer_local {
                    self.telemetry.incr(agent_keys::STALE_DISCARDED);
                } else {
                    if self.lqt.remove(qid).is_some_and(|e| e.is_target) {
                        // Targethood ends with the query; the server's
                        // removal already cleared its result set.
                    }
                    self.shadow.remove(qid);
                    self.removed.insert(*qid, *epoch);
                }
            }
            Downlink::Heartbeat {
                epoch,
                cell_digests,
            } => {
                if *epoch <= self.last_heartbeat_epoch {
                    // Same beacon via another station or a duplication
                    // fault: already answered.
                    self.telemetry.incr(agent_keys::STALE_DISCARDED);
                } else {
                    let prev = self.last_heartbeat_epoch;
                    self.last_heartbeat_epoch = *epoch;
                    // Tombstones older than the previous beacon can no
                    // longer race any in-flight message.
                    self.removed.retain(|_, te| *te >= prev);
                    let expected = cell_digests
                        .iter()
                        .find(|(c, _)| *c == my_cell)
                        .map(|&(_, d)| d)
                        .unwrap_or(EMPTY_STATE_DIGEST);
                    // Resync on a digest mismatch — and, if focal, on every
                    // beacon: the resync re-asserts the (cell, motion) the
                    // server should already hold, repairing a dropped
                    // CellChange or VelocityReport we believe got through.
                    // Focal objects send their *advertised* motion, so a
                    // server that did receive it sees nothing new.
                    if self.local_digest() != expected || self.has_mq {
                        self.telemetry.incr(agent_keys::RESYNC_REQUESTS);
                        let motion = match &self.advertised {
                            Some(adv) if self.has_mq => *adv,
                            _ => LinearMotion::new(self.pos, self.vel, t),
                        };
                        let (oid, max_vel) = (self.oid, self.max_vel);
                        self.send(
                            net,
                            Uplink::Resync {
                                oid,
                                cell: my_cell,
                                motion,
                                max_vel,
                                fresh: false,
                            },
                        );
                    }
                    // Soft-state refresh doubling as the lease keepalive:
                    // every beacon is answered with the full local view —
                    // an *empty* view matters just as much, because a lost
                    // departure report (or a crash the server has not
                    // noticed) must not strand a stale member server-side.
                    self.telemetry.incr(agent_keys::LQT_SYNCS);
                    let entries: Vec<(QueryId, bool)> =
                        self.lqt.iter().map(|(&q, e)| (q, e.is_target)).collect();
                    let oid = self.oid;
                    self.send(net, Uplink::LqtSync { oid, entries });
                }
            }
            Downlink::CellSync { cell, infos, .. } => {
                self.apply_cell_sync(my_cell, *cell, infos);
            }
            Downlink::FocalNotify { is_focal } => {
                self.has_mq = *is_focal;
                if !is_focal {
                    self.advertised = None;
                }
            }
            Downlink::ResultDelta {
                qid,
                object,
                entered,
            } => {
                let set = self.own_results.entry(*qid).or_default();
                if *entered {
                    set.insert(*object);
                } else {
                    set.remove(object);
                }
            }
            Downlink::PositionRequest => {
                let motion = LinearMotion::new(self.pos, self.vel, t);
                self.send(
                    net,
                    Uplink::PositionReply {
                        oid: self.oid,
                        motion,
                        max_vel: self.max_vel,
                    },
                );
                self.advertised = Some(motion);
            }
        }
    }

    /// Installs, updates or removes the queries of a full-state group
    /// message, depending on whether our cell is inside the group's
    /// monitoring region and whether the filters accept us (§3.3, §3.5).
    fn apply_query_state(&mut self, my_cell: CellId, info: &QueryGroupInfo) {
        if info.mon_region.contains(my_cell) {
            for spec in info.queries.iter() {
                // A removal we already applied supersedes this install:
                // late duplicates must not resurrect dead queries.
                if self
                    .removed
                    .get(&spec.qid)
                    .is_some_and(|&te| spec.seq <= te)
                {
                    self.telemetry.incr(agent_keys::STALE_DISCARDED);
                    continue;
                }
                self.removed.remove(&spec.qid);
                if let Some(e) = self.lqt.get_mut(&spec.qid) {
                    if spec.seq < e.seq {
                        self.telemetry.incr(agent_keys::STALE_DISCARDED);
                        continue;
                    }
                    // Refresh motion and region state (idempotent on
                    // equal seq, so duplicated broadcasts are harmless).
                    e.seq = spec.seq;
                    e.motion = info.motion;
                    e.mon_region = info.mon_region;
                    e.region = spec.region;
                    e.focal_max_vel = info.max_vel;
                    e.slot = spec.slot;
                } else if spec.filter.matches(self.oid, &self.props) {
                    self.shadow.remove(&spec.qid);
                    self.lqt.insert(
                        spec.qid,
                        LqtEntry {
                            focal: info.focal,
                            motion: info.motion,
                            region: spec.region,
                            mon_region: info.mon_region,
                            slot: spec.slot,
                            focal_max_vel: info.max_vel,
                            is_target: false,
                            ptm: 0.0,
                            seq: spec.seq,
                        },
                    );
                } else {
                    // Filter rejected: shadow the query so our view of
                    // "queries covering my cell" (the heartbeat digest)
                    // stays aligned with the server's RQI.
                    let s = self
                        .shadow
                        .entry(spec.qid)
                        .or_insert((spec.seq, info.mon_region));
                    if spec.seq >= s.0 {
                        *s = (spec.seq, info.mon_region);
                    }
                }
            }
        } else {
            // Our cell is outside the (possibly shrunk or moved) monitoring
            // region: forget these queries, reporting any targethood we
            // lose so the server's result set stays clean.
            let mut departures: Vec<(QueryId, bool)> = Vec::new();
            for spec in info.queries.iter() {
                if self.lqt.get(&spec.qid).is_some_and(|e| spec.seq < e.seq) {
                    // Stale broadcast must not tear down newer state.
                    self.telemetry.incr(agent_keys::STALE_DISCARDED);
                    continue;
                }
                if let Some(e) = self.lqt.remove(&spec.qid) {
                    if e.is_target {
                        departures.push((spec.qid, false));
                    }
                }
                if self.shadow.get(&spec.qid).is_some_and(|s| spec.seq >= s.0) {
                    self.shadow.remove(&spec.qid);
                }
            }
            if !departures.is_empty() {
                self.telemetry
                    .add(agent_keys::RESULT_CHANGES, departures.len() as u64);
                self.pending_departures.extend(departures);
            }
        }
    }

    /// Authoritative rebuild of the local query view for `cell` from a
    /// server `CellSync` reply. Anything the server does not list is gone;
    /// listed queries install or refresh under the usual seq rules.
    fn apply_cell_sync(&mut self, my_cell: CellId, cell: CellId, infos: &[QueryGroupInfo]) {
        if cell != my_cell {
            // We moved between requesting the resync and its arrival; the
            // reply describes a cell we no longer occupy. The next
            // heartbeat re-checks the new cell.
            return;
        }
        let mut mentioned: Vec<QueryId> = infos
            .iter()
            .flat_map(|i| i.queries.iter().map(|s| s.qid))
            .collect();
        mentioned.sort_unstable();
        let mut departures: Vec<(QueryId, bool)> = Vec::new();
        self.lqt.retain(|qid, e| {
            let keep = mentioned.binary_search(qid).is_ok();
            if !keep && e.is_target {
                departures.push((*qid, false));
            }
            keep
        });
        self.shadow
            .retain(|qid, _| mentioned.binary_search(qid).is_ok());
        if !departures.is_empty() {
            self.telemetry
                .add(agent_keys::RESULT_CHANGES, departures.len() as u64);
            self.pending_departures.extend(departures);
        }
        for info in infos {
            if info.focal == self.oid {
                // The server still considers us focal; a lost FocalNotify
                // must not silence dead reckoning forever.
                self.has_mq = true;
            }
            self.apply_query_state(my_cell, info);
        }
    }

    /// The digest of this object's view of the queries covering its cell
    /// (installed ∪ filter-shadowed), compared against the server's
    /// per-cell RQI digest in heartbeats.
    fn local_digest(&self) -> u64 {
        let mut pairs: Vec<(QueryId, u64)> = self.lqt.iter().map(|(&q, e)| (q, e.seq)).collect();
        pairs.extend(self.shadow.iter().map(|(&q, s)| (q, s.0)));
        pairs.sort_unstable_by_key(|p| p.0);
        state_digest(pairs)
    }

    /// Rejoins the network after an offline window at time `t`. A `fresh`
    /// rejoin models a crash: all soft protocol state is gone and must be
    /// replayed by the server. A non-fresh rejoin keeps the LQT but prunes
    /// entries whose monitoring region no longer covers the (possibly
    /// changed) current cell. Either way the object announces itself with
    /// a `Resync` uplink so the server replays its cell's query state and
    /// completes any installs that were waiting for it.
    pub fn reconnect(&mut self, t: f64, pos: Point, vel: Vec2, fresh: bool, net: &mut Net) {
        self.pos = pos;
        self.vel = vel;
        self.curr_cell = self.config.grid.cell_of(pos);
        if fresh {
            self.lqt.clear();
            self.shadow.clear();
            self.removed.clear();
            self.own_results.clear();
            self.pending_departures.clear();
            self.has_mq = false;
        } else {
            let cell = self.curr_cell;
            let mut departures: Vec<(QueryId, bool)> = Vec::new();
            self.lqt.retain(|qid, e| {
                let keep = e.mon_region.contains(cell);
                if !keep && e.is_target {
                    departures.push((*qid, false));
                }
                keep
            });
            self.shadow.retain(|_, (_, mon)| mon.contains(cell));
            if !departures.is_empty() {
                self.telemetry
                    .add(agent_keys::RESULT_CHANGES, departures.len() as u64);
                self.pending_departures.extend(departures);
            }
        }
        let motion = LinearMotion::new(pos, vel, t);
        self.telemetry.incr(agent_keys::RESYNC_REQUESTS);
        let (oid, max_vel, cell) = (self.oid, self.max_vel, self.curr_cell);
        self.send(
            net,
            Uplink::Resync {
                oid,
                cell,
                motion,
                max_vel,
                fresh,
            },
        );
        self.advertised = Some(motion);
    }

    /// Evaluates all installed queries, reporting containment changes.
    fn evaluate(&mut self, t: f64, net: &mut Net) {
        if self.lqt.is_empty() && self.pending_departures.is_empty() {
            return;
        }
        self.scratch_changes.clear();
        self.scratch_changes.append(&mut self.pending_departures);
        let grouping = self.config.grouping;
        let safe_period = self.config.safe_period;
        let mut changed_focals: Vec<ObjectId> = Vec::new();
        if grouping {
            self.evaluate_grouped(t, safe_period, &mut changed_focals);
        } else {
            self.evaluate_plain(t, safe_period);
        }

        if self.scratch_changes.is_empty() {
            return;
        }
        if grouping {
            // One bitmap per focal group with changes (§4.1). Queries
            // beyond the 64-slot bitmap (NO_SLOT) report itemized below.
            let mut itemized: Vec<(QueryId, bool)> = Vec::new();
            for focal in changed_focals {
                let mut mask = 0u64;
                let mut targets = 0u64;
                for e in self.lqt.values() {
                    if e.focal == focal && e.slot < 64 {
                        mask |= 1u64 << e.slot;
                        if e.is_target {
                            targets |= 1u64 << e.slot;
                        }
                    }
                }
                if mask != 0 {
                    self.send(
                        net,
                        Uplink::GroupResultUpdate {
                            oid: self.oid,
                            focal,
                            mask,
                            targets,
                        },
                    );
                }
            }
            for &(qid, is_target) in &self.scratch_changes {
                // Itemize slotless queries and departures of entries that
                // are no longer in the LQT (region shrinks).
                if self.lqt.get(&qid).map(|e| e.slot >= 64).unwrap_or(true) {
                    itemized.push((qid, is_target));
                }
            }
            if !itemized.is_empty() {
                self.send(
                    net,
                    Uplink::ResultUpdate {
                        oid: self.oid,
                        changes: itemized,
                    },
                );
            }
        } else {
            let changes = std::mem::take(&mut self.scratch_changes);
            self.send(
                net,
                Uplink::ResultUpdate {
                    oid: self.oid,
                    changes,
                },
            );
        }
        self.scratch_changes.clear();
    }

    /// Evaluation without grouping: one independent prediction and
    /// containment check per LQT entry (plus safe-period skips).
    fn evaluate_plain(&mut self, t: f64, safe_period: bool) {
        // Accumulate locally; one telemetry flush per call keeps the hot
        // loop free of lock traffic.
        let mut evaluated = 0u64;
        let mut skipped_safe = 0u64;
        let mut changes = 0u64;
        for (qid, e) in self.lqt.iter_mut() {
            if safe_period && e.ptm > t {
                skipped_safe += 1;
                continue;
            }
            let center = e.motion.predict(t);
            evaluated += 1;
            let inside = e.region.contains_from(center, self.pos);
            if safe_period && !inside {
                // Worst case: both objects approach head-on at max speed.
                let closing = self.max_vel + e.focal_max_vel;
                if closing > 0.0 {
                    let gap = (self.pos.distance(center) - e.region.reach()).max(0.0);
                    e.ptm = t + gap / closing;
                } else {
                    e.ptm = t;
                }
            }
            if inside != e.is_target {
                e.is_target = inside;
                changes += 1;
                self.scratch_changes.push((*qid, inside));
            }
        }
        self.flush_eval_counters(evaluated, skipped_safe, 0, changes);
    }

    /// Grouped evaluation (§4.1): entries are processed per focal object,
    /// largest circle first, so one shared prediction serves the group and
    /// an "outside" verdict on a larger circle prunes the smaller ones.
    fn evaluate_grouped(&mut self, t: f64, safe_period: bool, changed_focals: &mut Vec<ObjectId>) {
        self.scratch_groups.clear();
        for (qid, e) in &self.lqt {
            self.scratch_groups.push((e.focal, *qid, e.region.reach()));
        }
        self.scratch_groups.sort_by(|a, b| {
            (a.0, b.2)
                .partial_cmp(&(b.0, a.2))
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut evaluated = 0u64;
        let mut skipped_safe = 0u64;
        let mut skipped_prune = 0u64;
        let mut changes = 0u64;
        let mut i = 0;
        let groups = std::mem::take(&mut self.scratch_groups);
        while i < groups.len() {
            let focal = groups[i].0;
            let mut j = i;
            // The focal position prediction is shared across the group.
            let mut predicted: Option<Point> = None;
            // Once outside a circle of radius r, we are outside every
            // smaller *circle* of the same group (regions share the
            // predicted center).
            let mut prune_below: Option<f64> = None;
            while j < groups.len() && groups[j].0 == focal {
                let qid = groups[j].1;
                let e = self.lqt.get_mut(&qid).expect("scratch entry in LQT");
                // Safe-period skip (§4.2).
                if safe_period && e.ptm > t {
                    skipped_safe += 1;
                    j += 1;
                    continue;
                }
                let center = *predicted.get_or_insert_with(|| e.motion.predict(t));
                let is_circle = matches!(e.region, QueryRegion::Circle { .. });
                let inside = if is_circle && prune_below.is_some_and(|r| e.region.reach() <= r) {
                    skipped_prune += 1;
                    false
                } else {
                    evaluated += 1;
                    let inside = e.region.contains_from(center, self.pos);
                    if is_circle && !inside {
                        prune_below = Some(e.region.reach());
                    }
                    inside
                };
                if safe_period && !inside {
                    // Worst case: both objects approach head-on at max speed.
                    let dist = self.pos.distance(center);
                    let closing = self.max_vel + e.focal_max_vel;
                    if closing > 0.0 {
                        let gap = (dist - e.region.reach()).max(0.0);
                        e.ptm = t + gap / closing;
                    } else {
                        e.ptm = t;
                    }
                }
                if inside != e.is_target {
                    e.is_target = inside;
                    changes += 1;
                    self.scratch_changes.push((qid, inside));
                    if !changed_focals.contains(&focal) {
                        changed_focals.push(focal);
                    }
                }
                j += 1;
            }
            i = j;
        }
        self.scratch_groups = groups;
        self.flush_eval_counters(evaluated, skipped_safe, skipped_prune, changes);
    }

    /// Flushes locally accumulated evaluation counters into the sink,
    /// touching the lock only for non-zero deltas.
    fn flush_eval_counters(
        &self,
        evaluated: u64,
        skipped_safe: u64,
        skipped_prune: u64,
        changes: u64,
    ) {
        for (key, n) in [
            (agent_keys::EVALUATED, evaluated),
            (agent_keys::SKIPPED_SAFE_PERIOD, skipped_safe),
            (agent_keys::SKIPPED_GROUP_PRUNE, skipped_prune),
            (agent_keys::RESULT_CHANGES, changes),
        ] {
            if n > 0 {
                self.telemetry.add(key, n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Agent behaviour is exercised end-to-end (with a real server and
    // network) in the crate-level integration tests; unit tests here focus
    // on isolated agent logic.
    use super::*;
    use crate::filter::Filter;
    use crate::messages::QuerySpec;
    use mobieyes_geo::{Grid, Rect};
    use mobieyes_net::BaseStationLayout;

    fn config() -> Arc<ProtocolConfig> {
        Arc::new(ProtocolConfig::new(Grid::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            10.0,
        )))
    }

    fn net() -> Net {
        Net::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            20.0,
        ))
    }

    fn group_info(qid: u32, radius: f64, focal_pos: Point, mon: GridRect) -> QueryGroupInfo {
        QueryGroupInfo {
            focal: ObjectId(100),
            motion: LinearMotion::at_rest(focal_pos, 0.0),
            max_vel: 0.03,
            mon_region: mon,
            queries: Arc::new(vec![QuerySpec {
                qid: QueryId(qid),
                region: QueryRegion::circle(radius),
                filter: Arc::new(Filter::True),
                slot: 0,
                seq: 1,
            }]),
        }
    }

    #[test]
    fn installs_query_when_inside_monitoring_region() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 4,
            y0: 4,
            x1: 6,
            y1: 6,
        };
        let info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert_eq!(agent.lqt_len(), 1);
        // Inside radius 3 of the focal: the agent reported itself a target.
        assert!(agent.is_target_of(QueryId(0)));
        assert_eq!(n.pending_uplinks(), 1);
    }

    #[test]
    fn ignores_query_outside_monitoring_region() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(15.0, 15.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 4,
            y0: 4,
            x1: 6,
            y1: 6,
        };
        let info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        agent.tick(
            0.0,
            Point::new(15.0, 15.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert_eq!(agent.lqt_len(), 0);
    }

    #[test]
    fn filter_gates_installation() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new().with("color", "blue"),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 4,
            y0: 4,
            x1: 6,
            y1: 6,
        };
        let mut info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        info.queries = Arc::new(vec![QuerySpec {
            qid: QueryId(0),
            region: QueryRegion::circle(3.0),
            filter: Arc::new(Filter::Eq("color".into(), "red".into())),
            slot: 0,
            seq: 1,
        }]);
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert_eq!(agent.lqt_len(), 0, "filter mismatch must not install");
    }

    #[test]
    fn cell_change_drops_stale_queries_and_notifies() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 4,
            y0: 4,
            x1: 6,
            y1: 6,
        };
        let info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert_eq!(agent.lqt_len(), 1);
        n.drain_uplinks();
        // Jump far outside the monitoring region.
        agent.tick(30.0, Point::new(95.0, 95.0), Vec2::ZERO, &[], &mut n);
        assert_eq!(
            agent.lqt_len(),
            0,
            "stale query must be dropped on cell change"
        );
        let ups = n.drain_uplinks();
        assert!(
            ups.iter()
                .any(|(_, m)| matches!(m, Uplink::CellChange { .. })),
            "eager mode reports cell changes"
        );
    }

    #[test]
    fn lazy_non_focal_does_not_report_cell_change() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let cfg = Arc::new(ProtocolConfig::new(grid).with_propagation(Propagation::Lazy));
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            cfg,
        );
        let mut n = net();
        agent.tick(0.0, Point::new(95.0, 95.0), Vec2::ZERO, &[], &mut n);
        assert_eq!(n.pending_uplinks(), 0, "lazy non-focal must stay silent");
    }

    #[test]
    fn focal_dead_reckoning_reports_on_deviation() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        // Become focal; the position request seeds the advertised motion.
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[
                Downlink::PositionRequest,
                Downlink::FocalNotify { is_focal: true },
            ],
            &mut n,
        );
        n.drain_uplinks();
        // Tiny drift below Δ=0.2: silent.
        agent.tick(30.0, Point::new(55.05, 55.0), Vec2::ZERO, &[], &mut n);
        assert_eq!(n.pending_uplinks(), 0);
        // Larger drift: velocity report.
        agent.tick(60.0, Point::new(56.0, 55.0), Vec2::ZERO, &[], &mut n);
        let ups = n.drain_uplinks();
        assert!(ups
            .iter()
            .any(|(_, m)| matches!(m, Uplink::VelocityReport { .. })));
    }

    #[test]
    fn containment_changes_are_differential() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        let info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert!(agent.is_target_of(QueryId(0)));
        let first = n.drain_uplinks();
        assert_eq!(first.len(), 1);
        // Still inside: no new report.
        agent.tick(30.0, Point::new(55.5, 55.0), Vec2::ZERO, &[], &mut n);
        assert_eq!(n.pending_uplinks(), 0);
        // Move outside radius 3 (but stay in the same grid cell).
        agent.tick(60.0, Point::new(59.0, 55.0), Vec2::ZERO, &[], &mut n);
        let ups = n.drain_uplinks();
        assert_eq!(ups.len(), 1);
        match &ups[0].1 {
            Uplink::ResultUpdate { changes, .. } => assert_eq!(changes, &vec![(QueryId(0), false)]),
            other => panic!("expected ResultUpdate, got {other:?}"),
        }
    }

    #[test]
    fn velocity_change_updates_prediction() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        let info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert!(agent.is_target_of(QueryId(0)));
        // The focal reports it is now moving away fast; by t=60 its
        // predicted position leaves us outside.
        let vc = Downlink::VelocityChange {
            focal: ObjectId(100),
            motion: LinearMotion::new(Point::new(55.0, 55.0), Vec2::new(0.2, 0.0), 0.0),
            qids: vec![QueryId(0)],
            seq: 2,
        };
        agent.tick(60.0, Point::new(55.0, 55.0), Vec2::ZERO, &[vc], &mut n);
        assert!(
            !agent.is_target_of(QueryId(0)),
            "prediction must use updated velocity"
        );
    }

    #[test]
    fn safe_period_skips_faraway_queries() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let cfg = Arc::new(ProtocolConfig::new(grid).with_safe_period(true));
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.001, // very slow object
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            cfg,
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        // Focal far away (distance ~42), slow (0.001/s + 0.001/s closing):
        // safe period is huge.
        let mut info = group_info(0, 3.0, Point::new(15.0, 15.0), mon);
        info.max_vel = 0.001;
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        let evaluated_first = agent.stats().evaluated;
        assert_eq!(evaluated_first, 1);
        for k in 1..=10 {
            agent.tick(
                k as f64 * 30.0,
                Point::new(55.0, 55.0),
                Vec2::ZERO,
                &[],
                &mut n,
            );
        }
        let s = agent.stats();
        assert_eq!(s.evaluated, 1, "all later evaluations must be skipped");
        assert_eq!(s.skipped_safe_period, 10);
    }

    #[test]
    fn group_prune_skips_smaller_radii() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let cfg = Arc::new(ProtocolConfig::new(grid).with_grouping(true));
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            cfg,
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        // Two queries, same focal, radii 5 and 2; we sit 20 away: outside
        // both. The radius-2 check must be pruned.
        let info = QueryGroupInfo {
            focal: ObjectId(100),
            motion: LinearMotion::at_rest(Point::new(35.0, 55.0), 0.0),
            max_vel: 0.03,
            mon_region: mon,
            queries: Arc::new(vec![
                QuerySpec {
                    qid: QueryId(0),
                    region: QueryRegion::circle(5.0),
                    filter: Arc::new(Filter::True),
                    slot: 0,
                    seq: 1,
                },
                QuerySpec {
                    qid: QueryId(1),
                    region: QueryRegion::circle(2.0),
                    filter: Arc::new(Filter::True),
                    slot: 1,
                    seq: 2,
                },
            ]),
        };
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        let s = agent.stats();
        assert_eq!(s.evaluated, 1, "only the largest radius is checked");
        assert_eq!(s.skipped_group_prune, 1);
        assert!(!agent.is_target_of(QueryId(0)));
        assert!(!agent.is_target_of(QueryId(1)));
    }

    #[test]
    fn grouped_result_reports_use_bitmaps() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let cfg = Arc::new(ProtocolConfig::new(grid).with_grouping(true));
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            cfg,
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        let info = QueryGroupInfo {
            focal: ObjectId(100),
            motion: LinearMotion::at_rest(Point::new(55.0, 55.0), 0.0),
            max_vel: 0.03,
            mon_region: mon,
            queries: Arc::new(vec![
                QuerySpec {
                    qid: QueryId(0),
                    region: QueryRegion::circle(5.0),
                    filter: Arc::new(Filter::True),
                    slot: 0,
                    seq: 1,
                },
                QuerySpec {
                    qid: QueryId(1),
                    region: QueryRegion::circle(2.0),
                    filter: Arc::new(Filter::True),
                    slot: 1,
                    seq: 2,
                },
            ]),
        };
        agent.tick(
            0.0,
            Point::new(56.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        let ups = n.drain_uplinks();
        assert_eq!(ups.len(), 1);
        match &ups[0].1 {
            Uplink::GroupResultUpdate {
                focal,
                mask,
                targets,
                ..
            } => {
                assert_eq!(*focal, ObjectId(100));
                assert_eq!(*mask, 0b11);
                // Distance 1: inside both radii 5 and 2.
                assert_eq!(*targets, 0b11);
            }
            other => panic!("expected GroupResultUpdate, got {other:?}"),
        }
    }

    #[test]
    fn remove_query_downlink_clears_entry() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        let info = group_info(3, 3.0, Point::new(55.0, 55.0), mon);
        agent.tick(
            0.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::QueryState { info }],
            &mut n,
        );
        assert_eq!(agent.lqt_len(), 1);
        agent.tick(
            30.0,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            &[Downlink::RemoveQuery {
                qid: QueryId(3),
                epoch: 2,
            }],
            &mut n,
        );
        assert_eq!(agent.lqt_len(), 0);
    }

    #[test]
    fn duplicate_installs_are_idempotent() {
        let cfg = config();
        let mut agent = MovingObjectAgent::new(
            ObjectId(1),
            Properties::new(),
            0.03,
            Point::new(55.0, 55.0),
            Vec2::ZERO,
            Arc::clone(&cfg),
        );
        let mut n = net();
        let mon = GridRect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        let info = group_info(0, 3.0, Point::new(55.0, 55.0), mon);
        let msgs = vec![
            Downlink::QueryState { info: info.clone() },
            Downlink::QueryState { info },
        ];
        agent.tick(0.0, Point::new(55.0, 55.0), Vec2::ZERO, &msgs, &mut n);
        assert_eq!(
            agent.lqt_len(),
            1,
            "duplicate broadcast must not duplicate state"
        );
        // is_target survived the duplicate (no flip-flop reports).
        let ups = n.drain_uplinks();
        assert_eq!(ups.len(), 1);
    }
}
