//! The MobiEyes server: a mediator between moving objects (paper §3).
//!
//! The server holds the focal object table (FOT), the server-side query
//! table (SQT) and the reverse query index (RQI). It installs queries,
//! relays significant focal-object position changes to the objects in the
//! affected monitoring regions through minimal base-station broadcast sets,
//! answers cell-change notifications with the queries of the new cell
//! (eager propagation), and maintains query results differentially from
//! object reports. It never computes containment itself — that work lives
//! on the moving objects.

use crate::codec;
use crate::config::{Propagation, ProtocolConfig};
use crate::filter::Filter;
use crate::journal::{JournalSink, LogRecord};
use crate::messages::{
    state_digest, ClusterMsg, Downlink, QueryGroupInfo, QueryMigration, QuerySpec, StubSeed, Uplink,
};
use crate::model::{ObjectId, QueryId};
use mobieyes_geo::{CellId, GridRect, LinearMotion, QueryRegion, Region};
use mobieyes_net::{NetworkSim, NodeId};
use mobieyes_telemetry::{EventKind, MetricsSnapshot, Telemetry};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The network type the protocol runs over.
pub type Net = NetworkSim<Uplink, Downlink>;

/// FOT row: last reported motion of a focal object plus the queries bound
/// to it.
#[derive(Debug, Clone)]
struct FotEntry {
    motion: LinearMotion,
    max_vel: f64,
    /// Queries bound to this focal object, kept sorted by id.
    queries: Vec<QueryId>,
    /// Bitmap of group slots in use (for grouped result reports).
    used_slots: u64,
    /// Server time of the last uplink heard from this object — the lease
    /// timestamp. A focal object silent for longer than `lease_secs` gets
    /// its queries torn down and re-announced.
    last_heard: f64,
}

/// The focal-object table, laid out for the million-object uplink path.
///
/// Every uplink probes the FOT at least once (`renew_lease`), so the old
/// `BTreeMap<ObjectId, FotEntry>` put a tree walk in front of each of the
/// hundreds of thousands of messages a large tick drains. Here the probe
/// is one array read: `slots[oid]` holds `row + 1` into a dense entry
/// vector (`0` = not focal). The entries stay sorted by object id so
/// every iteration — lease expiry, migration, the invariant checks —
/// walks the same deterministic ascending order the tree gave; inserts
/// and removals shift and re-index the tail, which is fine because they
/// only happen on install/teardown, never in the steady-state uplink
/// path.
#[derive(Debug, Default)]
struct FotTable {
    /// Object id → entry row + 1; `0` means absent. Grows to the highest
    /// focal object id seen (4 bytes per object of headroom).
    slots: Vec<u32>,
    /// `(oid, row)` pairs sorted by object id.
    entries: Vec<(ObjectId, FotEntry)>,
}

impl FotTable {
    #[inline]
    fn row(&self, oid: &ObjectId) -> Option<usize> {
        match self.slots.get(oid.0 as usize) {
            Some(&s) if s != 0 => Some((s - 1) as usize),
            _ => None,
        }
    }

    #[inline]
    fn contains_key(&self, oid: &ObjectId) -> bool {
        self.row(oid).is_some()
    }

    #[inline]
    fn get(&self, oid: &ObjectId) -> Option<&FotEntry> {
        self.row(oid).map(|i| &self.entries[i].1)
    }

    #[inline]
    fn get_mut(&mut self, oid: &ObjectId) -> Option<&mut FotEntry> {
        self.row(oid).map(move |i| &mut self.entries[i].1)
    }

    /// `BTreeMap::entry(oid).or_insert(default)` equivalent (the callers
    /// construct the default eagerly anyway).
    fn entry_or_insert(&mut self, oid: ObjectId, default: FotEntry) -> &mut FotEntry {
        if self.row(&oid).is_none() {
            let o = oid.0 as usize;
            if self.slots.len() <= o {
                self.slots.resize(o + 1, 0);
            }
            let pos = self.entries.partition_point(|(k, _)| *k < oid);
            self.entries.insert(pos, (oid, default));
            self.reindex_from(pos);
        }
        let i = self.row(&oid).expect("row just ensured");
        &mut self.entries[i].1
    }

    fn remove(&mut self, oid: &ObjectId) -> Option<FotEntry> {
        let i = self.row(oid)?;
        self.slots[oid.0 as usize] = 0;
        let (_, entry) = self.entries.remove(i);
        self.reindex_from(i);
        Some(entry)
    }

    fn reindex_from(&mut self, pos: usize) {
        for i in pos..self.entries.len() {
            let o = self.entries[i].0 .0 as usize;
            self.slots[o] = (i + 1) as u32;
        }
    }

    /// Rows in ascending object-id order.
    fn iter(&self) -> impl Iterator<Item = (&ObjectId, &FotEntry)> {
        self.entries.iter().map(|(o, e)| (o, e))
    }

    /// Focal object ids in ascending order.
    fn keys(&self) -> impl Iterator<Item = &ObjectId> {
        self.entries.iter().map(|(o, _)| o)
    }
}

impl std::ops::Index<&ObjectId> for FotTable {
    type Output = FotEntry;
    fn index(&self, oid: &ObjectId) -> &FotEntry {
        self.get(oid).expect("focal object in FOT")
    }
}

/// SQT row: everything the server knows about one installed query.
#[derive(Debug, Clone)]
struct SqtEntry {
    focal: ObjectId,
    region: QueryRegion,
    filter: Arc<Filter>,
    curr_cell: CellId,
    mon_region: GridRect,
    /// Group slot within the focal object's query set (bit index in grouped
    /// result reports).
    slot: u8,
    /// Server epoch at this query's last state change. Travels in every
    /// dissemination message so receivers can discard stale or duplicated
    /// broadcasts.
    seq: u64,
    /// Absolute expiry time in seconds; the paper's query examples carry
    /// durations ("during the next 2 hours"). `None` = no expiry.
    expires_at: Option<f64>,
    result: BTreeSet<ObjectId>,
}

/// A query whose installation is waiting for the focal object's position.
#[derive(Debug)]
struct PendingInstall {
    qid: QueryId,
    region: QueryRegion,
    filter: Arc<Filter>,
    expires_at: Option<f64>,
}

/// The versioned cell→partition assignment shared by every server of a
/// cluster.
///
/// Partitions own contiguous blocks of flat (row-major) cell indices:
/// `bounds` has `N + 1` entries and partition `p` owns `[bounds[p],
/// bounds[p+1])`. The bounds are atomics so a coordinator can *install* a
/// new split in place — every [`PartitionScope`] holding this table sees
/// the new ownership immediately — and each install bumps `generation`,
/// the stamp that makes rebalance state transfers replay-safe: a
/// [`ClusterMsg::RebalanceCells`] is valid only for the exact generation
/// it was cut for.
///
/// All accesses use relaxed ordering: installs happen only from the
/// single-threaded coordinator while no partition work is in flight
/// (under the epoch fence), so there is nothing to synchronize against.
#[derive(Debug)]
pub struct PartitionTable {
    bounds: Vec<AtomicUsize>,
    generation: AtomicU64,
}

impl PartitionTable {
    /// Builds generation 0 of the table from an initial bounds vector
    /// (`N + 1` ascending entries; see type docs).
    pub fn new(bounds: Vec<usize>) -> Self {
        assert!(bounds.len() >= 2, "bounds needs N + 1 entries, N >= 1");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be ascending"
        );
        PartitionTable {
            bounds: bounds.into_iter().map(AtomicUsize::new).collect(),
            generation: AtomicU64::new(0),
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The current map generation (0 until the first rebalance install).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// A plain copy of the current bounds vector.
    pub fn bounds_snapshot(&self) -> Vec<usize> {
        self.bounds
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The partition owning the given flat cell index.
    pub fn owner_of(&self, flat: usize) -> u32 {
        debug_assert!(flat < self.bounds.last().unwrap().load(Ordering::Relaxed));
        // partition_point over the atomic bounds.
        let (mut lo, mut hi) = (0usize, self.bounds.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.bounds[mid].load(Ordering::Relaxed) <= flat {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo - 1) as u32
    }

    /// The flat-index range a partition owns.
    pub fn owned_range(&self, partition: u32) -> std::ops::Range<usize> {
        let p = partition as usize;
        self.bounds[p].load(Ordering::Relaxed)..self.bounds[p + 1].load(Ordering::Relaxed)
    }

    /// Installs a new bounds vector in place and bumps the generation;
    /// returns the new generation. Must only be called by a cluster
    /// coordinator with the bus quiesced (see DESIGN.md §10).
    pub fn install(&self, bounds: &[usize]) -> u64 {
        assert_eq!(bounds.len(), self.bounds.len(), "partition count is fixed");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be ascending"
        );
        assert_eq!(
            bounds.last(),
            Some(&self.bounds.last().unwrap().load(Ordering::Relaxed)),
            "total cell count is fixed"
        );
        assert_eq!(bounds.first(), Some(&0));
        for (slot, &b) in self.bounds.iter().zip(bounds) {
            slot.store(b, Ordering::Relaxed);
        }
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// [`install`](Self::install), but forcing the generation to an exact
    /// value instead of bumping. Remote partition processes keep their own
    /// table copy; a coordinator syncs them by shipping its post-install
    /// bounds *and* generation, so generation-guarded transfers
    /// ([`ClusterMsg::RebalanceCells`], [`ClusterMsg::RecoverCells`])
    /// validate identically on both sides. The generation may only move
    /// forward (a respawned process at generation 0 catches up; a stale
    /// install must never rewind a newer table).
    pub fn install_at(&self, bounds: &[usize], generation: u64) {
        assert!(
            generation >= self.generation.load(Ordering::Relaxed),
            "table generation cannot rewind"
        );
        self.install(bounds);
        self.generation.store(generation, Ordering::Relaxed);
    }
}

/// The slice of the α-grid a partitioned server owns, plus the shared
/// epoch sequencer of the cluster.
///
/// A scoped server maintains FOT/SQT rows only for focal objects homed in
/// its cells, RQI entries only for its own cells, and *stub* rows for
/// border-straddling queries homed elsewhere. Ownership is resolved
/// through the shared [`PartitionTable`], which a coordinator may rewrite
/// between ticks (rebalancing). The epoch counter is shared by all
/// partitions so seq stamps remain a single global total order — the key
/// to byte-identical cross-partition runs.
#[derive(Debug, Clone)]
pub struct PartitionScope {
    partition: u32,
    table: Arc<PartitionTable>,
    epoch: Arc<AtomicU64>,
}

impl PartitionScope {
    pub fn new(partition: u32, table: Arc<PartitionTable>, epoch: Arc<AtomicU64>) -> Self {
        assert!(
            (partition as usize) < table.num_partitions(),
            "partition out of range"
        );
        PartitionScope {
            partition,
            table,
            epoch,
        }
    }

    pub fn partition(&self) -> u32 {
        self.partition
    }

    pub fn num_partitions(&self) -> usize {
        self.table.num_partitions()
    }

    /// The current generation of the shared partition table.
    pub fn generation(&self) -> u64 {
        self.table.generation()
    }

    /// The partition owning the given flat cell index.
    pub fn owner_of(&self, flat: usize) -> u32 {
        self.table.owner_of(flat)
    }

    pub fn owns(&self, flat: usize) -> bool {
        self.owned_range().contains(&flat)
    }

    pub fn owned_range(&self) -> std::ops::Range<usize> {
        self.table.owned_range(self.partition)
    }
}

/// Remote-region stub: the local image of a query homed on another
/// partition whose monitoring region straddles into our cells. Stubs back
/// our RQI entries so region broadcasts and digests stay complete; they
/// carry everything needed to rebuild `QueryGroupInfo` payloads locally.
#[derive(Debug, Clone)]
struct StubEntry {
    focal: ObjectId,
    motion: LinearMotion,
    max_vel: f64,
    mon_region: GridRect,
    region: QueryRegion,
    filter: Arc<Filter>,
    slot: u8,
    seq: u64,
}

/// Deterministic counters of server-side work; the wall-clock server-load
/// measurements of the figures sit on top of these in `mobieyes-sim`.
///
/// Since the telemetry redesign this is a *view* over the `srv.*` counters
/// of the unified registry; build one with [`Server::stats`] or
/// [`ServerStats::from_snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub uplinks_processed: u64,
    pub velocity_reports: u64,
    pub cell_changes: u64,
    pub result_updates: u64,
    pub broadcast_ops: u64,
    pub unicast_ops: u64,
    pub rqi_updates: u64,
}

/// The `srv.*` telemetry counter keys.
pub mod srv_keys {
    pub const UPLINKS: &str = "srv.uplinks_processed";
    pub const VELOCITY_REPORTS: &str = "srv.velocity_reports";
    pub const CELL_CHANGES: &str = "srv.cell_changes";
    pub const RESULT_UPDATES: &str = "srv.result_updates";
    pub const BROADCAST_OPS: &str = "srv.broadcast_ops";
    pub const UNICAST_OPS: &str = "srv.unicast_ops";
    pub const RQI_UPDATES: &str = "srv.rqi_updates";
    pub const HEARTBEATS: &str = "srv.heartbeats";
    pub const LEASES_EXPIRED: &str = "srv.leases_expired";
    pub const RESYNC_REPLIES: &str = "srv.resync_replies";
    pub const LQT_SYNCS: &str = "srv.lqt_syncs";
    pub const STALE_RESULTS_PURGED: &str = "srv.stale_results_purged";
}

impl ServerStats {
    /// Materializes the view from a metrics snapshot.
    pub fn from_snapshot(s: &MetricsSnapshot) -> Self {
        ServerStats {
            uplinks_processed: s.counter(srv_keys::UPLINKS),
            velocity_reports: s.counter(srv_keys::VELOCITY_REPORTS),
            cell_changes: s.counter(srv_keys::CELL_CHANGES),
            result_updates: s.counter(srv_keys::RESULT_UPDATES),
            broadcast_ops: s.counter(srv_keys::BROADCAST_OPS),
            unicast_ops: s.counter(srv_keys::UNICAST_OPS),
            rqi_updates: s.counter(srv_keys::RQI_UPDATES),
        }
    }
}

/// The MobiEyes server.
#[derive(Debug)]
pub struct Server {
    config: Arc<ProtocolConfig>,
    /// Flat-indexed (see [`FotTable`]); iterates in the same
    /// deterministic ascending order the old `BTreeMap` gave — lease
    /// expiry and byte-identical runs at any thread count depend on it.
    fot: FotTable,
    sqt: BTreeMap<QueryId, SqtEntry>,
    /// RQI: per grid cell (flat row-major index), the queries whose
    /// monitoring region intersects the cell.
    rqi: Vec<Vec<QueryId>>,
    pending: BTreeMap<ObjectId, Vec<PendingInstall>>,
    next_qid: u32,
    /// Monotone state-change counter. Bumped on every operation that
    /// changes disseminated query state; the bumped value is stamped on
    /// the affected queries (`SqtEntry::seq`) and on the outgoing
    /// messages.
    epoch: u64,
    /// Current server time, cached from the driver's heartbeat call; lease
    /// timestamps are taken from it.
    now: f64,
    /// Time of the last heartbeat broadcast.
    last_heartbeat: f64,
    telemetry: Telemetry,
    /// `Some` when this server is one partition of a cluster; `None` for
    /// the classic single-server deployment (whose code paths are
    /// untouched by the scope machinery).
    scope: Option<PartitionScope>,
    /// Remote-region stubs for border-straddling queries homed elsewhere.
    stubs: BTreeMap<QueryId, StubEntry>,
    /// Outgoing inter-server messages `(destination partition, msg)`,
    /// drained by the cluster coordinator after every operation.
    outbox: Vec<(u32, ClusterMsg)>,
    /// Reusable per-tick uplink drain buffer (cleared, not reallocated).
    uplink_scratch: Vec<(NodeId, Uplink)>,
    /// Per-tick memo for [`apply_cell_change_fresh`]: the `NewQueries`
    /// payload for a `(prev, new)` cell pair — keyed by clamped flat cell
    /// ids — is a pure function of disseminated server state, so the
    /// runs of non-focal cell changes that dominate a large tick reuse
    /// one computed payload instead of re-walking RQI/SQT/FOT per
    /// object. Any mutation of that state clears the memo (see
    /// [`invalidate_fresh_memo`](Self::invalidate_fresh_memo)), keeping
    /// replies byte-identical to point-wise application.
    fresh_memo: HashMap<(u32, u32), Vec<QueryGroupInfo>>,
    /// Durable input journal (see [`crate::journal`]); `None` = no
    /// persistence. Injected like `telemetry`.
    journal: Option<Arc<dyn JournalSink>>,
    /// Journal suppression depth: while > 0 the executing op was already
    /// journaled at an outer entry point (or is itself a replay), so the
    /// nested primitives it decomposes into must not double-log.
    jdepth: u32,
    /// Last shared-epoch floor written to the journal (scoped servers
    /// only) — deduplicates [`LogRecord::Floor`] records.
    journal_floor: u64,
}

impl Server {
    pub fn new(config: Arc<ProtocolConfig>) -> Self {
        let cells = config.grid.num_cells();
        Server {
            config,
            fot: FotTable::default(),
            sqt: BTreeMap::new(),
            rqi: vec![Vec::new(); cells],
            pending: BTreeMap::new(),
            next_qid: 0,
            epoch: 0,
            now: 0.0,
            last_heartbeat: f64::NEG_INFINITY,
            telemetry: Telemetry::new(),
            scope: None,
            stubs: BTreeMap::new(),
            outbox: Vec::new(),
            uplink_scratch: Vec::new(),
            fresh_memo: HashMap::new(),
            journal: None,
            jdepth: 0,
            journal_floor: 0,
        }
    }

    /// Redirects instrumentation into a shared telemetry sink (builder
    /// style). By default a private sink is used.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Scopes this server to one partition of a grid-sharded cluster
    /// (builder style). See [`PartitionScope`].
    pub fn with_scope(mut self, scope: PartitionScope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Attaches a durable input journal (builder style): every mutating
    /// entry point appends one [`LogRecord`] before executing, so replaying
    /// the log against a fresh server reproduces this one byte-for-byte.
    pub fn with_journal(mut self, sink: Arc<dyn JournalSink>) -> Self {
        self.set_journal(Some(sink));
        self
    }

    /// Attaches or detaches the journal sink at runtime (failover wipes
    /// and re-attaches per-partition logs).
    pub fn set_journal(&mut self, sink: Option<Arc<dyn JournalSink>>) {
        self.journal = sink;
        self.journal_floor = 0;
    }

    /// Redirects instrumentation into a (possibly shared) telemetry sink
    /// at runtime — the setter twin of [`with_telemetry`](Self::with_telemetry).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The partition scope, when this server is part of a cluster.
    pub fn scope(&self) -> Option<&PartitionScope> {
        self.scope.as_ref()
    }

    /// Rebinds a scoped server to a different [`PartitionScope`] of the
    /// same partition slot — the swap-in step after a journal replay,
    /// which runs against a *private* table/epoch so historical ownership
    /// resolves correctly mid-replay. The replayed epoch is carried into
    /// the new shared sequencer (`fetch_max`, so a fresher shared value
    /// wins).
    #[doc(hidden)]
    pub fn rebind_scope(&mut self, scope: PartitionScope) {
        let old = self.scope.as_ref().expect("rebind needs a scoped server");
        assert_eq!(
            old.partition(),
            scope.partition(),
            "rebind keeps the partition slot"
        );
        let replayed = old.epoch.load(Ordering::Relaxed);
        scope.epoch.fetch_max(replayed, Ordering::Relaxed);
        self.scope = Some(scope);
    }

    /// Raises the (shared) epoch to at least `floor` — the replay image of
    /// the per-request `fetch_max` the partition RPC protocol performs,
    /// driven by [`LogRecord::Floor`] records.
    #[doc(hidden)]
    pub fn raise_epoch(&mut self, floor: u64) {
        match &self.scope {
            Some(s) => {
                s.epoch.fetch_max(floor, Ordering::Relaxed);
            }
            None => self.epoch = self.epoch.max(floor),
        }
    }

    /// Whether the next journal-worthy op should append a record.
    #[inline]
    fn journaling(&self) -> bool {
        self.jdepth == 0 && self.journal.is_some()
    }

    /// Appends one record to the journal. Scoped servers first log the
    /// observed shared-epoch floor when it moved since the last append:
    /// sibling partitions advance the shared sequencer between our ops,
    /// and the seq stamps we write depend on it. Callers gate on
    /// [`journaling`](Self::journaling) so hot paths skip record
    /// construction when no journal is attached.
    fn jot(&mut self, rec: LogRecord) {
        debug_assert!(self.journaling());
        let Some(j) = &self.journal else { return };
        if let Some(s) = &self.scope {
            let observed = s.epoch.load(Ordering::Relaxed);
            if observed != self.journal_floor {
                self.journal_floor = observed;
                j.append(&LogRecord::Floor(observed));
            }
        }
        j.append(&rec);
    }

    /// Number of remote-region stubs currently installed.
    pub fn num_stubs(&self) -> usize {
        self.stubs.len()
    }

    /// Bumps the state-change epoch and returns the new value. Scoped
    /// servers share one atomic sequencer across the cluster so seq
    /// stamps form a single global order; the single-server path keeps
    /// its private counter.
    fn bump_epoch(&mut self) -> u64 {
        // Every disseminated state change flows through here, so the
        // cell-change payload memo can never serve a stale reply.
        self.fresh_memo.clear();
        match &self.scope {
            Some(s) => {
                let v = s.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                self.epoch = v;
                v
            }
            None => {
                self.epoch += 1;
                self.epoch
            }
        }
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Shared handle to the protocol configuration — what a twin server
    /// rebuilt from the durable log must be constructed with.
    pub fn config_arc(&self) -> Arc<ProtocolConfig> {
        Arc::clone(&self.config)
    }

    /// Server-side work counters, materialized from the telemetry
    /// registry. When the sink is shared the view aggregates everything
    /// recorded into it.
    pub fn stats(&self) -> ServerStats {
        ServerStats::from_snapshot(&self.telemetry.snapshot())
    }

    pub fn num_queries(&self) -> usize {
        self.sqt.len()
    }

    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.sqt.keys().copied()
    }

    /// Current result set of a query (object ids inside the region that
    /// satisfy the filter, as reported by the moving objects).
    pub fn query_result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.sqt.get(&qid).map(|e| &e.result)
    }

    /// The focal object of a query.
    pub fn query_focal(&self, qid: QueryId) -> Option<ObjectId> {
        self.sqt.get(&qid).map(|e| e.focal)
    }

    /// Queries whose monitoring region covers the given cell (RQI lookup).
    pub fn nearby_queries(&self, cell: CellId) -> &[QueryId] {
        &self.rqi[self.config.grid.flat_index(cell)]
    }

    /// Installs a moving query `(oid, region, filter)`. If the focal
    /// object's position is unknown the installation is deferred: the
    /// server unicasts a position request and completes the install when
    /// the `PositionReply` arrives. Returns the assigned query id.
    pub fn install_query(
        &mut self,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        net: &mut Net,
    ) -> QueryId {
        self.install_query_with_lifetime(focal, region, filter, None, net)
    }

    /// Installs a query that expires at an absolute time (the paper's
    /// "during the next 2 hours" / "next 20 minutes" query durations).
    /// Expired queries are torn down by [`expire_queries`](Self::expire_queries).
    pub fn install_query_with_lifetime(
        &mut self,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        expires_at: Option<f64>,
        net: &mut Net,
    ) -> QueryId {
        let qid = QueryId(self.next_qid);
        if self.journaling() {
            self.jot(LogRecord::InstallQuery {
                qid,
                focal,
                region,
                filter: filter.clone(),
                expires_at,
            });
        }
        self.next_qid += 1;
        let filter = Arc::new(filter);
        if self.fot.contains_key(&focal) {
            self.complete_install(qid, focal, region, filter, expires_at, net);
        } else {
            let q = self.pending.entry(focal).or_default();
            let first = q.is_empty();
            q.push(PendingInstall {
                qid,
                region,
                filter,
                expires_at,
            });
            if first {
                self.telemetry.incr(srv_keys::UNICAST_OPS);
                net.send_unicast(focal.node(), Downlink::PositionRequest);
            }
        }
        qid
    }

    /// Removes every query whose lifetime has ended (call once per time
    /// step with the current time). Returns the expired query ids.
    pub fn expire_queries(&mut self, now: f64, net: &mut Net) -> Vec<QueryId> {
        let expired = self.expired_query_ids(now);
        for &qid in &expired {
            self.telemetry
                .event(EventKind::QueryExpired { qid: qid.0 as u64 });
            self.remove_query(qid, net);
        }
        expired
    }

    /// Finishes installation once the focal object's motion is in the FOT.
    #[allow(clippy::too_many_arguments)]
    fn complete_install(
        &mut self,
        qid: QueryId,
        focal: ObjectId,
        region: QueryRegion,
        filter: Arc<Filter>,
        expires_at: Option<f64>,
        net: &mut Net,
    ) {
        let grid = self.config.grid.clone();
        let fot = self
            .fot
            .get_mut(&focal)
            .expect("complete_install requires FOT entry");
        let curr_cell = grid.cell_of(fot.motion.pos);
        let mon_region = grid.monitoring_region(curr_cell, region.reach());
        // Assign the lowest free group slot (bit index for bitmap reports).
        // A focal object with more than 64 queries exhausts the bitmap;
        // such queries get the NO_SLOT sentinel and fall back to itemized
        // result reports.
        let slot = (0..64)
            .find(|b| fot.used_slots & (1u64 << b) == 0)
            .map(|b| b as u8)
            .unwrap_or(crate::messages::NO_SLOT);
        if slot != crate::messages::NO_SLOT {
            fot.used_slots |= 1u64 << slot;
        }
        let newly_focal = fot.queries.is_empty();
        fot.queries.push(qid);
        fot.queries.sort_unstable();

        let seq = self.bump_epoch();
        // A pre-crash stub can survive here when a query lost with a dead
        // partition is re-installed on a partition that used to monitor
        // it: retire the stub's coverage before the fresh row takes over.
        if let Some(s) = self.stubs.remove(&qid) {
            self.rqi_remove(qid, &s.mon_region);
        }
        self.sqt.insert(
            qid,
            SqtEntry {
                focal,
                region,
                filter,
                curr_cell,
                mon_region,
                slot,
                seq,
                expires_at,
                result: BTreeSet::new(),
            },
        );
        self.rqi_insert(qid, &mon_region);
        self.emit_stub_update(qid, None);
        self.telemetry.event(EventKind::QueryInstalled {
            qid: qid.0 as u64,
            focal: focal.0 as u64,
        });

        // Make sure the focal object knows it must report motion changes.
        if newly_focal {
            self.telemetry.incr(srv_keys::UNICAST_OPS);
            net.send_unicast(focal.node(), Downlink::FocalNotify { is_focal: true });
        }
        // Ship the query to every object in the monitoring region.
        let info = self.group_info_for(qid);
        self.telemetry.add(
            srv_keys::BROADCAST_OPS,
            net.broadcast_region(
                &self.config.grid,
                &mon_region,
                Downlink::QueryState { info },
            ) as u64,
        );
    }

    /// Changes the spatial region of an installed query (e.g. adaptive
    /// radius control for k-nearest-neighbor layers). Recomputes the
    /// monitoring region, fixes the RQI and broadcasts the new query state
    /// to the union of the old and new monitoring regions — objects
    /// falling outside the new region uninstall (and report any lost
    /// targethood), objects newly covered install.
    pub fn update_query_region(
        &mut self,
        qid: QueryId,
        region: QueryRegion,
        net: &mut Net,
    ) -> bool {
        if self.journaling() {
            self.jot(LogRecord::UpdateRegion { qid, region });
        }
        let grid = self.config.grid.clone();
        if !self.sqt.contains_key(&qid) {
            return false;
        }
        let seq = self.bump_epoch();
        let e = self.sqt.get_mut(&qid).expect("checked above");
        let old_mon = e.mon_region;
        let new_mon = grid.monitoring_region(e.curr_cell, region.reach());
        e.region = region;
        e.mon_region = new_mon;
        e.seq = seq;
        self.rqi_remove(qid, &old_mon);
        self.rqi_insert(qid, &new_mon);
        self.emit_stub_update(qid, Some(old_mon));
        let combined = old_mon.union(&new_mon);
        let msg = Downlink::QueryState {
            info: self.group_info_for(qid),
        };
        self.telemetry.add(
            srv_keys::BROADCAST_OPS,
            net.broadcast_region(&grid, &combined, msg) as u64,
        );
        true
    }

    /// Removes a query from the system, notifying its monitoring region.
    pub fn remove_query(&mut self, qid: QueryId, net: &mut Net) -> bool {
        if self.journaling() {
            self.jot(LogRecord::RemoveQuery(qid));
        }
        let Some(entry) = self.sqt.remove(&qid) else {
            return false;
        };
        self.rqi_remove(qid, &entry.mon_region);
        if let Some(fot) = self.fot.get_mut(&entry.focal) {
            fot.queries.retain(|&q| q != qid);
            if entry.slot != crate::messages::NO_SLOT {
                fot.used_slots &= !(1u64 << entry.slot);
            }
            if fot.queries.is_empty() {
                self.fot.remove(&entry.focal);
                self.telemetry.incr(srv_keys::UNICAST_OPS);
                net.send_unicast(
                    entry.focal.node(),
                    Downlink::FocalNotify { is_focal: false },
                );
            }
        }
        let epoch = self.bump_epoch();
        self.emit_stub_remove(qid, entry.mon_region, epoch);
        self.telemetry.add(
            srv_keys::BROADCAST_OPS,
            net.broadcast_region(
                &self.config.grid,
                &entry.mon_region,
                Downlink::RemoveQuery { qid, epoch },
            ) as u64,
        );
        self.telemetry
            .event(EventKind::QueryRemoved { qid: qid.0 as u64 });
        true
    }

    /// Drains and processes all pending uplink messages. Call once per
    /// tick. The drain buffer is a persistent scratch — at million-object
    /// scale the tick applies its uplink batch without allocating.
    pub fn tick(&mut self, net: &mut Net) {
        let mut uplinks = std::mem::take(&mut self.uplink_scratch);
        net.drain_uplinks_into(&mut uplinks);
        for (from, msg) in uplinks.drain(..) {
            self.handle_uplink(from, msg, net);
        }
        self.uplink_scratch = uplinks;
    }

    /// Processes one uplink message.
    pub fn handle_uplink(&mut self, from: NodeId, msg: Uplink, net: &mut Net) {
        // Journal the uplink whole at the outermost dispatch; the
        // primitives it decomposes into below are suppressed.
        if self.journaling() {
            self.jot(LogRecord::Uplink {
                from: from.0,
                msg: msg.clone(),
            });
        }
        self.jdepth += 1;
        self.handle_uplink_inner(from, msg, net);
        self.jdepth -= 1;
    }

    fn handle_uplink_inner(&mut self, from: NodeId, msg: Uplink, net: &mut Net) {
        self.telemetry.incr(srv_keys::UPLINKS);
        // Any uplink from a focal object renews its lease.
        self.renew_lease(ObjectId(from.0));
        match msg {
            Uplink::VelocityReport { oid, motion } => {
                debug_assert_eq!(from.0, oid.0);
                self.on_velocity_report(oid, motion, net);
            }
            Uplink::CellChange {
                oid,
                prev_cell,
                new_cell,
                motion,
            } => {
                self.on_cell_change(oid, prev_cell, new_cell, motion, net);
            }
            Uplink::ResultUpdate { oid, changes } => {
                self.telemetry.incr(srv_keys::RESULT_UPDATES);
                for (qid, is_target) in changes {
                    self.apply_result_change(qid, oid, is_target, net);
                }
            }
            Uplink::GroupResultUpdate {
                oid,
                focal,
                mask,
                targets,
            } => {
                self.telemetry.incr(srv_keys::RESULT_UPDATES);
                self.apply_group_result_update(oid, focal, mask, targets, net);
            }
            Uplink::PositionReply {
                oid,
                motion,
                max_vel,
            } => {
                self.refresh_focal_motion(oid, motion, max_vel, true);
                if let Some(pending) = self.pending.remove(&oid) {
                    for p in pending {
                        self.complete_install(p.qid, oid, p.region, p.filter, p.expires_at, net);
                    }
                }
            }
            Uplink::Resync {
                oid,
                cell,
                motion,
                max_vel,
                fresh,
            } => {
                self.on_resync(oid, cell, motion, max_vel, fresh, net);
            }
            Uplink::LqtSync { oid, entries } => {
                self.on_lqt_sync(oid, entries, net);
            }
        }
    }

    /// Refreshes (or, when `insert` is set, creates) the FOT row for an
    /// object that reported its motion, keeping the fresher sample.
    #[doc(hidden)]
    pub fn refresh_focal_motion(
        &mut self,
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        insert: bool,
    ) {
        if self.journaling() {
            self.jot(LogRecord::RefreshFocalMotion {
                oid,
                motion,
                max_vel,
                insert,
            });
        }
        let now = self.now;
        // Focal motion is part of the cell-change payload but a refresh
        // does not bump the epoch, so drop the memo explicitly.
        self.fresh_memo.clear();
        if insert {
            self.fot.entry_or_insert(
                oid,
                FotEntry {
                    motion,
                    max_vel,
                    queries: Vec::new(),
                    used_slots: 0,
                    last_heard: now,
                },
            );
        }
        let mut refreshed: Option<(f64, Vec<QueryId>)> = None;
        if let Some(f) = self.fot.get_mut(&oid) {
            if motion.tm >= f.motion.tm {
                f.motion = motion;
                f.max_vel = max_vel;
                if !f.queries.is_empty() {
                    refreshed = Some((f.max_vel, f.queries.clone()));
                }
            }
            f.last_heard = now;
        }
        // Keep remote stubs' motion in step (seqs unchanged: a motion
        // refresh is not a disseminated state change).
        if self.scope.is_some() {
            if let Some((max_vel, queries)) = refreshed {
                let stamped: Vec<(QueryId, u64)> = queries
                    .iter()
                    .filter_map(|q| self.sqt.get(q).map(|e| (*q, e.seq)))
                    .collect();
                self.emit_stub_motion(oid, motion, max_vel, &stamped);
            }
        }
    }

    /// Reconnect / digest-mismatch handshake: refresh what we know about
    /// the object, purge it from results it can no longer vouch for when
    /// it restarted empty, complete any deferred installs, and replay the
    /// authoritative query state of its grid cell.
    fn on_resync(
        &mut self,
        oid: ObjectId,
        cell: CellId,
        motion: LinearMotion,
        max_vel: f64,
        fresh: bool,
        net: &mut Net,
    ) {
        // Only materialize a FOT row if an install is waiting on this
        // object; otherwise just refresh an existing one.
        let has_pending = self.pending.contains_key(&oid);
        let prior = self.fot.get(&oid).map(|f| (f.motion, f.queries.clone()));
        self.refresh_focal_motion(oid, motion, max_vel, has_pending);
        // Focal repair: a dropped CellChange or VelocityReport leaves our
        // view of this focal stale — and the focal, believing its report
        // arrived, would never re-send it. The resync carries the
        // authoritative (cell, motion); push whichever piece disagrees
        // back through the normal update machinery (a no-op when nothing
        // is stale, since focals resync with their advertised motion).
        if let Some((old_motion, queries)) = prior {
            if !queries.is_empty() {
                let stale_cell = queries
                    .iter()
                    .filter_map(|q| self.sqt.get(q))
                    .any(|e| e.curr_cell != cell);
                if stale_cell {
                    let prev = self.sqt[&queries[0]].curr_cell;
                    self.on_cell_change(oid, prev, cell, motion, net);
                } else if motion.tm > old_motion.tm {
                    self.on_velocity_report(oid, motion, net);
                }
            }
        }
        if fresh {
            // A crashed object lost its local state: its containment
            // reports are void until it re-evaluates.
            let stale = self.purge_object(oid);
            self.telemetry
                .add(srv_keys::STALE_RESULTS_PURGED, stale.len() as u64);
            for qid in stale {
                self.deliver_result_delta(qid, oid, false, net);
            }
        }
        if let Some(pending) = self.pending.remove(&oid) {
            for p in pending {
                self.complete_install(p.qid, oid, p.region, p.filter, p.expires_at, net);
            }
        }
        self.focal_reassert(oid, net);
        self.cell_sync_reply(oid, cell, net);
    }

    /// Removes `oid` from every local result set, returning the queries it
    /// was purged from (result deltas and counters are the caller's job).
    #[doc(hidden)]
    pub fn purge_object(&mut self, oid: ObjectId) -> Vec<QueryId> {
        if self.journaling() {
            self.jot(LogRecord::PurgeObject(oid));
        }
        self.sqt
            .iter_mut()
            .filter_map(|(&q, e)| e.result.remove(&oid).then_some(q))
            .collect()
    }

    /// Re-asserts focality: the original FocalNotify may have been lost
    /// (or wiped by a crash), which would silence dead reckoning.
    #[doc(hidden)]
    pub fn focal_reassert(&mut self, oid: ObjectId, net: &mut Net) {
        if self.journaling() {
            self.jot(LogRecord::FocalReassert(oid));
        }
        if self.fot.get(&oid).is_some_and(|f| !f.queries.is_empty()) {
            self.telemetry.incr(srv_keys::UNICAST_OPS);
            net.send_unicast(oid.node(), Downlink::FocalNotify { is_focal: true });
        }
    }

    /// Replays the authoritative query state of `cell` to a resyncing
    /// object.
    #[doc(hidden)]
    pub fn cell_sync_reply(&mut self, oid: ObjectId, cell: CellId, net: &mut Net) {
        if self.journaling() {
            self.jot(LogRecord::CellSyncReply { oid, cell });
        }
        let qids = self.rqi[self.config.grid.flat_index(cell)].clone();
        let infos: Vec<QueryGroupInfo> = self
            .group_queries(&{
                let mut sorted = qids;
                sorted.sort_unstable();
                sorted
            })
            .into_iter()
            .map(|g| self.group_info_for(g[0]))
            .collect();
        self.telemetry.incr(srv_keys::RESYNC_REPLIES);
        self.telemetry.incr(srv_keys::UNICAST_OPS);
        net.send_unicast(
            oid.node(),
            Downlink::CellSync {
                cell,
                epoch: self.current_epoch(),
                infos,
            },
        );
    }

    /// Soft-state refresh: reconcile every query's result membership for
    /// `oid` against the object's full local view. Queries the object does
    /// not mention are queries it does not hold — it cannot be a target.
    fn on_lqt_sync(&mut self, oid: ObjectId, entries: Vec<(QueryId, bool)>, net: &mut Net) {
        self.telemetry.incr(srv_keys::LQT_SYNCS);
        let mentioned: BTreeMap<QueryId, bool> = entries.into_iter().collect();
        let qids: Vec<QueryId> = self.sqt.keys().copied().collect();
        let mut deltas: Vec<(QueryId, bool)> = Vec::new();
        let mut stale = 0u64;
        for qid in qids {
            let is_target = mentioned.get(&qid).copied().unwrap_or(false);
            if self.lqt_reconcile_one(qid, oid, is_target) {
                if !is_target && !mentioned.contains_key(&qid) {
                    stale += 1;
                }
                deltas.push((qid, is_target));
            }
        }
        self.telemetry.add(srv_keys::STALE_RESULTS_PURGED, stale);
        for (qid, entered) in deltas {
            self.deliver_result_delta(qid, oid, entered, net);
        }
    }

    /// Reconciles one query's result membership for `oid`; returns whether
    /// the membership changed. Counters and delta delivery are the
    /// caller's job.
    #[doc(hidden)]
    pub fn lqt_reconcile_one(&mut self, qid: QueryId, oid: ObjectId, is_target: bool) -> bool {
        if self.journaling() {
            self.jot(LogRecord::LqtReconcile {
                qid,
                oid,
                is_target,
            });
        }
        let Some(e) = self.sqt.get_mut(&qid) else {
            return false;
        };
        if is_target {
            e.result.insert(oid)
        } else {
            e.result.remove(&oid)
        }
    }

    /// Runs the periodic fault-tolerance duties; the driver calls this
    /// once per time step with the current server time, before processing
    /// the tick's uplinks. No-op unless [`ProtocolConfig::fault_tolerant`].
    ///
    /// Every `heartbeat_secs` the server: (1) expires leases — focal
    /// objects silent for longer than `lease_secs` get their queries torn
    /// down (with tombstoned removal broadcasts) and re-announced through
    /// the position-request handshake; (2) retries the position request of
    /// every still-pending install (the original unicast may have been
    /// lost); (3) broadcasts a heartbeat through every base station with
    /// the current epoch and a per-cell digest of the RQI, against which
    /// objects verify their local query tables.
    pub fn heartbeat(&mut self, now: f64, net: &mut Net) {
        // One record covers the whole heartbeat — due-ness, lease expiry
        // and the nested query teardowns replay deterministically from the
        // same clock value.
        if self.journaling() {
            self.jot(LogRecord::Heartbeat(now));
        }
        self.jdepth += 1;
        self.heartbeat_inner(now, net);
        self.jdepth -= 1;
    }

    fn heartbeat_inner(&mut self, now: f64, net: &mut Net) {
        self.now = now;
        if !self.config.fault_tolerant() || now - self.last_heartbeat < self.config.heartbeat_secs {
            return;
        }
        self.last_heartbeat = now;
        self.telemetry.incr(srv_keys::HEARTBEATS);

        // (1) Lease expiry. Deterministic order via the BTreeMap.
        let expired = self.expired_leases();
        for (oid, qids) in expired {
            self.telemetry.incr(srv_keys::LEASES_EXPIRED);
            self.telemetry
                .event(EventKind::LeaseExpired { oid: oid.0 as u64 });
            for qid in qids {
                let (region, filter, expires_at) =
                    self.reinstall_info(qid).expect("leased query in SQT");
                self.remove_query(qid, net);
                // Re-announce under the same id; the install completes
                // when the object answers the position request below.
                self.pending.entry(oid).or_default().push(PendingInstall {
                    qid,
                    region,
                    filter,
                    expires_at,
                });
            }
        }

        // (2) Retry pending installs.
        let waiting: Vec<ObjectId> = self.pending.keys().copied().collect();
        for oid in waiting {
            self.telemetry.incr(srv_keys::UNICAST_OPS);
            net.send_unicast(oid.node(), Downlink::PositionRequest);
        }

        // (3) Digest beacon. A heartbeat is a state change of its own (it
        // demands an answer), so it bumps the epoch — objects use the
        // epoch to answer each beacon exactly once however many stations
        // they hear it from.
        let epoch = self.bump_epoch();
        let cell_digests = self.digest_cells();
        let sent = net.broadcast_all(Downlink::Heartbeat {
            epoch,
            cell_digests,
        });
        self.telemetry.add(srv_keys::BROADCAST_OPS, sent as u64);
    }

    /// Focal objects whose lease has lapsed, with their queries (in
    /// deterministic ascending order). Read-only; tear-down is the
    /// caller's job.
    #[doc(hidden)]
    pub fn expired_leases(&self) -> Vec<(ObjectId, Vec<QueryId>)> {
        let lease = self.config.lease_secs;
        let now = self.now;
        self.fot
            .iter()
            .filter(|(_, f)| !f.queries.is_empty() && now - f.last_heard > lease)
            .map(|(&oid, f)| (oid, f.queries.clone()))
            .collect()
    }

    /// What it takes to re-announce a query under the same id after a
    /// lease expiry.
    #[doc(hidden)]
    pub fn reinstall_info(&self, qid: QueryId) -> Option<(QueryRegion, Arc<Filter>, Option<f64>)> {
        self.sqt
            .get(&qid)
            .map(|e| (e.region, Arc::clone(&e.filter), e.expires_at))
    }

    /// Per-cell RQI digests over this server's (owned) cells, in ascending
    /// flat-index order. Stub-backed entries digest with their stub seq,
    /// which tracks the home partition's seq.
    #[doc(hidden)]
    pub fn digest_cells(&self) -> Vec<(CellId, u64)> {
        let grid = &self.config.grid;
        let mut cell_digests = Vec::new();
        for (idx, qids) in self.rqi.iter().enumerate() {
            if qids.is_empty() {
                continue;
            }
            let mut sorted = qids.clone();
            sorted.sort_unstable();
            let digest = state_digest(sorted.iter().map(|q| (*q, self.q_seq(*q))));
            cell_digests.push((grid.cell_at(idx), digest));
        }
        cell_digests
    }

    /// The current server epoch (monotone state-change counter; shared
    /// across the cluster when this server is a partition).
    pub fn current_epoch(&self) -> u64 {
        match &self.scope {
            Some(s) => s.epoch.load(Ordering::Relaxed),
            None => self.epoch,
        }
    }

    /// Advances the (shared) epoch on behalf of a cluster coordinator —
    /// the sequencing primitive behind the heartbeat beacon.
    #[doc(hidden)]
    pub fn bump_epoch_for_coordinator(&mut self) -> u64 {
        if self.journaling() {
            self.jot(LogRecord::BumpEpoch);
        }
        self.bump_epoch()
    }

    /// A focal object's dead-reckoning report: refresh the FOT and relay to
    /// the monitoring regions of its queries.
    #[doc(hidden)]
    pub fn on_velocity_report(&mut self, oid: ObjectId, motion: LinearMotion, net: &mut Net) {
        if self.journaling() {
            self.jot(LogRecord::VelocityReport { oid, motion });
        }
        self.telemetry.incr(srv_keys::VELOCITY_REPORTS);
        self.telemetry
            .event(EventKind::VelocityReport { oid: oid.0 as u64 });
        let Some(fot) = self.fot.get_mut(&oid) else {
            return; // Stale report from an object that is no longer focal.
        };
        fot.motion = motion;
        let max_vel = fot.max_vel;
        let queries = fot.queries.clone();
        // One epoch bump covers the whole report; every affected query is
        // stamped with it so receivers can discard stale duplicates.
        let seq = self.bump_epoch();
        let mut stamped: Vec<(QueryId, u64)> = Vec::new();
        for &qid in &queries {
            if let Some(e) = self.sqt.get_mut(&qid) {
                e.seq = seq;
                stamped.push((qid, seq));
            }
        }
        if self.scope.is_some() {
            self.emit_stub_motion(oid, motion, max_vel, &stamped);
        }
        for group in self.group_queries(&queries) {
            let mon_region = self.sqt[&group[0]].mon_region;
            let msg = match self.config.propagation {
                Propagation::Eager => Downlink::VelocityChange {
                    focal: oid,
                    motion,
                    qids: group.clone(),
                    seq,
                },
                // Lazy propagation expands velocity updates to full query
                // state so objects that recently changed cells can install.
                Propagation::Lazy => Downlink::QueryState {
                    info: self.group_info_for(group[0]),
                },
            };
            self.telemetry.add(
                srv_keys::BROADCAST_OPS,
                net.broadcast_region(&self.config.grid, &mon_region, msg) as u64,
            );
        }
    }

    /// An object crossed a grid cell boundary.
    fn on_cell_change(
        &mut self,
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        motion: LinearMotion,
        net: &mut Net,
    ) {
        self.telemetry.incr(srv_keys::CELL_CHANGES);
        self.apply_cell_change_focal(oid, new_cell, motion, net);
        self.apply_cell_change_fresh(oid, prev_cell, new_cell, motion, net);
    }

    /// Focal-object half of a cell change: recompute monitoring regions
    /// and push the new query state to the union of old and new regions.
    /// In a cluster this runs on the focal object's home partition (after
    /// any cross-border migration); the coordinator counts the cell
    /// change itself.
    #[doc(hidden)]
    pub fn apply_cell_change_focal(
        &mut self,
        oid: ObjectId,
        new_cell: CellId,
        motion: LinearMotion,
        net: &mut Net,
    ) {
        if self.journaling() {
            self.jot(LogRecord::CellChangeFocal {
                oid,
                new_cell,
                motion,
            });
        }
        let grid = self.config.grid.clone();
        let Some(fot) = self.fot.get_mut(&oid) else {
            return;
        };
        fot.motion = motion;
        let queries = fot.queries.clone();
        // One epoch bump for the whole cell change.
        let seq = self.bump_epoch();
        for &qid in &queries {
            if let Some(e) = self.sqt.get_mut(&qid) {
                e.seq = seq;
            }
        }
        // Group by (old region, new region): queries that travel
        // together must agree on both, otherwise each goes alone.
        // (Same old region does not always imply same new region: the
        // universe boundary clips monitoring regions asymmetrically.)
        let mut groups: BTreeMap<(GridRect, GridRect), Vec<QueryId>> = BTreeMap::new();
        for &qid in &queries {
            let e = &self.sqt[&qid];
            let old_region = e.mon_region;
            let new_region = grid.monitoring_region(new_cell, e.region.reach());
            let key = if self.config.grouping {
                (old_region, new_region)
            } else {
                // Degenerate per-query key: single-cell marker regions
                // distinct per query id keep every query separate.
                (
                    GridRect {
                        x0: qid.0,
                        y0: qid.0,
                        x1: qid.0,
                        y1: qid.0,
                    },
                    new_region,
                )
            };
            groups.entry(key).or_default().push(qid);
        }
        for ((_, _), group) in groups {
            let old_region = self.sqt[&group[0]].mon_region;
            let new_region = grid.monitoring_region(new_cell, self.sqt[&group[0]].region.reach());
            for &qid in &group {
                let e = self.sqt.get_mut(&qid).expect("grouped query in SQT");
                e.curr_cell = new_cell;
                e.mon_region = new_region;
            }
            for &qid in &group {
                self.rqi_remove(qid, &old_region);
                self.rqi_insert(qid, &new_region);
            }
            for &qid in &group {
                self.emit_stub_update(qid, Some(old_region));
            }
            let combined = old_region.union(&new_region);
            let msg = Downlink::QueryState {
                info: self.group_info_for(group[0]),
            };
            self.telemetry.add(
                srv_keys::BROADCAST_OPS,
                net.broadcast_region(&grid, &combined, msg) as u64,
            );
        }
    }

    /// Non-focal half of a cell change. Eager propagation: tell the object
    /// which queries are new in its cell. (Under lazy propagation only
    /// focal objects send cell changes, and we answer them too — they
    /// contacted us anyway.) In a cluster this runs on the partition
    /// owning `new_cell`; freshness is decided by the monitoring region
    /// (partition-independent), which on a single server agrees exactly
    /// with the `RQI[prev]` membership test by the RQI/SQT invariant.
    #[doc(hidden)]
    pub fn apply_cell_change_fresh(
        &mut self,
        oid: ObjectId,
        prev_cell: CellId,
        new_cell: CellId,
        motion: LinearMotion,
        net: &mut Net,
    ) {
        if self.journaling() {
            // The handler below never reads `motion`; it rides along so
            // the trajectory index covers non-focal objects too.
            self.jot(LogRecord::CellChangeFresh {
                oid,
                prev_cell,
                new_cell,
                motion,
            });
        }
        let grid = &self.config.grid;
        // The payload is a pure function of (prev_cell, new_cell) given the
        // disseminated query state, which only changes at memo-invalidation
        // chokepoints (epoch bumps, RQI edits, tick boundary). Under a batch
        // of uplinks many objects cross the same cell border, so cache the
        // built groups per (prev, new) pair — including negative results.
        let key = (
            grid.clamped_flat_index(prev_cell) as u32,
            grid.clamped_flat_index(new_cell) as u32,
        );
        if let Some(infos) = self.fresh_memo.get(&key) {
            if !infos.is_empty() {
                self.telemetry.incr(srv_keys::UNICAST_OPS);
                net.send_unicast(
                    oid.node(),
                    Downlink::NewQueries {
                        infos: infos.clone(),
                    },
                );
            }
            return;
        }
        let new_qids = &self.rqi[grid.flat_index(new_cell)];
        let fresh: Vec<QueryId> = new_qids
            .iter()
            .filter(|q| !self.q_mon(**q).is_some_and(|m| m.contains(prev_cell)))
            .copied()
            .collect();
        let infos: Vec<QueryGroupInfo> = self
            .group_queries(&fresh)
            .into_iter()
            .map(|g| self.group_info_for(g[0]))
            .collect();
        if !infos.is_empty() {
            self.telemetry.incr(srv_keys::UNICAST_OPS);
            net.send_unicast(
                oid.node(),
                Downlink::NewQueries {
                    infos: infos.clone(),
                },
            );
        }
        self.fresh_memo.insert(key, infos);
    }

    /// Splits a set of same-focal queries into dissemination groups. With
    /// grouping enabled, queries sharing focal *and* monitoring region
    /// travel together (the paper's "MQs with matching monitoring
    /// regions"); otherwise every query is its own group.
    fn group_queries(&self, qids: &[QueryId]) -> Vec<Vec<QueryId>> {
        if !self.config.grouping {
            return qids.iter().map(|&q| vec![q]).collect();
        }
        let mut groups: BTreeMap<(ObjectId, GridRect), Vec<QueryId>> = BTreeMap::new();
        for &qid in qids {
            let (focal, mon) = self
                .sqt
                .get(&qid)
                .map(|e| (e.focal, e.mon_region))
                .or_else(|| self.stubs.get(&qid).map(|s| (s.focal, s.mon_region)))
                .expect("grouped query in SQT or stub table");
            groups.entry((focal, mon)).or_default().push(qid);
        }
        groups.into_values().collect()
    }

    /// Builds the full dissemination payload for the group containing
    /// `qid` (the group is recomputed from current server state). On a
    /// cluster partition the query may be a remote-region stub; stubs of
    /// the same focal + monitoring region always travel together (the
    /// home partition updates them as one group), so the stub table can
    /// reconstruct the same group payload the home would build.
    fn group_info_for(&self, qid: QueryId) -> QueryGroupInfo {
        if let Some(e) = self.sqt.get(&qid) {
            let fot = &self.fot[&e.focal];
            let members: Vec<QueryId> = if self.config.grouping {
                fot.queries
                    .iter()
                    .filter(|q| self.sqt[q].mon_region == e.mon_region)
                    .copied()
                    .collect()
            } else {
                vec![qid]
            };
            let queries = members
                .iter()
                .map(|q| {
                    let s = &self.sqt[q];
                    QuerySpec {
                        qid: *q,
                        region: s.region,
                        filter: Arc::clone(&s.filter),
                        slot: s.slot,
                        seq: s.seq,
                    }
                })
                .collect();
            QueryGroupInfo {
                focal: e.focal,
                motion: fot.motion,
                max_vel: fot.max_vel,
                mon_region: e.mon_region,
                queries: Arc::new(queries),
            }
        } else {
            let e = &self.stubs[&qid];
            let members: Vec<QueryId> = if self.config.grouping {
                self.stubs
                    .iter()
                    .filter(|(_, s)| s.focal == e.focal && s.mon_region == e.mon_region)
                    .map(|(&q, _)| q)
                    .collect()
            } else {
                vec![qid]
            };
            let queries = members
                .iter()
                .map(|q| {
                    let s = &self.stubs[q];
                    QuerySpec {
                        qid: *q,
                        region: s.region,
                        filter: Arc::clone(&s.filter),
                        slot: s.slot,
                        seq: s.seq,
                    }
                })
                .collect();
            QueryGroupInfo {
                focal: e.focal,
                motion: e.motion,
                max_vel: e.max_vel,
                mon_region: e.mon_region,
                queries: Arc::new(queries),
            }
        }
    }

    /// Pushes one membership change to the query's focal object when
    /// result delivery is enabled (the paper's query examples expect the
    /// issuer to *see* the result: "give me the positions of those
    /// customers ... at each instance of time").
    #[doc(hidden)]
    pub fn deliver_result_delta(
        &mut self,
        qid: QueryId,
        oid: ObjectId,
        entered: bool,
        net: &mut Net,
    ) {
        if self.journaling() {
            self.jot(LogRecord::ResultDelta { qid, oid, entered });
        }
        if !self.config.deliver_results {
            return;
        }
        let Some(e) = self.sqt.get(&qid) else { return };
        self.telemetry.incr(srv_keys::UNICAST_OPS);
        net.send_unicast(
            e.focal.node(),
            Downlink::ResultDelta {
                qid,
                object: oid,
                entered,
            },
        );
    }

    /// Whether this server maintains the RQI row at flat index `idx`
    /// (always true for a single server; owned cells only on a cluster
    /// partition).
    fn owns_flat(idx: usize, owned: &Option<std::ops::Range<usize>>) -> bool {
        match owned {
            None => true,
            Some(r) => r.contains(&idx),
        }
    }

    fn owned_span(&self) -> Option<std::ops::Range<usize>> {
        self.scope.as_ref().map(|s| s.owned_range())
    }

    fn rqi_insert(&mut self, qid: QueryId, region: &GridRect) {
        self.fresh_memo.clear();
        let owned = self.owned_span();
        let grid = &self.config.grid;
        let mut touched = 0u64;
        for cell in region.iter() {
            let idx = grid.flat_index(cell);
            if !Self::owns_flat(idx, &owned) {
                continue;
            }
            touched += 1;
            if !self.rqi[idx].contains(&qid) {
                self.rqi[idx].push(qid);
            }
        }
        // Partitions tile the grid, so per-query RQI work summed across a
        // cluster equals the single server's `region.len()` exactly.
        self.telemetry.add(srv_keys::RQI_UPDATES, touched);
    }

    fn rqi_remove(&mut self, qid: QueryId, region: &GridRect) {
        self.fresh_memo.clear();
        let owned = self.owned_span();
        let grid = &self.config.grid;
        let mut touched = 0u64;
        for cell in region.iter() {
            let idx = grid.flat_index(cell);
            if !Self::owns_flat(idx, &owned) {
                continue;
            }
            touched += 1;
            self.rqi[idx].retain(|&q| q != qid);
        }
        self.telemetry.add(srv_keys::RQI_UPDATES, touched);
    }

    /// Monitoring region of a query, whether homed here or stubbed.
    fn q_mon(&self, qid: QueryId) -> Option<GridRect> {
        self.sqt
            .get(&qid)
            .map(|e| e.mon_region)
            .or_else(|| self.stubs.get(&qid).map(|s| s.mon_region))
    }

    /// Seq stamp of a query, whether homed here or stubbed.
    fn q_seq(&self, qid: QueryId) -> u64 {
        self.sqt
            .get(&qid)
            .map(|e| e.seq)
            .or_else(|| self.stubs.get(&qid).map(|s| s.seq))
            .unwrap_or_else(|| {
                panic!(
                    "RQI references {qid:?} on partition {:?} without an SQT row or stub",
                    self.scope.as_ref().map(|s| s.partition())
                )
            })
    }

    // --- Cluster support -------------------------------------------------
    //
    // The methods below exist for the `mobieyes-cluster` coordinator: it
    // decomposes each uplink into the same primitive operations the
    // single server performs, executed at the partitions owning the
    // affected state. They are `#[doc(hidden)]` — not part of the
    // protocol's public surface.

    /// Renews the lease of a focal object (any uplink from it counts).
    #[doc(hidden)]
    pub fn renew_lease(&mut self, oid: ObjectId) {
        if self.journaling() {
            self.jot(LogRecord::RenewLease(oid));
        }
        if let Some(f) = self.fot.get_mut(&oid) {
            f.last_heard = self.now;
        }
    }

    /// Sets the server clock (the single server does this in
    /// [`heartbeat`](Self::heartbeat); the cluster coordinator owns the
    /// heartbeat gate and pushes time down to every partition).
    #[doc(hidden)]
    pub fn set_time(&mut self, now: f64) {
        // Tick boundary: also the journal's group-flush point (the store
        // flushes buffered frames when it sees this record).
        if self.journaling() {
            self.jot(LogRecord::SetTime(now));
        }
        self.now = now;
        // Tick boundary: start the new tick's payload memo fresh.
        self.fresh_memo.clear();
    }

    #[doc(hidden)]
    pub fn has_focal(&self, oid: ObjectId) -> bool {
        self.fot.contains_key(&oid)
    }

    #[doc(hidden)]
    pub fn focal_motion(&self, oid: ObjectId) -> Option<LinearMotion> {
        self.fot.get(&oid).map(|f| f.motion)
    }

    #[doc(hidden)]
    pub fn focal_queries(&self, oid: ObjectId) -> Option<Vec<QueryId>> {
        self.fot.get(&oid).map(|f| f.queries.clone())
    }

    #[doc(hidden)]
    pub fn has_query(&self, qid: QueryId) -> bool {
        self.sqt.contains_key(&qid)
    }

    /// Current cell of a query homed on this server.
    #[doc(hidden)]
    pub fn query_cell(&self, qid: QueryId) -> Option<CellId> {
        self.sqt.get(&qid).map(|e| e.curr_cell)
    }

    /// Queries whose lifetime has ended (tear-down is the caller's job).
    #[doc(hidden)]
    pub fn expired_query_ids(&self, now: f64) -> Vec<QueryId> {
        self.sqt
            .iter()
            .filter(|(_, e)| e.expires_at.is_some_and(|t| t <= now))
            .map(|(&q, _)| q)
            .collect()
    }

    /// One membership flip of a `ResultUpdate`; returns whether the
    /// result actually changed (the delta is delivered if so).
    #[doc(hidden)]
    pub fn apply_result_change(
        &mut self,
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
        net: &mut Net,
    ) -> bool {
        if self.journaling() {
            self.jot(LogRecord::ResultChange {
                qid,
                oid,
                is_target,
            });
        }
        self.jdepth += 1;
        let changed = self.apply_result_change_inner(qid, oid, is_target, net);
        self.jdepth -= 1;
        changed
    }

    fn apply_result_change_inner(
        &mut self,
        qid: QueryId,
        oid: ObjectId,
        is_target: bool,
        net: &mut Net,
    ) -> bool {
        let Some(e) = self.sqt.get_mut(&qid) else {
            return false;
        };
        let changed = if is_target {
            e.result.insert(oid)
        } else {
            e.result.remove(&oid)
        };
        if changed {
            self.deliver_result_delta(qid, oid, is_target, net);
        }
        changed
    }

    /// Applies a bitmap result report for a whole query group (the
    /// `RESULT_UPDATES` counter is the caller's job).
    #[doc(hidden)]
    pub fn apply_group_result_update(
        &mut self,
        oid: ObjectId,
        focal: ObjectId,
        mask: u64,
        targets: u64,
        net: &mut Net,
    ) {
        if self.journaling() {
            self.jot(LogRecord::GroupResultUpdate {
                oid,
                focal,
                mask,
                targets,
            });
        }
        self.jdepth += 1;
        self.apply_group_result_update_inner(oid, focal, mask, targets, net);
        self.jdepth -= 1;
    }

    fn apply_group_result_update_inner(
        &mut self,
        oid: ObjectId,
        focal: ObjectId,
        mask: u64,
        targets: u64,
        net: &mut Net,
    ) {
        let qids: Vec<QueryId> = self
            .fot
            .get(&focal)
            .map(|f| f.queries.clone())
            .unwrap_or_default();
        for qid in qids {
            let Some(e) = self.sqt.get(&qid) else {
                continue;
            };
            if e.slot >= 64 {
                continue; // slotless queries report itemized
            }
            let bit = 1u64 << e.slot;
            if mask & bit == 0 {
                continue;
            }
            let is_target = targets & bit != 0;
            self.apply_result_change(qid, oid, is_target, net);
        }
    }

    /// Finishes a deferred install whose pending bookkeeping lives with
    /// the cluster coordinator. The focal object's FOT row must already
    /// be on this partition.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn complete_install_at(
        &mut self,
        qid: QueryId,
        focal: ObjectId,
        region: QueryRegion,
        filter: Arc<Filter>,
        expires_at: Option<f64>,
        net: &mut Net,
    ) {
        if self.journaling() {
            self.jot(LogRecord::CompleteInstall {
                qid,
                focal,
                region,
                filter: (*filter).clone(),
                expires_at,
            });
        }
        self.complete_install(qid, focal, region, filter, expires_at, net);
    }

    /// Drains the inter-server outbox: `(destination partition, message)`
    /// pairs in emission order.
    #[doc(hidden)]
    pub fn take_outbox(&mut self) -> Vec<(u32, ClusterMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Evicts a focal object and all its queries for migration to another
    /// partition, returning the `MigrateFocal` payload. Monitoring-region
    /// overlap with our own cells degrades to stubs — RQI rows and their
    /// counters are deliberately untouched, the region coverage itself
    /// did not change.
    #[doc(hidden)]
    pub fn extract_focal(&mut self, oid: ObjectId) -> Option<ClusterMsg> {
        if self.journaling() {
            self.jot(LogRecord::ExtractFocal(oid));
        }
        debug_assert!(self.scope.is_some(), "migration needs a scoped server");
        self.fresh_memo.clear();
        let owned = self.owned_span();
        let grid = self.config.grid.clone();
        let fot = self.fot.remove(&oid)?;
        let mut queries = Vec::new();
        for &qid in &fot.queries {
            let e = self.sqt.remove(&qid).expect("FOT query in SQT");
            let overlap = e
                .mon_region
                .iter()
                .any(|c| Self::owns_flat(grid.flat_index(c), &owned));
            if overlap {
                self.stubs.insert(
                    qid,
                    StubEntry {
                        focal: oid,
                        motion: fot.motion,
                        max_vel: fot.max_vel,
                        mon_region: e.mon_region,
                        region: e.region,
                        filter: Arc::clone(&e.filter),
                        slot: e.slot,
                        seq: e.seq,
                    },
                );
            }
            queries.push(QueryMigration {
                spec: QuerySpec {
                    qid,
                    region: e.region,
                    filter: e.filter,
                    slot: e.slot,
                    seq: e.seq,
                },
                curr_cell: e.curr_cell,
                mon_region: e.mon_region,
                expires_at: e.expires_at,
                result: e.result.into_iter().collect(),
            });
        }
        Some(ClusterMsg::MigrateFocal {
            oid,
            motion: fot.motion,
            max_vel: fot.max_vel,
            used_slots: fot.used_slots,
            last_heard: fot.last_heard,
            epoch: self.current_epoch(),
            queries,
        })
    }

    /// All focal objects with a FOT row on this partition, ascending.
    #[doc(hidden)]
    pub fn focal_ids(&self) -> Vec<ObjectId> {
        self.fot.keys().copied().collect()
    }

    /// The cell a focal object is homed by: the reported cell of its
    /// queries, falling back to the dead-reckoned position for query-less
    /// focals. Drives rehoming decisions during a rebalance.
    #[doc(hidden)]
    pub fn focal_anchor_cell(&self, oid: ObjectId) -> Option<CellId> {
        let f = self.fot.get(&oid)?;
        f.queries
            .first()
            .and_then(|q| self.sqt.get(q).map(|e| e.curr_cell))
            .or_else(|| Some(self.config.grid.cell_of(f.motion.pos)))
    }

    /// Cuts the verbatim RQI rows of `flats` — cells this partition just
    /// lost to a rebalance — into a [`ClusterMsg::RebalanceCells`]
    /// transfer, together with stub seeds for every query the rows name.
    /// Counter-neutral by design: the region coverage does not change,
    /// the rows only change hands. Returns `None` when every row is
    /// empty (nothing to transfer).
    #[doc(hidden)]
    pub fn export_cells(&mut self, flats: &[usize], generation: u64) -> Option<ClusterMsg> {
        if self.journaling() {
            self.jot(LogRecord::ExportCells {
                flats: flats.iter().map(|&f| f as u32).collect(),
                generation,
            });
        }
        debug_assert!(self.scope.is_some(), "rebalance needs a scoped server");
        let mut cells = Vec::new();
        let mut named: BTreeSet<QueryId> = BTreeSet::new();
        for &flat in flats {
            let row = std::mem::take(&mut self.rqi[flat]);
            if row.is_empty() {
                continue;
            }
            named.extend(row.iter().copied());
            cells.push((flat as u32, row));
        }
        if cells.is_empty() {
            return None;
        }
        let mut stubs = Vec::with_capacity(named.len());
        for qid in named {
            let seed = if let Some(e) = self.sqt.get(&qid) {
                let f = &self.fot[&e.focal];
                StubSeed {
                    focal: e.focal,
                    motion: f.motion,
                    max_vel: f.max_vel,
                    mon_region: e.mon_region,
                    spec: QuerySpec {
                        qid,
                        region: e.region,
                        filter: Arc::clone(&e.filter),
                        slot: e.slot,
                        seq: e.seq,
                    },
                }
            } else {
                let s = self
                    .stubs
                    .get(&qid)
                    .expect("RQI query in SQT or stub table");
                StubSeed {
                    focal: s.focal,
                    motion: s.motion,
                    max_vel: s.max_vel,
                    mon_region: s.mon_region,
                    spec: QuerySpec {
                        qid,
                        region: s.region,
                        filter: Arc::clone(&s.filter),
                        slot: s.slot,
                        seq: s.seq,
                    },
                }
            };
            stubs.push(seed);
        }
        Some(ClusterMsg::RebalanceCells {
            generation,
            epoch: self.current_epoch(),
            cells,
            stubs,
        })
    }

    /// Drops stubs whose monitoring region no longer overlaps this
    /// partition's (possibly just-shrunk) owned span. RQI rows are not
    /// touched — any overlapping rows already left with the rebalance
    /// transfer, so no owned row can still reference a pruned stub.
    #[doc(hidden)]
    pub fn prune_stubs(&mut self) {
        if self.journaling() {
            self.jot(LogRecord::PruneStubs);
        }
        let Some(owned) = self.owned_span() else {
            return;
        };
        let grid = self.config.grid.clone();
        self.stubs.retain(|_, s| {
            s.mon_region
                .iter()
                .any(|c| owned.contains(&grid.flat_index(c)))
        });
    }

    /// Applies one inter-server message. Every application is idempotent
    /// under replay (seq guards), so a duplicating fault plan on the
    /// server↔server links leaves state *and* telemetry untouched.
    #[doc(hidden)]
    pub fn apply_cluster_msg(&mut self, msg: &ClusterMsg) {
        if self.journaling() {
            self.jot(LogRecord::Cluster(msg.clone()));
        }
        // Stub/SQT/FOT state may change below; cheap to drop the memo
        // wholesale (cluster traffic is orders below uplink volume).
        self.fresh_memo.clear();
        match msg {
            ClusterMsg::MigrateFocal {
                oid,
                motion,
                max_vel,
                used_slots,
                last_heard,
                epoch: _,
                queries,
            } => {
                // The FOT row must materialize even for a query-less focal
                // (created by a PositionReply): its later cell changes
                // still drive the shared epoch, like on the single server.
                // `or_insert` keeps this idempotent under bus duplication.
                self.fot.entry_or_insert(
                    *oid,
                    FotEntry {
                        motion: *motion,
                        max_vel: *max_vel,
                        queries: Vec::new(),
                        used_slots: *used_slots,
                        last_heard: *last_heard,
                    },
                );
                for q in queries {
                    let qid = q.spec.qid;
                    // Replay guard: an already-applied (or newer) row wins.
                    if self.sqt.get(&qid).is_some_and(|e| e.seq >= q.spec.seq) {
                        continue;
                    }
                    self.stubs.remove(&qid);
                    self.sqt.insert(
                        qid,
                        SqtEntry {
                            focal: *oid,
                            region: q.spec.region,
                            filter: Arc::clone(&q.spec.filter),
                            curr_cell: q.curr_cell,
                            mon_region: q.mon_region,
                            slot: q.spec.slot,
                            seq: q.spec.seq,
                            expires_at: q.expires_at,
                            result: q.result.iter().copied().collect(),
                        },
                    );
                    let f = self.fot.get_mut(oid).expect("FOT row created above");
                    if !f.queries.contains(&qid) {
                        f.queries.push(qid);
                        f.queries.sort_unstable();
                    }
                }
                if let Some(f) = self.fot.get_mut(oid) {
                    if motion.tm >= f.motion.tm {
                        f.motion = *motion;
                        f.max_vel = *max_vel;
                    }
                    f.used_slots = *used_slots;
                    f.last_heard = f.last_heard.max(*last_heard);
                }
            }
            ClusterMsg::StubUpdate {
                focal,
                motion,
                max_vel,
                curr_cell: _,
                mon_region,
                old_mon,
                spec,
            } => {
                // Home rows are authoritative; stale or replayed stub
                // updates are dropped whole so RQI counters stay exact.
                if self.sqt.contains_key(&spec.qid) {
                    return;
                }
                if self.stubs.get(&spec.qid).is_some_and(|s| s.seq >= spec.seq) {
                    return;
                }
                // Our own stub records exactly the coverage we previously
                // inserted, so it wins over the sender's `old_mon`: after a
                // crash re-install the new home sends `None` (the pre-crash
                // region died with the old home), yet our rows still exist.
                let prev = self.stubs.get(&spec.qid).map(|s| s.mon_region);
                if let Some(old) = prev.as_ref().or(old_mon.as_ref()) {
                    self.rqi_remove(spec.qid, old);
                }
                self.rqi_insert(spec.qid, mon_region);
                let owned = self.owned_span();
                let grid = &self.config.grid;
                let overlap = mon_region
                    .iter()
                    .any(|c| Self::owns_flat(grid.flat_index(c), &owned));
                if overlap {
                    self.stubs.insert(
                        spec.qid,
                        StubEntry {
                            focal: *focal,
                            motion: *motion,
                            max_vel: *max_vel,
                            mon_region: *mon_region,
                            region: spec.region,
                            filter: Arc::clone(&spec.filter),
                            slot: spec.slot,
                            seq: spec.seq,
                        },
                    );
                } else {
                    self.stubs.remove(&spec.qid);
                }
            }
            ClusterMsg::StubMotion {
                focal: _,
                motion,
                max_vel,
                qids,
            } => {
                for (qid, seq) in qids {
                    if let Some(s) = self.stubs.get_mut(qid) {
                        if *seq >= s.seq {
                            s.motion = *motion;
                            s.max_vel = *max_vel;
                            s.seq = *seq;
                        }
                    }
                }
            }
            ClusterMsg::StubRemove {
                qid,
                mon_region,
                epoch: _,
            } => {
                if self.stubs.remove(qid).is_some() {
                    self.rqi_remove(*qid, mon_region);
                }
            }
            ClusterMsg::RebalanceCells {
                generation,
                epoch: _,
                cells,
                stubs,
            } => {
                // A transfer is valid only for the exact map generation it
                // was cut for: anything stale (or replayed across a later
                // install) is dropped whole.
                let Some(scope) = &self.scope else {
                    return;
                };
                if *generation != scope.generation() {
                    return;
                }
                for (flat, qids) in cells {
                    // Verbatim assignment preserves the home insertion
                    // order (which drives fresh-query reply ordering) and
                    // is idempotent under bus duplication. No RQI counter:
                    // coverage did not change, the row changed hands.
                    self.rqi[*flat as usize] = qids.clone();
                }
                for s in stubs {
                    let qid = s.spec.qid;
                    if self.sqt.contains_key(&qid) {
                        continue; // homed here — the row resolves locally
                    }
                    if self.stubs.get(&qid).is_some_and(|e| e.seq >= s.spec.seq) {
                        continue;
                    }
                    self.stubs.insert(
                        qid,
                        StubEntry {
                            focal: s.focal,
                            motion: s.motion,
                            max_vel: s.max_vel,
                            mon_region: s.mon_region,
                            region: s.spec.region,
                            filter: Arc::clone(&s.spec.filter),
                            slot: s.spec.slot,
                            seq: s.spec.seq,
                        },
                    );
                }
            }
            ClusterMsg::RecoverCells {
                generation,
                epoch: _,
                cells,
            } => {
                // An adoption is valid only for the exact map generation
                // the failover fence installed — stale or replayed copies
                // are dropped whole, like a rebalance transfer.
                let Some(scope) = &self.scope else {
                    return;
                };
                if *generation != scope.generation() {
                    return;
                }
                // The previous owner's rows died with it. Rebuild each
                // adopted row from what this partition already knows — its
                // home rows and stubs whose monitoring regions reach the
                // cell, ascending qid (post-crash there is no surviving
                // row order to preserve; ascending is deterministic at any
                // thread count) — and let agent resyncs repopulate the
                // rest. A pure function of the current tables, so replays
                // are no-ops. No RQI counter: this repairs coverage the
                // region bookkeeping already accounts for.
                let grid = self.config.grid.clone();
                for &flat in cells {
                    let cell = grid.cell_from_flat(flat as usize);
                    let mut row: Vec<QueryId> = Vec::new();
                    for (&qid, e) in &self.sqt {
                        if e.mon_region.contains(cell) {
                            row.push(qid);
                        }
                    }
                    for (&qid, s) in &self.stubs {
                        if s.mon_region.contains(cell) && !row.contains(&qid) {
                            row.push(qid);
                        }
                    }
                    row.sort_unstable();
                    self.rqi[flat as usize] = row;
                }
            }
        }
    }

    /// Queues a `StubUpdate` for every other partition overlapping the
    /// query's (new ∪ old) monitoring region.
    fn emit_stub_update(&mut self, qid: QueryId, old_mon: Option<GridRect>) {
        let Some(scope) = self.scope.clone() else {
            return;
        };
        let (msg, owners) = {
            let e = &self.sqt[&qid];
            let fot = &self.fot[&e.focal];
            let msg = ClusterMsg::StubUpdate {
                focal: e.focal,
                motion: fot.motion,
                max_vel: fot.max_vel,
                curr_cell: e.curr_cell,
                mon_region: e.mon_region,
                old_mon,
                spec: QuerySpec {
                    qid,
                    region: e.region,
                    filter: Arc::clone(&e.filter),
                    slot: e.slot,
                    seq: e.seq,
                },
            };
            let grid = &self.config.grid;
            let mut owners: BTreeSet<u32> = BTreeSet::new();
            for cell in e.mon_region.iter() {
                owners.insert(scope.owner_of(grid.flat_index(cell)));
            }
            if let Some(old) = &old_mon {
                for cell in old.iter() {
                    owners.insert(scope.owner_of(grid.flat_index(cell)));
                }
            }
            owners.remove(&scope.partition());
            (msg, owners)
        };
        for p in owners {
            self.outbox.push((p, msg.clone()));
        }
    }

    /// Queues a `StubRemove` for every other partition overlapping the
    /// removed query's monitoring region.
    fn emit_stub_remove(&mut self, qid: QueryId, mon_region: GridRect, epoch: u64) {
        let Some(scope) = self.scope.clone() else {
            return;
        };
        let grid = &self.config.grid;
        let mut owners: BTreeSet<u32> = BTreeSet::new();
        for cell in mon_region.iter() {
            owners.insert(scope.owner_of(grid.flat_index(cell)));
        }
        owners.remove(&scope.partition());
        for p in owners {
            self.outbox.push((
                p,
                ClusterMsg::StubRemove {
                    qid,
                    mon_region,
                    epoch,
                },
            ));
        }
    }

    /// Queues per-partition `StubMotion` messages for the given freshly
    /// stamped queries of a focal object.
    fn emit_stub_motion(
        &mut self,
        oid: ObjectId,
        motion: LinearMotion,
        max_vel: f64,
        stamped: &[(QueryId, u64)],
    ) {
        let Some(scope) = self.scope.clone() else {
            return;
        };
        if stamped.is_empty() {
            return;
        }
        let grid = self.config.grid.clone();
        let mut per: BTreeMap<u32, Vec<(QueryId, u64)>> = BTreeMap::new();
        for &(qid, seq) in stamped {
            let Some(mon) = self.q_mon(qid) else {
                continue;
            };
            let mut owners: BTreeSet<u32> = BTreeSet::new();
            for cell in mon.iter() {
                owners.insert(scope.owner_of(grid.flat_index(cell)));
            }
            owners.remove(&scope.partition());
            for p in owners {
                per.entry(p).or_default().push((qid, seq));
            }
        }
        for (p, qids) in per {
            self.outbox.push((
                p,
                ClusterMsg::StubMotion {
                    focal: oid,
                    motion,
                    max_vel,
                    qids,
                },
            ));
        }
    }

    // --- Journal replay & checkpointing ----------------------------------

    /// Maximum speed of a focal object, as last reported.
    #[doc(hidden)]
    pub fn focal_max_vel(&self, oid: ObjectId) -> Option<f64> {
        self.fot.get(&oid).map(|f| f.max_vel)
    }

    /// Applies one journal record — the replay image of the mutating entry
    /// point that wrote it. Journaling is suppressed for the duration, so
    /// replaying against a server with a sink attached does not re-log.
    ///
    /// Replay must start from the newest [`LogRecord::Checkpoint`] of a
    /// compacted log (see `mobieyes-store`): records before it reference
    /// state the checkpoint subsumes.
    pub fn apply_log_record(
        &mut self,
        rec: &LogRecord,
        net: &mut Net,
    ) -> Result<(), crate::codec::DecodeError> {
        self.jdepth += 1;
        let r = self.apply_log_record_inner(rec, net);
        self.jdepth -= 1;
        r
    }

    fn apply_log_record_inner(
        &mut self,
        rec: &LogRecord,
        net: &mut Net,
    ) -> Result<(), crate::codec::DecodeError> {
        match rec {
            LogRecord::Meta { .. } => {} // provenance; validated by the reader
            LogRecord::Floor(v) => self.raise_epoch(*v),
            LogRecord::SetTime(t) => self.set_time(*t),
            LogRecord::Heartbeat(t) => self.heartbeat(*t, net),
            LogRecord::Uplink { from, msg } => self.handle_uplink(NodeId(*from), msg.clone(), net),
            LogRecord::InstallQuery {
                qid,
                focal,
                region,
                filter,
                expires_at,
            } => {
                let got = self.install_query_with_lifetime(
                    *focal,
                    *region,
                    filter.clone(),
                    *expires_at,
                    net,
                );
                debug_assert_eq!(got, *qid, "replayed install drifted off the journaled qid");
            }
            LogRecord::CompleteInstall {
                qid,
                focal,
                region,
                filter,
                expires_at,
            } => self.complete_install_at(
                *qid,
                *focal,
                *region,
                Arc::new(filter.clone()),
                *expires_at,
                net,
            ),
            LogRecord::RemoveQuery(qid) => {
                self.remove_query(*qid, net);
            }
            LogRecord::UpdateRegion { qid, region } => {
                self.update_query_region(*qid, *region, net);
            }
            LogRecord::RenewLease(oid) => self.renew_lease(*oid),
            LogRecord::VelocityReport { oid, motion } => {
                self.on_velocity_report(*oid, *motion, net)
            }
            LogRecord::CellChangeFocal {
                oid,
                new_cell,
                motion,
            } => self.apply_cell_change_focal(*oid, *new_cell, *motion, net),
            LogRecord::CellChangeFresh {
                oid,
                prev_cell,
                new_cell,
                motion,
            } => self.apply_cell_change_fresh(*oid, *prev_cell, *new_cell, *motion, net),
            LogRecord::ResultChange {
                qid,
                oid,
                is_target,
            } => {
                self.apply_result_change(*qid, *oid, *is_target, net);
            }
            LogRecord::GroupResultUpdate {
                oid,
                focal,
                mask,
                targets,
            } => self.apply_group_result_update(*oid, *focal, *mask, *targets, net),
            LogRecord::RefreshFocalMotion {
                oid,
                motion,
                max_vel,
                insert,
            } => self.refresh_focal_motion(*oid, *motion, *max_vel, *insert),
            LogRecord::PurgeObject(oid) => {
                self.purge_object(*oid);
            }
            LogRecord::ResultDelta { qid, oid, entered } => {
                self.deliver_result_delta(*qid, *oid, *entered, net)
            }
            LogRecord::LqtReconcile {
                qid,
                oid,
                is_target,
            } => {
                self.lqt_reconcile_one(*qid, *oid, *is_target);
            }
            LogRecord::FocalReassert(oid) => self.focal_reassert(*oid, net),
            LogRecord::CellSyncReply { oid, cell } => self.cell_sync_reply(*oid, *cell, net),
            LogRecord::ExtractFocal(oid) => {
                self.extract_focal(*oid);
            }
            LogRecord::Cluster(msg) => self.apply_cluster_msg(msg),
            LogRecord::ExportCells { flats, generation } => {
                let flats: Vec<usize> = flats.iter().map(|&f| f as usize).collect();
                self.export_cells(&flats, *generation);
            }
            LogRecord::PruneStubs => self.prune_stubs(),
            LogRecord::BumpEpoch => {
                self.bump_epoch_for_coordinator();
            }
            LogRecord::Bounds { generation, bounds } => {
                if let Some(s) = &self.scope {
                    let bounds: Vec<usize> = bounds.iter().map(|&b| b as usize).collect();
                    s.table.install_at(&bounds, *generation);
                }
            }
            LogRecord::Checkpoint(bytes) => self.restore_checkpoint(bytes)?,
        }
        Ok(())
    }

    /// Serializes the complete server state — the payload of a
    /// [`LogRecord::Checkpoint`]. Transient per-op buffers (outbox, uplink
    /// scratch, payload memo) are excluded: checkpoints are cut at
    /// quiesced tick boundaries where they are empty, and
    /// [`restore_checkpoint`](Self::restore_checkpoint) clears them.
    ///
    /// The final 8 bytes are the *observed* (shared) epoch, which sibling
    /// partitions advance independently; [`state_digest`](Self::state_digest)
    /// excludes them so a replayed partition — whose private sequencer only
    /// saw the floors its own ops observed — digests equal to its live twin.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        use crate::codec::Put;
        let mut out = Vec::new();
        out.put_u32_le(self.next_qid);
        out.put_u64_le(self.epoch);
        out.put_f64_le(self.now);
        out.put_f64_le(self.last_heartbeat);

        out.put_u32_le(self.fot.entries.len() as u32);
        for (oid, f) in self.fot.iter() {
            out.put_u32_le(oid.0);
            codec::put_motion(&mut out, &f.motion);
            out.put_f64_le(f.max_vel);
            out.put_u64_le(f.used_slots);
            out.put_f64_le(f.last_heard);
            out.put_u32_le(f.queries.len() as u32);
            for q in &f.queries {
                out.put_u32_le(q.0);
            }
        }

        out.put_u32_le(self.sqt.len() as u32);
        for (qid, e) in &self.sqt {
            out.put_u32_le(qid.0);
            out.put_u32_le(e.focal.0);
            codec::put_region(&mut out, &e.region);
            codec::put_filter(&mut out, &e.filter);
            codec::put_cell(&mut out, e.curr_cell);
            codec::put_grid_rect(&mut out, &e.mon_region);
            out.put_u8(e.slot);
            out.put_u64_le(e.seq);
            match e.expires_at {
                Some(t) => {
                    out.put_u8(1);
                    out.put_f64_le(t);
                }
                None => out.put_u8(0),
            }
            out.put_u32_le(e.result.len() as u32);
            for o in &e.result {
                out.put_u32_le(o.0);
            }
        }

        // RQI rows verbatim — order within a row is load-bearing (it
        // drives fresh-query reply ordering), so rows are not derivable
        // from the SQT alone.
        let occupied = self.rqi.iter().filter(|r| !r.is_empty()).count();
        out.put_u32_le(occupied as u32);
        for (flat, row) in self.rqi.iter().enumerate() {
            if row.is_empty() {
                continue;
            }
            out.put_u32_le(flat as u32);
            out.put_u32_le(row.len() as u32);
            for q in row {
                out.put_u32_le(q.0);
            }
        }

        out.put_u32_le(self.pending.len() as u32);
        for (oid, installs) in &self.pending {
            out.put_u32_le(oid.0);
            out.put_u32_le(installs.len() as u32);
            for p in installs {
                out.put_u32_le(p.qid.0);
                codec::put_region(&mut out, &p.region);
                codec::put_filter(&mut out, &p.filter);
                match p.expires_at {
                    Some(t) => {
                        out.put_u8(1);
                        out.put_f64_le(t);
                    }
                    None => out.put_u8(0),
                }
            }
        }

        out.put_u32_le(self.stubs.len() as u32);
        for (qid, s) in &self.stubs {
            out.put_u32_le(qid.0);
            out.put_u32_le(s.focal.0);
            codec::put_motion(&mut out, &s.motion);
            out.put_f64_le(s.max_vel);
            codec::put_grid_rect(&mut out, &s.mon_region);
            codec::put_region(&mut out, &s.region);
            codec::put_filter(&mut out, &s.filter);
            out.put_u8(s.slot);
            out.put_u64_le(s.seq);
        }

        out.put_u64_le(self.current_epoch());
        out
    }

    /// Restores the full server state from [`checkpoint_bytes`](Self::checkpoint_bytes)
    /// output. Decodes everything before committing, so a malformed
    /// payload leaves the server untouched.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), crate::codec::DecodeError> {
        let buf = &mut crate::codec::Reader::new(bytes);
        let next_qid = buf.get_u32_le("next qid")?;
        let epoch = buf.get_u64_le("epoch mirror")?;
        let now = buf.get_f64_le("now")?;
        let last_heartbeat = buf.get_f64_le("last heartbeat")?;

        let n = crate::journal::get_count32(buf, 20, "FOT count")?;
        let mut fot_entries: Vec<(ObjectId, FotEntry)> = Vec::with_capacity(n);
        for _ in 0..n {
            let oid = ObjectId(buf.get_u32_le("focal id")?);
            let motion = codec::get_motion(buf)?;
            let max_vel = buf.get_f64_le("max vel")?;
            let used_slots = buf.get_u64_le("used slots")?;
            let last_heard = buf.get_f64_le("last heard")?;
            let nq = crate::journal::get_count32(buf, 4, "focal query count")?;
            let mut queries = Vec::with_capacity(nq);
            for _ in 0..nq {
                queries.push(QueryId(buf.get_u32_le("query id")?));
            }
            fot_entries.push((
                oid,
                FotEntry {
                    motion,
                    max_vel,
                    queries,
                    used_slots,
                    last_heard,
                },
            ));
        }

        let n = crate::journal::get_count32(buf, 24, "SQT count")?;
        let mut sqt = BTreeMap::new();
        for _ in 0..n {
            let qid = QueryId(buf.get_u32_le("query id")?);
            let focal = ObjectId(buf.get_u32_le("focal id")?);
            let region = codec::get_region(buf)?;
            let filter = Arc::new(codec::get_filter(buf)?);
            let curr_cell = codec::get_cell(buf)?;
            let mon_region = codec::get_grid_rect(buf)?;
            let slot = buf.get_u8("slot")?;
            let seq = buf.get_u64_le("seq")?;
            let expires_at = if buf.get_u8("expiry flag")? != 0 {
                Some(buf.get_f64_le("expiry")?)
            } else {
                None
            };
            let nr = crate::journal::get_count32(buf, 4, "result count")?;
            let mut result = BTreeSet::new();
            for _ in 0..nr {
                result.insert(ObjectId(buf.get_u32_le("result member")?));
            }
            sqt.insert(
                qid,
                SqtEntry {
                    focal,
                    region,
                    filter,
                    curr_cell,
                    mon_region,
                    slot,
                    seq,
                    expires_at,
                    result,
                },
            );
        }

        let cells = self.config.grid.num_cells();
        let n = crate::journal::get_count32(buf, 8, "RQI row count")?;
        let mut rqi = vec![Vec::new(); cells];
        for _ in 0..n {
            let flat = buf.get_u32_le("flat index")? as usize;
            if flat >= cells {
                return Err(crate::codec::DecodeError(format!(
                    "RQI flat index {flat} out of range ({cells} cells)"
                )));
            }
            let nq = crate::journal::get_count32(buf, 4, "RQI row length")?;
            let mut row = Vec::with_capacity(nq);
            for _ in 0..nq {
                row.push(QueryId(buf.get_u32_le("query id")?));
            }
            rqi[flat] = row;
        }

        let n = crate::journal::get_count32(buf, 8, "pending count")?;
        let mut pending: BTreeMap<ObjectId, Vec<PendingInstall>> = BTreeMap::new();
        for _ in 0..n {
            let oid = ObjectId(buf.get_u32_le("pending focal")?);
            let ni = crate::journal::get_count32(buf, 8, "pending installs")?;
            let mut installs = Vec::with_capacity(ni);
            for _ in 0..ni {
                let qid = QueryId(buf.get_u32_le("pending qid")?);
                let region = codec::get_region(buf)?;
                let filter = Arc::new(codec::get_filter(buf)?);
                let expires_at = if buf.get_u8("expiry flag")? != 0 {
                    Some(buf.get_f64_le("expiry")?)
                } else {
                    None
                };
                installs.push(PendingInstall {
                    qid,
                    region,
                    filter,
                    expires_at,
                });
            }
            pending.insert(oid, installs);
        }

        let n = crate::journal::get_count32(buf, 24, "stub count")?;
        let mut stubs = BTreeMap::new();
        for _ in 0..n {
            let qid = QueryId(buf.get_u32_le("stub qid")?);
            let focal = ObjectId(buf.get_u32_le("stub focal")?);
            let motion = codec::get_motion(buf)?;
            let max_vel = buf.get_f64_le("stub max vel")?;
            let mon_region = codec::get_grid_rect(buf)?;
            let region = codec::get_region(buf)?;
            let filter = Arc::new(codec::get_filter(buf)?);
            let slot = buf.get_u8("stub slot")?;
            let seq = buf.get_u64_le("stub seq")?;
            stubs.insert(
                qid,
                StubEntry {
                    focal,
                    motion,
                    max_vel,
                    mon_region,
                    region,
                    filter,
                    slot,
                    seq,
                },
            );
        }

        let observed = buf.get_u64_le("observed epoch")?;

        // Commit.
        let mut fot = FotTable::default();
        for (oid, e) in fot_entries {
            fot.entry_or_insert(oid, e);
        }
        self.fot = fot;
        self.sqt = sqt;
        self.rqi = rqi;
        self.pending = pending;
        self.stubs = stubs;
        self.next_qid = next_qid;
        self.epoch = epoch;
        self.now = now;
        self.last_heartbeat = last_heartbeat;
        self.outbox.clear();
        self.uplink_scratch.clear();
        self.fresh_memo.clear();
        self.raise_epoch(observed);
        Ok(())
    }

    /// FNV-1a digest of the durable server state (the checkpoint image
    /// minus the shared-epoch trailer — see
    /// [`checkpoint_bytes`](Self::checkpoint_bytes)). Two servers with
    /// equal digests hold byte-identical FOT/SQT/RQI/pending/stub tables.
    pub fn state_digest(&self) -> u64 {
        let bytes = self.checkpoint_bytes();
        crate::journal::fnv1a(&bytes[..bytes.len() - 8])
    }

    /// Structural self-check for tests: the RQI must exactly mirror the
    /// monitoring regions in the SQT, FOT query lists must match SQT focal
    /// assignments, and slots must be consistent.
    pub fn check_invariants(&self) {
        let owned = self.owned_span();
        for (qid, e) in &self.sqt {
            for cell in e.mon_region.iter() {
                let idx = self.config.grid.flat_index(cell);
                if !Self::owns_flat(idx, &owned) {
                    continue; // a neighbor partition's RQI row
                }
                assert!(
                    self.rqi[idx].contains(qid),
                    "RQI missing {qid:?} at {cell:?}"
                );
            }
            let fot = self.fot.get(&e.focal).expect("focal of live query in FOT");
            assert!(fot.queries.contains(qid), "FOT query list missing {qid:?}");
            if e.slot != crate::messages::NO_SLOT {
                assert!(
                    fot.used_slots & (1u64 << e.slot) != 0,
                    "slot not marked used"
                );
            }
        }
        for (idx, qids) in self.rqi.iter().enumerate() {
            if !qids.is_empty() {
                assert!(Self::owns_flat(idx, &owned), "RQI entry in an unowned cell");
            }
            for qid in qids {
                let mon = self.q_mon(*qid).expect("RQI references live query or stub");
                let cell = self.config.grid.cell_at(idx);
                assert!(
                    mon.contains(cell),
                    "stale RQI entry for {qid:?} at {cell:?} on partition {:?}: \
                     monitoring region is {mon:?} (homed: {})",
                    self.scope.as_ref().map(|s| s.partition()),
                    self.sqt.contains_key(qid)
                );
            }
        }
        for (oid, fot) in self.fot.iter() {
            for qid in &fot.queries {
                assert_eq!(self.sqt[qid].focal, *oid, "FOT/SQT focal mismatch");
            }
        }
        for (qid, _) in self.stubs.iter() {
            assert!(
                !self.sqt.contains_key(qid),
                "query {qid:?} both homed and stubbed"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::{Grid, Point, Rect, Vec2};
    use mobieyes_net::BaseStationLayout;

    fn setup(propagation: Propagation, grouping: bool) -> (Server, Net, Arc<ProtocolConfig>) {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 10.0);
        let config = Arc::new(
            ProtocolConfig::new(grid)
                .with_propagation(propagation)
                .with_grouping(grouping),
        );
        let server = Server::new(Arc::clone(&config));
        let net = Net::new(BaseStationLayout::new(universe, 20.0));
        (server, net, config)
    }

    fn motion_at(x: f64, y: f64) -> LinearMotion {
        LinearMotion::new(Point::new(x, y), Vec2::new(0.001, 0.0), 0.0)
    }

    /// Puts `oid` into the FOT by replaying the position-request handshake.
    fn register(server: &mut Server, net: &mut Net, oid: ObjectId, x: f64, y: f64) {
        server.handle_uplink(
            oid.node(),
            Uplink::PositionReply {
                oid,
                motion: motion_at(x, y),
                max_vel: 0.03,
            },
            net,
        );
    }

    #[test]
    fn install_with_unknown_focal_defers_and_requests_position() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        let qid = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        // Not installed yet; a position request went out.
        assert_eq!(server.num_queries(), 0);
        assert_eq!(net.meter().unicast_msgs, 1);
        // The reply completes the install.
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        assert_eq!(server.num_queries(), 1);
        assert_eq!(server.query_focal(qid), Some(ObjectId(1)));
        server.check_invariants();
        // Install broadcast(s) plus the focal notification.
        assert!(net.meter().broadcast_msgs >= 1);
        assert!(net.meter().unicast_msgs >= 2);
    }

    #[test]
    fn install_with_known_focal_is_immediate() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let qid = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        assert_eq!(server.num_queries(), 1);
        server.check_invariants();
        // Monitoring region covers the focal cell and neighbors.
        let cell = server.config().grid.cell_of(Point::new(55.0, 55.0));
        assert!(server.nearby_queries(cell).contains(&qid));
    }

    #[test]
    fn multiple_pending_installs_one_position_request() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        server.install_query(
            ObjectId(9),
            QueryRegion::circle(2.0),
            Filter::True,
            &mut net,
        );
        server.install_query(
            ObjectId(9),
            QueryRegion::circle(5.0),
            Filter::True,
            &mut net,
        );
        assert_eq!(
            net.meter().unicast_msgs,
            1,
            "one position request for both installs"
        );
        register(&mut server, &mut net, ObjectId(9), 20.0, 20.0);
        assert_eq!(server.num_queries(), 2);
        server.check_invariants();
    }

    #[test]
    fn remove_query_cleans_all_state() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let qid = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        assert!(server.remove_query(qid, &mut net));
        assert_eq!(server.num_queries(), 0);
        let cell = server.config().grid.cell_of(Point::new(55.0, 55.0));
        assert!(server.nearby_queries(cell).is_empty());
        server.check_invariants();
        assert!(!server.remove_query(qid, &mut net), "double remove fails");
    }

    #[test]
    fn result_updates_are_differential() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let qid = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        server.handle_uplink(
            NodeId(2),
            Uplink::ResultUpdate {
                oid: ObjectId(2),
                changes: vec![(qid, true)],
            },
            &mut net,
        );
        assert!(server.query_result(qid).unwrap().contains(&ObjectId(2)));
        server.handle_uplink(
            NodeId(2),
            Uplink::ResultUpdate {
                oid: ObjectId(2),
                changes: vec![(qid, false)],
            },
            &mut net,
        );
        assert!(!server.query_result(qid).unwrap().contains(&ObjectId(2)));
    }

    #[test]
    fn velocity_report_triggers_region_broadcast() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        let before = net.meter().broadcast_msgs;
        server.handle_uplink(
            NodeId(1),
            Uplink::VelocityReport {
                oid: ObjectId(1),
                motion: motion_at(56.0, 55.0),
            },
            &mut net,
        );
        assert!(net.meter().broadcast_msgs > before);
        assert_eq!(server.stats().velocity_reports, 1);
    }

    #[test]
    fn velocity_report_from_non_focal_is_ignored() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        let before = net.meter().broadcast_msgs;
        server.handle_uplink(
            NodeId(3),
            Uplink::VelocityReport {
                oid: ObjectId(3),
                motion: motion_at(1.0, 1.0),
            },
            &mut net,
        );
        assert_eq!(net.meter().broadcast_msgs, before);
    }

    #[test]
    fn focal_cell_change_moves_monitoring_region() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let qid = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        let grid = server.config().grid.clone();
        let old_cell = grid.cell_of(Point::new(55.0, 55.0));
        let new_cell = grid.cell_of(Point::new(75.0, 55.0));
        server.handle_uplink(
            NodeId(1),
            Uplink::CellChange {
                oid: ObjectId(1),
                prev_cell: old_cell,
                new_cell,
                motion: motion_at(75.0, 55.0),
            },
            &mut net,
        );
        server.check_invariants();
        assert!(server.nearby_queries(new_cell).contains(&qid));
        // The old cell is two cells away from the new one, outside the new
        // monitoring region for r=3 < α=10.
        assert!(!server.nearby_queries(old_cell).contains(&qid));
    }

    #[test]
    fn non_focal_cell_change_gets_new_queries_unicast() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        let grid = server.config().grid.clone();
        // Object 2 moves from far away into the query's monitoring region.
        let before = net.meter().unicast_msgs;
        server.handle_uplink(
            NodeId(2),
            Uplink::CellChange {
                oid: ObjectId(2),
                prev_cell: grid.cell_of(Point::new(5.0, 5.0)),
                new_cell: grid.cell_of(Point::new(55.0, 55.0)),
                motion: motion_at(55.0, 55.0),
            },
            &mut net,
        );
        assert_eq!(
            net.meter().unicast_msgs,
            before + 1,
            "expected NewQueries unicast"
        );
        // Moving between two cells both outside any monitoring region sends
        // nothing.
        let before = net.meter().unicast_msgs;
        server.handle_uplink(
            NodeId(3),
            Uplink::CellChange {
                oid: ObjectId(3),
                prev_cell: grid.cell_of(Point::new(5.0, 5.0)),
                new_cell: grid.cell_of(Point::new(15.0, 5.0)),
                motion: motion_at(15.0, 5.0),
            },
            &mut net,
        );
        assert_eq!(net.meter().unicast_msgs, before);
    }

    #[test]
    fn grouping_coalesces_same_region_queries() {
        // Two queries, same focal, same radius class -> same monitoring
        // region -> one grouped broadcast per velocity report.
        let (mut server, mut net, _) = setup(Propagation::Eager, true);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        server.install_query(
            ObjectId(1),
            QueryRegion::circle(2.5),
            Filter::True,
            &mut net,
        );
        let before = net.meter().broadcast_msgs;
        server.handle_uplink(
            NodeId(1),
            Uplink::VelocityReport {
                oid: ObjectId(1),
                motion: motion_at(56.0, 55.0),
            },
            &mut net,
        );
        let grouped_broadcasts = net.meter().broadcast_msgs - before;

        // Same scenario without grouping: two broadcasts.
        let (mut server2, mut net2, _) = setup(Propagation::Eager, false);
        register(&mut server2, &mut net2, ObjectId(1), 55.0, 55.0);
        server2.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net2,
        );
        server2.install_query(
            ObjectId(1),
            QueryRegion::circle(2.5),
            Filter::True,
            &mut net2,
        );
        let before2 = net2.meter().broadcast_msgs;
        server2.handle_uplink(
            NodeId(1),
            Uplink::VelocityReport {
                oid: ObjectId(1),
                motion: motion_at(56.0, 55.0),
            },
            &mut net2,
        );
        let ungrouped_broadcasts = net2.meter().broadcast_msgs - before2;
        assert!(grouped_broadcasts < ungrouped_broadcasts);
    }

    #[test]
    fn group_result_update_sets_membership_by_slot() {
        let (mut server, mut net, _) = setup(Propagation::Eager, true);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let q1 = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        let q2 = server.install_query(
            ObjectId(1),
            QueryRegion::circle(2.0),
            Filter::True,
            &mut net,
        );
        // Object 5 reports: inside q1 (slot 0), outside q2 (slot 1).
        server.handle_uplink(
            NodeId(5),
            Uplink::GroupResultUpdate {
                oid: ObjectId(5),
                focal: ObjectId(1),
                mask: 0b11,
                targets: 0b01,
            },
            &mut net,
        );
        assert!(server.query_result(q1).unwrap().contains(&ObjectId(5)));
        assert!(!server.query_result(q2).unwrap().contains(&ObjectId(5)));
        // Masked-out bits leave membership untouched.
        server.handle_uplink(
            NodeId(5),
            Uplink::GroupResultUpdate {
                oid: ObjectId(5),
                focal: ObjectId(1),
                mask: 0b10,
                targets: 0b10,
            },
            &mut net,
        );
        assert!(
            server.query_result(q1).unwrap().contains(&ObjectId(5)),
            "q1 untouched"
        );
        assert!(server.query_result(q2).unwrap().contains(&ObjectId(5)));
    }

    #[test]
    fn lazy_propagation_sends_full_state_on_velocity_change() {
        let (mut server, mut net, _) = setup(Propagation::Lazy, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        server.handle_uplink(
            NodeId(1),
            Uplink::VelocityReport {
                oid: ObjectId(1),
                motion: motion_at(56.0, 55.0),
            },
            &mut net,
        );
        // Deliver at a point inside the monitoring region and inspect.
        let mut inbox = Vec::new();
        net.deliver(NodeId(7), Point::new(55.0, 55.0), &mut inbox);
        assert!(
            inbox
                .iter()
                .any(|m| matches!(&**m, Downlink::QueryState { .. })),
            "lazy mode must ship full query state, got {inbox:?}"
        );
        assert!(
            !inbox
                .iter()
                .any(|m| matches!(&**m, Downlink::VelocityChange { .. })),
            "lazy mode must not ship bare velocity changes"
        );
    }

    #[test]
    fn slot_reuse_after_removal() {
        let (mut server, mut net, _) = setup(Propagation::Eager, true);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let _q1 = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        let q2 = server.install_query(
            ObjectId(1),
            QueryRegion::circle(2.0),
            Filter::True,
            &mut net,
        );
        server.remove_query(q2, &mut net);
        let q3 = server.install_query(
            ObjectId(1),
            QueryRegion::circle(1.0),
            Filter::True,
            &mut net,
        );
        // q3 reuses q2's slot (slot 1).
        server.check_invariants();
        server.handle_uplink(
            NodeId(5),
            Uplink::GroupResultUpdate {
                oid: ObjectId(5),
                focal: ObjectId(1),
                mask: 0b10,
                targets: 0b10,
            },
            &mut net,
        );
        assert!(server.query_result(q3).unwrap().contains(&ObjectId(5)));
    }

    #[test]
    fn removing_last_query_clears_focal_flag() {
        let (mut server, mut net, _) = setup(Propagation::Eager, false);
        register(&mut server, &mut net, ObjectId(1), 55.0, 55.0);
        let qid = server.install_query(
            ObjectId(1),
            QueryRegion::circle(3.0),
            Filter::True,
            &mut net,
        );
        server.remove_query(qid, &mut net);
        // A FocalNotify{false} unicast went to the ex-focal object.
        let mut inbox = Vec::new();
        net.deliver(NodeId(1), Point::new(55.0, 55.0), &mut inbox);
        assert!(inbox
            .iter()
            .any(|m| **m == Downlink::FocalNotify { is_focal: false }));
    }
}
