//! Protocol configuration shared by the server and every moving object.

use mobieyes_geo::Grid;

/// How non-focal objects learn about queries after a grid-cell change
/// (paper §3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// Eager Query Propagation: every object notifies the server on a cell
    /// change and immediately receives the queries of its new cell.
    Eager,
    /// Lazy Query Propagation: non-focal objects stay silent on cell
    /// changes; they pick up new queries from the next velocity-change or
    /// cell-change broadcast of those queries' focal objects (which carry
    /// full query state under this mode). Saves uplink traffic at the cost
    /// of transient result inaccuracy.
    Lazy,
}

/// Static protocol parameters. One immutable copy (usually behind an `Arc`)
/// is shared by the server and all agents — everything here is known
/// system-wide at deployment time, exactly like the paper's system
/// parameters α, Δ and the universe of discourse.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// The gridded universe of discourse (`U` and α).
    pub grid: Grid,
    /// Dead-reckoning threshold Δ (distance units): a focal object relays a
    /// new velocity/position sample when its true position deviates from
    /// the advertised linear motion by more than Δ.
    pub delta: f64,
    /// Eager or lazy query propagation.
    pub propagation: Propagation,
    /// Query grouping (§4.1): group queries sharing a focal object into one
    /// broadcast / one bitmap report, and prune evaluation by nested radii.
    pub grouping: bool,
    /// Safe-period optimization (§4.2): skip evaluating a query while the
    /// object provably cannot have entered its region.
    pub safe_period: bool,
    /// Push query-result membership changes to the issuing focal object
    /// as unicast deltas. The paper's example queries ("give me the
    /// positions ... at each instance of time") imply this delivery leg;
    /// off by default to match the paper's measured message flows.
    pub deliver_results: bool,
    /// A system-wide upper bound on object speeds (distance units per
    /// second). Only used as a sanity default; safe periods use the
    /// per-object `max_vel` values carried in messages.
    pub system_max_speed: f64,
    /// Focal-object lease duration in seconds. While positive, the server
    /// runs the fault-tolerance layer: a focal object that stays silent
    /// longer than the lease gets its queries torn down and re-announced.
    /// 0 disables leases, heartbeats and soft-state refresh entirely (the
    /// paper's fault-free protocol).
    pub lease_secs: f64,
    /// Interval in seconds between server heartbeats (epoch + per-cell
    /// digest broadcasts). Objects answer with soft-state refresh; a
    /// heartbeat answer renews the sender's lease. Must be positive when
    /// `lease_secs` is.
    pub heartbeat_secs: f64,
}

impl ProtocolConfig {
    /// A configuration with the paper's defaults for a given grid: eager
    /// propagation, no grouping, no safe periods (the base protocol).
    pub fn new(grid: Grid) -> Self {
        ProtocolConfig {
            grid,
            delta: 0.2,
            propagation: Propagation::Eager,
            grouping: false,
            safe_period: false,
            deliver_results: false,
            // 250 mph in miles/second — the largest Table 1 speed class.
            system_max_speed: 250.0 / 3600.0,
            lease_secs: 0.0,
            heartbeat_secs: 0.0,
        }
    }

    /// Enables the lease / heartbeat fault-tolerance layer.
    pub fn with_lease(mut self, lease_secs: f64, heartbeat_secs: f64) -> Self {
        assert!(lease_secs >= 0.0 && heartbeat_secs >= 0.0);
        assert!(
            lease_secs == 0.0 || heartbeat_secs > 0.0,
            "leases need a positive heartbeat interval"
        );
        self.lease_secs = lease_secs;
        self.heartbeat_secs = heartbeat_secs;
        self
    }

    /// Whether the lease / heartbeat layer is active.
    pub fn fault_tolerant(&self) -> bool {
        self.lease_secs > 0.0
    }

    pub fn with_propagation(mut self, p: Propagation) -> Self {
        self.propagation = p;
        self
    }

    pub fn with_grouping(mut self, on: bool) -> Self {
        self.grouping = on;
        self
    }

    pub fn with_safe_period(mut self, on: bool) -> Self {
        self.safe_period = on;
        self
    }

    pub fn with_result_delivery(mut self, on: bool) -> Self {
        self.deliver_results = on;
        self
    }

    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta >= 0.0);
        self.delta = delta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Rect;

    #[test]
    fn builder_chains() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let c = ProtocolConfig::new(grid)
            .with_propagation(Propagation::Lazy)
            .with_grouping(true)
            .with_safe_period(true)
            .with_delta(0.5);
        assert_eq!(c.propagation, Propagation::Lazy);
        assert!(c.grouping);
        assert!(c.safe_period);
        assert_eq!(c.delta, 0.5);
    }

    #[test]
    fn defaults_are_base_protocol() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let c = ProtocolConfig::new(grid);
        assert_eq!(c.propagation, Propagation::Eager);
        assert!(!c.grouping);
        assert!(!c.safe_period);
        assert!(c.system_max_speed > 0.0);
        assert!(!c.fault_tolerant());
    }

    #[test]
    fn lease_configuration() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let c = ProtocolConfig::new(grid).with_lease(180.0, 90.0);
        assert!(c.fault_tolerant());
        assert_eq!(c.lease_secs, 180.0);
        assert_eq!(c.heartbeat_secs, 90.0);
    }

    #[test]
    #[should_panic]
    fn lease_without_heartbeat_panics() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let _ = ProtocolConfig::new(grid).with_lease(180.0, 0.0);
    }
}
