//! Identifiers and object properties (paper §2.2: the `{props}` component
//! of a moving object).

use std::collections::BTreeMap;

/// Unique identifier of a moving object. Doubles as the network `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Unique identifier of a moving query, assigned by the server at install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl ObjectId {
    /// The corresponding network endpoint.
    pub fn node(self) -> mobieyes_net::NodeId {
        mobieyes_net::NodeId(self.0)
    }
}

/// A typed property value.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}

impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}

impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Text(v.to_string())
    }
}

impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}

/// The property set of a moving object: "spatial, temporal, or
/// object-specific properties, such as color or manufacture of a mobile
/// unit". Query filters are boolean predicates over these.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Properties {
    values: BTreeMap<String, PropValue>,
}

impl Properties {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style property setter.
    pub fn with(mut self, key: &str, value: impl Into<PropValue>) -> Self {
        self.values.insert(key.to_string(), value.into());
        self
    }

    pub fn set(&mut self, key: &str, value: impl Into<PropValue>) {
        self.values.insert(key.to_string(), value.into());
    }

    pub fn get(&self, key: &str) -> Option<&PropValue> {
        self.values.get(key)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_maps_to_node_id() {
        assert_eq!(ObjectId(42).node(), mobieyes_net::NodeId(42));
    }

    #[test]
    fn properties_builder_and_lookup() {
        let p = Properties::new()
            .with("color", "red")
            .with("speed_class", 3i64)
            .with("friendly", true)
            .with("weight", 1.5f64);
        assert_eq!(p.len(), 4);
        assert_eq!(p.get("color"), Some(&PropValue::Text("red".into())));
        assert_eq!(p.get("friendly"), Some(&PropValue::Bool(true)));
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn set_overwrites() {
        let mut p = Properties::new().with("x", 1i64);
        p.set("x", 2i64);
        assert_eq!(p.get("x"), Some(&PropValue::Int(2)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn empty_properties() {
        let p = Properties::new();
        assert!(p.is_empty());
        assert_eq!(p.get("any"), None);
    }
}
