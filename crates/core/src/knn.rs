//! Adaptive-radius k-nearest-neighbor moving queries.
//!
//! The paper's related work evaluates (continuous) nearest-neighbor
//! queries over moving objects at a central server; this module brings the
//! query type to the *distributed* protocol without any new message kinds:
//! a kNN moving query is maintained as an ordinary circular MQ whose
//! radius the server adapts from the observed result cardinality —
//!
//! - result persistently below `k`     → grow the radius,
//! - result persistently above `s·k`   → shrink it,
//!
//! using [`Server::update_query_region`], which re-broadcasts query state
//! to the union of old and new monitoring regions. The moving objects
//! remain completely unaware that the circle they evaluate serves a kNN
//! query — all the §3 machinery (dead reckoning, monitoring regions,
//! differential reports) is reused as-is.
//!
//! The maintained result is a *candidate superset*: whenever it holds at
//! least `k` members, the true k nearest filter-passing objects are among
//! them (every passing object within the radius reports in; the k nearest
//! are within any radius that admits ≥ k objects). Exact ranking is a
//! local step over candidate positions — see
//! [`KnnCoordinator::rank_candidates`].

use crate::filter::Filter;
use crate::model::{ObjectId, QueryId};
use crate::server::{Net, Server};
use mobieyes_geo::{Point, QueryRegion};
use std::collections::BTreeMap;

/// Tuning knobs of the adaptive radius controller.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Multiplicative radius step (> 1).
    pub growth: f64,
    /// Shrink when the result holds more than `surplus * k` members.
    pub surplus: f64,
    /// Consecutive deficit/surplus ticks before the radius moves
    /// (debounces protocol lag).
    pub patience: u32,
    /// Radius bounds.
    pub min_radius: f64,
    pub max_radius: f64,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            growth: 1.6,
            surplus: 4.0,
            patience: 2,
            min_radius: 0.25,
            max_radius: 1e4,
        }
    }
}

/// Controller state of one kNN query.
#[derive(Debug, Clone)]
struct KnnState {
    k: usize,
    radius: f64,
    low_streak: u32,
    high_streak: u32,
    adaptations: u64,
}

/// Server-side coordinator for adaptive kNN moving queries. Owns no
/// protocol state of its own beyond the per-query radius controller; call
/// [`tick`](Self::tick) once per time step after the server phases.
#[derive(Debug, Default)]
pub struct KnnCoordinator {
    config: KnnConfig,
    entries: BTreeMap<QueryId, KnnState>,
}

impl KnnCoordinator {
    pub fn new(config: KnnConfig) -> Self {
        assert!(config.growth > 1.0);
        assert!(config.surplus > 1.0);
        KnnCoordinator {
            config,
            entries: BTreeMap::new(),
        }
    }

    /// Installs a kNN moving query: the `k` nearest objects satisfying
    /// `filter` around `focal`, starting from `initial_radius`.
    pub fn install(
        &mut self,
        server: &mut Server,
        focal: ObjectId,
        k: usize,
        initial_radius: f64,
        filter: Filter,
        net: &mut Net,
    ) -> QueryId {
        assert!(k > 0);
        let radius = initial_radius.clamp(self.config.min_radius, self.config.max_radius);
        let qid = server.install_query(focal, QueryRegion::circle(radius), filter, net);
        self.entries.insert(
            qid,
            KnnState {
                k,
                radius,
                low_streak: 0,
                high_streak: 0,
                adaptations: 0,
            },
        );
        qid
    }

    /// Stops managing (and removes) a kNN query.
    pub fn remove(&mut self, server: &mut Server, qid: QueryId, net: &mut Net) -> bool {
        self.entries.remove(&qid).is_some() && server.remove_query(qid, net)
    }

    /// Current controller radius of a query.
    pub fn radius(&self, qid: QueryId) -> Option<f64> {
        self.entries.get(&qid).map(|s| s.radius)
    }

    /// How many times the radius has been adapted (diagnostics).
    pub fn adaptations(&self, qid: QueryId) -> u64 {
        self.entries.get(&qid).map(|s| s.adaptations).unwrap_or(0)
    }

    /// One controller step: inspect every managed query's result size and
    /// adapt radii. Call once per time step, after the server has ingested
    /// the step's result updates.
    pub fn tick(&mut self, server: &mut Server, net: &mut Net) {
        let cfg = self.config;
        self.entries.retain(|&qid, st| {
            let Some(result) = server.query_result(qid) else {
                return false; // query disappeared (expired/removed)
            };
            let n = result.len();
            if n < st.k {
                st.low_streak += 1;
                st.high_streak = 0;
            } else if n as f64 > cfg.surplus * st.k as f64 {
                st.high_streak += 1;
                st.low_streak = 0;
            } else {
                st.low_streak = 0;
                st.high_streak = 0;
            }
            if st.low_streak >= cfg.patience && st.radius < cfg.max_radius {
                st.radius = (st.radius * cfg.growth).min(cfg.max_radius);
                server.update_query_region(qid, QueryRegion::circle(st.radius), net);
                st.low_streak = 0;
                st.adaptations += 1;
            } else if st.high_streak >= cfg.patience && st.radius > cfg.min_radius {
                st.radius = (st.radius / cfg.growth).max(cfg.min_radius);
                server.update_query_region(qid, QueryRegion::circle(st.radius), net);
                st.high_streak = 0;
                st.adaptations += 1;
            }
            true
        });
    }

    /// The current candidate set (the underlying circular query's result).
    /// Contains the true k nearest passing objects whenever it has at
    /// least `k` members (up to normal protocol lag).
    pub fn candidates<'a>(
        &self,
        server: &'a Server,
        qid: QueryId,
    ) -> Option<&'a std::collections::BTreeSet<ObjectId>> {
        server.query_result(qid)
    }

    /// Ranks the candidate set by distance to `focal_pos` using a caller-
    /// supplied position source (ground truth in simulations; on-demand
    /// position requests in a live deployment), returning the top `k`.
    pub fn rank_candidates(
        &self,
        server: &Server,
        qid: QueryId,
        focal_pos: Point,
        mut position_of: impl FnMut(ObjectId) -> Option<Point>,
    ) -> Vec<(ObjectId, f64)> {
        let Some(st) = self.entries.get(&qid) else {
            return Vec::new();
        };
        let Some(result) = server.query_result(qid) else {
            return Vec::new();
        };
        let mut ranked: Vec<(ObjectId, f64)> = result
            .iter()
            .filter_map(|&oid| position_of(oid).map(|p| (oid, focal_pos.distance(p))))
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(st.k);
        ranked
    }
}
