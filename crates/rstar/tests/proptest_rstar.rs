//! Randomized (seeded, deterministic) tests: the R*-tree must behave
//! exactly like a brute-force multiset of (rect, id) pairs under arbitrary
//! interleavings of inserts, removes, updates and queries, while keeping
//! its structural invariants.

use mobieyes_geo::{Point, Rect};
use mobieyes_rstar::RStarTree;

/// Tiny deterministic generator (splitmix64) so these sweeps are
/// reproducible without an external property-testing dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[test]
fn tree_matches_brute_force() {
    let mut rng = Rng(0x57A6);
    for case in 0..64 {
        let mut tree: RStarTree<u64> = RStarTree::with_max_entries(6);
        let mut oracle: Vec<(Rect, u64)> = Vec::new();
        let mut next_id = 0u64;
        let ops = 1 + rng.below(200);

        for _ in 0..ops {
            match rng.below(11) {
                // Insert (weight 4)
                0..=3 => {
                    let r = Rect::new(
                        rng.range(-50.0, 150.0),
                        rng.range(-50.0, 150.0),
                        rng.range(0.0, 20.0),
                        rng.range(0.0, 20.0),
                    );
                    tree.insert(r, next_id);
                    oracle.push((r, next_id));
                    next_id += 1;
                }
                // Remove the i-th (mod len) currently-live entry (weight 2)
                4..=5 => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let i = (rng.below(u64::MAX) % oracle.len() as u64) as usize;
                    let (r, id) = oracle.swap_remove(i);
                    assert!(
                        tree.remove(&r, &id),
                        "oracle entry missing from tree (case {case})"
                    );
                }
                // Move the i-th live entry to a new rect (weight 2)
                6..=7 => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let i = (rng.below(u64::MAX) % oracle.len() as u64) as usize;
                    let (old, id) = oracle[i];
                    let newr = Rect::new(
                        rng.range(-50.0, 150.0),
                        rng.range(-50.0, 150.0),
                        old.w(),
                        old.h(),
                    );
                    assert!(tree.update(&old, newr, id));
                    oracle[i] = (newr, id);
                }
                // Query (weight 3)
                _ => {
                    let q = Rect::new(
                        rng.range(-50.0, 150.0),
                        rng.range(-50.0, 150.0),
                        rng.range(0.0, 20.0),
                        rng.range(0.0, 20.0),
                    );
                    let mut got: Vec<u64> = tree.query_rect(&q).iter().map(|(_, &v)| v).collect();
                    let mut want: Vec<u64> = oracle
                        .iter()
                        .filter(|(r, _)| r.intersects(&q))
                        .map(|&(_, v)| v)
                        .collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want);
                }
            }
            tree.check_invariants();
            assert_eq!(tree.len(), oracle.len());
        }

        // Final full scan agrees.
        let mut got: Vec<u64> = tree.iter().map(|(_, &v)| v).collect();
        let mut want: Vec<u64> = oracle.iter().map(|&(_, v)| v).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn point_queries_find_inserted_points() {
    let mut rng = Rng(0x901);
    for _ in 0..32 {
        let n = 1 + rng.below(300) as usize;
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.range(-100.0, 100.0), rng.range(-100.0, 100.0)))
            .collect();
        let mut tree = RStarTree::with_max_entries(8);
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(Rect::from_point(Point::new(x, y)), i);
        }
        tree.check_invariants();
        for (i, &(x, y)) in points.iter().enumerate() {
            let hits = tree.query_point(Point::new(x, y));
            assert!(hits.iter().any(|(_, &v)| v == i));
        }
    }
}
