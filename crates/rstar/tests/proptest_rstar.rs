//! Property tests: the R*-tree must behave exactly like a brute-force
//! multiset of (rect, id) pairs under arbitrary interleavings of inserts,
//! removes, updates and queries, while keeping its structural invariants.

use mobieyes_geo::{Point, Rect};
use mobieyes_rstar::RStarTree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { x: f64, y: f64, w: f64, h: f64 },
    /// Remove the i-th (mod len) currently-live entry.
    Remove { pick: usize },
    /// Move the i-th live entry to a new rect.
    Update { pick: usize, x: f64, y: f64 },
    Query { x: f64, y: f64, w: f64, h: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let coord = -50.0..150.0f64;
    let extent = 0.0..20.0f64;
    prop_oneof![
        4 => (coord.clone(), coord.clone(), extent.clone(), extent.clone())
            .prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        2 => any::<usize>().prop_map(|pick| Op::Remove { pick }),
        2 => (any::<usize>(), coord.clone(), coord.clone())
            .prop_map(|(pick, x, y)| Op::Update { pick, x, y }),
        3 => (coord.clone(), coord.clone(), extent.clone(), extent)
            .prop_map(|(x, y, w, h)| Op::Query { x, y, w, h }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_brute_force(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tree: RStarTree<u64> = RStarTree::with_max_entries(6);
        let mut oracle: Vec<(Rect, u64)> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Insert { x, y, w, h } => {
                    let r = Rect::new(x, y, w, h);
                    tree.insert(r, next_id);
                    oracle.push((r, next_id));
                    next_id += 1;
                }
                Op::Remove { pick } => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let i = pick % oracle.len();
                    let (r, id) = oracle.swap_remove(i);
                    prop_assert!(tree.remove(&r, &id), "oracle entry missing from tree");
                }
                Op::Update { pick, x, y } => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let i = pick % oracle.len();
                    let (old, id) = oracle[i];
                    let newr = Rect::new(x, y, old.w(), old.h());
                    prop_assert!(tree.update(&old, newr, id));
                    oracle[i] = (newr, id);
                }
                Op::Query { x, y, w, h } => {
                    let q = Rect::new(x, y, w, h);
                    let mut got: Vec<u64> = tree.query_rect(&q).iter().map(|(_, &v)| v).collect();
                    let mut want: Vec<u64> = oracle
                        .iter()
                        .filter(|(r, _)| r.intersects(&q))
                        .map(|&(_, v)| v)
                        .collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            tree.check_invariants();
            prop_assert_eq!(tree.len(), oracle.len());
        }

        // Final full scan agrees.
        let mut got: Vec<u64> = tree.iter().map(|(_, &v)| v).collect();
        let mut want: Vec<u64> = oracle.iter().map(|&(_, v)| v).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn point_queries_find_inserted_points(points in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..300)) {
        let mut tree = RStarTree::with_max_entries(8);
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(Rect::from_point(Point::new(x, y)), i);
        }
        tree.check_invariants();
        for (i, &(x, y)) in points.iter().enumerate() {
            let hits = tree.query_point(Point::new(x, y));
            prop_assert!(hits.iter().any(|(_, &v)| v == i));
        }
    }
}
