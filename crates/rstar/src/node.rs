//! Tree node representation.

use mobieyes_geo::Rect;

/// A leaf-level entry: a bounding rectangle and its payload.
#[derive(Debug, Clone)]
pub(crate) struct LeafEntry<T> {
    pub rect: Rect,
    pub item: T,
}

/// An internal-level entry: the MBR of a child node and the child itself.
#[derive(Debug)]
pub(crate) struct ChildEntry<T> {
    pub rect: Rect,
    pub child: Box<Node<T>>,
}

/// A tree node. All leaves sit at the same depth; `level` 0 is the leaf
/// level and grows towards the root.
#[derive(Debug)]
pub(crate) enum Node<T> {
    Leaf(Vec<LeafEntry<T>>),
    Internal(Vec<ChildEntry<T>>),
}

impl<T> Node<T> {
    pub fn new_leaf() -> Self {
        Node::Leaf(Vec::new())
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.len(),
        }
    }

    #[cfg(test)]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// MBR of all entries; `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Leaf(v) => v.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
            Node::Internal(v) => v.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
        }
    }

    /// Number of leaf entries in the subtree (O(n); test/diagnostic use).
    #[cfg(test)]
    pub fn count_items(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.iter().map(|e| e.child.count_items()).sum(),
        }
    }

    /// Height of the subtree: a leaf has height 1.
    #[cfg(test)]
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(v) => 1 + v.first().map_or(0, |e| e.child.height()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Point;

    #[test]
    fn empty_leaf_has_no_mbr() {
        let n: Node<u32> = Node::new_leaf();
        assert!(n.mbr().is_none());
        assert_eq!(n.len(), 0);
        assert!(n.is_leaf());
        assert_eq!(n.height(), 1);
    }

    #[test]
    fn leaf_mbr_is_union() {
        let n = Node::Leaf(vec![
            LeafEntry {
                rect: Rect::from_point(Point::new(0.0, 0.0)),
                item: 1u32,
            },
            LeafEntry {
                rect: Rect::from_point(Point::new(4.0, 3.0)),
                item: 2,
            },
        ]);
        assert_eq!(n.mbr().unwrap(), Rect::new(0.0, 0.0, 4.0, 3.0));
        assert_eq!(n.count_items(), 2);
    }

    #[test]
    fn internal_height_counts_levels() {
        let leaf = Node::Leaf(vec![LeafEntry {
            rect: Rect::from_point(Point::new(1.0, 1.0)),
            item: 7u32,
        }]);
        let internal = Node::Internal(vec![ChildEntry {
            rect: leaf.mbr().unwrap(),
            child: Box::new(leaf),
        }]);
        assert_eq!(internal.height(), 2);
        assert_eq!(internal.count_items(), 1);
        assert!(!internal.is_leaf());
    }
}
