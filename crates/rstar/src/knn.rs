//! Best-first k-nearest-neighbor search (Hjaltason & Samet style).
//!
//! The centralized related work the paper cites evaluates nearest-neighbor
//! queries over moving objects; this gives the substrate that capability:
//! an incremental branch-and-bound traversal that expands tree nodes in
//! order of their minimum distance to the query point.

use crate::node::Node;
use crate::tree::RStarTree;
use mobieyes_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered by *ascending* distance (min-heap via reversed Ord).
enum Candidate<'a, T> {
    Node(f64, &'a Node<T>),
    Item(f64, &'a Rect, &'a T),
}

impl<T> Candidate<'_, T> {
    fn dist(&self) -> f64 {
        match self {
            Candidate::Node(d, _) | Candidate::Item(d, _, _) => *d,
        }
    }
}

impl<T> PartialEq for Candidate<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist() == other.dist()
    }
}

impl<T> Eq for Candidate<'_, T> {}

impl<T> PartialOrd for Candidate<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Candidate<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the closest first.
        // Distances are finite (asserted on insert), so total order holds.
        other
            .dist()
            .partial_cmp(&self.dist())
            .unwrap_or(Ordering::Equal)
    }
}

impl<T> RStarTree<T> {
    /// The `k` entries nearest to `p` (by minimum distance between `p` and
    /// the entry rectangle), closest first. Ties break arbitrarily. Returns
    /// fewer than `k` when the tree is smaller.
    pub fn nearest(&self, p: Point, k: usize) -> Vec<(&Rect, &T, f64)> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<Candidate<'_, T>> = BinaryHeap::new();
        heap.push(Candidate::Node(0.0, self.root_node()));
        while let Some(c) = heap.pop() {
            match c {
                Candidate::Item(d, rect, item) => {
                    out.push((rect, item, d));
                    if out.len() == k {
                        break;
                    }
                }
                Candidate::Node(_, node) => match node {
                    Node::Leaf(entries) => {
                        for e in entries {
                            heap.push(Candidate::Item(
                                e.rect.distance_to_point(p),
                                &e.rect,
                                &e.item,
                            ));
                        }
                    }
                    Node::Internal(children) => {
                        for ch in children {
                            heap.push(Candidate::Node(ch.rect.distance_to_point(p), &ch.child));
                        }
                    }
                },
            }
        }
        out
    }

    /// The single nearest entry to `p`, if any.
    pub fn nearest_one(&self, p: Point) -> Option<(&Rect, &T, f64)> {
        self.nearest(p, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn grid_tree(n: u32) -> RStarTree<u32> {
        let mut t = RStarTree::with_max_entries(8);
        for i in 0..n {
            t.insert(pt((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0), i);
        }
        t
    }

    #[test]
    fn empty_and_zero_k() {
        let t: RStarTree<u32> = RStarTree::new();
        assert!(t.nearest(Point::new(0.0, 0.0), 5).is_empty());
        assert!(t.nearest_one(Point::new(0.0, 0.0)).is_none());
        let t = grid_tree(10);
        assert!(t.nearest(Point::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn nearest_one_is_the_closest_point() {
        let t = grid_tree(100);
        let (_, &item, d) = t.nearest_one(Point::new(3.1, 0.2)).unwrap();
        assert_eq!(item, 1, "point (3,0) is item 1");
        assert!((d - (0.1f64.powi(2) + 0.2f64.powi(2)).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn knn_matches_brute_force() {
        let t = grid_tree(100);
        let points: Vec<(u32, Point)> = (0..100)
            .map(|i| (i, Point::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0)))
            .collect();
        for &(qx, qy) in &[(0.0, 0.0), (14.2, 7.7), (30.0, 30.0), (-5.0, 12.0)] {
            let q = Point::new(qx, qy);
            let got: Vec<u32> = t.nearest(q, 7).iter().map(|(_, &v, _)| v).collect();
            let mut want: Vec<(f64, u32)> =
                points.iter().map(|&(i, p)| (q.distance(p), i)).collect();
            want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let want_d: Vec<f64> = want.iter().take(7).map(|&(d, _)| d).collect();
            let got_d: Vec<f64> = t.nearest(q, 7).iter().map(|&(_, _, d)| d).collect();
            // Compare by distance (ties may reorder ids).
            for (g, w) in got_d.iter().zip(&want_d) {
                assert!(
                    (g - w).abs() < 1e-9,
                    "query {q:?}: distances {got_d:?} vs {want_d:?}"
                );
            }
            assert_eq!(got.len(), 7);
        }
    }

    #[test]
    fn distances_are_sorted_ascending() {
        let t = grid_tree(100);
        let res = t.nearest(Point::new(11.0, 13.0), 20);
        for w in res.windows(2) {
            assert!(w[0].2 <= w[1].2, "distances must be non-decreasing");
        }
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let t = grid_tree(15);
        assert_eq!(t.nearest(Point::new(0.0, 0.0), 100).len(), 15);
    }
}
