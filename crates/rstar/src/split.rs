//! The R* split algorithm: ChooseSplitAxis by minimum margin-sum, then
//! ChooseSplitIndex by minimum overlap (ties broken by minimum area sum).
//!
//! The routine is generic over "anything with a rectangle" so the same code
//! splits leaf and internal nodes.

use mobieyes_geo::Rect;

/// Splits `entries` (len == M+1) into two groups, each with at least
/// `min_entries` members, following the R* heuristics. Returns the second
/// group; the first group replaces `entries`.
pub(crate) fn rstar_split<E>(
    entries: &mut Vec<E>,
    min_entries: usize,
    rect_of: impl Fn(&E) -> Rect,
) -> Vec<E> {
    let total = entries.len();
    debug_assert!(
        total >= 2 * min_entries,
        "split needs at least 2m entries (got {total})"
    );

    // --- ChooseSplitAxis: for each axis consider entries sorted by lower
    // and by upper coordinate; sum the margins of every legal distribution;
    // pick the axis with the smaller sum.
    let mut best_axis = 0usize; // 0 = x, 1 = y
    let mut best_margin = f64::INFINITY;
    for axis in 0..2 {
        let margin = margin_sum_for_axis(entries, axis, min_entries, &rect_of);
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    // --- ChooseSplitIndex: along the chosen axis, evaluate both sort orders
    // and all legal split points; minimize overlap, tie-break on area sum.
    let mut best: Option<(bool, usize, f64, f64)> = None; // (by_upper, k, overlap, area)
    for by_upper in [false, true] {
        sort_by_axis(entries, best_axis, by_upper, &rect_of);
        let (prefix, suffix) = prefix_suffix_mbrs(entries, &rect_of);
        for k in min_entries..=(total - min_entries) {
            let r1 = prefix[k - 1];
            let r2 = suffix[k];
            let overlap = r1.overlap_area(&r2);
            let area = r1.area() + r2.area();
            let better = match best {
                None => true,
                Some((_, _, bo, ba)) => overlap < bo || (overlap == bo && area < ba),
            };
            if better {
                best = Some((by_upper, k, overlap, area));
            }
        }
    }
    let (by_upper, split_at, _, _) = best.expect("at least one distribution exists");

    // Re-establish the winning sort order (entries may be sorted by the
    // other order after the loop) and split off the second group.
    sort_by_axis(entries, best_axis, by_upper, &rect_of);
    entries.split_off(split_at)
}

/// Sum of margins over all legal distributions for one axis (both sort
/// orders), the quantity minimized by ChooseSplitAxis.
fn margin_sum_for_axis<E>(
    entries: &mut [E],
    axis: usize,
    min_entries: usize,
    rect_of: &impl Fn(&E) -> Rect,
) -> f64 {
    let total = entries.len();
    let mut sum = 0.0;
    for by_upper in [false, true] {
        sort_by_axis(entries, axis, by_upper, rect_of);
        let (prefix, suffix) = prefix_suffix_mbrs(entries, rect_of);
        for k in min_entries..=(total - min_entries) {
            sum += prefix[k - 1].margin() + suffix[k].margin();
        }
    }
    sum
}

fn sort_by_axis<E>(entries: &mut [E], axis: usize, by_upper: bool, rect_of: &impl Fn(&E) -> Rect) {
    entries.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        let ka = key(ra, axis, by_upper);
        let kb = key(rb, axis, by_upper);
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[inline]
fn key(r: Rect, axis: usize, by_upper: bool) -> f64 {
    match (axis, by_upper) {
        (0, false) => r.lx,
        (0, true) => r.hx(),
        (_, false) => r.ly,
        (_, true) => r.hy(),
    }
}

/// `prefix[i]` = MBR of entries[0..=i]; `suffix[i]` = MBR of entries[i..].
fn prefix_suffix_mbrs<E>(entries: &[E], rect_of: &impl Fn(&E) -> Rect) -> (Vec<Rect>, Vec<Rect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = rect_of(&entries[0]);
    prefix.push(acc);
    for e in &entries[1..] {
        acc = acc.union(&rect_of(e));
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::new(0.0, 0.0, 0.0, 0.0); n];
    let mut acc = rect_of(&entries[n - 1]);
    suffix[n - 1] = acc;
    for i in (0..n - 1).rev() {
        acc = acc.union(&rect_of(&entries[i]));
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn split_respects_min_entries() {
        let mut entries: Vec<Rect> = (0..10).map(|i| pt(i as f64, 0.0)).collect();
        let second = rstar_split(&mut entries, 4, |r| *r);
        assert!(entries.len() >= 4 && second.len() >= 4);
        assert_eq!(entries.len() + second.len(), 10);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clearly separated clusters along x must split cleanly. Unit
        // squares (not degenerate points) so overlap/area tie-breaking is
        // meaningful.
        let mut entries: Vec<Rect> = (0..5)
            .map(|i| Rect::new(i as f64 * 0.1, 0.0, 1.0, 1.0))
            .chain((0..5).map(|i| Rect::new(100.0 + i as f64 * 0.1, 0.0, 1.0, 1.0)))
            .collect();
        let second = rstar_split(&mut entries, 2, |r| *r);
        let mbr1 = entries.iter().copied().reduce(|a, b| a.union(&b)).unwrap();
        let mbr2 = second.iter().copied().reduce(|a, b| a.union(&b)).unwrap();
        assert_eq!(mbr1.overlap_area(&mbr2), 0.0, "clusters must not overlap");
        assert_eq!(entries.len(), 5);
        assert_eq!(second.len(), 5);
    }

    #[test]
    fn split_prefers_axis_with_less_margin() {
        // Entries spread along y, tight along x: the split must be on y.
        let mut entries: Vec<Rect> = (0..8).map(|i| pt(0.0, i as f64 * 10.0)).collect();
        let second = rstar_split(&mut entries, 3, |r| *r);
        let max1 = entries.iter().map(|r| r.ly).fold(f64::MIN, f64::max);
        let min2 = second.iter().map(|r| r.ly).fold(f64::MAX, f64::min);
        assert!(
            max1 < min2 || min2 > max1 - 1e-9,
            "groups should be y-separated"
        );
    }

    #[test]
    fn split_handles_identical_rects() {
        let mut entries: Vec<Rect> = (0..6).map(|_| pt(1.0, 1.0)).collect();
        let second = rstar_split(&mut entries, 2, |r| *r);
        assert_eq!(entries.len() + second.len(), 6);
        assert!(entries.len() >= 2 && second.len() >= 2);
    }

    #[test]
    fn prefix_suffix_cover_everything() {
        let entries = vec![pt(0.0, 0.0), pt(2.0, 2.0), pt(5.0, 1.0)];
        let (prefix, suffix) = prefix_suffix_mbrs(&entries, &|r: &Rect| *r);
        assert_eq!(prefix[2], suffix[0]);
        assert_eq!(prefix[0], entries[0]);
        assert_eq!(suffix[2], entries[2]);
    }
}
