//! An R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).
//!
//! The MobiEyes paper evaluates its distributed protocol against two
//! centralized baselines that both rely on an R*-tree: an *object index*
//! (spatial index over moving-object positions) and a *query index* (spatial
//! index over query regions). This crate provides that substrate from
//! scratch: ChooseSubtree with minimum overlap enlargement at leaf parents,
//! the R* margin-driven split, forced reinsertion on first overflow per
//! level, and deletion with tree condensation.
//!
//! The tree stores `(Rect, T)` pairs. Points are stored as degenerate
//! rectangles. `T` is an arbitrary payload; deletion identifies entries by
//! payload equality within the given rectangle.
//!
//! # Example
//! ```
//! use mobieyes_rstar::RStarTree;
//! use mobieyes_geo::{Point, Rect};
//!
//! let mut tree = RStarTree::new();
//! for i in 0..100u32 {
//!     let p = Point::new(i as f64, (i * 7 % 100) as f64);
//!     tree.insert(Rect::from_point(p), i);
//! }
//! let hits = tree.query_rect(&Rect::new(0.0, 0.0, 10.0, 100.0));
//! assert!(hits.iter().all(|(r, _)| r.lx <= 10.0));
//! assert_eq!(tree.len(), 100);
//! ```

mod bulk;
mod knn;
mod node;
mod split;
mod tree;

pub use tree::{RStarTree, DEFAULT_MAX_ENTRIES};
