//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., 1997).
//!
//! Builds a packed tree from a full entry set in O(n log n) — the natural
//! way to initialize the centralized object index with the 10 000 initial
//! positions instead of 10 000 one-at-a-time inserts.

use crate::node::{ChildEntry, LeafEntry, Node};
use crate::tree::RStarTree;
use mobieyes_geo::Rect;

impl<T> RStarTree<T> {
    /// Builds a tree from `entries` using STR packing with the default
    /// node capacity.
    pub fn bulk_load(entries: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_with_max_entries(entries, crate::tree::DEFAULT_MAX_ENTRIES)
    }

    /// STR bulk load with an explicit node capacity (>= 4).
    pub fn bulk_load_with_max_entries(entries: Vec<(Rect, T)>, max_entries: usize) -> Self {
        let mut tree = RStarTree::with_max_entries(max_entries);
        let n = entries.len();
        if n == 0 {
            return tree;
        }
        // --- Leaf level: tile entries into slabs by x, then chunk by y.
        let mut leaf_entries: Vec<LeafEntry<T>> = entries
            .into_iter()
            .map(|(rect, item)| LeafEntry { rect, item })
            .collect();
        let leaves = str_pack(
            &mut leaf_entries,
            max_entries,
            |e| e.rect,
            |group| Node::Leaf(group),
        );
        // --- Internal levels: repeat until a single node remains.
        let mut level_nodes = leaves;
        let mut levels = 0usize;
        while level_nodes.len() > 1 {
            let mut children: Vec<ChildEntry<T>> = level_nodes
                .into_iter()
                .map(|node| ChildEntry {
                    rect: node.mbr().expect("packed node is non-empty"),
                    child: Box::new(node),
                })
                .collect();
            level_nodes = str_pack(
                &mut children,
                max_entries,
                |c| c.rect,
                |group| Node::Internal(group),
            );
            levels += 1;
        }
        let root = level_nodes.pop().expect("at least one node");
        tree.replace_root(root, levels, n);
        tree
    }
}

/// Packs `items` into nodes of at most `cap` entries using one STR pass:
/// sort by center-x, slice into √P vertical slabs, sort each slab by
/// center-y, chunk evenly (even chunking keeps every node at least half
/// full, satisfying the R* minimum-fill invariant).
fn str_pack<E, N>(
    items: &mut Vec<E>,
    cap: usize,
    rect_of: impl Fn(&E) -> Rect + Copy,
    make_node: impl Fn(Vec<E>) -> N,
) -> Vec<N> {
    let n = items.len();
    if n <= cap {
        return vec![make_node(std::mem::take(items))];
    }
    let node_count = n.div_ceil(cap);
    let slabs = (node_count as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(slabs);

    items.sort_by(|a, b| {
        let (ca, cb) = (rect_of(a).center().x, rect_of(b).center().x);
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut out = Vec::with_capacity(node_count);
    let mut rest = std::mem::take(items);
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let mut slab: Vec<E> = rest.drain(..take).collect();
        slab.sort_by(|a, b| {
            let (ca, cb) = (rect_of(a).center().y, rect_of(b).center().y);
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Even chunking within the slab: groups differ in size by at most
        // one, and each has at least ⌊len/groups⌋ ≥ cap/2 ≥ m entries.
        let groups = slab.len().div_ceil(cap);
        let base = slab.len() / groups;
        let extra = slab.len() % groups;
        for g in 0..groups {
            let size = base + usize::from(g < extra);
            let group: Vec<E> = slab.drain(..size).collect();
            out.push(make_node(group));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Point;

    fn pts(n: u32) -> Vec<(Rect, u32)> {
        // Deterministic scattered points.
        let mut s = 1u64;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1000) as f64 / 3.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1000) as f64 / 3.0;
                (Rect::from_point(Point::new(x, y)), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let t: RStarTree<u32> = RStarTree::bulk_load(vec![]);
        assert!(t.is_empty());
        t.check_invariants();
        let t = RStarTree::bulk_load(pts(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn bulk_load_preserves_all_entries_and_invariants() {
        for n in [50u32, 333, 1000, 5000] {
            let entries = pts(n);
            let t = RStarTree::bulk_load_with_max_entries(entries.clone(), 16);
            assert_eq!(t.len(), n as usize, "n={n}");
            t.check_invariants();
            // Every entry findable.
            for (rect, id) in &entries {
                let hits = t.query_rect(rect);
                assert!(hits.iter().any(|(_, &v)| v == *id), "lost {id} (n={n})");
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_answers_like_incremental() {
        let entries = pts(800);
        let bulk = RStarTree::bulk_load_with_max_entries(entries.clone(), 8);
        let mut incr = RStarTree::with_max_entries(8);
        for (r, v) in entries {
            incr.insert(r, v);
        }
        let q = Rect::new(50.0, 50.0, 120.0, 90.0);
        let mut a: Vec<u32> = bulk.query_rect(&q).iter().map(|(_, &v)| v).collect();
        let mut b: Vec<u32> = incr.query_rect(&q).iter().map(|(_, &v)| v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_loaded_tree_is_shallower_or_equal() {
        let entries = pts(2000);
        let bulk = RStarTree::bulk_load_with_max_entries(entries.clone(), 8);
        let mut incr = RStarTree::with_max_entries(8);
        for (r, v) in entries {
            incr.insert(r, v);
        }
        assert!(
            bulk.height() <= incr.height(),
            "packing must not deepen the tree"
        );
    }

    #[test]
    fn bulk_loaded_tree_supports_mutation() {
        let mut t = RStarTree::bulk_load_with_max_entries(pts(500), 8);
        // Delete half, insert new ones, stay valid.
        for (rect, id) in pts(500).iter().step_by(2) {
            assert!(t.remove(rect, id));
        }
        t.check_invariants();
        for i in 0..100u32 {
            t.insert(Rect::from_point(Point::new(i as f64, 400.0)), 10_000 + i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 250 + 100);
    }
}
