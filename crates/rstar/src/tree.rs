//! The R*-tree proper: insertion with forced reinsertion, deletion with
//! condensation, and rectangle queries.

use crate::node::{ChildEntry, LeafEntry, Node};
use crate::split::rstar_split;
use mobieyes_geo::{Point, Rect};

/// Default maximum number of entries per node (the R* paper's M).
pub const DEFAULT_MAX_ENTRIES: usize = 32;

/// An entry pending insertion: either a fresh leaf entry or a subtree
/// detached during forced reinsertion, to be attached so a node at
/// `attach_level` receives it as a child.
enum Pending<T> {
    Leaf(LeafEntry<T>),
    Subtree {
        rect: Rect,
        child: Box<Node<T>>,
        attach_level: usize,
    },
}

impl<T> Pending<T> {
    fn rect(&self) -> Rect {
        match self {
            Pending::Leaf(e) => e.rect,
            Pending::Subtree { rect, .. } => *rect,
        }
    }

    fn attach_level(&self) -> usize {
        match self {
            Pending::Leaf(_) => 0,
            Pending::Subtree { attach_level, .. } => *attach_level,
        }
    }
}

/// An R*-tree over `(Rect, T)` entries.
///
/// See the crate docs for an example. Node parameters follow the R* paper's
/// recommendations: minimum fill 40 % of M, forced-reinsert fraction 30 %.
#[derive(Debug)]
pub struct RStarTree<T> {
    root: Node<T>,
    /// Root level; leaves are level 0, so `height = root_level + 1`.
    root_level: usize,
    size: usize,
    max_entries: usize,
    min_entries: usize,
    reinsert_count: usize,
}

impl<T> Default for RStarTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RStarTree<T> {
    /// An empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_max_entries(DEFAULT_MAX_ENTRIES)
    }

    /// An empty tree with node capacity `max_entries` (>= 4).
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree needs M >= 4");
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        RStarTree {
            root: Node::new_leaf(),
            root_level: 0,
            size: 0,
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    pub fn len(&self) -> usize {
        self.size
    }

    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Tree height (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.root_level + 1
    }

    pub fn clear(&mut self) {
        self.root = Node::new_leaf();
        self.root_level = 0;
        self.size = 0;
    }

    /// Inserts an entry. Duplicates (same rect and equal payload) are kept;
    /// the tree is a multiset.
    pub fn insert(&mut self, rect: Rect, item: T) {
        debug_assert!(rect.low().is_finite() && rect.high().is_finite());
        self.size += 1;
        let mut overflow_seen = vec![false; self.root_level + 1];
        self.insert_pending(Pending::Leaf(LeafEntry { rect, item }), &mut overflow_seen);
    }

    /// Drives a pending entry (plus any reinsertion fallout) to completion.
    fn insert_pending(&mut self, first: Pending<T>, overflow_seen: &mut Vec<bool>) {
        let mut queue: Vec<Pending<T>> = vec![first];
        while let Some(p) = queue.pop() {
            if overflow_seen.len() < self.root_level + 1 {
                overflow_seen.resize(self.root_level + 1, false);
            }
            let split = Self::insert_rec(
                &mut self.root,
                self.root_level,
                self.root_level,
                p,
                self.max_entries,
                self.min_entries,
                self.reinsert_count,
                overflow_seen,
                &mut queue,
            );
            if let Some((sib_rect, sib_node)) = split {
                // Root split: grow the tree by one level.
                let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
                let old_rect = old_root.mbr().expect("split root cannot be empty");
                self.root = Node::Internal(vec![
                    ChildEntry {
                        rect: old_rect,
                        child: Box::new(old_root),
                    },
                    ChildEntry {
                        rect: sib_rect,
                        child: Box::new(sib_node),
                    },
                ]);
                self.root_level += 1;
            }
        }
    }

    /// Recursive insert. Returns a new sibling `(mbr, node)` when `node`
    /// split; the caller attaches it one level up.
    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        node: &mut Node<T>,
        level: usize,
        root_level: usize,
        pending: Pending<T>,
        max_entries: usize,
        min_entries: usize,
        reinsert_count: usize,
        overflow_seen: &mut [bool],
        queue: &mut Vec<Pending<T>>,
    ) -> Option<(Rect, Node<T>)> {
        if level == pending.attach_level() {
            match (node, pending) {
                (Node::Leaf(entries), Pending::Leaf(e)) => {
                    entries.push(e);
                    if entries.len() > max_entries {
                        return Self::overflow_leaf(
                            entries,
                            level,
                            root_level,
                            min_entries,
                            reinsert_count,
                            overflow_seen,
                            queue,
                        );
                    }
                    None
                }
                (Node::Internal(children), Pending::Subtree { rect, child, .. }) => {
                    children.push(ChildEntry { rect, child });
                    if children.len() > max_entries {
                        return Self::overflow_internal(
                            children,
                            level,
                            root_level,
                            min_entries,
                            reinsert_count,
                            overflow_seen,
                            queue,
                        );
                    }
                    None
                }
                _ => unreachable!("attach level does not match node kind"),
            }
        } else {
            let Node::Internal(children) = node else {
                unreachable!("descending past a leaf");
            };
            let target_rect = pending.rect();
            let idx = Self::choose_subtree(children, &target_rect, level);
            let split = Self::insert_rec(
                &mut children[idx].child,
                level - 1,
                root_level,
                pending,
                max_entries,
                min_entries,
                reinsert_count,
                overflow_seen,
                queue,
            );
            // Recompute the child MBR: it may have grown (insert) or shrunk
            // (forced reinsertion removed entries).
            children[idx].rect = children[idx]
                .child
                .mbr()
                .expect("child emptied during insert");
            if let Some((sib_rect, sib_node)) = split {
                children.push(ChildEntry {
                    rect: sib_rect,
                    child: Box::new(sib_node),
                });
                if children.len() > max_entries {
                    return Self::overflow_internal(
                        children,
                        level,
                        root_level,
                        min_entries,
                        reinsert_count,
                        overflow_seen,
                        queue,
                    );
                }
            }
            None
        }
    }

    /// R* ChooseSubtree: minimum overlap enlargement when children are
    /// leaves, minimum area enlargement otherwise; ties broken by area
    /// enlargement then by area.
    fn choose_subtree(children: &[ChildEntry<T>], rect: &Rect, level: usize) -> usize {
        debug_assert!(!children.is_empty());
        let children_are_leaves = level == 1;
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, c) in children.iter().enumerate() {
            let enlarged = c.rect.union(rect);
            let area_enlargement = enlarged.area() - c.rect.area();
            let key = if children_are_leaves {
                // Overlap enlargement of child i w.r.t. its siblings.
                let mut overlap_before = 0.0;
                let mut overlap_after = 0.0;
                for (j, other) in children.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_before += c.rect.overlap_area(&other.rect);
                    overlap_after += enlarged.overlap_area(&other.rect);
                }
                (
                    overlap_after - overlap_before,
                    area_enlargement,
                    c.rect.area(),
                )
            } else {
                (area_enlargement, c.rect.area(), 0.0)
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Overflow at a leaf: forced reinsert once per level per operation,
    /// otherwise split.
    fn overflow_leaf(
        entries: &mut Vec<LeafEntry<T>>,
        level: usize,
        root_level: usize,
        min_entries: usize,
        reinsert_count: usize,
        overflow_seen: &mut [bool],
        queue: &mut Vec<Pending<T>>,
    ) -> Option<(Rect, Node<T>)> {
        if level != root_level && !overflow_seen[level] {
            overflow_seen[level] = true;
            let removed = take_farthest(entries, reinsert_count, |e| e.rect);
            // Close reinsert: the stack pops last-pushed first, so push in
            // decreasing-distance order to reinsert the closest entry first.
            for e in removed {
                queue.push(Pending::Leaf(e));
            }
            None
        } else {
            let second = rstar_split(entries, min_entries, |e| e.rect);
            let node = Node::Leaf(second);
            let rect = node.mbr().expect("split produced empty node");
            Some((rect, node))
        }
    }

    /// Overflow at an internal node: forced reinsert of child subtrees once
    /// per level per operation, otherwise split.
    fn overflow_internal(
        children: &mut Vec<ChildEntry<T>>,
        level: usize,
        root_level: usize,
        min_entries: usize,
        reinsert_count: usize,
        overflow_seen: &mut [bool],
        queue: &mut Vec<Pending<T>>,
    ) -> Option<(Rect, Node<T>)> {
        if level != root_level && !overflow_seen[level] {
            overflow_seen[level] = true;
            let removed = take_farthest(children, reinsert_count, |e| e.rect);
            for e in removed {
                queue.push(Pending::Subtree {
                    rect: e.rect,
                    child: e.child,
                    attach_level: level,
                });
            }
            None
        } else {
            let second = rstar_split(children, min_entries, |e| e.rect);
            let node = Node::Internal(second);
            let rect = node.mbr().expect("split produced empty node");
            Some((rect, node))
        }
    }

    /// Removes one entry matching `rect` (exactly) and `item` (by equality).
    /// Returns true when an entry was removed.
    pub fn remove(&mut self, rect: &Rect, item: &T) -> bool
    where
        T: PartialEq,
    {
        let mut orphans: Vec<LeafEntry<T>> = Vec::new();
        let removed = Self::remove_rec(&mut self.root, rect, item, self.min_entries, &mut orphans);
        if !removed {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.size -= 1;
        // Shrink the root while it is an internal node with a single child
        // (or convert an emptied internal root back to a leaf).
        loop {
            match &mut self.root {
                Node::Internal(v) if v.len() == 1 => {
                    let only = v.pop().expect("len checked");
                    self.root = *only.child;
                    self.root_level -= 1;
                }
                Node::Internal(v) if v.is_empty() => {
                    self.root = Node::new_leaf();
                    self.root_level = 0;
                    break;
                }
                _ => break,
            }
        }
        // Reinsert orphaned leaf entries (condensed subtrees are flattened
        // to leaf entries: condense events are rare and nodes are small, so
        // item-wise reinsertion keeps the code simple and the tree valid).
        let mut overflow_seen = vec![false; self.root_level + 1];
        for e in orphans {
            self.insert_pending(Pending::Leaf(e), &mut overflow_seen);
        }
        true
    }

    /// Recursive removal; collects leaf entries of condensed nodes into
    /// `orphans` (flattened).
    fn remove_rec(
        node: &mut Node<T>,
        rect: &Rect,
        item: &T,
        min_entries: usize,
        orphans: &mut Vec<LeafEntry<T>>,
    ) -> bool
    where
        T: PartialEq,
    {
        match node {
            Node::Leaf(entries) => {
                if let Some(pos) = entries
                    .iter()
                    .position(|e| e.rect == *rect && e.item == *item)
                {
                    entries.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal(children) => {
                for i in 0..children.len() {
                    if !children[i].rect.contains_rect(rect) {
                        continue;
                    }
                    if Self::remove_rec(&mut children[i].child, rect, item, min_entries, orphans) {
                        if children[i].child.len() < min_entries {
                            // Condense: detach the whole child and flatten.
                            let dead = children.swap_remove(i);
                            flatten_into(*dead.child, orphans);
                        } else {
                            children[i].rect = children[i]
                                .child
                                .mbr()
                                .expect("non-underflowing child has entries");
                        }
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Removes and reinserts an entry whose rectangle changed — the
    /// "update" operation the object-index baseline performs on every
    /// position report. Returns false (and inserts anyway) when the old
    /// entry was not found.
    pub fn update(&mut self, old_rect: &Rect, new_rect: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        let found = self.remove(old_rect, &item);
        self.insert(new_rect, item);
        found
    }

    /// All entries whose rectangle intersects `query` (closed semantics).
    pub fn query_rect(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, |r, t| out.push((r, t)));
        out
    }

    /// All entries whose rectangle contains `p`.
    pub fn query_point(&self, p: Point) -> Vec<(&Rect, &T)> {
        self.query_rect(&Rect::from_point(p))
    }

    /// Visits every entry intersecting `query` without allocating.
    pub fn for_each_intersecting<'a>(&'a self, query: &Rect, mut f: impl FnMut(&'a Rect, &'a T)) {
        fn walk<'a, T>(node: &'a Node<T>, query: &Rect, f: &mut impl FnMut(&'a Rect, &'a T)) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if e.rect.intersects(query) {
                            f(&e.rect, &e.item);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        if c.rect.intersects(query) {
                            walk(&c.child, query, f);
                        }
                    }
                }
            }
        }
        walk(&self.root, query, &mut f);
    }

    /// Iterates all `(rect, item)` pairs (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Leaf(entries) => {
                    if !entries.is_empty() {
                        return Some(
                            entries
                                .iter()
                                .map(|e| (&e.rect, &e.item))
                                .collect::<Vec<_>>(),
                        );
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        stack.push(&c.child);
                    }
                }
            }
        })
        .flatten()
    }

    /// Root node accessor for in-crate traversals (kNN).
    pub(crate) fn root_node(&self) -> &Node<T> {
        &self.root
    }

    /// Installs a fully-built tree (bulk loading). `root_level` is the
    /// level of `root` (0 = leaf), `size` the number of leaf entries.
    pub(crate) fn replace_root(&mut self, root: Node<T>, root_level: usize, size: usize) {
        self.root = root;
        self.root_level = root_level;
        self.size = size;
    }

    /// Validates all structural invariants; panics with a description on
    /// violation. Intended for tests and debug assertions.
    pub fn check_invariants(&self) {
        fn walk<T>(
            node: &Node<T>,
            level: usize,
            is_root: bool,
            min: usize,
            max: usize,
            leaf_levels: &mut Vec<usize>,
            count: &mut usize,
        ) {
            let n = node.len();
            if is_root {
                assert!(n <= max, "root overflows: {n} > {max}");
            } else {
                assert!(n >= min && n <= max, "node fill {n} outside [{min}, {max}]");
            }
            match node {
                Node::Leaf(entries) => {
                    leaf_levels.push(level);
                    *count += entries.len();
                }
                Node::Internal(children) => {
                    assert!(level > 0, "internal node at leaf level");
                    for c in children {
                        let mbr = c.child.mbr().expect("child node empty");
                        assert_eq!(c.rect, mbr, "stored child rect != child MBR");
                        walk(&c.child, level - 1, false, min, max, leaf_levels, count);
                    }
                }
            }
        }
        let mut leaf_levels = Vec::new();
        let mut count = 0;
        walk(
            &self.root,
            self.root_level,
            true,
            self.min_entries,
            self.max_entries,
            &mut leaf_levels,
            &mut count,
        );
        assert!(
            leaf_levels.iter().all(|&l| l == 0),
            "leaves at differing levels"
        );
        assert_eq!(count, self.size, "size bookkeeping mismatch");
    }
}

/// Removes the `k` entries whose centers are farthest from the node MBR
/// center, returning them sorted by decreasing distance.
fn take_farthest<E>(entries: &mut Vec<E>, k: usize, rect_of: impl Fn(&E) -> Rect) -> Vec<E> {
    let mbr = entries
        .iter()
        .map(&rect_of)
        .reduce(|a, b| a.union(&b))
        .expect("overflowing node is non-empty");
    let center = mbr.center();
    entries.sort_by(|a, b| {
        let da = rect_of(a).center().distance_sq(center);
        let db = rect_of(b).center().distance_sq(center);
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    let keep_from = k.min(entries.len().saturating_sub(1));
    let mut removed: Vec<E> = Vec::with_capacity(keep_from);
    // The farthest k are now at the front; drain them.
    for e in entries.drain(..keep_from) {
        removed.push(e);
    }
    removed
}

/// Flattens a subtree into its leaf entries.
fn flatten_into<T>(node: Node<T>, out: &mut Vec<LeafEntry<T>>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Internal(children) => {
            for c in children {
                flatten_into(*c.child, out);
            }
        }
    }
}

impl<T: std::fmt::Debug> RStarTree<T> {
    /// Debug representation of the tree structure (tests only).
    pub fn debug_dump(&self) -> String {
        fn walk<T: std::fmt::Debug>(node: &Node<T>, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        out.push_str(&format!(
                            "{}item {:?} @ ({:.3},{:.3},{:.3},{:.3})\n",
                            pad,
                            e.item,
                            e.rect.lx,
                            e.rect.ly,
                            e.rect.w(),
                            e.rect.h()
                        ));
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        out.push_str(&format!(
                            "{}child mbr ({:.3},{:.3})-({:.3},{:.3})\n",
                            pad,
                            c.rect.lx,
                            c.rect.ly,
                            c.rect.hx(),
                            c.rect.hy()
                        ));
                        walk(&c.child, depth + 1, out);
                    }
                }
            }
        }
        let mut s = String::new();
        walk(&self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn empty_tree() {
        let t: RStarTree<u32> = RStarTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.query_rect(&Rect::new(0.0, 0.0, 100.0, 100.0)).is_empty());
        t.check_invariants();
    }

    #[test]
    fn insert_and_query_small() {
        let mut t = RStarTree::new();
        t.insert(pt(1.0, 1.0), "a");
        t.insert(pt(5.0, 5.0), "b");
        t.insert(pt(9.0, 1.0), "c");
        assert_eq!(t.len(), 3);
        let hits = t.query_rect(&Rect::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].1, "a");
        t.check_invariants();
    }

    #[test]
    fn grows_past_one_node_and_stays_valid() {
        let mut t = RStarTree::with_max_entries(8);
        for i in 0..500u32 {
            let x = (i % 50) as f64;
            let y = (i / 50) as f64;
            t.insert(pt(x, y), i);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1);
        t.check_invariants();
        // Every inserted point is findable.
        for i in 0..500u32 {
            let x = (i % 50) as f64;
            let y = (i / 50) as f64;
            let hits = t.query_point(Point::new(x, y));
            assert!(hits.iter().any(|(_, &v)| v == i), "lost item {i}");
        }
    }

    #[test]
    fn query_matches_brute_force() {
        let mut t = RStarTree::with_max_entries(6);
        let mut all = Vec::new();
        // Deterministic pseudo-random points.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / ((1u64 << 31) as f64)
        };
        for i in 0..300u32 {
            let r = Rect::new(next() * 100.0, next() * 100.0, next() * 5.0, next() * 5.0);
            t.insert(r, i);
            all.push((r, i));
        }
        t.check_invariants();
        let q = Rect::new(20.0, 20.0, 30.0, 30.0);
        let mut got: Vec<u32> = t.query_rect(&q).iter().map(|(_, &v)| v).collect();
        let mut want: Vec<u32> = all
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|&(_, v)| v)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut t = RStarTree::with_max_entries(4);
        for i in 0..100u32 {
            t.insert(pt(i as f64, 0.0), i);
        }
        assert!(t.remove(&pt(50.0, 0.0), &50));
        assert!(!t.remove(&pt(50.0, 0.0), &50), "double remove must fail");
        assert!(!t.remove(&pt(1000.0, 0.0), &7), "missing rect");
        assert_eq!(t.len(), 99);
        t.check_invariants();
        assert!(t.query_point(Point::new(50.0, 0.0)).is_empty());
        assert!(!t.query_point(Point::new(51.0, 0.0)).is_empty());
    }

    #[test]
    fn remove_all_empties_tree() {
        let mut t = RStarTree::with_max_entries(4);
        for i in 0..64u32 {
            t.insert(pt((i % 8) as f64, (i / 8) as f64), i);
        }
        for i in 0..64u32 {
            assert!(
                t.remove(&pt((i % 8) as f64, (i / 8) as f64), &i),
                "lost {i}"
            );
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn duplicate_entries_are_multiset() {
        let mut t = RStarTree::new();
        t.insert(pt(1.0, 1.0), 7u32);
        t.insert(pt(1.0, 1.0), 7);
        assert_eq!(t.len(), 2);
        assert!(t.remove(&pt(1.0, 1.0), &7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_point(Point::new(1.0, 1.0)).len(), 1);
    }

    #[test]
    fn update_moves_entry() {
        let mut t = RStarTree::new();
        for i in 0..50u32 {
            t.insert(pt(i as f64, 0.0), i);
        }
        assert!(t.update(&pt(10.0, 0.0), pt(200.0, 200.0), 10));
        assert!(t.query_point(Point::new(10.0, 0.0)).is_empty());
        assert_eq!(t.query_point(Point::new(200.0, 200.0)).len(), 1);
        assert_eq!(t.len(), 50);
        t.check_invariants();
        // Updating a missing entry still inserts and reports false.
        assert!(!t.update(&pt(999.0, 999.0), pt(5.0, 5.0), 777));
        assert_eq!(t.len(), 51);
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut t = RStarTree::with_max_entries(5);
        for i in 0..200u32 {
            t.insert(pt((i % 20) as f64, (i / 20) as f64), i);
        }
        let mut seen: Vec<u32> = t.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets() {
        let mut t = RStarTree::new();
        for i in 0..100u32 {
            t.insert(pt(i as f64, i as f64), i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
        t.insert(pt(1.0, 1.0), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clustered_then_removed_keeps_invariants() {
        // Heavy churn in one region exercises reinsert + condense paths.
        let mut t = RStarTree::with_max_entries(8);
        for round in 0..5 {
            for i in 0..200u32 {
                let x = (i % 10) as f64 + round as f64 * 0.01;
                t.insert(pt(x, (i / 10) as f64), i);
            }
            t.check_invariants();
            for i in (0..200u32).step_by(2) {
                let x = (i % 10) as f64 + round as f64 * 0.01;
                assert!(t.remove(&pt(x, (i / 10) as f64), &i));
            }
            t.check_invariants();
        }
        assert_eq!(t.len(), 5 * 100);
    }
}
