//! Simulated asymmetric wireless network substrate for MobiEyes.
//!
//! The paper assumes a three-tier architecture: moving objects talk *up* to
//! base stations (uplink), and the server talks *down* either one-to-one or
//! by broadcasting through a base station to every object inside its
//! coverage area (downlink). This crate simulates exactly that, plus the
//! measurement machinery the paper's evaluation needs:
//!
//! - [`BaseStationLayout`]: a lattice of circular-coverage base stations
//!   covering the universe of discourse, with the `Bmap` cell→stations
//!   mapping and a greedy minimal covering set for monitoring regions.
//! - [`NetworkSim`]: tick-based uplink/unicast/broadcast queues with
//!   closed-loop delivery semantics (a broadcast reaches an object iff the
//!   object lies inside the transmitting station's coverage circle).
//! - [`MessageMeter`]: message and byte counts split by direction, plus
//!   per-node sent/received byte totals.
//! - [`RadioModel`]: the GSM/GPRS energy model of the paper (§5.3) turning
//!   byte counts into per-object communication energy.
//! - Fault injection (drop/duplicate downlink messages) for robustness
//!   tests.

pub mod fault;
pub mod meter;
pub mod radio;
pub mod sim;
pub mod socket;
pub mod station;
pub mod transport;

pub use fault::{ChurnPlan, FaultPlan, PartitionCrashPlan, TornWritePlan};
pub use meter::{Direction, MessageMeter};
pub use radio::RadioModel;
pub use sim::{NetworkSim, NodeId, WireSized};
pub use socket::{Endpoint, FramedConn, Listener, SocketTransport, Stream, MAX_FRAME};
pub use station::{BaseStationLayout, StationId};
pub use transport::{Frame, LockstepTransport, Routed, Transport, TransportError};
