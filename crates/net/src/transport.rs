//! Transport abstraction for the inter-server cluster bus.
//!
//! The partitioned server tier moves [`mobieyes-cluster`] envelopes between
//! partitions. Historically that link was hard-wired to the deterministic
//! in-memory [`NetworkSim`]; this module extracts the contract into a
//! [`Transport`] trait so the same coordinator runs unchanged over the
//! lock-step simulation ([`LockstepTransport`]) or a real socket
//! ([`crate::socket::SocketTransport`], TCP or Unix-domain).
//!
//! ## Contract
//!
//! - [`Transport::send`] enqueues one message from a node, subject to the
//!   installed [`FaultPlan`] (drop / duplicate, identical semantics to
//!   [`NetworkSim::send_uplink`]: the sender always pays the transmission,
//!   the receiver sees zero, one or two copies).
//! - [`Transport::flush`] pushes any buffered bytes to the peer.
//! - [`Transport::poll`] returns *every* message sent (and not dropped)
//!   since the previous poll, in send order. All backends are reliable and
//!   ordered at this interface; loss is injected only by the fault plan,
//!   never by the medium.
//! - Failures surface as [`TransportError`] values — a malformed or
//!   truncated frame must never panic the transport.

use crate::fault::FaultPlan;
use crate::meter::MessageMeter;
use crate::sim::{NetworkSim, NodeId, WireSized};
use crate::station::BaseStationLayout;
use mobieyes_telemetry::Telemetry;

/// Failure of a transport backend. The lock-step backend is infallible;
/// socket backends surface I/O, framing and handshake problems here
/// instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Underlying socket I/O failed.
    Io(String),
    /// The peer closed the connection.
    Closed,
    /// A length-prefixed frame was malformed or could not be decoded.
    Frame(String),
    /// A frame declared a length above [`crate::socket::MAX_FRAME`].
    Oversize { len: usize, max: usize },
    /// The connection handshake failed (bad magic, version or node id).
    Handshake(String),
    /// The peer violated the RPC protocol (unexpected reply shape).
    Protocol(String),
    /// A read deadline elapsed before the peer produced a frame. Distinct
    /// from [`TransportError::Closed`]: the socket is still open, the peer
    /// is hung — crash detection treats both as a dead partition.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::Frame(e) => write!(f, "transport frame error: {e}"),
            TransportError::Oversize { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            TransportError::Handshake(e) => write!(f, "transport handshake failed: {e}"),
            TransportError::Protocol(e) => write!(f, "transport protocol violation: {e}"),
            TransportError::Timeout => write!(f, "transport read deadline elapsed"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout
            }
            _ => TransportError::Io(e.to_string()),
        }
    }
}

impl TransportError {
    /// Whether this failure means the peer itself is gone or unresponsive
    /// (as opposed to a protocol-level disagreement): a closed socket, an
    /// I/O error on the stream, or an elapsed read deadline. The
    /// coordinator classifies these as a partition crash and triggers
    /// failover; the remaining variants indicate a bug, not a dead peer.
    pub fn is_peer_death(&self) -> bool {
        matches!(
            self,
            TransportError::Closed | TransportError::Io(_) | TransportError::Timeout
        )
    }
}

/// A message that can cross a byte-oriented transport: encodes itself into
/// a buffer and decodes from exactly those bytes. `wire_size` (via
/// [`WireSized`]) must equal the encoded length — the accounting depends
/// on it.
pub trait Frame: WireSized + Sized {
    fn encode_frame(&self, out: &mut Vec<u8>);
    fn decode_frame(bytes: &[u8]) -> Result<Self, TransportError>;
}

/// A message that knows its destination partition.
pub trait Routed {
    fn dest(&self) -> u32;
}

/// The inter-server bus contract. Object-safe: the coordinator holds a
/// `Box<dyn Transport<Envelope>>` and never knows which backend it runs on.
pub trait Transport<M> {
    /// Enqueues `msg` from `from`, applying the fault plan.
    fn send(&mut self, from: NodeId, msg: M) -> Result<(), TransportError>;

    /// Pushes buffered bytes toward the receiver.
    fn flush(&mut self) -> Result<(), TransportError>;

    /// Returns every surviving message sent since the last poll, in order.
    fn poll(&mut self) -> Result<Vec<(NodeId, M)>, TransportError>;

    /// Installs a fault plan (drop / duplicate on send).
    fn set_fault(&mut self, plan: FaultPlan);

    /// The installed fault plan.
    fn fault(&self) -> &FaultPlan;

    /// Message/byte accounting for everything sent through this transport.
    fn meter(&self) -> MessageMeter;

    /// Backend name (`"lockstep"`, `"tcp"`, `"uds"`).
    fn kind(&self) -> &'static str;
}

/// The original deterministic in-memory bus: a thin adapter over the
/// uplink path of [`NetworkSim`], preserved verbatim so the byte-identical
/// cluster equivalence matrix keeps meaning what it always meant.
#[derive(Debug)]
pub struct LockstepTransport<M> {
    sim: NetworkSim<M, M>,
}

impl<M: WireSized + Clone> LockstepTransport<M> {
    pub fn new(layout: BaseStationLayout) -> Self {
        LockstepTransport {
            sim: NetworkSim::new(layout),
        }
    }

    /// Records traffic into a shared telemetry sink (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.sim = self.sim.with_telemetry(telemetry);
        self
    }
}

impl<M: WireSized + Clone> Transport<M> for LockstepTransport<M> {
    fn send(&mut self, from: NodeId, msg: M) -> Result<(), TransportError> {
        self.sim.send_uplink(from, msg);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    fn poll(&mut self) -> Result<Vec<(NodeId, M)>, TransportError> {
        Ok(self.sim.drain_uplinks())
    }

    fn set_fault(&mut self, plan: FaultPlan) {
        self.sim.set_uplink_fault(plan);
    }

    fn fault(&self) -> &FaultPlan {
        self.sim.uplink_fault()
    }

    fn meter(&self) -> MessageMeter {
        self.sim.meter()
    }

    fn kind(&self) -> &'static str {
        "lockstep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Rect;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(u32);

    impl WireSized for Msg {
        fn wire_size(&self) -> usize {
            4
        }
    }

    fn bus() -> LockstepTransport<Msg> {
        LockstepTransport::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            10.0,
        ))
    }

    #[test]
    fn lockstep_send_poll_roundtrip() {
        let mut t = bus();
        t.send(NodeId(0), Msg(1)).unwrap();
        t.send(NodeId(1), Msg(2)).unwrap();
        t.flush().unwrap();
        assert_eq!(
            t.poll().unwrap(),
            vec![(NodeId(0), Msg(1)), (NodeId(1), Msg(2))]
        );
        assert!(t.poll().unwrap().is_empty());
        assert_eq!(t.meter().uplink_msgs, 2);
        assert_eq!(t.kind(), "lockstep");
    }

    #[test]
    fn lockstep_fault_plan_drops_and_meters() {
        let mut t = bus();
        t.set_fault(FaultPlan::new(1.0, 0.0, 7));
        t.send(NodeId(0), Msg(1)).unwrap();
        assert!(t.poll().unwrap().is_empty());
        // The transmission is still metered — identical to NetworkSim.
        assert_eq!(t.meter().uplink_msgs, 1);
    }
}
