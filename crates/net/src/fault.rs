//! Downlink fault injection for robustness testing.
//!
//! The protocol must tolerate lost or duplicated broadcasts (a moving object
//! can be in a coverage dead spot, or hear two stations transmit the same
//! message). `FaultPlan` deterministically decides, per delivery attempt,
//! whether the message is dropped or duplicated, using a splitmix64 stream
//! so test runs are reproducible.

/// Deterministic per-delivery fault decisions.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in [0, 1] that a downlink delivery is silently dropped.
    pub drop_rate: f64,
    /// Probability in [0, 1] that a delivered message is duplicated.
    pub duplicate_rate: f64,
    state: u64,
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            state: 0,
        }
    }

    /// A fault plan with the given rates, seeded deterministically.
    pub fn new(drop_rate: f64, duplicate_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_rate));
        assert!((0.0..=1.0).contains(&duplicate_rate));
        FaultPlan {
            drop_rate,
            duplicate_rate,
            state: seed,
        }
    }

    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0 && self.duplicate_rate == 0.0
    }

    fn next_unit(&mut self) -> f64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many copies of this delivery the receiver sees: 0 (dropped),
    /// 1 (normal) or 2 (duplicated).
    pub fn copies(&mut self) -> usize {
        if self.is_noop() {
            return 1;
        }
        if self.next_unit() < self.drop_rate {
            0
        } else if self.next_unit() < self.duplicate_rate {
            2
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_always_delivers_once() {
        let mut p = FaultPlan::none();
        assert!(p.is_noop());
        for _ in 0..100 {
            assert_eq!(p.copies(), 1);
        }
    }

    #[test]
    fn full_drop_never_delivers() {
        let mut p = FaultPlan::new(1.0, 0.0, 42);
        for _ in 0..100 {
            assert_eq!(p.copies(), 0);
        }
    }

    #[test]
    fn full_duplicate_always_duplicates() {
        let mut p = FaultPlan::new(0.0, 1.0, 42);
        for _ in 0..100 {
            assert_eq!(p.copies(), 2);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut p = FaultPlan::new(0.3, 0.0, 7);
        let dropped = (0..10_000).filter(|_| p.copies() == 0).count();
        let rate = dropped as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn deterministic_across_runs() {
        let seq1: Vec<usize> = {
            let mut p = FaultPlan::new(0.5, 0.2, 99);
            (0..50).map(|_| p.copies()).collect()
        };
        let seq2: Vec<usize> = {
            let mut p = FaultPlan::new(0.5, 0.2, 99);
            (0..50).map(|_| p.copies()).collect()
        };
        assert_eq!(seq1, seq2);
    }
}
