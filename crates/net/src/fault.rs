//! Fault injection for robustness testing.
//!
//! The protocol must tolerate lost or duplicated messages (a moving object
//! can be in a coverage dead spot, or hear two stations transmit the same
//! message; an uplink report can be garbled in the air) as well as object
//! churn (handhelds power off, lose connectivity, or crash and restart with
//! empty state). [`FaultPlan`] deterministically decides, per delivery
//! attempt, whether a message is dropped or duplicated, using a splitmix64
//! stream so test runs are reproducible. [`ChurnPlan`] bundles uplink and
//! downlink fault rates with a deterministic per-object offline schedule;
//! the schedule is a pure function of `(seed, object id)` so sequential and
//! sharded engines agree on it without sharing RNG state.

/// Deterministic per-delivery fault decisions.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in [0, 1] that a delivery is silently dropped.
    pub drop_rate: f64,
    /// Probability in [0, 1] that a delivered message is duplicated.
    pub duplicate_rate: f64,
    state: u64,
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            state: 0,
        }
    }

    /// A fault plan with the given rates, seeded deterministically.
    pub fn new(drop_rate: f64, duplicate_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_rate));
        assert!((0.0..=1.0).contains(&duplicate_rate));
        FaultPlan {
            drop_rate,
            duplicate_rate,
            state: seed,
        }
    }

    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0 && self.duplicate_rate == 0.0
    }

    fn next_unit(&mut self) -> f64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many copies of this delivery the receiver sees: 0 (dropped),
    /// 1 (normal) or 2 (duplicated).
    ///
    /// Both the drop and the duplicate decision consume exactly one stream
    /// sample per call, regardless of the outcome, so changing one rate
    /// never reshuffles the decisions driven by the other.
    pub fn copies(&mut self) -> usize {
        if self.is_noop() {
            return 1;
        }
        let dropped = self.next_unit() < self.drop_rate;
        let duplicated = self.next_unit() < self.duplicate_rate;
        if dropped {
            0
        } else if duplicated {
            2
        } else {
            1
        }
    }
}

/// Deterministic combined fault + churn scenario.
///
/// Bundles uplink and downlink drop/duplicate rates with a per-object
/// offline schedule. Every object hashes (via splitmix64 finalization of
/// `seed ^ oid`-derived words) into a churn decision: a churning object is
/// offline for one contiguous window of ticks inside `[1, fault_ticks]`
/// and reconnects at the window's end — either *fresh* (crash: all local
/// state lost) or merely *disconnected* (state kept, but stale). Because
/// the schedule is a pure function of `(seed, oid, tick)`, no RNG state is
/// shared between engine shards and the sequential and parallel engines
/// agree byte-for-byte.
///
/// After tick `fault_ticks` every object is back online by construction,
/// which is what lets convergence tests bound recovery time.
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    /// Probability in [0, 1] that an uplink message is dropped.
    pub uplink_drop: f64,
    /// Probability in [0, 1] that an uplink message is duplicated.
    pub uplink_dup: f64,
    /// Probability in [0, 1] that a downlink delivery is dropped.
    pub downlink_drop: f64,
    /// Probability in [0, 1] that a downlink delivery is duplicated.
    pub downlink_dup: f64,
    /// Probability in [0, 1] that an object goes offline during the window.
    pub churn_rate: f64,
    /// Faults and churn are active during ticks `[1, fault_ticks]`.
    pub fault_ticks: u64,
    /// Seed for both the delivery fault streams and the churn schedule.
    pub seed: u64,
}

/// splitmix64 finalization — the deterministic hash every fault schedule
/// in this crate is built from (also used for retry-backoff jitter).
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl ChurnPlan {
    /// A plan with no delivery faults and no churn.
    pub fn none() -> Self {
        ChurnPlan {
            uplink_drop: 0.0,
            uplink_dup: 0.0,
            downlink_drop: 0.0,
            downlink_dup: 0.0,
            churn_rate: 0.0,
            fault_ticks: 0,
            seed: 0,
        }
    }

    /// A plan with the given rates, validated into [0, 1].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        uplink_drop: f64,
        uplink_dup: f64,
        downlink_drop: f64,
        downlink_dup: f64,
        churn_rate: f64,
        fault_ticks: u64,
        seed: u64,
    ) -> Self {
        for rate in [
            uplink_drop,
            uplink_dup,
            downlink_drop,
            downlink_dup,
            churn_rate,
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "fault rate {rate} not in [0, 1]"
            );
        }
        ChurnPlan {
            uplink_drop,
            uplink_dup,
            downlink_drop,
            downlink_dup,
            churn_rate,
            fault_ticks,
            seed,
        }
    }

    pub fn is_noop(&self) -> bool {
        self.uplink_drop == 0.0
            && self.uplink_dup == 0.0
            && self.downlink_drop == 0.0
            && self.downlink_dup == 0.0
            && !self.has_churn()
    }

    pub fn has_churn(&self) -> bool {
        self.churn_rate > 0.0 && self.fault_ticks > 0
    }

    /// The stateful downlink delivery fault plan this scenario implies.
    pub fn downlink_fault(&self) -> FaultPlan {
        FaultPlan::new(
            self.downlink_drop,
            self.downlink_dup,
            mix64(self.seed ^ 0xD0),
        )
    }

    /// The stateful uplink delivery fault plan this scenario implies.
    pub fn uplink_fault(&self) -> FaultPlan {
        FaultPlan::new(self.uplink_drop, self.uplink_dup, mix64(self.seed ^ 0x0B))
    }

    fn object_word(&self, oid: u32, salt: u64) -> u64 {
        mix64(mix64(self.seed ^ (oid as u64).wrapping_mul(0x9E3779B97F4A7C15)) ^ salt)
    }

    /// The offline window `[start, end)` for this object, if it churns.
    /// Guarantees `1 <= start < end <= fault_ticks + 1`.
    pub fn offline_window(&self, oid: u32) -> Option<(u64, u64)> {
        if !self.has_churn() || unit(self.object_word(oid, 1)) >= self.churn_rate {
            return None;
        }
        let start = 1 + self.object_word(oid, 2) % self.fault_ticks;
        let len = 1 + self.object_word(oid, 3) % (self.fault_ticks - start + 1);
        Some((start, start + len))
    }

    /// Whether this object crashes (loses all local state) rather than
    /// merely disconnecting while offline.
    pub fn crashes(&self, oid: u32) -> bool {
        self.object_word(oid, 4) & 1 == 0
    }

    /// True while the object is offline at this tick (misses both its
    /// motion phase and all deliveries).
    pub fn is_offline(&self, tick: u64, oid: u32) -> bool {
        match self.offline_window(oid) {
            Some((start, end)) => (start..end).contains(&tick),
            None => false,
        }
    }

    /// `Some(fresh)` exactly at the tick the object comes back online;
    /// `fresh` is true when the object crashed and restarts empty.
    pub fn reconnect_at(&self, tick: u64, oid: u32) -> Option<bool> {
        match self.offline_window(oid) {
            Some((_, end)) if end == tick => Some(self.crashes(oid)),
            _ => None,
        }
    }
}

/// Deterministic partition-crash schedule for chaos runs.
///
/// Decides which server partitions die, and at which tick, as a pure
/// function of the plan's fields — no RNG state, so an in-process
/// chaos run is byte-identical at any worker-thread count and a test
/// can name the exact kill it expects. Partition 0 is never chosen by
/// the seeded constructor: the coordinator routes shared-epoch bumps
/// through the lowest live partition, and keeping 0 alive keeps the
/// seeded scenarios comparable across kill counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCrashPlan {
    /// The tick (1-based, matching the simulator's tick index) at whose
    /// boundary the victims are killed. 0 disables the plan.
    pub crash_tick: u64,
    /// The partitions that die at `crash_tick`, ascending, deduplicated.
    pub victims: Vec<u32>,
}

impl PartitionCrashPlan {
    /// A plan that never kills anything.
    pub fn none() -> Self {
        PartitionCrashPlan {
            crash_tick: 0,
            victims: Vec::new(),
        }
    }

    /// A plan killing exactly the given partitions at `crash_tick`.
    pub fn explicit(crash_tick: u64, mut victims: Vec<u32>) -> Self {
        victims.sort_unstable();
        victims.dedup();
        PartitionCrashPlan {
            crash_tick,
            victims,
        }
    }

    /// Derives `kills` victims out of `partitions` deterministically from
    /// `seed`, never selecting partition 0 and never killing every
    /// partition (at least one survivor must exist to adopt the cells).
    pub fn seeded(seed: u64, partitions: u32, kills: usize, crash_tick: u64) -> Self {
        assert!(partitions >= 2, "need at least 2 partitions to crash one");
        let kills = kills.min(partitions as usize - 1);
        let mut pool: Vec<u32> = (1..partitions).collect();
        let mut victims = Vec::with_capacity(kills);
        for round in 0..kills {
            let pick = mix64(seed ^ 0xC4A5_u64.wrapping_add(round as u64)) as usize % pool.len();
            victims.push(pool.swap_remove(pick));
        }
        Self::explicit(crash_tick, victims)
    }

    pub fn is_noop(&self) -> bool {
        self.crash_tick == 0 || self.victims.is_empty()
    }

    /// The partitions to kill at this tick boundary (empty except at
    /// `crash_tick`).
    pub fn victims_at(&self, tick: u64) -> &[u32] {
        if !self.is_noop() && tick == self.crash_tick {
            &self.victims
        } else {
            &[]
        }
    }
}

/// Deterministic torn-write schedule for the durable log writer.
///
/// A process killed mid-`write(2)` leaves a prefix of the frame on disk
/// (and nothing after it — the writer dies with the frame). The plan
/// decides, per physical flush, whether the write is torn and how many
/// bytes actually land: a torn write of an `n`-byte buffer persists
/// `floor(n * frac)` bytes with `frac` drawn from the same splitmix64
/// stream, so runs are reproducible and a test can name the exact tear it
/// expects. After a tear the writer must treat itself as crashed — the
/// plan is a one-shot kill schedule, not a lossy channel.
#[derive(Debug, Clone)]
pub enum TornWritePlan {
    /// Every write lands whole.
    None,
    /// Each flush is torn with probability `rate` (splitmix64 stream).
    Seeded { rate: f64, state: u64 },
    /// Exactly the `remaining`-th flush from now is torn, keeping
    /// `frac` of the buffer. Counts down; 0 = fire on the next flush.
    Nth { remaining: u64, frac: f64 },
}

impl TornWritePlan {
    /// A plan that never tears.
    pub fn none() -> Self {
        TornWritePlan::None
    }

    /// A plan tearing each flush with probability `rate`.
    pub fn seeded(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "tear rate {rate} not in [0, 1]"
        );
        TornWritePlan::Seeded {
            rate,
            state: mix64(seed ^ 0x7EA2),
        }
    }

    /// A plan tearing exactly the `nth` flush (0-based), keeping `frac`
    /// of the buffer.
    pub fn nth(nth: u64, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "tear fraction {frac} not in [0, 1]"
        );
        TornWritePlan::Nth {
            remaining: nth,
            frac,
        }
    }

    pub fn is_noop(&self) -> bool {
        matches!(self, TornWritePlan::None)
            | matches!(self, TornWritePlan::Seeded { rate, .. } if *rate == 0.0)
    }

    /// Decides the fate of an `len`-byte flush: `None` = lands whole,
    /// `Some(k)` = only the first `k` bytes persist and the writer is
    /// dead. Consumes one stream sample per call for the seeded variant.
    pub fn torn_len(&mut self, len: usize) -> Option<usize> {
        match self {
            TornWritePlan::None => None,
            TornWritePlan::Seeded { rate, state } => {
                let torn = unit(mix64(*state ^ 0x01)) < *rate;
                let frac = unit(mix64(*state ^ 0x02));
                *state = mix64(*state);
                torn.then_some(((len as f64) * frac) as usize)
            }
            TornWritePlan::Nth { remaining, frac } => {
                if *remaining == 0 {
                    Some(((len as f64) * *frac) as usize)
                } else {
                    *remaining -= 1;
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_plan_noop_never_tears() {
        let mut p = TornWritePlan::none();
        assert!(p.is_noop());
        for _ in 0..100 {
            assert_eq!(p.torn_len(64), None);
        }
        assert!(TornWritePlan::seeded(0.0, 9).is_noop());
        assert!(!TornWritePlan::seeded(0.5, 9).is_noop());
    }

    #[test]
    fn torn_nth_fires_exactly_once_at_its_index() {
        let mut p = TornWritePlan::nth(3, 0.5);
        assert_eq!(p.torn_len(100), None);
        assert_eq!(p.torn_len(100), None);
        assert_eq!(p.torn_len(100), None);
        assert_eq!(p.torn_len(100), Some(50));
    }

    #[test]
    fn torn_seeded_is_deterministic_and_bounded() {
        let runs: Vec<Vec<Option<usize>>> = (0..2)
            .map(|_| {
                let mut p = TornWritePlan::seeded(0.3, 42);
                (0..1000).map(|_| p.torn_len(80)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        let tears = runs[0].iter().flatten().count();
        let rate = tears as f64 / 1000.0;
        assert!((0.25..0.35).contains(&rate), "observed tear rate {rate}");
        for k in runs[0].iter().flatten() {
            assert!(*k < 80, "tear must strictly truncate, kept {k}");
        }
    }

    #[test]
    fn noop_plan_always_delivers_once() {
        let mut p = FaultPlan::none();
        assert!(p.is_noop());
        for _ in 0..100 {
            assert_eq!(p.copies(), 1);
        }
    }

    #[test]
    fn full_drop_never_delivers() {
        let mut p = FaultPlan::new(1.0, 0.0, 42);
        for _ in 0..100 {
            assert_eq!(p.copies(), 0);
        }
    }

    #[test]
    fn full_duplicate_always_duplicates() {
        let mut p = FaultPlan::new(0.0, 1.0, 42);
        for _ in 0..100 {
            assert_eq!(p.copies(), 2);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut p = FaultPlan::new(0.3, 0.0, 7);
        let dropped = (0..10_000).filter(|_| p.copies() == 0).count();
        let rate = dropped as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn deterministic_across_runs() {
        let seq1: Vec<usize> = {
            let mut p = FaultPlan::new(0.5, 0.2, 99);
            (0..50).map(|_| p.copies()).collect()
        };
        let seq2: Vec<usize> = {
            let mut p = FaultPlan::new(0.5, 0.2, 99);
            (0..50).map(|_| p.copies()).collect()
        };
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn drop_rate_does_not_reshuffle_duplicate_stream() {
        // Both stream samples are drawn unconditionally, so the duplicate
        // decision at call index k only depends on the seed and k — never
        // on the drop rate or on earlier drop outcomes. With drop_rate 0,
        // copies() == 2 exactly when the k-th duplicate sample fired; a
        // twin plan with nonzero drop must agree on that bit wherever it
        // delivered at all.
        let reference: Vec<bool> = {
            let mut p = FaultPlan::new(0.0, 0.4, 1234);
            (0..2_000).map(|_| p.copies() == 2).collect()
        };
        let mut p = FaultPlan::new(0.5, 0.4, 1234);
        let mut delivered = 0usize;
        for dup_ref in &reference {
            let c = p.copies();
            if c > 0 {
                delivered += 1;
                assert_eq!(c == 2, *dup_ref, "duplicate stream shifted under drops");
            }
        }
        assert!(delivered > 500, "expected many deliveries, got {delivered}");
    }

    #[test]
    fn churn_windows_are_bounded_and_deterministic() {
        let plan = ChurnPlan::new(0.2, 0.1, 0.2, 0.1, 0.5, 12, 77);
        let twin = ChurnPlan::new(0.2, 0.1, 0.2, 0.1, 0.5, 12, 77);
        let mut churners = 0;
        for oid in 0..500u32 {
            assert_eq!(plan.offline_window(oid), twin.offline_window(oid));
            if let Some((start, end)) = plan.offline_window(oid) {
                churners += 1;
                assert!(
                    start >= 1 && start < end && end <= 13,
                    "window {start}..{end}"
                );
                for t in start..end {
                    assert!(plan.is_offline(t, oid));
                }
                assert!(!plan.is_offline(end, oid));
                assert_eq!(plan.reconnect_at(end, oid), Some(plan.crashes(oid)));
                assert_eq!(plan.reconnect_at(end + 1, oid), None);
            } else {
                for t in 0..20 {
                    assert!(!plan.is_offline(t, oid));
                }
            }
            // Everyone is online after the fault window.
            assert!(!plan.is_offline(13, oid));
            assert!(!plan.is_offline(14, oid));
        }
        let rate = churners as f64 / 500.0;
        assert!((0.4..0.6).contains(&rate), "observed churn rate {rate}");
    }

    #[test]
    fn churn_noop_cases() {
        assert!(ChurnPlan::none().is_noop());
        // Zero churn rate or a zero-length window means no one goes offline.
        let no_rate = ChurnPlan::new(0.0, 0.0, 0.0, 0.0, 0.0, 10, 1);
        let no_window = ChurnPlan::new(0.0, 0.0, 0.0, 0.0, 1.0, 0, 1);
        for oid in 0..100u32 {
            assert_eq!(no_rate.offline_window(oid), None);
            assert_eq!(no_window.offline_window(oid), None);
        }
        assert!(no_rate.is_noop());
        assert!(no_window.is_noop());
        assert!(!ChurnPlan::new(0.1, 0.0, 0.0, 0.0, 0.0, 0, 1).is_noop());
    }

    #[test]
    fn crash_plan_noop_cases() {
        assert!(PartitionCrashPlan::none().is_noop());
        assert!(PartitionCrashPlan::explicit(0, vec![1]).is_noop());
        assert!(PartitionCrashPlan::explicit(5, vec![]).is_noop());
        assert!(!PartitionCrashPlan::explicit(5, vec![1]).is_noop());
    }

    #[test]
    fn crash_plan_fires_only_at_its_tick() {
        let plan = PartitionCrashPlan::explicit(7, vec![3, 1, 3]);
        assert_eq!(plan.victims, vec![1, 3], "sorted and deduplicated");
        for t in 0..20 {
            if t == 7 {
                assert_eq!(plan.victims_at(t), &[1, 3]);
            } else {
                assert!(plan.victims_at(t).is_empty(), "fired at tick {t}");
            }
        }
    }

    #[test]
    fn seeded_crash_plan_is_deterministic_and_spares_partition_zero() {
        for seed in 0..50u64 {
            for parts in [2u32, 4, 8] {
                for kills in 1..parts as usize {
                    let a = PartitionCrashPlan::seeded(seed, parts, kills, 5);
                    let b = PartitionCrashPlan::seeded(seed, parts, kills, 5);
                    assert_eq!(a, b);
                    assert_eq!(a.victims.len(), kills.min(parts as usize - 1));
                    assert!(a.victims.iter().all(|&v| v >= 1 && v < parts));
                }
            }
        }
        // Requesting more kills than survivors allow is clamped.
        let clamped = PartitionCrashPlan::seeded(9, 4, 10, 5);
        assert_eq!(clamped.victims.len(), 3);
    }
}
