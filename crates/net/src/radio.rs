//! The GSM/GPRS radio energy model of the paper's §5.3.
//!
//! The paper measures per-object power consumption due to communication
//! "using a simple radio model where the transmission path consists of
//! transmitter electronics and transmit amplifier where the receiver path
//! consists of receiver electronics", with GPRS-typical bandwidths. The
//! resulting constants are ~80 µJ/bit to transmit and ~5 µJ/bit to receive
//! (footnote 2 of the paper).

/// Radio energy model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Transmitter electronics power draw, watts.
    pub tx_electronics_w: f64,
    /// Receiver electronics power draw, watts.
    pub rx_electronics_w: f64,
    /// Transmit amplifier *output* power, watts.
    pub amp_output_w: f64,
    /// Transmit amplifier efficiency in (0, 1].
    pub amp_efficiency: f64,
    /// Uplink bandwidth, bits per second.
    pub uplink_bps: f64,
    /// Downlink bandwidth, bits per second.
    pub downlink_bps: f64,
}

impl Default for RadioModel {
    /// The paper's GPRS model: 150 mW TX electronics, 120 mW RX
    /// electronics, 300 mW amplifier at 30 % efficiency, 14 kbps uplink,
    /// 28 kbps downlink.
    fn default() -> Self {
        RadioModel {
            tx_electronics_w: 0.150,
            rx_electronics_w: 0.120,
            amp_output_w: 0.300,
            amp_efficiency: 0.30,
            uplink_bps: 14_000.0,
            downlink_bps: 28_000.0,
        }
    }
}

impl RadioModel {
    /// Total electrical power drawn while transmitting, watts.
    pub fn tx_power_w(&self) -> f64 {
        self.tx_electronics_w + self.amp_output_w / self.amp_efficiency
    }

    /// Total electrical power drawn while receiving, watts.
    pub fn rx_power_w(&self) -> f64 {
        self.rx_electronics_w
    }

    /// Energy to transmit one bit uplink, joules.
    pub fn tx_energy_per_bit(&self) -> f64 {
        self.tx_power_w() / self.uplink_bps
    }

    /// Energy to receive one bit downlink, joules.
    pub fn rx_energy_per_bit(&self) -> f64 {
        self.rx_power_w() / self.downlink_bps
    }

    /// Energy to transmit `bytes` uplink, joules.
    pub fn tx_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.tx_energy_per_bit()
    }

    /// Energy to receive `bytes` downlink, joules.
    pub fn rx_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.rx_energy_per_bit()
    }

    /// Average communication power over a window, watts.
    pub fn average_power(&self, sent_bytes: u64, received_bytes: u64, duration_s: f64) -> f64 {
        debug_assert!(duration_s > 0.0);
        (self.tx_energy(sent_bytes) + self.rx_energy(received_bytes)) / duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let r = RadioModel::default();
        // ~1.15 W transmit draw -> ~82 µJ/bit at 14 kbps.
        assert!((r.tx_power_w() - 1.15).abs() < 1e-12);
        let tx_ujbit = r.tx_energy_per_bit() * 1e6;
        assert!(
            (75.0..90.0).contains(&tx_ujbit),
            "tx = {tx_ujbit} µJ/bit, expected ~80"
        );
        // 120 mW receive at 28 kbps -> ~4.3 µJ/bit (paper says ~5).
        let rx_ujbit = r.rx_energy_per_bit() * 1e6;
        assert!(
            (3.5..5.5).contains(&rx_ujbit),
            "rx = {rx_ujbit} µJ/bit, expected ~5"
        );
        // Sending is much more expensive than receiving.
        assert!(r.tx_energy_per_bit() > 10.0 * r.rx_energy_per_bit());
    }

    #[test]
    fn energy_scales_linearly_with_bytes() {
        let r = RadioModel::default();
        assert!((r.tx_energy(200) - 2.0 * r.tx_energy(100)).abs() < 1e-15);
        assert_eq!(r.tx_energy(0), 0.0);
        assert_eq!(r.rx_energy(0), 0.0);
    }

    #[test]
    fn average_power_combines_directions() {
        let r = RadioModel::default();
        let p = r.average_power(1000, 2000, 10.0);
        let expect = (r.tx_energy(1000) + r.rx_energy(2000)) / 10.0;
        assert_eq!(p, expect);
        assert!(p > 0.0);
    }
}
