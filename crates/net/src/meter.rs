//! Message and byte accounting.
//!
//! The paper's messaging-cost experiments (Figures 4–8) count "the total
//! number of messages sent on the wireless medium per second", split into
//! uplink messages (object → server) and downlink messages (server →
//! object(s), either one-to-one or broadcast — a broadcast counts once per
//! transmitting base station, regardless of how many objects hear it). The
//! power experiment (Figure 9) additionally needs per-object sent/received
//! byte totals.

/// Direction of a transmission on the wireless medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Uplink,
    /// One-to-one server → object message.
    Unicast,
    /// Server → base station broadcast (one transmission per station).
    Broadcast,
}

/// Aggregated wireless traffic statistics.
#[derive(Debug, Clone, Default)]
pub struct MessageMeter {
    pub uplink_msgs: u64,
    pub uplink_bytes: u64,
    pub unicast_msgs: u64,
    pub unicast_bytes: u64,
    pub broadcast_msgs: u64,
    pub broadcast_bytes: u64,
    /// Bytes physically sent per node (uplink transmissions).
    sent_by_node: Vec<u64>,
    /// Bytes physically received per node (unicasts addressed to it plus
    /// every broadcast heard).
    received_by_node: Vec<u64>,
}

impl MessageMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transmission on the medium.
    pub fn record(&mut self, dir: Direction, bytes: usize) {
        let b = bytes as u64;
        match dir {
            Direction::Uplink => {
                self.uplink_msgs += 1;
                self.uplink_bytes += b;
            }
            Direction::Unicast => {
                self.unicast_msgs += 1;
                self.unicast_bytes += b;
            }
            Direction::Broadcast => {
                self.broadcast_msgs += 1;
                self.broadcast_bytes += b;
            }
        }
    }

    /// Records that node `node` physically transmitted `bytes` uplink.
    pub fn record_node_sent(&mut self, node: usize, bytes: usize) {
        if self.sent_by_node.len() <= node {
            self.sent_by_node.resize(node + 1, 0);
        }
        self.sent_by_node[node] += bytes as u64;
    }

    /// Records that node `node` physically received `bytes` downlink.
    pub fn record_node_received(&mut self, node: usize, bytes: usize) {
        if self.received_by_node.len() <= node {
            self.received_by_node.resize(node + 1, 0);
        }
        self.received_by_node[node] += bytes as u64;
    }

    pub fn node_sent_bytes(&self, node: usize) -> u64 {
        self.sent_by_node.get(node).copied().unwrap_or(0)
    }

    pub fn node_received_bytes(&self, node: usize) -> u64 {
        self.received_by_node.get(node).copied().unwrap_or(0)
    }

    /// Total messages on the wireless medium (the paper's headline metric).
    pub fn total_msgs(&self) -> u64 {
        self.uplink_msgs + self.unicast_msgs + self.broadcast_msgs
    }

    /// Total downlink messages (unicast + broadcast transmissions).
    pub fn downlink_msgs(&self) -> u64 {
        self.unicast_msgs + self.broadcast_msgs
    }

    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.unicast_bytes + self.broadcast_bytes
    }

    /// Mean sent/received byte totals over the first `n` nodes; used for
    /// per-object power (Figure 9).
    pub fn mean_node_traffic(&self, n: usize) -> (f64, f64) {
        if n == 0 {
            return (0.0, 0.0);
        }
        let sent: u64 = (0..n).map(|i| self.node_sent_bytes(i)).sum();
        let recv: u64 = (0..n).map(|i| self.node_received_bytes(i)).sum();
        (sent as f64 / n as f64, recv as f64 / n as f64)
    }

    /// Resets all counters (per-experiment reuse).
    pub fn reset(&mut self) {
        *self = MessageMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_direction() {
        let mut m = MessageMeter::new();
        m.record(Direction::Uplink, 10);
        m.record(Direction::Uplink, 20);
        m.record(Direction::Unicast, 5);
        m.record(Direction::Broadcast, 100);
        assert_eq!(m.uplink_msgs, 2);
        assert_eq!(m.uplink_bytes, 30);
        assert_eq!(m.unicast_msgs, 1);
        assert_eq!(m.broadcast_msgs, 1);
        assert_eq!(m.total_msgs(), 4);
        assert_eq!(m.downlink_msgs(), 2);
        assert_eq!(m.total_bytes(), 135);
    }

    #[test]
    fn per_node_accounting_grows_on_demand() {
        let mut m = MessageMeter::new();
        m.record_node_sent(5, 100);
        m.record_node_received(2, 50);
        m.record_node_received(2, 25);
        assert_eq!(m.node_sent_bytes(5), 100);
        assert_eq!(m.node_sent_bytes(0), 0);
        assert_eq!(m.node_received_bytes(2), 75);
        assert_eq!(m.node_received_bytes(100), 0);
    }

    #[test]
    fn mean_node_traffic() {
        let mut m = MessageMeter::new();
        m.record_node_sent(0, 100);
        m.record_node_sent(1, 300);
        m.record_node_received(0, 10);
        let (sent, recv) = m.mean_node_traffic(2);
        assert_eq!(sent, 200.0);
        assert_eq!(recv, 5.0);
        assert_eq!(m.mean_node_traffic(0), (0.0, 0.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MessageMeter::new();
        m.record(Direction::Uplink, 10);
        m.record_node_sent(0, 10);
        m.reset();
        assert_eq!(m.total_msgs(), 0);
        assert_eq!(m.node_sent_bytes(0), 0);
    }
}
