//! Message and byte accounting.
//!
//! The paper's messaging-cost experiments (Figures 4–8) count "the total
//! number of messages sent on the wireless medium per second", split into
//! uplink messages (object → server) and downlink messages (server →
//! object(s), either one-to-one or broadcast — a broadcast counts once per
//! transmitting base station, regardless of how many objects hear it). The
//! power experiment (Figure 9) additionally needs per-object sent/received
//! byte totals.
//!
//! Since the telemetry redesign, traffic is recorded into the unified
//! [`mobieyes_telemetry::MetricsRegistry`] under the `net.*` counter keys;
//! `MessageMeter` is now a *view* materialized from those counters (plus
//! the per-node byte vectors kept by
//! [`NetworkSim`](crate::NetworkSim)). Build one with
//! [`NetworkSim::meter`](crate::NetworkSim::meter) or
//! [`MessageMeter::from_snapshot`].

use mobieyes_telemetry::MetricsSnapshot;

/// Direction of a transmission on the wireless medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Uplink,
    /// One-to-one server → object message.
    Unicast,
    /// Server → base station broadcast (one transmission per station).
    Broadcast,
}

impl Direction {
    /// Telemetry counter keys for this direction: `(messages, bytes)`.
    pub fn counter_keys(self) -> (&'static str, &'static str) {
        match self {
            Direction::Uplink => (keys::UPLINK_MSGS, keys::UPLINK_BYTES),
            Direction::Unicast => (keys::UNICAST_MSGS, keys::UNICAST_BYTES),
            Direction::Broadcast => (keys::BROADCAST_MSGS, keys::BROADCAST_BYTES),
        }
    }
}

/// The `net.*` telemetry counter keys.
pub mod keys {
    pub const UPLINK_MSGS: &str = "net.uplink.msgs";
    pub const UPLINK_BYTES: &str = "net.uplink.bytes";
    pub const UNICAST_MSGS: &str = "net.unicast.msgs";
    pub const UNICAST_BYTES: &str = "net.unicast.bytes";
    pub const BROADCAST_MSGS: &str = "net.broadcast.msgs";
    pub const BROADCAST_BYTES: &str = "net.broadcast.bytes";
    pub const FAULT_DROPPED: &str = "net.fault.dropped";
    pub const FAULT_DUPLICATED: &str = "net.fault.duplicated";
    pub const FAULT_UPLINK_DROPPED: &str = "net.fault.uplink_dropped";
    pub const FAULT_UPLINK_DUPLICATED: &str = "net.fault.uplink_duplicated";
}

/// Aggregated wireless traffic statistics — a point-in-time view over the
/// `net.*` telemetry counters.
#[derive(Debug, Clone, Default)]
pub struct MessageMeter {
    pub uplink_msgs: u64,
    pub uplink_bytes: u64,
    pub unicast_msgs: u64,
    pub unicast_bytes: u64,
    pub broadcast_msgs: u64,
    pub broadcast_bytes: u64,
    /// Bytes physically sent per node (uplink transmissions).
    sent_by_node: Vec<u64>,
    /// Bytes physically received per node (unicasts addressed to it plus
    /// every broadcast heard).
    received_by_node: Vec<u64>,
}

impl MessageMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the view from a metrics snapshot plus the per-node byte
    /// vectors (which live outside the registry; pass empty vectors when
    /// per-node traffic is not needed).
    pub fn from_snapshot(
        snapshot: &MetricsSnapshot,
        sent_by_node: Vec<u64>,
        received_by_node: Vec<u64>,
    ) -> Self {
        MessageMeter {
            uplink_msgs: snapshot.counter(keys::UPLINK_MSGS),
            uplink_bytes: snapshot.counter(keys::UPLINK_BYTES),
            unicast_msgs: snapshot.counter(keys::UNICAST_MSGS),
            unicast_bytes: snapshot.counter(keys::UNICAST_BYTES),
            broadcast_msgs: snapshot.counter(keys::BROADCAST_MSGS),
            broadcast_bytes: snapshot.counter(keys::BROADCAST_BYTES),
            sent_by_node,
            received_by_node,
        }
    }

    pub fn node_sent_bytes(&self, node: usize) -> u64 {
        self.sent_by_node.get(node).copied().unwrap_or(0)
    }

    pub fn node_received_bytes(&self, node: usize) -> u64 {
        self.received_by_node.get(node).copied().unwrap_or(0)
    }

    /// Total messages on the wireless medium (the paper's headline metric).
    pub fn total_msgs(&self) -> u64 {
        self.uplink_msgs + self.unicast_msgs + self.broadcast_msgs
    }

    /// Total downlink messages (unicast + broadcast transmissions).
    pub fn downlink_msgs(&self) -> u64 {
        self.unicast_msgs + self.broadcast_msgs
    }

    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.unicast_bytes + self.broadcast_bytes
    }

    /// Mean sent/received byte totals over the first `n` nodes; used for
    /// per-object power (Figure 9).
    pub fn mean_node_traffic(&self, n: usize) -> (f64, f64) {
        if n == 0 {
            return (0.0, 0.0);
        }
        let sent: u64 = (0..n).map(|i| self.node_sent_bytes(i)).sum();
        let recv: u64 = (0..n).map(|i| self.node_received_bytes(i)).sum();
        (sent as f64 / n as f64, recv as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_telemetry::Telemetry;

    fn meter_via_registry() -> MessageMeter {
        let tel = Telemetry::new();
        for (dir, bytes) in [
            (Direction::Uplink, 10),
            (Direction::Uplink, 20),
            (Direction::Unicast, 5),
            (Direction::Broadcast, 100),
        ] {
            let (msgs_key, bytes_key) = dir.counter_keys();
            tel.incr(msgs_key);
            tel.add(bytes_key, bytes);
        }
        MessageMeter::from_snapshot(&tel.snapshot(), vec![100, 300], vec![10])
    }

    #[test]
    fn view_reflects_registry_counters() {
        let m = meter_via_registry();
        assert_eq!(m.uplink_msgs, 2);
        assert_eq!(m.uplink_bytes, 30);
        assert_eq!(m.unicast_msgs, 1);
        assert_eq!(m.broadcast_msgs, 1);
        assert_eq!(m.total_msgs(), 4);
        assert_eq!(m.downlink_msgs(), 2);
        assert_eq!(m.total_bytes(), 135);
    }

    #[test]
    fn per_node_accounting() {
        let m = meter_via_registry();
        assert_eq!(m.node_sent_bytes(0), 100);
        assert_eq!(m.node_sent_bytes(1), 300);
        assert_eq!(m.node_sent_bytes(9), 0);
        assert_eq!(m.node_received_bytes(0), 10);
        assert_eq!(m.node_received_bytes(100), 0);
    }

    #[test]
    fn mean_node_traffic() {
        let m = meter_via_registry();
        let (sent, recv) = m.mean_node_traffic(2);
        assert_eq!(sent, 200.0);
        assert_eq!(recv, 5.0);
        assert_eq!(m.mean_node_traffic(0), (0.0, 0.0));
    }
}
