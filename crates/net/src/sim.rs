//! Tick-based network simulation with asymmetric links.
//!
//! Time advances in discrete ticks (the paper's 30-second time steps).
//! Within a tick, moving objects push uplink messages; the server drains
//! them, reacts, and pushes downlink messages (unicasts and per-station
//! broadcasts); each object then polls its deliveries. `end_tick` clears the
//! downlink queues.
//!
//! Delivery is *physical*: a broadcast from station `s` reaches an object
//! iff the object's position lies inside `s`'s coverage circle — objects
//! outside hear nothing, objects covered by two transmitting stations hear
//! the message twice (the protocol layer must be idempotent, which the
//! MobiEyes installation logic is).

use crate::fault::FaultPlan;
use crate::meter::{keys, Direction, MessageMeter};
use crate::station::{BaseStationLayout, StationId};
use mobieyes_geo::{Grid, GridRect, Point};
use mobieyes_telemetry::{EventKind, Telemetry};
use std::sync::Arc;

/// Identifier of a network endpoint (a moving object). The server is not a
/// `NodeId`; it sits behind the base stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Anything that knows its serialized size on the wire. Message accounting
/// (and thus the power model) is driven by these sizes.
pub trait WireSized {
    fn wire_size(&self) -> usize;
}

/// The simulated wireless network, generic over the uplink (`U`) and
/// downlink (`D`) payload types.
#[derive(Debug)]
pub struct NetworkSim<U, D> {
    layout: BaseStationLayout,
    telemetry: Telemetry,
    fault: FaultPlan,
    uplink_fault: FaultPlan,
    uplinks: Vec<(NodeId, U)>,
    /// Downlink queues hold `Arc`-shared payloads: a broadcast fanned out
    /// to N stations and heard by M objects is allocated exactly once and
    /// reference-counted everywhere else.
    unicasts: Vec<(NodeId, Arc<D>, usize)>,
    broadcasts: Vec<(StationId, Arc<D>, usize)>,
    /// Bytes physically sent per node (uplink transmissions). Per-node
    /// traffic is protocol data and stays out of the shared registry.
    sent_by_node: Vec<u64>,
    /// Bytes physically received per node.
    received_by_node: Vec<u64>,
}

impl<U: WireSized, D: WireSized> NetworkSim<U, D> {
    pub fn new(layout: BaseStationLayout) -> Self {
        NetworkSim {
            layout,
            telemetry: Telemetry::new(),
            fault: FaultPlan::none(),
            uplink_fault: FaultPlan::none(),
            uplinks: Vec::new(),
            unicasts: Vec::new(),
            broadcasts: Vec::new(),
            sent_by_node: Vec::new(),
            received_by_node: Vec::new(),
        }
    }

    /// Redirects traffic recording into a shared telemetry sink (builder
    /// style). By default a private sink is used.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn layout(&self) -> &BaseStationLayout {
        &self.layout
    }

    /// Materializes the traffic view from the telemetry counters and the
    /// per-node byte vectors.
    pub fn meter(&self) -> MessageMeter {
        MessageMeter::from_snapshot(
            &self.telemetry.snapshot(),
            self.sent_by_node.clone(),
            self.received_by_node.clone(),
        )
    }

    fn record(&self, dir: Direction, bytes: usize) {
        let (msgs_key, bytes_key) = dir.counter_keys();
        self.telemetry.incr(msgs_key);
        self.telemetry.add(bytes_key, bytes as u64);
    }

    /// Records that `node` physically received `bytes` downlink. Exposed
    /// for deployments that perform physical delivery themselves (the
    /// threaded runtime).
    pub fn record_node_received(&mut self, node: usize, bytes: usize) {
        if self.received_by_node.len() <= node {
            self.received_by_node.resize(node + 1, 0);
        }
        self.received_by_node[node] += bytes as u64;
    }

    fn record_node_sent(&mut self, node: usize, bytes: usize) {
        if self.sent_by_node.len() <= node {
            self.sent_by_node.resize(node + 1, 0);
        }
        self.sent_by_node[node] += bytes as u64;
    }

    /// Clears the per-node byte vectors (experiment warm-up reset; the
    /// registry counters are reset through [`Telemetry::reset`]).
    pub fn reset_node_traffic(&mut self) {
        self.sent_by_node.clear();
        self.received_by_node.clear();
    }

    /// Installs a downlink fault plan (drops/duplicates).
    pub fn set_fault(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// The installed downlink fault plan. Parallel drivers check
    /// [`FaultPlan::is_noop`] to decide whether delivery must stay
    /// sequential (the plan is a stateful RNG consumed in delivery order).
    pub fn fault(&self) -> &FaultPlan {
        &self.fault
    }

    /// Installs an uplink fault plan (drops/duplicates applied as messages
    /// enter the network, before the server drains them).
    pub fn set_uplink_fault(&mut self, plan: FaultPlan) {
        self.uplink_fault = plan;
    }

    pub fn uplink_fault(&self) -> &FaultPlan {
        &self.uplink_fault
    }

    /// Object → server message, subject to the uplink fault plan. The
    /// object always pays the transmission (metered as sent), but the
    /// server may see zero, one or two copies. Parallel drivers keep this
    /// deterministic by routing all uplinks through one coordinator
    /// network in shard order.
    pub fn send_uplink(&mut self, from: NodeId, msg: U)
    where
        U: Clone,
    {
        let bytes = msg.wire_size();
        self.record(Direction::Uplink, bytes);
        self.record_node_sent(from.0 as usize, bytes);
        match self.uplink_fault.copies() {
            0 => self.telemetry.incr(keys::FAULT_UPLINK_DROPPED),
            1 => self.uplinks.push((from, msg)),
            _ => {
                self.telemetry.incr(keys::FAULT_UPLINK_DUPLICATED);
                self.uplinks.push((from, msg.clone()));
                self.uplinks.push((from, msg));
            }
        }
    }

    /// Server side: take all pending uplink messages.
    pub fn drain_uplinks(&mut self) -> Vec<(NodeId, U)> {
        std::mem::take(&mut self.uplinks)
    }

    /// Drains pending uplinks into a caller-owned buffer, appended in
    /// queue order. `Vec::append` keeps both allocations alive, so a
    /// server draining into a persistent scratch every tick settles into
    /// a zero-allocation steady state.
    pub fn drain_uplinks_into(&mut self, out: &mut Vec<(NodeId, U)>) {
        out.append(&mut self.uplinks);
    }

    /// Number of queued uplink messages (diagnostics).
    pub fn pending_uplinks(&self) -> usize {
        self.uplinks.len()
    }

    /// Server → one object. Counts as one downlink message on the medium.
    pub fn send_unicast(&mut self, to: NodeId, msg: D) {
        let bytes = msg.wire_size();
        self.record(Direction::Unicast, bytes);
        self.unicasts.push((to, Arc::new(msg), bytes));
    }

    /// Server → everyone inside one station's coverage circle. Counts as one
    /// downlink message on the medium regardless of audience size.
    pub fn broadcast(&mut self, station: StationId, msg: D) {
        self.broadcast_shared(station, Arc::new(msg));
    }

    fn broadcast_shared(&mut self, station: StationId, msg: Arc<D>) {
        let bytes = msg.wire_size();
        self.record(Direction::Broadcast, bytes);
        self.broadcasts.push((station, msg, bytes));
    }

    /// Broadcasts `msg` through *every* base station, reaching the whole
    /// universe — the dissemination primitive for server heartbeats. The
    /// payload is allocated once and shared. Returns the number of station
    /// transmissions.
    pub fn broadcast_all(&mut self, msg: D) -> usize {
        let n = self.layout.num_stations();
        let payload = Arc::new(msg);
        for s in 0..n {
            self.broadcast_shared(StationId(s as u32), Arc::clone(&payload));
        }
        self.telemetry
            .event(EventKind::BroadcastFanout { stations: n as u64 });
        n
    }

    /// Broadcasts `msg` through the minimal set of stations covering a
    /// monitoring region — the paper's dissemination primitive. The
    /// payload is allocated once and shared across every covering station
    /// (and every recipient). Returns the number of station transmissions.
    pub fn broadcast_region(&mut self, grid: &Grid, region: &GridRect, msg: D) -> usize {
        let stations = self.layout.minimal_cover(grid, region);
        let payload = Arc::new(msg);
        for &s in &stations {
            self.broadcast_shared(s, Arc::clone(&payload));
        }
        self.telemetry.event(EventKind::BroadcastFanout {
            stations: stations.len() as u64,
        });
        stations.len()
    }

    /// Object side: collect everything addressed to / audible at this
    /// object. Must be called at most once per object per tick, after the
    /// server phase and before [`end_tick`](Self::end_tick). Delivered
    /// payloads are `Arc` clones of the queued messages — no deep copy per
    /// recipient.
    pub fn deliver(&mut self, node: NodeId, pos: Point, out: &mut Vec<Arc<D>>) {
        let mut received = Vec::new();
        for (to, msg, bytes) in &self.unicasts {
            if *to == node {
                let copies = self.fault.copies();
                Self::note_fault(&self.telemetry, copies, node);
                for _ in 0..copies {
                    received.push(*bytes);
                    out.push(Arc::clone(msg));
                }
            }
        }
        for (station, msg, bytes) in &self.broadcasts {
            if self.layout.covers(*station, pos) {
                let copies = self.fault.copies();
                Self::note_fault(&self.telemetry, copies, node);
                for _ in 0..copies {
                    received.push(*bytes);
                    out.push(Arc::clone(msg));
                }
            }
        }
        for bytes in received {
            self.record_node_received(node.0 as usize, bytes);
        }
    }

    fn note_fault(telemetry: &Telemetry, copies: usize, node: NodeId) {
        match copies {
            0 => {
                telemetry.incr(keys::FAULT_DROPPED);
                telemetry.event(EventKind::MessageDropped { oid: node.0 as u64 });
            }
            2 => {
                telemetry.incr(keys::FAULT_DUPLICATED);
                telemetry.event(EventKind::MessageDuplicated { oid: node.0 as u64 });
            }
            _ => {}
        }
    }

    /// Takes the pending downlink queues out of the network, leaving them
    /// empty. Used by deployments that distribute delivery themselves (the
    /// threaded runtime): the caller becomes responsible for physical
    /// delivery semantics and receive accounting.
    #[allow(clippy::type_complexity)]
    pub fn take_downlinks(
        &mut self,
    ) -> (
        Vec<(NodeId, Arc<D>, usize)>,
        Vec<(StationId, Arc<D>, usize)>,
    ) {
        (
            std::mem::take(&mut self.unicasts),
            std::mem::take(&mut self.broadcasts),
        )
    }

    /// Clears the downlink queues; call after every object polled.
    pub fn end_tick(&mut self) {
        self.unicasts.clear();
        self.broadcasts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::Rect;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(u32);

    impl WireSized for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    fn net() -> NetworkSim<Msg, Msg> {
        NetworkSim::new(BaseStationLayout::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            10.0,
        ))
    }

    /// Unwraps delivered `Arc` payloads for comparisons.
    fn vals(delivered: &[Arc<Msg>]) -> Vec<Msg> {
        delivered.iter().map(|m| (**m).clone()).collect()
    }

    #[test]
    fn uplink_roundtrip_and_accounting() {
        let mut n = net();
        n.send_uplink(NodeId(3), Msg(1));
        n.send_uplink(NodeId(4), Msg(2));
        assert_eq!(n.pending_uplinks(), 2);
        let up = n.drain_uplinks();
        assert_eq!(up, vec![(NodeId(3), Msg(1)), (NodeId(4), Msg(2))]);
        assert_eq!(n.pending_uplinks(), 0);
        assert_eq!(n.meter().uplink_msgs, 2);
        assert_eq!(n.meter().uplink_bytes, 16);
        assert_eq!(n.meter().node_sent_bytes(3), 8);
    }

    #[test]
    fn unicast_reaches_only_addressee() {
        let mut n = net();
        n.send_unicast(NodeId(1), Msg(7));
        let mut got = Vec::new();
        n.deliver(NodeId(1), Point::new(50.0, 50.0), &mut got);
        assert_eq!(vals(&got), vec![Msg(7)]);
        let mut other = Vec::new();
        n.deliver(NodeId(2), Point::new(50.0, 50.0), &mut other);
        assert!(other.is_empty());
        assert_eq!(n.meter().unicast_msgs, 1);
        assert_eq!(n.meter().node_received_bytes(1), 8);
        assert_eq!(n.meter().node_received_bytes(2), 0);
    }

    #[test]
    fn broadcast_heard_only_inside_coverage() {
        let mut n = net();
        let s = n.layout().station_at(Point::new(5.0, 5.0)); // station 0, center (5,5), r≈7.07
        n.broadcast(s, Msg(9));
        let mut near = Vec::new();
        n.deliver(NodeId(1), Point::new(6.0, 6.0), &mut near);
        assert_eq!(vals(&near), vec![Msg(9)]);
        let mut far = Vec::new();
        n.deliver(NodeId(2), Point::new(80.0, 80.0), &mut far);
        assert!(far.is_empty());
        // One broadcast message on the medium no matter how many listeners.
        assert_eq!(n.meter().broadcast_msgs, 1);
    }

    #[test]
    fn broadcast_region_uses_minimal_cover() {
        let mut n = net();
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let region = GridRect {
            x0: 0,
            y0: 0,
            x1: 3,
            y1: 3,
        }; // [0,20]^2
        let sent = n.broadcast_region(&grid, &region, Msg(5));
        assert!(sent >= 1);
        assert_eq!(n.meter().broadcast_msgs as usize, sent);
        // An object anywhere inside the region hears >= 1 copy.
        let mut got = Vec::new();
        n.deliver(NodeId(0), Point::new(10.0, 10.0), &mut got);
        assert!(!got.is_empty());
    }

    #[test]
    fn broadcast_region_shares_one_payload_allocation() {
        let mut n = net();
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let region = GridRect {
            x0: 0,
            y0: 0,
            x1: 7,
            y1: 7,
        }; // [0,40]^2 — needs several stations
        let sent = n.broadcast_region(&grid, &region, Msg(5));
        assert!(sent > 1, "test region should need more than one station");
        let (_, broadcasts) = n.take_downlinks();
        assert_eq!(broadcasts.len(), sent);
        let first = &broadcasts[0].1;
        assert!(
            broadcasts.iter().all(|(_, m, _)| Arc::ptr_eq(m, first)),
            "every station transmission must share the same allocation"
        );
    }

    #[test]
    fn deliver_shares_the_queued_payload() {
        let mut n = net();
        n.send_unicast(NodeId(1), Msg(3));
        let mut got = Vec::new();
        n.deliver(NodeId(1), Point::new(50.0, 50.0), &mut got);
        assert_eq!(got.len(), 1);
        let (unicasts, _) = n.take_downlinks();
        assert!(
            Arc::ptr_eq(&got[0], &unicasts[0].1),
            "delivery must hand out a reference, not a deep copy"
        );
    }

    #[test]
    fn end_tick_clears_downlink_not_uplink_meter() {
        let mut n = net();
        n.send_unicast(NodeId(1), Msg(1));
        n.broadcast(StationId(0), Msg(2));
        n.end_tick();
        let mut got = Vec::new();
        n.deliver(NodeId(1), Point::new(5.0, 5.0), &mut got);
        assert!(got.is_empty());
        // Meter totals persist across ticks.
        assert_eq!(n.meter().downlink_msgs(), 2);
    }

    #[test]
    fn faults_drop_downlink_messages() {
        let mut n = net();
        n.set_fault(FaultPlan::new(1.0, 0.0, 1));
        n.send_unicast(NodeId(1), Msg(1));
        let mut got = Vec::new();
        n.deliver(NodeId(1), Point::new(5.0, 5.0), &mut got);
        assert!(got.is_empty(), "full drop rate must suppress delivery");
        // The transmission itself still happened (and is metered).
        assert_eq!(n.meter().unicast_msgs, 1);
    }

    #[test]
    fn faults_duplicate_downlink_messages() {
        let mut n = net();
        n.set_fault(FaultPlan::new(0.0, 1.0, 1));
        n.send_unicast(NodeId(1), Msg(1));
        let mut got = Vec::new();
        n.deliver(NodeId(1), Point::new(5.0, 5.0), &mut got);
        assert_eq!(got.len(), 2, "full duplicate rate must double delivery");
    }

    #[test]
    fn uplink_faults_drop_but_still_meter_the_transmission() {
        let mut n = net();
        n.set_uplink_fault(FaultPlan::new(1.0, 0.0, 3));
        n.send_uplink(NodeId(2), Msg(1));
        assert_eq!(n.pending_uplinks(), 0, "dropped uplink must not queue");
        // The object transmitted (and pays the energy) regardless.
        assert_eq!(n.meter().uplink_msgs, 1);
        assert_eq!(n.meter().node_sent_bytes(2), 8);
        assert_eq!(
            n.telemetry().snapshot().counter(keys::FAULT_UPLINK_DROPPED),
            1
        );
    }

    #[test]
    fn uplink_faults_duplicate_the_queued_message() {
        let mut n = net();
        n.set_uplink_fault(FaultPlan::new(0.0, 1.0, 3));
        n.send_uplink(NodeId(2), Msg(9));
        let up = n.drain_uplinks();
        assert_eq!(up, vec![(NodeId(2), Msg(9)), (NodeId(2), Msg(9))]);
        // One transmission on the medium; the duplication is in the air.
        assert_eq!(n.meter().uplink_msgs, 1);
        assert_eq!(
            n.telemetry()
                .snapshot()
                .counter(keys::FAULT_UPLINK_DUPLICATED),
            1
        );
    }

    #[test]
    fn broadcast_all_reaches_every_station() {
        let mut n = net();
        let sent = n.broadcast_all(Msg(4));
        assert_eq!(sent, n.layout().num_stations());
        // Any position in the universe hears at least one copy.
        let mut got = Vec::new();
        n.deliver(NodeId(0), Point::new(73.0, 21.0), &mut got);
        assert!(!got.is_empty());
        let (_, broadcasts) = n.take_downlinks();
        let first = &broadcasts[0].1;
        assert!(broadcasts.iter().all(|(_, m, _)| Arc::ptr_eq(m, first)));
    }

    #[test]
    fn object_between_two_stations_hears_both_copies() {
        let mut n = net();
        // Stations 0 (center 5,5) and 1 (center 15,5) both cover (10,5).
        n.broadcast(StationId(0), Msg(1));
        n.broadcast(StationId(1), Msg(1));
        let mut got = Vec::new();
        n.deliver(NodeId(0), Point::new(10.0, 5.0), &mut got);
        assert_eq!(got.len(), 2);
    }
}
