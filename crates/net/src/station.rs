//! Base-station layout and the `Bmap` cell→stations mapping (paper §2.2).
//!
//! The paper parameterizes base stations by a *side length* `alen` (Table 1)
//! and requires the union of the circular coverage areas to contain the
//! universe of discourse. We realize this as a square lattice: stations sit
//! at the centers of `alen × alen` squares tiling the universe, each with
//! coverage radius `alen·√2/2` — the smallest circle that covers its own
//! lattice square, so the coverage union always contains the universe.

use mobieyes_geo::{Circle, Grid, GridRect, Point, Rect};

/// Identifier of a base station (index into the lattice, row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub u32);

/// A lattice of base stations with circular coverage areas covering the
/// universe of discourse.
#[derive(Debug, Clone)]
pub struct BaseStationLayout {
    universe: Rect,
    /// Lattice spacing (the paper's `alen`).
    alen: f64,
    cols: u32,
    rows: u32,
    /// Coverage radius of every station.
    radius: f64,
}

impl BaseStationLayout {
    /// Builds the lattice for `universe` with station side length `alen`.
    pub fn new(universe: Rect, alen: f64) -> Self {
        assert!(
            alen > 0.0 && alen.is_finite(),
            "station side length must be positive"
        );
        let cols = (universe.w() / alen).ceil().max(1.0) as u32;
        let rows = (universe.h() / alen).ceil().max(1.0) as u32;
        BaseStationLayout {
            universe,
            alen,
            cols,
            rows,
            radius: alen * std::f64::consts::SQRT_2 / 2.0,
        }
    }

    pub fn num_stations(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Lattice width in stations.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Lattice height in stations.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    pub fn alen(&self) -> f64 {
        self.alen
    }

    pub fn coverage_radius(&self) -> f64 {
        self.radius
    }

    /// Center point of a station's lattice square.
    pub fn center(&self, s: StationId) -> Point {
        let x = s.0 % self.cols;
        let y = s.0 / self.cols;
        Point::new(
            self.universe.lx + (x as f64 + 0.5) * self.alen,
            self.universe.ly + (y as f64 + 0.5) * self.alen,
        )
    }

    /// The coverage circle of a station.
    pub fn coverage(&self, s: StationId) -> Circle {
        Circle::new(self.center(s), self.radius)
    }

    /// Is a position inside the coverage area of station `s`? This decides
    /// whether an object physically receives a broadcast from `s`.
    pub fn covers(&self, s: StationId, p: Point) -> bool {
        self.coverage(s).contains_point(p)
    }

    /// The station whose lattice square contains `p` (clamped at the
    /// universe boundary). Uplink messages from an object enter the network
    /// through this station.
    pub fn station_at(&self, p: Point) -> StationId {
        let fx = ((p.x - self.universe.lx) / self.alen).floor() as i64;
        let fy = ((p.y - self.universe.ly) / self.alen).floor() as i64;
        let x = fx.clamp(0, self.cols as i64 - 1) as u32;
        let y = fy.clamp(0, self.rows as i64 - 1) as u32;
        StationId(y * self.cols + x)
    }

    /// `Bmap(i, j)`: all stations whose coverage circle intersects the given
    /// grid cell.
    pub fn bmap(&self, grid: &Grid, cell: mobieyes_geo::CellId) -> Vec<StationId> {
        let rect = grid.cell_rect(cell);
        self.stations_intersecting(&rect)
    }

    /// All stations whose coverage circle intersects `rect`.
    pub fn stations_intersecting(&self, rect: &Rect) -> Vec<StationId> {
        // Candidate lattice range: inflate by the coverage radius, then test
        // each candidate circle exactly.
        let lo_x = (((rect.lx - self.radius) - self.universe.lx) / self.alen).floor() as i64;
        let lo_y = (((rect.ly - self.radius) - self.universe.ly) / self.alen).floor() as i64;
        let hi_x = (((rect.hx() + self.radius) - self.universe.lx) / self.alen).floor() as i64;
        let hi_y = (((rect.hy() + self.radius) - self.universe.ly) / self.alen).floor() as i64;
        let mut out = Vec::new();
        for y in lo_y.max(0)..=hi_y.min(self.rows as i64 - 1) {
            for x in lo_x.max(0)..=hi_x.min(self.cols as i64 - 1) {
                let s = StationId(y as u32 * self.cols + x as u32);
                if self.coverage(s).intersects_rect(rect) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// The minimal set of stations needed to *fully cover* a monitoring
    /// region (greedy set cover over the region's grid cells). "Fully
    /// cover" means every point of every cell lies inside some chosen
    /// station's circle, so every object in the region is guaranteed to
    /// receive the broadcast.
    ///
    /// This is the paper's "minimal set of base stations that covers the
    /// monitoring region" used for query installation and focal-object
    /// update dissemination.
    pub fn minimal_cover(&self, grid: &Grid, region: &GridRect) -> Vec<StationId> {
        if region.is_empty() {
            return Vec::new();
        }
        // The region rectangle in space.
        let lo = grid.cell_rect(mobieyes_geo::CellId::new(region.x0, region.y0));
        let hi = grid.cell_rect(mobieyes_geo::CellId::new(region.x1, region.y1));
        let area = lo.union(&hi);
        // Candidate stations: those whose lattice square intersects the
        // region area. Each station fully covers its own lattice square, so
        // taking every candidate guarantees full coverage; the greedy pass
        // below drops candidates whose squares add nothing.
        let lo_x = (((area.lx - self.universe.lx) / self.alen).floor() as i64)
            .clamp(0, self.cols as i64 - 1);
        let lo_y = (((area.ly - self.universe.ly) / self.alen).floor() as i64)
            .clamp(0, self.rows as i64 - 1);
        let hi_x = (((area.hx() - self.universe.lx) / self.alen).ceil() as i64 - 1)
            .clamp(lo_x, self.cols as i64 - 1);
        let hi_y = (((area.hy() - self.universe.ly) / self.alen).ceil() as i64 - 1)
            .clamp(lo_y, self.rows as i64 - 1);
        let mut out = Vec::new();
        for y in lo_y..=hi_y {
            for x in lo_x..=hi_x {
                out.push(StationId(y as u32 * self.cols + x as u32));
            }
        }
        debug_assert!(!out.is_empty(), "cover of non-empty region cannot be empty");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_geo::CellId;

    fn layout() -> BaseStationLayout {
        BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0)
    }

    #[test]
    fn lattice_dimensions() {
        let l = layout();
        assert_eq!(l.num_stations(), 100);
        assert!((l.coverage_radius() - 10.0 * 2f64.sqrt() / 2.0).abs() < 1e-12);
        // Non-divisible universe rounds the lattice up.
        let l2 = BaseStationLayout::new(Rect::new(0.0, 0.0, 95.0, 100.0), 10.0);
        assert_eq!(l2.num_stations(), 100);
    }

    #[test]
    fn station_centers() {
        let l = layout();
        assert_eq!(l.center(StationId(0)), Point::new(5.0, 5.0));
        assert_eq!(l.center(StationId(11)), Point::new(15.0, 15.0));
        assert_eq!(l.center(StationId(99)), Point::new(95.0, 95.0));
    }

    #[test]
    fn every_point_in_universe_is_covered_by_its_station() {
        let l = layout();
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(99.9, 99.9),
            Point::new(50.0, 50.0),
            Point::new(10.0, 10.0), // lattice corner: worst case
        ] {
            let s = l.station_at(p);
            assert!(l.covers(s, p), "station at {p:?} does not cover it");
        }
    }

    #[test]
    fn station_at_clamps_outside_points() {
        let l = layout();
        assert_eq!(l.station_at(Point::new(-5.0, -5.0)), StationId(0));
        assert_eq!(l.station_at(Point::new(500.0, 500.0)), StationId(99));
    }

    #[test]
    fn bmap_includes_all_overlapping_stations() {
        let l = layout();
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        // Cell (0,0) = [0,5]^2: covered at least by station 0 (center (5,5),
        // radius ~7.07).
        let stations = l.bmap(&grid, CellId::new(0, 0));
        assert!(stations.contains(&StationId(0)));
        // Every returned station genuinely intersects the cell.
        let rect = grid.cell_rect(CellId::new(0, 0));
        for s in &stations {
            assert!(l.coverage(*s).intersects_rect(&rect));
        }
    }

    #[test]
    fn minimal_cover_fully_covers_region() {
        let l = layout();
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let region = GridRect {
            x0: 2,
            y0: 2,
            x1: 7,
            y1: 5,
        }; // [10,40]x[10,30]
        let cover = l.minimal_cover(&grid, &region);
        assert!(!cover.is_empty());
        // Sample many points of the region; each must be inside some chosen
        // station's circle.
        for cell in region.iter() {
            let r = grid.cell_rect(cell);
            for &p in &[r.low(), r.high(), r.center()] {
                assert!(
                    cover.iter().any(|&s| l.covers(s, p)),
                    "point {p:?} of region not covered"
                );
            }
        }
    }

    #[test]
    fn minimal_cover_of_empty_region_is_empty() {
        let l = layout();
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        assert!(l.minimal_cover(&grid, &GridRect::EMPTY).is_empty());
    }

    #[test]
    fn minimal_cover_shrinks_with_larger_stations() {
        let grid = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let region = GridRect {
            x0: 0,
            y0: 0,
            x1: 5,
            y1: 5,
        };
        let small = BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        let large = BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), 40.0);
        assert!(
            small.minimal_cover(&grid, &region).len() > large.minimal_cover(&grid, &region).len()
        );
        // Huge stations need exactly one broadcast.
        let huge = BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), 200.0);
        assert_eq!(huge.minimal_cover(&grid, &region).len(), 1);
    }

    #[test]
    fn single_station_layout() {
        let l = BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), 150.0);
        assert_eq!(l.num_stations(), 1);
        assert!(l.covers(StationId(0), Point::new(0.0, 0.0)));
        assert!(l.covers(StationId(0), Point::new(100.0, 100.0)));
    }
}
