//! Real socket backends: length-prefixed framing over TCP or Unix-domain
//! streams, the [`SocketTransport`] bus implementation, and the framed
//! connection primitive the cluster RPC layer builds on.
//!
//! ## Framing
//!
//! Every frame on the wire is `[len: u32 LE][payload: len bytes]`. `len`
//! is capped at [`MAX_FRAME`]; a peer announcing more is rejected with
//! [`TransportError::Oversize`] before anything is allocated. Incoming
//! bytes are accumulated in a connection buffer, so frames split across
//! arbitrary read boundaries (or many frames arriving in one read)
//! reassemble correctly.
//!
//! ## Handshake
//!
//! A connection opens with a `hello` frame: magic `MEYE`, a protocol
//! version byte, and the sender's node id. Version or magic mismatches
//! fail with [`TransportError::Handshake`] instead of silently decoding
//! garbage.
//!
//! ## Delivery guarantees
//!
//! TCP and Unix-domain streams are reliable and ordered, so a
//! [`SocketTransport`] delivers every sent frame exactly once, in send
//! order — message loss exists only where a [`FaultPlan`] injects it,
//! which keeps chaos semantics identical across backends.

use crate::fault::FaultPlan;
use crate::meter::{keys, Direction, MessageMeter};
use crate::sim::NodeId;
use crate::transport::{Frame, Transport, TransportError};
use mobieyes_telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Hard cap on a single frame's payload size (16 MiB). Far above any real
/// cluster message; a length prefix beyond it means a corrupt or hostile
/// peer.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

const HELLO_MAGIC: &[u8; 4] = b"MEYE";
const WIRE_VERSION: u8 = 1;

/// A transport address: `tcp:host:port` or `uds:/path/to.sock`. A bare
/// `host:port` parses as TCP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    Tcp(String),
    Uds(PathBuf),
}

impl Endpoint {
    pub fn parse(s: &str) -> Result<Endpoint, TransportError> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("uds:") {
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else if s.contains(':') {
            Ok(Endpoint::Tcp(s.to_string()))
        } else {
            Err(TransportError::Handshake(format!(
                "unparseable endpoint {s:?} (expected tcp:host:port or uds:/path)"
            )))
        }
    }

    /// Opens a client connection (TCP gets `TCP_NODELAY`: the bus and RPC
    /// layers are latency-bound request/response traffic).
    pub fn connect(&self) -> Result<Stream, TransportError> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Endpoint::Uds(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Like [`Endpoint::connect`], retrying until the peer starts
    /// listening or `timeout` elapses — for clients racing a freshly
    /// spawned server process. Retries back off exponentially (1ms
    /// doubling to a 200ms cap) with deterministic jitter derived from
    /// `jitter_seed`, so a fleet of coordinators reconnecting to one
    /// respawned partition doesn't hammer it in lock step, while any
    /// given (seed, attempt) pair always sleeps the same duration.
    pub fn connect_with_retry_jittered(
        &self,
        timeout: std::time::Duration,
        jitter_seed: u64,
    ) -> Result<Stream, TransportError> {
        const BASE_MS: u64 = 1;
        const CAP_MS: u64 = 200;
        let start = std::time::Instant::now();
        let mut attempt: u32 = 0;
        loop {
            match self.connect() {
                Ok(s) => return Ok(s),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => {
                    let backoff = BASE_MS.saturating_mul(1u64 << attempt.min(16)).min(CAP_MS);
                    // Deterministic jitter in [0, backoff): splitmix64 of
                    // (seed, attempt), same scheme as the fault plans.
                    let jitter = crate::fault::mix64(
                        jitter_seed ^ 0x9d30_5f4a_d671_1f35u64.wrapping_add(attempt as u64),
                    ) % backoff.max(1);
                    attempt = attempt.saturating_add(1);
                    std::thread::sleep(std::time::Duration::from_millis(backoff / 2 + jitter / 2));
                }
            }
        }
    }

    /// [`Endpoint::connect_with_retry_jittered`] with a zero jitter seed —
    /// the common single-coordinator case.
    pub fn connect_with_retry(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Stream, TransportError> {
        self.connect_with_retry_jittered(timeout, 0)
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A connected byte stream over either family.
#[derive(Debug)]
pub enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    /// Sets (or clears, with `None`) the kernel read timeout. A read that
    /// hits the deadline fails with `WouldBlock`/`TimedOut`, which the
    /// transport layer classifies as [`TransportError::Timeout`].
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> Result<(), TransportError> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur)?,
            Stream::Unix(s) => s.set_read_timeout(dur)?,
        }
        Ok(())
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound server socket. Unix-domain listeners unlink a stale socket file
/// on bind and remove it again on drop.
#[derive(Debug)]
pub enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub fn bind(ep: &Endpoint) -> Result<Listener, TransportError> {
        match ep {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Uds(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The actual bound address — resolves `port 0` to the assigned port.
    pub fn local_endpoint(&self) -> Result<Endpoint, TransportError> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, path) => Ok(Endpoint::Uds(path.clone())),
        }
    }

    pub fn accept(&self) -> Result<Stream, TransportError> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A framed connection: buffered frame writes, bounds-checked frame reads
/// that reassemble across arbitrary read boundaries.
#[derive(Debug)]
pub struct FramedConn {
    stream: Stream,
    /// Unconsumed incoming bytes (may hold partial or multiple frames).
    rbuf: Vec<u8>,
    /// Position of the first unconsumed byte in `rbuf`.
    rpos: usize,
    wbuf: Vec<u8>,
}

impl FramedConn {
    pub fn new(stream: Stream) -> Self {
        FramedConn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
        }
    }

    /// Installs (or clears) a read deadline on the underlying stream.
    /// While set, a blocking frame read that makes no progress within the
    /// deadline fails with [`TransportError::Timeout`] instead of hanging
    /// the caller forever — the coordinator uses this to tell a hung
    /// partition process from a merely slow one.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> Result<(), TransportError> {
        self.stream.set_read_timeout(dur)
    }

    /// Queues one frame (length prefix + payload) for sending.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.write_frame_parts(&[], payload)
    }

    /// Queues one frame whose payload is `head` followed by `body` —
    /// callers with a fixed header (e.g. a node-id prefix) avoid
    /// assembling a temporary contiguous payload first.
    pub fn write_frame_parts(&mut self, head: &[u8], body: &[u8]) -> Result<(), TransportError> {
        let len = head.len() + body.len();
        if len > MAX_FRAME {
            return Err(TransportError::Oversize {
                len,
                max: MAX_FRAME,
            });
        }
        self.wbuf.extend_from_slice(&(len as u32).to_le_bytes());
        self.wbuf.extend_from_slice(head);
        self.wbuf.extend_from_slice(body);
        Ok(())
    }

    pub fn flush(&mut self) -> Result<(), TransportError> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        self.stream.flush()?;
        Ok(())
    }

    /// Extracts one complete frame from the read buffer into `out`, if
    /// present. Returns whether a frame was extracted.
    fn buffered_frame_into(&mut self, out: &mut Vec<u8>) -> Result<bool, TransportError> {
        let avail = self.rbuf.len() - self.rpos;
        if avail < 4 {
            return Ok(false);
        }
        let len = u32::from_le_bytes(
            self.rbuf[self.rpos..self.rpos + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Oversize {
                len,
                max: MAX_FRAME,
            });
        }
        if avail < 4 + len {
            return Ok(false);
        }
        out.clear();
        out.extend_from_slice(&self.rbuf[self.rpos + 4..self.rpos + 4 + len]);
        self.rpos += 4 + len;
        // Reclaim consumed space once the buffer is fully drained (the
        // common case) or the dead prefix dominates.
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos > 64 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        Ok(true)
    }

    /// Blocks until one full frame is available and copies its payload
    /// into `out` (cleared first) — the allocation-free read path. A
    /// cleanly closed peer surfaces as [`TransportError::Closed`].
    pub fn read_frame_into(&mut self, out: &mut Vec<u8>) -> Result<(), TransportError> {
        loop {
            if self.buffered_frame_into(out)? {
                return Ok(());
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(TransportError::Closed);
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Blocks until one full frame is available and returns its payload.
    /// A cleanly closed peer surfaces as [`TransportError::Closed`].
    pub fn read_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut out = Vec::new();
        self.read_frame_into(&mut out)?;
        Ok(out)
    }

    /// Sends the opening hello frame (magic, version, node id).
    pub fn send_hello(&mut self, node: u32) -> Result<(), TransportError> {
        let mut payload = Vec::with_capacity(9);
        payload.extend_from_slice(HELLO_MAGIC);
        payload.push(WIRE_VERSION);
        payload.extend_from_slice(&node.to_le_bytes());
        self.write_frame(&payload)?;
        self.flush()
    }

    /// Reads and validates the peer's hello frame, returning its node id.
    pub fn expect_hello(&mut self) -> Result<u32, TransportError> {
        let payload = self.read_frame()?;
        if payload.len() != 9 || &payload[0..4] != HELLO_MAGIC {
            return Err(TransportError::Handshake(
                "bad hello frame (wrong magic or length)".into(),
            ));
        }
        if payload[4] != WIRE_VERSION {
            return Err(TransportError::Handshake(format!(
                "wire version mismatch: peer speaks {}, this build speaks {WIRE_VERSION}",
                payload[4]
            )));
        }
        Ok(u32::from_le_bytes(
            payload[5..9].try_into().expect("4 bytes"),
        ))
    }
}

/// The socket-backed bus: frames travel through a real kernel socket pair
/// (loopback TCP or a Unix-domain socket) instead of an in-memory queue.
///
/// The cluster bus topology is coordinator-centric — the coordinator is
/// both the only sender and the only receiver — so the transport tracks
/// how many frames are in flight and [`SocketTransport::poll`] reads until
/// it has them all. That preserves the lock-step guarantee ("poll returns
/// everything previously sent") over a medium with real buffering.
#[derive(Debug)]
pub struct SocketTransport<M> {
    tx: FramedConn,
    rx: FramedConn,
    in_flight: usize,
    fault: FaultPlan,
    telemetry: Telemetry,
    sent_by_node: Vec<u64>,
    kind: &'static str,
    /// Reusable encode scratch: one message body per `send`, cleared and
    /// refilled in place so steady-state sending allocates nothing.
    encode_buf: Vec<u8>,
    /// Reusable receive scratch for `poll`'s frame reads.
    frame_buf: Vec<u8>,
    _msg: std::marker::PhantomData<M>,
}

impl<M: Frame> SocketTransport<M> {
    /// A bus over a fresh loopback TCP socket pair (an OS-assigned port on
    /// 127.0.0.1, `TCP_NODELAY` on both ends).
    pub fn loopback_tcp() -> Result<Self, TransportError> {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))?;
        let tx = listener.local_endpoint()?.connect()?;
        let rx = listener.accept()?;
        Ok(Self::from_streams(tx, rx, "tcp"))
    }

    /// A bus over a fresh Unix-domain socket pair at `path`.
    pub fn loopback_uds(path: &std::path::Path) -> Result<Self, TransportError> {
        let listener = Listener::bind(&Endpoint::Uds(path.to_path_buf()))?;
        let tx = listener.local_endpoint()?.connect()?;
        let rx = listener.accept()?;
        Ok(Self::from_streams(tx, rx, "uds"))
    }

    /// Builds a bus from an already-connected send/receive stream pair.
    pub fn from_streams(tx: Stream, rx: Stream, kind: &'static str) -> Self {
        SocketTransport {
            tx: FramedConn::new(tx),
            rx: FramedConn::new(rx),
            in_flight: 0,
            fault: FaultPlan::none(),
            telemetry: Telemetry::new(),
            sent_by_node: Vec::new(),
            kind,
            encode_buf: Vec::new(),
            frame_buf: Vec::new(),
            _msg: std::marker::PhantomData,
        }
    }

    /// Records traffic into a shared telemetry sink (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn write_one(
        tx: &mut FramedConn,
        in_flight: &mut usize,
        from: NodeId,
        body: &[u8],
    ) -> Result<(), TransportError> {
        tx.write_frame_parts(&from.0.to_le_bytes(), body)?;
        *in_flight += 1;
        Ok(())
    }
}

impl<M: Frame> Transport<M> for SocketTransport<M> {
    fn send(&mut self, from: NodeId, msg: M) -> Result<(), TransportError> {
        let bytes = msg.wire_size();
        let (msgs_key, bytes_key) = Direction::Uplink.counter_keys();
        self.telemetry.incr(msgs_key);
        self.telemetry.add(bytes_key, bytes as u64);
        let node = from.0 as usize;
        if self.sent_by_node.len() <= node {
            self.sent_by_node.resize(node + 1, 0);
        }
        self.sent_by_node[node] += bytes as u64;
        self.encode_buf.clear();
        msg.encode_frame(&mut self.encode_buf);
        debug_assert_eq!(
            self.encode_buf.len(),
            bytes,
            "wire_size must match encoding"
        );
        match self.fault.copies() {
            0 => self.telemetry.incr(keys::FAULT_UPLINK_DROPPED),
            1 => Self::write_one(&mut self.tx, &mut self.in_flight, from, &self.encode_buf)?,
            _ => {
                self.telemetry.incr(keys::FAULT_UPLINK_DUPLICATED);
                Self::write_one(&mut self.tx, &mut self.in_flight, from, &self.encode_buf)?;
                Self::write_one(&mut self.tx, &mut self.in_flight, from, &self.encode_buf)?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.tx.flush()
    }

    fn poll(&mut self) -> Result<Vec<(NodeId, M)>, TransportError> {
        self.tx.flush()?;
        let mut out = Vec::with_capacity(self.in_flight);
        while self.in_flight > 0 {
            self.rx.read_frame_into(&mut self.frame_buf)?;
            let frame = &self.frame_buf;
            if frame.len() < 4 {
                return Err(TransportError::Frame(
                    "bus frame too short for its node-id header".into(),
                ));
            }
            let from = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
            let msg = M::decode_frame(&frame[4..])?;
            out.push((NodeId(from), msg));
            self.in_flight -= 1;
        }
        Ok(out)
    }

    fn set_fault(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    fn fault(&self) -> &FaultPlan {
        &self.fault
    }

    fn meter(&self) -> MessageMeter {
        MessageMeter::from_snapshot(
            &self.telemetry.snapshot(),
            self.sent_by_node.clone(),
            Vec::new(),
        )
    }

    fn kind(&self) -> &'static str {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_deadline_surfaces_timeout_and_connection_survives() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let client = listener.local_endpoint().unwrap().connect().unwrap();
        let server = listener.accept().unwrap();
        let mut reader = FramedConn::new(client);
        let mut writer = FramedConn::new(server);
        reader
            .set_read_timeout(Some(std::time::Duration::from_millis(30)))
            .unwrap();
        let err = reader.read_frame().unwrap_err();
        assert_eq!(err, TransportError::Timeout);
        assert!(err.is_peer_death());
        // The deadline hit is not fatal to the connection: a frame that
        // arrives afterwards is still delivered intact.
        writer.write_frame(b"late").unwrap();
        writer.flush().unwrap();
        assert_eq!(reader.read_frame().unwrap(), b"late");
    }

    #[test]
    fn closed_peer_is_distinct_from_timeout() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let client = listener.local_endpoint().unwrap().connect().unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        let mut reader = FramedConn::new(client);
        assert_eq!(reader.read_frame().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn retry_backoff_gives_up_within_timeout() {
        // Nothing listens here; every attempt is refused, so the retry
        // loop must exhaust its budget and surface the last error rather
        // than spin forever.
        let ep = Endpoint::Uds(std::env::temp_dir().join("mobieyes-no-such-service.sock"));
        let start = std::time::Instant::now();
        let err = ep.connect_with_retry_jittered(std::time::Duration::from_millis(120), 42);
        assert!(err.is_err());
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }
}
