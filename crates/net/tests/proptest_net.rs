//! Randomized (seeded, deterministic) tests for the network substrate:
//! coverage guarantees that the protocol's delivery correctness depends on.

use mobieyes_geo::{Grid, GridRect, Point, Rect};
use mobieyes_net::BaseStationLayout;

/// Tiny deterministic generator (splitmix64) so these sweeps are
/// reproducible without an external property-testing dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: u32) -> u32 {
        (self.next_u64() % n as u64) as u32
    }
}

#[test]
fn own_station_always_covers_the_object() {
    let mut rng = Rng(0xA11CE);
    for _ in 0..128 {
        let (x, y) = (rng.range(0.0, 100.0), rng.range(0.0, 100.0));
        let alen = rng.range(2.0, 60.0);
        let layout = BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), alen);
        let s = layout.station_at(Point::new(x, y));
        assert!(
            layout.covers(s, Point::new(x, y)),
            "station misses ({x},{y}) at alen={alen}"
        );
    }
}

#[test]
fn minimal_cover_fully_covers_monitoring_regions() {
    let mut rng = Rng(0xB0B);
    for _ in 0..128 {
        // Any point inside any cell of the region must be covered by at
        // least one chosen station — otherwise an object there would miss
        // the broadcast and the protocol would silently lose accuracy.
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 5.0);
        let alen = rng.range(4.0, 50.0);
        let layout = BaseStationLayout::new(universe, alen);
        let cell = mobieyes_geo::CellId::new(
            rng.below(20).min(grid.cols - 1),
            rng.below(20).min(grid.rows - 1),
        );
        let region = grid.monitoring_region(cell, rng.range(0.1, 12.0));
        let cover = layout.minimal_cover(&grid, &region);
        assert!(!cover.is_empty());
        let (px, py) = (rng.unit(), rng.unit());
        for c in region.iter() {
            let r = grid.cell_rect(c);
            // Clip to the universe: objects only exist inside it.
            let Some(r) = r.intersection(&universe) else {
                continue;
            };
            let p = Point::new(r.lx + px * r.w(), r.ly + py * r.h());
            assert!(
                cover.iter().any(|&s| layout.covers(s, p)),
                "point {p:?} of region {region:?} uncovered (alen={alen})"
            );
        }
    }
}

#[test]
fn bigger_stations_never_need_more_broadcasts() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..128 {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 5.0);
        let cell = mobieyes_geo::CellId::new(rng.below(18), rng.below(18));
        let region = grid.monitoring_region(cell, rng.range(0.1, 12.0));
        let mut last = usize::MAX;
        for alen in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let layout = BaseStationLayout::new(universe, alen);
            let n = layout.minimal_cover(&grid, &region).len();
            assert!(n <= last, "cover grew from {last} to {n} at alen={alen}");
            last = n;
        }
        // A single universe-sized station always suffices.
        assert!(last >= 1);
    }
}

#[test]
fn empty_region_needs_no_stations() {
    let mut rng = Rng(0xDEAD);
    for _ in 0..32 {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 5.0);
        let layout = BaseStationLayout::new(universe, rng.range(2.0, 60.0));
        assert!(layout.minimal_cover(&grid, &GridRect::EMPTY).is_empty());
    }
}
